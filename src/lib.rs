//! # scd — Stochastically Coordinated Dispatching
//!
//! A Rust reproduction of *"Stochastic Coordination in Heterogeneous Load
//! Balancing Systems"* (Goren, Vargaftik, Moses — PODC 2021,
//! arXiv:2105.09389).
//!
//! The workspace implements the paper's dispatching policy (**SCD**), every
//! baseline policy it is evaluated against, and the round-based
//! multi-dispatcher / multi-server simulator the evaluation runs on. This
//! umbrella crate re-exports the pieces a typical user needs; the underlying
//! crates (`scd-model`, `scd-core`, `scd-policies`, `scd-sim`, `scd-metrics`)
//! can also be used directly.
//!
//! ## Quick start
//!
//! ```
//! use scd::prelude::*;
//!
//! // A small heterogeneous cluster: one accelerator and four CPU servers.
//! let spec = ClusterSpec::from_rates(vec![20.0, 2.0, 2.0, 2.0, 2.0])?;
//!
//! // Simulate 2 dispatchers at 90% offered load for 2 000 rounds.
//! let config = SimConfig::builder(spec)
//!     .dispatchers(2)
//!     .rounds(2_000)
//!     .warmup_rounds(200)
//!     .seed(7)
//!     .arrivals(ArrivalSpec::PoissonOfferedLoad { offered_load: 0.9 })
//!     .build()?;
//!
//! // Compare SCD with SED on identical arrival/departure processes.
//! let scd = ScdFactory::new();
//! let sed = SedFactory::new();
//! let result = run_comparison(&config, &[&scd, &sed])?;
//! println!("{}", result.to_table());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! ## Crate map
//!
//! | Crate | Contents |
//! |---|---|
//! | [`model`] | identifiers, cluster specs, snapshots, the [`DispatchPolicy`](scd_model::DispatchPolicy) trait, weighted samplers, the shared [`RoundCache`](scd_model::RoundCache) |
//! | [`core`] | IWL (Algorithm 3), the probability solvers (Algorithms 1 & 4), arrival estimation, the SCD policy, the tournament-tree queue index |
//! | [`policies`] | JSQ, SED, JSQ(d), hJSQ(d), JIQ, hJIQ, LSQ, hLSQ, WR, TWF, LED and friends |
//! | [`sim`] | the three-phase round engine, arrival/service processes, reports |
//! | [`metrics`] | response-time histograms, decision-time histograms, percentiles, CCDF, tables |
//!
//! A prose tour of how the crates fit together — the round lifecycle, the
//! scratch/cache ownership rules and where the indexed queue views sit — is
//! in `ARCHITECTURE.md` at the repository root; `PAPER_MAP.md` maps paper
//! sections and figures to modules and experiment binaries.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use scd_core as core;
pub use scd_metrics as metrics;
pub use scd_model as model;
pub use scd_policies as policies;
pub use scd_sim as sim;

/// The most commonly used items, re-exported for convenient glob import.
pub mod prelude {
    pub use scd_core::estimator::ArrivalEstimator;
    pub use scd_core::iwl::{compute_iwl, ideal_assignment};
    pub use scd_core::policy::{ScdFactory, ScdPolicy};
    pub use scd_core::solver::{compute_probabilities, solve, ScdSolution, SolverKind};
    pub use scd_metrics::{ResponseTimeHistogram, SampleSet, Table};
    pub use scd_model::{
        ClusterSpec, DispatchContext, DispatchPolicy, DispatcherId, PolicyFactory, RateProfile,
        ServerId,
    };
    pub use scd_policies::{
        factory_by_name, standard_policy_names, JiqFactory, JsqFactory, LsqFactory,
        PowerOfDFactory, SedFactory, TwfFactory, WeightedRandomFactory,
    };
    pub use scd_sim::{
        chrome_trace_json, merge_shard_reports, run_comparison, run_comparison_parallel,
        run_replications, write_chrome_trace, ArrivalSpec, ArrivalTrace, ComparisonResult,
        DegradationMetrics, JobClass, MmppPhase, ModulationSpec, RunTrace, ScenarioSpec,
        ServiceModel, ShardPlan, ShardReport, ShardedSimulation, SimConfig, SimError, SimReport,
        Simulation, StalenessSpec, TraceEvent, WorkloadSpec, MAX_STALENESS,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn prelude_exposes_a_working_pipeline() {
        let spec = ClusterSpec::from_rates(vec![5.0, 1.0, 1.0]).unwrap();
        let config = SimConfig::builder(spec)
            .dispatchers(2)
            .rounds(300)
            .warmup_rounds(50)
            .seed(1)
            .arrivals(ArrivalSpec::PoissonOfferedLoad { offered_load: 0.8 })
            .build()
            .unwrap();
        let scd = ScdFactory::new();
        let report = Simulation::new(config).unwrap().run(&scd).unwrap();
        assert!(report.response_times.count() > 0);
    }

    #[test]
    fn registry_is_reachable_through_the_prelude() {
        assert!(standard_policy_names().contains(&"SCD"));
        assert!(factory_by_name("hJIQ").is_some());
    }
}
