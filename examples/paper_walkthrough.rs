//! Walks through the paper's two worked examples (Figures 1 and 2) with the
//! actual library calls, printing every intermediate quantity.
//!
//! Run with:
//! ```text
//! cargo run --release --example paper_walkthrough
//! ```

use scd::prelude::*;
use scd_core::qp::{check_kkt, objective};

fn main() {
    figure1();
    figure2();
}

/// Figure 1: balancing workload, not queue lengths.
fn figure1() {
    println!("=== Figure 1: ideally balanced workload ===");
    let queues = [2u64, 1, 3, 1];
    let rates = [5.0, 2.0, 1.0, 1.0];
    let arrivals = 7.0;

    let iwl = compute_iwl(&queues, &rates, arrivals);
    println!("queues   : {queues:?}");
    println!("rates    : {rates:?}");
    println!("arrivals : {arrivals}");
    println!("ideal workload (IWL) = {iwl}   (paper: 1.375)");

    let assignment = ideal_assignment(&queues, &rates, iwl);
    println!("ideally balanced assignment = {assignment:?}   (paper: [4.875, 1.75, 0, 0.375])");
    println!();
}

/// Figure 2: the optimal distribution can give positive probability to a
/// server that is already above the ideal workload.
fn figure2() {
    println!("=== Figure 2: stochastic coordination on a skewed cluster ===");
    // One fast server (µ=10) with 9 queued jobs and eight idle slow servers.
    let mut queues = vec![9u64];
    queues.extend(std::iter::repeat_n(0, 8));
    let mut rates = vec![10.0];
    rates.extend(std::iter::repeat_n(1.0, 8));
    let arrivals = 7.0;

    let solution = solve(&queues, &rates, arrivals, SolverKind::Fast).expect("valid instance");
    println!("IWL = {:.4}   (paper: 0.875)", solution.iwl);
    println!(
        "fast-server load before dispatching = {:.3} (above the IWL!)",
        queues[0] as f64 / rates[0]
    );
    println!(
        "optimal probability of the fast server = {:.4}   (paper: ~0.221)",
        solution.probabilities[0]
    );
    println!(
        "expected jobs sent to the fast server = {:.3}   (paper: ~1.55)",
        arrivals * solution.probabilities[0]
    );
    println!(
        "expected post-dispatch workload of a slow server = {:.3}   (paper: ~0.68)",
        arrivals * solution.probabilities[1] / rates[1]
    );
    println!(
        "probable set size = {} of {} servers",
        solution.probable_set_size,
        queues.len()
    );
    println!(
        "objective value f(P*) = {:.6}",
        objective(
            &solution.probabilities,
            &queues,
            &rates,
            arrivals,
            solution.iwl
        )
    );
    check_kkt(
        &solution.probabilities,
        &queues,
        &rates,
        arrivals,
        solution.iwl,
        1e-9,
    )
    .expect("the solver output satisfies the KKT optimality conditions");
    println!("KKT optimality certificate: OK");
}
