//! Demonstrates the herding phenomenon that motivates the paper.
//!
//! JSQ and SED are excellent with a *single* dispatcher but degrade badly
//! when many dispatchers share the same queue-length view: they all identify
//! the same short queues and pile onto them. SCD keeps the same full
//! information but coordinates stochastically, so it keeps improving as the
//! cluster and dispatcher count grow.
//!
//! Run with:
//! ```text
//! cargo run --release --example herding_demo
//! ```

use scd::prelude::*;

fn run_with_dispatchers(
    spec: &ClusterSpec,
    dispatchers: usize,
    policy: &dyn PolicyFactory,
) -> SimReport {
    let config = SimConfig::builder(spec.clone())
        .dispatchers(dispatchers)
        .rounds(8_000)
        .warmup_rounds(800)
        .seed(99)
        .arrivals(ArrivalSpec::PoissonOfferedLoad { offered_load: 0.9 })
        .build()
        .expect("valid configuration");
    Simulation::new(config)
        .expect("valid configuration")
        .run(policy)
        .expect("policies run cleanly")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    let spec = RateProfile::paper_moderate().materialize(40, &mut rng)?;
    println!(
        "cluster: 40 servers, capacity {:.0} jobs/round, offered load fixed at 0.90\n",
        spec.total_rate()
    );

    let mut table =
        Table::with_headers(&["policy", "dispatchers", "mean RT", "p99 RT", "max backlog"]);

    for &m in &[1usize, 5, 20] {
        for name in ["JSQ", "SED", "SCD"] {
            let factory = factory_by_name(name).expect("registered policy");
            let report = run_with_dispatchers(&spec, m, factory.as_ref());
            table.add_row(vec![
                name.to_string(),
                m.to_string(),
                format!("{:.2}", report.mean_response_time()),
                report.response_time_percentile(0.99).to_string(),
                format!("{:.0}", report.queues.max_total_backlog),
            ]);
        }
    }

    println!("{table}");
    println!(
        "Reading the table: with one dispatcher JSQ/SED are fine; as the number of\n\
         dispatchers grows their tail latencies and backlogs blow up (herding), while\n\
         SCD keeps both low because each dispatcher randomizes against the others."
    );
    Ok(())
}
