//! The process-fabric frame codec, end to end — without processes.
//!
//! The multi-process shard fabric ships every `ShardReport` across the
//! worker → orchestrator pipe as a versioned, length-prefixed,
//! FNV-checksummed binary frame. This example isolates that wire layer:
//! it runs a small sharded simulation in-process, encodes each shard's
//! report exactly as the `shard_worker` binary would, then demonstrates
//! that (a) clean frames decode bit-for-bit and merge into the same
//! system-wide report the in-process engine produces, and (b) every way a
//! pipe can betray you — a flipped bit, a torn write, a stale protocol
//! version — is a *classified* rejection, never a silent misdecode.
//!
//! Run with:
//! ```text
//! cargo run --release --example fabric_frames
//! ```

use scd::prelude::*;
use scd::sim::fabric::{decode_shard_report, encode_shard_report, FRAME_VERSION};

fn main() {
    let rates: Vec<f64> = (0..12).map(|s| 1.0 + (s % 4) as f64).collect();
    let config = SimConfig::builder(ClusterSpec::from_rates(rates).expect("valid rates"))
        .dispatchers(4)
        .rounds(2_000)
        .warmup_rounds(200)
        .seed(2021)
        .arrivals(ArrivalSpec::PoissonOfferedLoad { offered_load: 0.9 })
        .build()
        .expect("valid configuration");

    let k = 4;
    let sharded = ShardedSimulation::new(config, k).expect("k divides the system");
    let factory = ScdFactory::new();
    let reports = sharded.run_shards(&factory, 1).expect("shards run");
    let reference = merge_shard_reports(&reports).expect("consistent reports");

    println!("frame protocol v{FRAME_VERSION}, {k} shards:");
    let mut frames = Vec::new();
    for report in &reports {
        let frame = encode_shard_report(report).expect("encodable report");
        println!(
            "  shard {}: {} servers, {} jobs -> {} byte frame",
            report.shard,
            report.num_servers,
            report.report.jobs_dispatched,
            frame.len()
        );
        frames.push(frame);
    }

    // Clean frames survive the wire bit-for-bit and merge to the same
    // system-wide report.
    let decoded: Vec<_> = frames
        .iter()
        .map(|f| decode_shard_report(f).expect("clean frame decodes"))
        .collect();
    assert_eq!(decoded, reports);
    let merged = merge_shard_reports(&decoded).expect("consistent reports");
    assert_eq!(merged, reference);
    println!("\nmerged over the wire: {}", merged.one_liner());

    // Every failure mode of a pipe is a classified rejection.
    println!("\nwhat the codec rejects:");
    let frame = &frames[0];

    let mut corrupt = frame.clone();
    corrupt[frame.len() / 2] ^= 0x04;
    println!(
        "  flipped bit     -> {}",
        decode_shard_report(&corrupt).unwrap_err()
    );

    let torn = &frame[..frame.len() - 7];
    println!(
        "  torn write      -> {}",
        decode_shard_report(torn).unwrap_err()
    );

    let mut future = frame.clone();
    future[4] = FRAME_VERSION + 1;
    println!(
        "  future version  -> {}",
        decode_shard_report(&future).unwrap_err()
    );

    let mut trailing = frame.clone();
    trailing.extend_from_slice(b"junk");
    println!(
        "  trailing bytes  -> {}",
        decode_shard_report(&trailing).unwrap_err()
    );

    // And the merge itself refuses reports from different experiments.
    let mut foreign = decoded.clone();
    foreign[0].config_digest ^= 1;
    println!(
        "  foreign report  -> {}",
        merge_shard_reports(&foreign).unwrap_err()
    );
}
