//! Shows how to plug a user-defined dispatching policy into the simulator and
//! benchmark it against SCD.
//!
//! The custom policy here is a simple "sticky weighted random": it samples a
//! server proportionally to `µ_s` but re-uses the previous pick while that
//! server's queue stays below a threshold — a plausible-looking heuristic
//! that turns out to be far from competitive, which is exactly the kind of
//! thing one wants to learn from a simulator before deploying.
//!
//! Run with:
//! ```text
//! cargo run --release --example custom_policy
//! ```

use rand::RngCore;
use scd::prelude::*;
use scd_model::BoxedPolicy;

/// A sticky weighted-random policy.
struct StickyWeightedRandom {
    sampler: scd_model::AliasSampler,
    sticky_threshold: u64,
    current: Option<ServerId>,
}

impl StickyWeightedRandom {
    fn new(spec: &ClusterSpec, sticky_threshold: u64) -> Self {
        StickyWeightedRandom {
            sampler: scd_model::AliasSampler::new(spec.rates()).expect("positive rates"),
            sticky_threshold,
            current: None,
        }
    }
}

impl DispatchPolicy for StickyWeightedRandom {
    fn policy_name(&self) -> &str {
        "StickyWR"
    }

    fn dispatch_batch(
        &mut self,
        ctx: &DispatchContext<'_>,
        batch: usize,
        rng: &mut dyn RngCore,
    ) -> Vec<ServerId> {
        let mut out = Vec::with_capacity(batch);
        for _ in 0..batch {
            let target = match self.current {
                Some(server) if ctx.queue_len(server) < self.sticky_threshold => server,
                _ => {
                    let fresh = ServerId::new(self.sampler.sample(rng));
                    self.current = Some(fresh);
                    fresh
                }
            };
            out.push(target);
        }
        out
    }
}

/// Factory so the simulator can build one instance per dispatcher.
struct StickyWeightedRandomFactory {
    sticky_threshold: u64,
}

impl PolicyFactory for StickyWeightedRandomFactory {
    fn name(&self) -> &str {
        "StickyWR"
    }

    fn build(&self, _dispatcher: DispatcherId, spec: &ClusterSpec) -> BoxedPolicy {
        Box::new(StickyWeightedRandom::new(spec, self.sticky_threshold))
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(11);
    let spec = RateProfile::paper_moderate().materialize(30, &mut rng)?;

    let config = SimConfig::builder(spec)
        .dispatchers(4)
        .rounds(8_000)
        .warmup_rounds(800)
        .seed(3)
        .arrivals(ArrivalSpec::PoissonOfferedLoad { offered_load: 0.85 })
        .build()?;

    let custom = StickyWeightedRandomFactory {
        sticky_threshold: 4,
    };
    let scd = ScdFactory::new();
    let wr = WeightedRandomFactory::new();
    let result = run_comparison(&config, &[&scd, &custom, &wr])?;

    println!("custom policy vs SCD and plain weighted random (load 0.85):");
    println!("{}", result.to_table());
    println!(
        "winner on mean response time: {}",
        result.best_by_mean().unwrap_or("-")
    );
    Ok(())
}
