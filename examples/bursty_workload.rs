//! Time-varying workloads: how burstiness erodes (and SCD defends) tail
//! latency.
//!
//! The paper's evaluation (Section 6) runs stationary Poisson arrivals.
//! Real request streams are bursty — rates flip between calm and loaded
//! regimes (MMPP), follow daily cycles, or spike when a flash crowd
//! arrives — and burstiness is exactly the regime where *stale shared
//! information* is most dangerous: a dispatcher herd that piles onto the
//! momentarily-short queues during a burst digs a hole the calm phase has
//! to drain. This example runs SCD and JSQ on the same seeded arrival
//! schedules across three workload shapes, then records a per-job event
//! trace of the bursty run and replays it bit-exactly.
//!
//! Run with:
//! ```text
//! cargo run --release --example bursty_workload
//! ```

use scd::prelude::*;

fn config_for(
    spec: &ClusterSpec,
    base_load: f64,
    rounds: u64,
    workload: WorkloadSpec,
) -> SimConfig {
    SimConfig::builder(spec.clone())
        .dispatchers(10)
        .rounds(rounds)
        .warmup_rounds(rounds / 10)
        .seed(2021)
        .arrivals(ArrivalSpec::PoissonOfferedLoad {
            offered_load: base_load,
        })
        .workload(workload)
        .build()
        .expect("valid configuration")
}

fn run_workload(
    spec: &ClusterSpec,
    base_load: f64,
    workload: WorkloadSpec,
    policy: &dyn PolicyFactory,
) -> SimReport {
    Simulation::new(config_for(spec, base_load, 6_000, workload))
        .expect("valid configuration")
        .run(policy)
        .expect("policies run cleanly")
}

fn row(policy: &str, label: &str, report: &SimReport) -> Vec<String> {
    vec![
        policy.to_string(),
        label.to_string(),
        format!("{:.2}", report.mean_response_time()),
        report.response_time_percentile(0.99).to_string(),
        format!("{:.1}", report.queues.mean_total_backlog),
        format!("{:.0}", report.queues.max_total_backlog),
    ]
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    let spec = RateProfile::paper_moderate().materialize(40, &mut rng)?;
    println!(
        "cluster: 40 servers, 10 dispatchers, long-run offered load ≈ 0.89, \
         capacity {:.0} jobs/round\n",
        spec.total_rate()
    );

    // Three shapes, each with base load chosen so the *long-run* offered
    // load stays just under 0.9: the MMPP spends 80% of its time calm and
    // 20% in a 4x burst (mean multiplier 1.6), the flash crowd doubles the
    // rate for 40 of every 600 rounds (mean multiplier 1.067). The bursts
    // transiently overload the cluster — that hole-digging is the point.
    let bursty = WorkloadSpec::from_key_values(
        "mmpp_phases = 1:0.05,4:0.2\n\
         class = 1:3\n\
         class = 8:1\n",
    )?;
    let flash = WorkloadSpec {
        modulation: ModulationSpec::FlashCrowd {
            every: 600,
            duration: 40,
            magnitude: 1.0,
        },
        ..WorkloadSpec::default()
    };
    let shapes = [
        ("stationary", 0.89, WorkloadSpec::default()),
        ("bursty MMPP", 0.55, bursty.clone()),
        ("flash crowd", 0.83, flash),
    ];

    let mut table = Table::with_headers(&[
        "policy",
        "workload",
        "mean RT",
        "p99 RT",
        "mean backlog",
        "max backlog",
    ]);
    for (label, base_load, workload) in &shapes {
        for (name, factory) in [
            ("SCD", Box::new(ScdFactory::new()) as Box<dyn PolicyFactory>),
            ("JSQ", Box::new(JsqFactory::new())),
        ] {
            let report = run_workload(&spec, *base_load, workload.clone(), factory.as_ref());
            table.add_row(row(name, label, &report));
        }
    }
    println!("{table}");

    // Record the bursty run's per-job events (a shorter run — per-job
    // tracing is an inspection tool, and the event buffer is capped), then
    // replay the recorded arrival trace — the engine reproduces the run
    // bit for bit.
    let scd = ScdFactory::new();
    let (recorded, trace) =
        Simulation::new(config_for(&spec, 0.55, 1_200, bursty))?.run_traced(&scd)?;
    assert_eq!(trace.dropped, 0, "run sized to stay under the event cap");
    let replay = WorkloadSpec {
        replay: Some(trace.arrivals.clone()),
        ..WorkloadSpec::default()
    };
    let replayed = Simulation::new(config_for(&spec, 0.55, 1_200, replay))?.run(&scd)?;
    assert_eq!(recorded, replayed, "replay reproduces the run bit-exactly");
    println!(
        "recorded {} per-job events over {} rounds; replay of the recorded \
         arrival trace is bit-identical",
        trace.events.len(),
        trace.rounds
    );

    let out = std::env::temp_dir().join("scd_bursty_trace.json");
    write_chrome_trace(&out, &trace)?;
    println!(
        "wrote a Chrome/Perfetto timeline to {} — open it at ui.perfetto.dev",
        out.display()
    );
    Ok(())
}
