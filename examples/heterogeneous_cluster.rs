//! Accelerator-style heterogeneity: a few very fast servers (GPUs / FPGAs)
//! next to many ordinary CPU servers — the "case (2)" motivation of the
//! paper's evaluation (µ_s ~ U[1, 100]).
//!
//! The example sweeps the offered load and shows how rate-oblivious policies
//! (JSQ, TWF) waste the accelerators while SCD and SED exploit them — and how
//! SCD additionally avoids SED's herding once several dispatchers are
//! involved.
//!
//! Run with:
//! ```text
//! cargo run --release --example heterogeneous_cluster
//! ```

use scd::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 4 accelerators (40 jobs/round each) + 36 CPU servers (2 jobs/round).
    let mut rates = vec![40.0; 4];
    rates.extend(std::iter::repeat_n(2.0, 36));
    let spec = ClusterSpec::from_rates(rates)?;
    println!(
        "cluster: {} servers, {:.0}% of the capacity lives in 4 accelerators\n",
        spec.num_servers(),
        100.0 * (4.0 * 40.0) / spec.total_rate()
    );

    let policies = ["SCD", "SED", "TWF", "JSQ", "hLSQ", "WR"];
    let loads = [0.7, 0.9, 0.99];

    let mut mean_table = {
        let mut headers = vec!["rho".to_string()];
        headers.extend(policies.iter().map(|p| p.to_string()));
        Table::new(headers)
    };
    let mut p99_table = mean_table.clone();

    for &load in &loads {
        let config = SimConfig::builder(spec.clone())
            .dispatchers(8)
            .rounds(10_000)
            .warmup_rounds(1_000)
            .seed(42)
            .arrivals(ArrivalSpec::PoissonOfferedLoad { offered_load: load })
            .build()?;
        let simulation = Simulation::new(config)?;

        let mut means = Vec::new();
        let mut p99s = Vec::new();
        for name in policies {
            let factory = factory_by_name(name).expect("registered policy");
            let report = simulation.run(factory.as_ref())?;
            means.push(report.mean_response_time());
            p99s.push(report.response_time_percentile(0.99) as f64);
        }
        mean_table.add_numeric_row(&format!("{load:.2}"), &means, 2);
        p99_table.add_numeric_row(&format!("{load:.2}"), &p99s, 0);
    }

    println!("mean response time (rounds), 8 dispatchers:");
    println!("{mean_table}");
    println!("p99 response time (rounds):");
    println!("{p99_table}");
    println!(
        "TWF and JSQ ignore the accelerators' speed and fall apart as the load rises;\n\
         SED uses the rates but herds; SCD uses both the rates and stochastic\n\
         coordination and stays ahead across the sweep."
    );
    Ok(())
}
