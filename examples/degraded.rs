//! SCD vs JSQ when the queue information goes stale.
//!
//! The paper's herding argument (Section 1.1) blames *shared fresh
//! information with no communication*: every JSQ dispatcher identifies the
//! same shortest queues and piles onto them. Staleness makes that worse in
//! an instructive way — all dispatchers chase queues that were short `k`
//! rounds ago and have long since filled up. SCD's stochastic coordination
//! keeps a probability *distribution* over servers, so an aged snapshot
//! shifts the distribution instead of concentrating the whole batch on one
//! stale argmin.
//!
//! This example sweeps the fixed staleness `k` of the scenario layer for
//! both policies (same seeds, same arrival sample path) and reports mean
//! response time plus the engine's degradation counters — watch JSQ's
//! herding-round count climb with `k` while SCD's stays near zero. A second
//! table adds server crash/repair on top of the worst staleness.
//!
//! Run with:
//! ```text
//! cargo run --release --example degraded
//! ```

use scd::prelude::*;

fn run_scenario(
    spec: &ClusterSpec,
    scenario: ScenarioSpec,
    policy: &dyn PolicyFactory,
) -> SimReport {
    let config = SimConfig::builder(spec.clone())
        .dispatchers(10)
        .rounds(6_000)
        .warmup_rounds(600)
        .seed(2021)
        .arrivals(ArrivalSpec::PoissonOfferedLoad { offered_load: 0.9 })
        .scenario(scenario)
        .build()
        .expect("valid configuration");
    Simulation::new(config)
        .expect("valid configuration")
        .run(policy)
        .expect("policies run cleanly")
}

fn degradation_row(policy: &str, label: &str, report: &SimReport) -> Vec<String> {
    let metrics = report.degradation.unwrap_or_default();
    vec![
        policy.to_string(),
        label.to_string(),
        format!("{:.2}", report.mean_response_time()),
        report.response_time_percentile(0.99).to_string(),
        metrics.herding_rounds.to_string(),
        metrics.stale_decision_rounds.to_string(),
        metrics.server_down_rounds.to_string(),
    ]
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    let spec = RateProfile::paper_moderate().materialize(40, &mut rng)?;
    println!(
        "cluster: 40 servers, 10 dispatchers, offered load 0.90, capacity {:.0} jobs/round\n",
        spec.total_rate()
    );

    let headers = [
        "policy",
        "scenario",
        "mean RT",
        "p99 RT",
        "herding rounds",
        "stale rounds",
        "down rounds",
    ];

    println!("--- stale snapshots only (every dispatcher sees a k-round-old view) ---");
    let mut table = Table::with_headers(&headers);
    for k in [0u64, 2, 8] {
        let scenario = ScenarioSpec {
            staleness: StalenessSpec::Fixed { k },
            ..ScenarioSpec::default()
        };
        for name in ["JSQ", "SCD"] {
            let factory = factory_by_name(name).expect("registered policy");
            let report = run_scenario(&spec, scenario.clone(), factory.as_ref());
            table.add_row(degradation_row(name, &format!("stale k={k}"), &report));
        }
    }
    println!("{table}");

    println!("--- staleness + server crashes (fail 2%/round, repair 20%/round) ---");
    let mut table = Table::with_headers(&headers);
    let scenario = ScenarioSpec {
        server_fail_rate: 0.02,
        server_repair_rate: 0.2,
        staleness: StalenessSpec::Fixed { k: 8 },
        ..ScenarioSpec::default()
    };
    for name in ["JSQ", "SCD"] {
        let factory = factory_by_name(name).expect("registered policy");
        let report = run_scenario(&spec, scenario.clone(), factory.as_ref());
        table.add_row(degradation_row(name, "stale k=8 + crashes", &report));
    }
    println!("{table}");

    println!(
        "Both policies run the identical fault and arrival schedules (counter-mode \
         draws from the scenario master seed), so the comparison is paired."
    );
    Ok(())
}
