//! Quickstart: simulate a heterogeneous cluster under several dispatching
//! policies and print a comparison table.
//!
//! Run with:
//! ```text
//! cargo run --release --example quickstart
//! ```

use scd::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 20-server cluster with rates drawn from the paper's moderate
    // heterogeneity profile (different CPU generations): µ_s ~ U[1, 10].
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let spec = RateProfile::paper_moderate().materialize(20, &mut rng)?;
    println!(
        "cluster: {} servers, total capacity {:.1} jobs/round, fastest/slowest = {:.1}x",
        spec.num_servers(),
        spec.total_rate(),
        spec.heterogeneity_ratio()
    );

    // Five dispatchers, 90% offered load, 10 000 rounds.
    let config = SimConfig::builder(spec)
        .dispatchers(5)
        .rounds(10_000)
        .warmup_rounds(1_000)
        .seed(2021)
        .arrivals(ArrivalSpec::PoissonOfferedLoad { offered_load: 0.9 })
        .build()?;

    // Compare SCD against representative baselines on identical arrival and
    // departure processes.
    let scd = ScdFactory::new();
    let sed = SedFactory::new();
    let jsq = JsqFactory::new();
    let twf = TwfFactory::new();
    let hlsq = LsqFactory::heterogeneous();
    let wr = WeightedRandomFactory::new();

    let result = run_comparison(&config, &[&scd, &sed, &jsq, &twf, &hlsq, &wr])?;

    println!("\nresponse-time comparison at offered load 0.90:");
    println!("{}", result.to_table());
    println!(
        "best mean: {}   best p99: {}",
        result.best_by_mean().unwrap_or("-"),
        result.best_by_percentile(0.99).unwrap_or("-")
    );
    Ok(())
}
