//! Shard-merge equivalence and seed-derivation audit for the sharded round
//! engine (`scd_sim::shard`).
//!
//! Three contracts are pinned here:
//!
//! 1. **`k = 1` is bit-identical to the unsharded engine.** A single-shard
//!    run keeps the master seed, owns every server in original order, and
//!    merges one report — so the entire sharded path (sub-config
//!    derivation, per-shard round loop, report merge) must reproduce
//!    `Simulation::run` exactly, for every policy family.
//! 2. **`k ∈ {2, 4}` merged reports match the unsharded oracle
//!    statistically.** Shards are independent sub-systems, so their union
//!    is not the same sample path as the unsharded run — but with the
//!    striped partition every shard sees the same rate mix and offered
//!    load, so mean/percentile/backlog statistics must land close to the
//!    oracle (tolerances below are several times the observed deviation,
//!    but far below the gaps between policies).
//! 3. **Seed sub-streams never collide.** Every stream any sharded or
//!    unsharded run derives — over masters (including replication-style
//!    remixes and adversarial values), shard counts, shard indices and
//!    dispatchers — is distinct.

use scd::prelude::*;
use scd_model::streams::{
    derive_stream_seed, shard_master_seed, splitmix64_mix, ARRIVAL_STREAM_TAG, POLICY_STREAM_TAG,
    SERVICE_STREAM_TAG, SHARD_STREAM_TAG,
};

/// A moderately heterogeneous 64-server system at high load — large enough
/// that a 4-way striped split leaves each shard a representative rate mix.
fn oracle_config(rounds: u64) -> SimConfig {
    use rand::SeedableRng;
    let mut cluster_rng = rand::rngs::StdRng::seed_from_u64(2021);
    let spec = RateProfile::paper_moderate()
        .materialize(64, &mut cluster_rng)
        .unwrap();
    SimConfig::builder(spec)
        .dispatchers(4)
        .rounds(rounds)
        .warmup_rounds(rounds / 10)
        .seed(2021)
        .arrivals(ArrivalSpec::PoissonOfferedLoad { offered_load: 0.9 })
        .build()
        .unwrap()
}

#[test]
fn single_shard_run_is_bit_identical_to_the_unsharded_engine() {
    let config = oracle_config(1_500);
    let scd = ScdFactory::new();
    let jsq = JsqFactory::new();
    let sed = SedFactory::new();
    let wr = WeightedRandomFactory::new();
    let factories: [&dyn PolicyFactory; 4] = [&scd, &jsq, &sed, &wr];
    for factory in factories {
        let oracle = Simulation::new(config.clone())
            .unwrap()
            .run(factory)
            .unwrap();
        let sharded = ShardedSimulation::new(config.clone(), 1).unwrap();
        let merged = sharded.run(factory).unwrap();
        assert_eq!(
            oracle,
            merged,
            "k=1 sharded run diverged from Simulation::run for {}",
            factory.name()
        );
        // The parallel entry point degrades to the same result.
        assert_eq!(oracle, sharded.run_parallel(factory, 4).unwrap());
    }
}

#[test]
fn single_shard_reports_survive_the_merge_untouched() {
    let config = oracle_config(800);
    let factory = ScdFactory::new();
    let sharded = ShardedSimulation::new(config.clone(), 1).unwrap();
    let shards = sharded.run_shards(&factory, 1).unwrap();
    assert_eq!(shards.len(), 1);
    assert_eq!(shards[0].num_servers, 64);
    let merged = merge_shard_reports(&shards).unwrap();
    assert_eq!(merged, shards[0].report, "merging one report is identity");
}

/// Merged `k`-shard statistics vs the unsharded oracle for one policy.
fn compare_sharded(k: usize, factory: &dyn PolicyFactory) {
    let config = oracle_config(6_000);
    let oracle = Simulation::new(config.clone())
        .unwrap()
        .run(factory)
        .unwrap();
    let merged = ShardedSimulation::new(config, k)
        .unwrap()
        .run_parallel(factory, k)
        .unwrap();

    // Shards redraw all stochastic processes from their own sub-masters, so
    // the comparison is statistical, not bit-wise. Tolerances are several
    // times the deviations observed across seeds, yet much tighter than the
    // SCD-vs-JSQ policy gaps the paper's claims rest on.
    let mean_rel = (merged.mean_response_time() - oracle.mean_response_time()).abs()
        / oracle.mean_response_time();
    assert!(
        mean_rel < 0.20,
        "k={k} {}: merged mean {} vs oracle {} (rel {mean_rel:.3})",
        merged.policy,
        merged.mean_response_time(),
        oracle.mean_response_time()
    );

    for p in [0.5, 0.99] {
        let merged_p = merged.response_time_percentile(p) as f64;
        let oracle_p = oracle.response_time_percentile(p) as f64;
        let tolerance = (0.35 * oracle_p).max(2.0);
        assert!(
            (merged_p - oracle_p).abs() <= tolerance,
            "k={k} {}: p{p} {merged_p} vs oracle {oracle_p}",
            merged.policy
        );
    }

    let backlog_rel = (merged.queues.mean_total_backlog - oracle.queues.mean_total_backlog).abs()
        / oracle.queues.mean_total_backlog;
    assert!(
        backlog_rel < 0.35,
        "k={k} {}: merged backlog {} vs oracle {} (rel {backlog_rel:.3})",
        merged.policy,
        merged.queues.mean_total_backlog,
        oracle.queues.mean_total_backlog
    );

    // Both systems absorb the same offered load, so throughput accounting
    // must agree closely (the arrival processes have identical means).
    let dispatched_rel = (merged.jobs_dispatched as f64 - oracle.jobs_dispatched as f64).abs()
        / oracle.jobs_dispatched as f64;
    assert!(
        dispatched_rel < 0.05,
        "k={k} {}: dispatched {} vs oracle {}",
        merged.policy,
        merged.jobs_dispatched,
        oracle.jobs_dispatched
    );
}

#[test]
fn two_way_sharded_scd_matches_the_unsharded_oracle_statistically() {
    compare_sharded(2, &ScdFactory::new());
}

#[test]
fn four_way_sharded_scd_matches_the_unsharded_oracle_statistically() {
    compare_sharded(4, &ScdFactory::new());
}

#[test]
fn four_way_sharded_jsq_matches_the_unsharded_oracle_statistically() {
    compare_sharded(4, &JsqFactory::new());
}

#[test]
fn sharding_preserves_the_policy_ordering_of_the_paper() {
    // The headline qualitative claim must survive sharding: SCD beats
    // heterogeneity-oblivious JSQ under load, also when both run 4-way
    // sharded.
    let config = oracle_config(6_000);
    let sharded = ShardedSimulation::new(config, 4).unwrap();
    let scd = sharded.run_parallel(&ScdFactory::new(), 4).unwrap();
    let jsq = sharded.run_parallel(&JsqFactory::new(), 4).unwrap();
    assert!(
        scd.mean_response_time() < jsq.mean_response_time(),
        "sharded SCD mean {} should beat sharded JSQ mean {}",
        scd.mean_response_time(),
        jsq.mean_response_time()
    );
}

#[test]
fn shard_sub_streams_never_collide_across_the_full_grid() {
    // Every stream seed any run of the test grid would derive:
    // masters (ordinary, adversarial, replication-style remixes)
    //   × shard counts k ∈ {1, 2, 3, 4, 8}
    //   × shards j < k
    //   × streams {arrivals, services, policy(d) for d < 10}.
    // For k = 1 the shard sub-master IS the master (bit-compatibility), so
    // its streams are exactly the unsharded engine's — they appear once.
    let mut masters = vec![
        0u64,
        1,
        2021,
        u64::MAX,
        ARRIVAL_STREAM_TAG,
        SERVICE_STREAM_TAG,
        POLICY_STREAM_TAG,
        SHARD_STREAM_TAG,
        SHARD_STREAM_TAG ^ (4u64 << 32),
        0xDEAD_BEEF_CAFE_BABE,
        splitmix64_mix(2021),
    ];
    // The replication masters the sweep harness *actually* derives for a
    // small (system × load × replication) grid — the real `mix_seed` chain,
    // not a re-derived approximation.
    for system_index in 0..2 {
        for load_index in 0..2 {
            for rep in 0..3 {
                masters.push(scd_experiments::response::replication_seed(
                    2021,
                    system_index,
                    load_index,
                    rep,
                ));
            }
        }
    }
    // A duplicate master would inflate `expected` and fail the count check
    // below spuriously — dedupe defensively.
    masters.sort_unstable();
    masters.dedup();

    const DISPATCHERS: u64 = 10;
    let mut seeds = std::collections::HashSet::new();
    let mut expected = 0usize;
    for &master in &masters {
        for k in [1usize, 2, 3, 4, 8] {
            for j in 0..k {
                let sub_master = shard_master_seed(master, k, j);
                seeds.insert(derive_stream_seed(sub_master, ARRIVAL_STREAM_TAG, 0));
                seeds.insert(derive_stream_seed(sub_master, SERVICE_STREAM_TAG, 0));
                for d in 0..DISPATCHERS {
                    seeds.insert(derive_stream_seed(sub_master, POLICY_STREAM_TAG, d));
                }
                expected += 2 + DISPATCHERS as usize;
            }
        }
    }
    assert_eq!(
        seeds.len(),
        expected,
        "stream-seed collision somewhere in the (master × k × shard × dispatcher) grid"
    );
}

#[test]
fn shard_sub_masters_are_distinct_from_every_base_stream() {
    // A shard's sub-master must not equal any seed the unsharded engine
    // feeds to an RNG, otherwise a shard's stream family would be a shifted
    // copy of a base stream family.
    let masters = [0u64, 1, 2021, u64::MAX, SHARD_STREAM_TAG];
    for &master in &masters {
        let mut base = std::collections::HashSet::new();
        base.insert(derive_stream_seed(master, ARRIVAL_STREAM_TAG, 0));
        base.insert(derive_stream_seed(master, SERVICE_STREAM_TAG, 0));
        for d in 0..64u64 {
            base.insert(derive_stream_seed(master, POLICY_STREAM_TAG, d));
        }
        for k in [2usize, 3, 4, 8, 16] {
            for j in 0..k {
                let sub = shard_master_seed(master, k, j);
                assert!(
                    !base.contains(&sub),
                    "sub-master (k={k}, j={j}) collides with a base stream of {master:#x}"
                );
                assert_ne!(sub, master, "k>1 sub-master equals the master itself");
            }
        }
    }
}
