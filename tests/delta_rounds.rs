//! Equivalence guarantees of the delta-aware round machinery (PR 5).
//!
//! The engine's round-to-round dirty sets, the `RoundCache` delta refresh,
//! the warm-started SCD solver and the dirty-set-driven warm JSQ/SED trees
//! are all **pure accelerators**: for equal seeds they must change costs,
//! never choices. These tests pin that down at the report level — bitwise
//! `SimReport` equality — across randomized multi-round configurations, in
//! both `Simulation::run` and `ShardedSimulation` (k ∈ {1, 2, 4}), and
//! across policy switches mid-suite (interleaved warm/cold runs sharing
//! nothing but the configuration).

use scd::prelude::*;
use scd_policies::LedFactory;

fn config(n: usize, m: usize, load: f64, rounds: u64, seed: u64, homogeneous: bool) -> SimConfig {
    let rates: Vec<f64> = if homogeneous {
        vec![2.0; n]
    } else {
        (0..n).map(|s| 1.0 + (s % 7) as f64 * 1.5).collect()
    };
    SimConfig::builder(ClusterSpec::from_rates(rates).unwrap())
        .dispatchers(m)
        .rounds(rounds)
        .warmup_rounds(rounds / 10)
        .seed(seed)
        .arrivals(ArrivalSpec::PoissonOfferedLoad { offered_load: load })
        .build()
        .unwrap()
}

/// Warm-started SCD must reproduce the cold-solve SCD bit for bit: same
/// solver inputs, same seeds, reports compare equal — across heterogeneous
/// and homogeneous clusters (the latter maximize exact load/key ties, the
/// warm verification's hardest case) and light to near-critical loads.
#[test]
fn warm_and_cold_scd_runs_are_bit_identical() {
    for (case, (n, m, load, homogeneous)) in [
        (30usize, 4usize, 0.85, false),
        (20, 10, 0.99, false),
        (16, 3, 0.6, true),
        (40, 6, 0.95, true),
    ]
    .into_iter()
    .enumerate()
    {
        for seed in [1u64, 7, 2021] {
            let sim = Simulation::new(config(n, m, load, 1_200, seed, homogeneous)).unwrap();
            let warm = sim.run(&ScdFactory::new()).unwrap();
            let cold = sim.run(&ScdFactory::new().cold_solve()).unwrap();
            assert_eq!(
                warm, cold,
                "case {case} seed {seed}: warm-started SCD diverged from the cold solve"
            );
        }
    }
}

/// Disabling the engine's delta tracking (the PR 4-faithful round loop) must
/// be invisible to every policy: dirty sets, the cache delta refresh and the
/// per-batch push coalescing change costs only.
#[test]
fn delta_tracking_on_and_off_produce_identical_reports() {
    let factories: Vec<Box<dyn PolicyFactory>> = vec![
        Box::new(ScdFactory::new()),
        Box::new(JsqFactory::new()),
        Box::new(SedFactory::new()),
        Box::new(LsqFactory::new()),
        Box::new(LsqFactory::heterogeneous()),
        Box::new(LedFactory::new()),
        Box::new(TwfFactory::new()),
        Box::new(WeightedRandomFactory::new()),
    ];
    for seed in [3u64, 11] {
        let cfg = config(24, 5, 0.92, 1_000, seed, false);
        let with_deltas = Simulation::new(cfg.clone()).unwrap();
        let without = Simulation::new(cfg).unwrap().with_delta_rounds(false);
        for factory in &factories {
            let a = with_deltas.run(factory.as_ref()).unwrap();
            let b = without.run(factory.as_ref()).unwrap();
            assert_eq!(
                a,
                b,
                "seed {seed}: delta tracking changed {}'s trajectory",
                factory.name()
            );
        }
    }
}

/// The warm JSQ/SED trees repaired from the engine's dirty set must agree
/// bit for bit with their scan oracles (which share the warm priority
/// lifecycle but re-scan every pick), over full simulations.
#[test]
fn warm_jsq_sed_match_their_scan_oracles() {
    for seed in [1u64, 9, 77] {
        let sim = Simulation::new(config(28, 4, 0.93, 1_500, seed, false)).unwrap();
        let jsq_indexed = sim.run(&JsqFactory::new()).unwrap();
        let jsq_scan = sim.run(&JsqFactory::scan()).unwrap();
        assert_eq!(jsq_indexed, jsq_scan, "seed {seed}: JSQ warm tree vs scan");
        let sed_indexed = sim.run(&SedFactory::new()).unwrap();
        let sed_scan = sim.run(&SedFactory::scan()).unwrap();
        assert_eq!(sed_indexed, sed_scan, "seed {seed}: SED warm tree vs scan");
    }
}

/// Warm-vs-cold equivalence under the sharded engine: each shard runs its
/// own delta-tracked round loop with its own caches and seeds, so the
/// guarantee must hold for every shard count — including k = 1, which is
/// additionally pinned to the unsharded engine elsewhere.
#[test]
fn warm_and_cold_scd_match_under_sharding() {
    for k in [1usize, 2, 4] {
        for seed in [5u64, 42] {
            let cfg = config(24, 8, 0.9, 1_000, seed, false);
            let sharded = ShardedSimulation::new(cfg, k).unwrap();
            let warm = sharded.run(&ScdFactory::new()).unwrap();
            let cold = sharded.run(&ScdFactory::new().cold_solve()).unwrap();
            assert_eq!(warm, cold, "k={k} seed {seed}: sharded warm SCD diverged");
            // The parallel shard schedule must not perturb the warm path
            // either (per-shard state is thread-confined).
            let warm_parallel = sharded.run_parallel(&ScdFactory::new(), k).unwrap();
            assert_eq!(warm, warm_parallel, "k={k} seed {seed}: parallel warm");
        }
    }
}

/// Policy switches mid-suite: a comparison run interleaves policy families
/// over one configuration (fresh policy instances and caches per run), so
/// warm state from one family must never leak into another. The warm SCD
/// inside a mixed suite must equal the cold SCD inside the same suite *and*
/// a standalone warm run.
#[test]
fn warm_state_does_not_leak_across_policy_switches_mid_suite() {
    let cfg = config(30, 5, 0.9, 1_200, 13, false);
    let warm_scd = ScdFactory::new();
    let cold_scd = ScdFactory::new().cold_solve();
    let jsq = JsqFactory::new();
    let lsq = LsqFactory::new();
    let sed = SedFactory::new();
    // Interleave so every SCD run is sandwiched between other families.
    let factories: [&dyn PolicyFactory; 5] = [&jsq, &warm_scd, &lsq, &cold_scd, &sed];
    let suite = run_comparison(&cfg, &factories).unwrap();
    assert_eq!(
        suite.reports[1], suite.reports[3],
        "warm and cold SCD diverged inside the mixed suite"
    );
    let standalone = Simulation::new(cfg).unwrap().run(&warm_scd).unwrap();
    assert_eq!(
        suite.reports[1], standalone,
        "suite interleaving changed the warm SCD trajectory"
    );
    // The parallel comparison runner must agree as well.
    let parallel = run_comparison_parallel(&suite_config(), &factories, 4).unwrap();
    assert_eq!(suite.reports, parallel.reports);
}

fn suite_config() -> SimConfig {
    config(30, 5, 0.9, 1_200, 13, false)
}

/// Direct-invocation safety: a warm policy driven without `observe_round`
/// (as tests and examples do) and one driven through the engine contract
/// must both stay internally consistent; here we pin the contract
/// documented on `DispatchPolicy` — dispatch_batch and dispatch_into agree
/// for warm JSQ across consecutive synthetic rounds with dirty sets.
#[test]
fn warm_jsq_direct_use_matches_engine_style_use() {
    use rand::rngs::StdRng;
    use rand::{RngCore, SeedableRng};
    let rates = vec![1.0, 2.0, 4.0, 1.0, 2.0, 1.0];
    let mut queues = vec![3u64, 1, 4, 1, 5, 9];
    let mut direct = scd_policies::jsq::JsqPolicy::new();
    let mut engine_style = scd_policies::jsq::JsqPolicy::new();
    let mut rng_a = StdRng::seed_from_u64(99);
    let mut rng_b = StdRng::seed_from_u64(99);
    let mut dirty: Vec<u32> = Vec::new();
    for round in 0..200u64 {
        let ctx_plain = DispatchContext::new(&queues, &rates, 2, round);
        let ctx_dirty = if round == 0 {
            DispatchContext::new(&queues, &rates, 2, round)
        } else {
            DispatchContext::new(&queues, &rates, 2, round).with_dirty(&dirty)
        };
        // Engine style: observe every round, dirty set provided.
        engine_style.observe_round(&ctx_dirty, &mut rng_b);
        let batch = (round % 4) as usize;
        let mut out_a = Vec::new();
        let mut out_b = Vec::new();
        direct.dispatch_into(&ctx_plain, batch, &mut out_a, &mut rng_a);
        engine_style.dispatch_into(&ctx_dirty, batch, &mut out_b, &mut rng_b);
        assert_eq!(
            out_a, out_b,
            "round {round}: dirty availability changed picks"
        );
        assert_eq!(
            rng_a.next_u64(),
            rng_b.next_u64(),
            "round {round}: RNG drift"
        );
        // Evolve the queues like an engine round would: placements + a
        // deterministic departure pattern; record the dirty set.
        dirty.clear();
        let mut flags = vec![false; queues.len()];
        for s in out_a.iter().map(|s| s.index()) {
            queues[s] += 1;
            if !flags[s] {
                flags[s] = true;
                dirty.push(s as u32);
            }
        }
        let drain = (round % queues.len() as u64) as usize;
        if queues[drain] > 0 {
            queues[drain] -= 1;
            if !flags[drain] {
                flags[drain] = true;
                dirty.push(drain as u32);
            }
        }
    }
}
