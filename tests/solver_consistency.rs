//! Cross-crate consistency of the SCD solver, exercised through the public
//! API: the policy's sampled behaviour matches the solver's distribution, the
//! optimality certificate holds, and the stability invariant (Lemma 3) holds
//! for the distributions SCD actually uses during a simulation.

use rand::SeedableRng;
use scd::prelude::*;
use scd_core::qp::check_kkt;
use scd_core::stability::check_lemma3;

#[test]
fn policy_distribution_is_kkt_optimal_and_lemma3_safe_on_random_states() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(404);
    use rand::Rng;
    for _ in 0..50 {
        let n = rng.gen_range(2..40);
        let m = rng.gen_range(1..20);
        let rates: Vec<f64> = (0..n).map(|_| rng.gen_range(1.0..100.0)).collect();
        let queues: Vec<u64> = (0..n).map(|_| rng.gen_range(0..200)).collect();
        let batch = rng.gen_range(1..30usize);

        let ctx = DispatchContext::new(&queues, &rates, m, 0);
        let policy = ScdPolicy::new();
        let probabilities = policy.distribution(&ctx, batch);

        let total: f64 = probabilities.iter().sum();
        assert!((total - 1.0).abs() < 1e-9);

        let a_est = (batch as f64 * m as f64).max(1.0);
        if a_est > 1.0 {
            let iwl = compute_iwl(&queues, &rates, a_est);
            check_kkt(&probabilities, &queues, &rates, a_est, iwl, 1e-6)
                .expect("policy distribution must satisfy the KKT conditions");
            check_lemma3(&probabilities, &queues, &rates, a_est)
                .expect("policy distribution must satisfy Lemma 3");
        }
    }
}

#[test]
fn sampled_dispatch_matches_the_computed_distribution() {
    // Chi-squared-style check: empirical frequencies from dispatch_batch draw
    // from exactly the distribution() vector.
    let rates = vec![30.0, 10.0, 5.0, 1.0, 1.0];
    let queues = vec![12u64, 4, 9, 0, 2];
    let ctx = DispatchContext::new(&queues, &rates, 3, 0);
    let policy = ScdPolicy::new();
    let expected = policy.distribution(&ctx, 5);

    let mut policy = policy;
    let mut rng = rand::rngs::StdRng::seed_from_u64(9);
    let mut counts = vec![0usize; rates.len()];
    let trials = 20_000;
    for _ in 0..trials {
        for server in policy.dispatch_batch(&ctx, 5, &mut rng) {
            counts[server.index()] += 1;
        }
    }
    let total: usize = counts.iter().sum();
    for (s, &count) in counts.iter().enumerate() {
        let freq = count as f64 / total as f64;
        assert!(
            (freq - expected[s]).abs() < 0.01,
            "server {s}: empirical {freq:.4} vs solver {:.4}",
            expected[s]
        );
    }
}

#[test]
fn solver_kinds_agree_through_the_public_api() {
    let rates = vec![50.0, 7.0, 3.0, 1.0];
    let queues = vec![100u64, 3, 0, 9];
    for a in [2.0, 5.0, 37.0, 400.0] {
        let fast = solve(&queues, &rates, a, SolverKind::Fast).unwrap();
        let quad = solve(&queues, &rates, a, SolverKind::Quadratic).unwrap();
        assert!((fast.iwl - quad.iwl).abs() < 1e-12);
        for (x, y) in fast.probabilities.iter().zip(&quad.probabilities) {
            assert!((x - y).abs() < 1e-8);
        }
    }
}

#[test]
fn ideal_assignment_is_conserved_for_policy_scale_inputs() {
    // Larger, paper-scale instance: n = 400, arrivals comparable to capacity.
    let mut rng = rand::rngs::StdRng::seed_from_u64(88);
    let spec = RateProfile::paper_high()
        .materialize(400, &mut rng)
        .unwrap();
    use rand::Rng;
    let queues: Vec<u64> = (0..400).map(|_| rng.gen_range(0..500)).collect();
    let arrivals = spec.total_rate() * 0.99;
    let iwl = compute_iwl(&queues, spec.rates(), arrivals);
    let assignment = ideal_assignment(&queues, spec.rates(), iwl);
    let total: f64 = assignment.iter().sum();
    assert!((total - arrivals).abs() < 1e-6 * arrivals);
    assert!(assignment.iter().all(|&x| x >= -1e-9));
}
