//! Markdown sanity and link checking for the repository documentation.
//!
//! CI runs this as part of the docs job (and it runs in every `cargo test`):
//! the architecture documents reference concrete files and each other, and
//! those references must not rot as the codebase grows.

use std::fs;
use std::path::{Path, PathBuf};

/// The documents under contract.
const DOCS: [&str; 4] = [
    "ARCHITECTURE.md",
    "PAPER_MAP.md",
    "ROADMAP.md",
    "CHANGES.md",
];

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

fn read(doc: &str) -> String {
    fs::read_to_string(repo_root().join(doc))
        .unwrap_or_else(|e| panic!("{doc} must exist and be readable: {e}"))
}

/// Extracts `[text](target)` markdown link targets, ignoring code spans.
fn link_targets(markdown: &str) -> Vec<String> {
    let mut targets = Vec::new();
    let bytes = markdown.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b']' && i + 1 < bytes.len() && bytes[i + 1] == b'(' {
            if let Some(end) = markdown[i + 2..].find(')') {
                targets.push(markdown[i + 2..i + 2 + end].to_string());
                i += end + 2;
                continue;
            }
        }
        i += 1;
    }
    targets
}

/// Extracts backticked repository paths like `crates/sim/src/engine.rs`.
fn backticked_paths(markdown: &str) -> Vec<String> {
    let mut paths = Vec::new();
    for span in markdown.split('`').skip(1).step_by(2) {
        let candidate = span.trim();
        let looks_like_path = (candidate.starts_with("crates/")
            || candidate.starts_with("tests/")
            || candidate.starts_with("examples/")
            || candidate.starts_with("vendor/")
            || candidate.starts_with("src/"))
            && (candidate.ends_with(".rs")
                || candidate.ends_with(".md")
                || candidate.ends_with(".toml")
                || candidate.ends_with(".json"));
        if looks_like_path && !candidate.contains(char::is_whitespace) && !candidate.contains('*') {
            paths.push(candidate.to_string());
        }
    }
    paths
}

#[test]
fn all_contract_documents_exist() {
    for doc in DOCS {
        assert!(
            repo_root().join(doc).is_file(),
            "{doc} is missing from the repository root"
        );
    }
    // The two documents this PR introduced must stay cross-linked from the
    // architecture entry point.
    let architecture = read("ARCHITECTURE.md");
    assert!(architecture.contains("PAPER_MAP.md"));
    assert!(architecture.contains("ROADMAP.md"));
}

#[test]
fn markdown_structure_is_sane() {
    for doc in DOCS {
        let content = read(doc);
        let fences = content
            .lines()
            .filter(|l| l.trim_start().starts_with("```"))
            .count();
        assert!(fences % 2 == 0, "{doc}: unbalanced code fences ({fences})");
        let h1 = content.lines().filter(|l| l.starts_with("# ")).count();
        assert_eq!(h1, 1, "{doc}: expected exactly one top-level heading");
        assert!(
            !content.contains("](TODO") && !content.to_lowercase().contains("tbd]"),
            "{doc}: contains placeholder links"
        );
    }
}

#[test]
fn relative_links_resolve() {
    for doc in DOCS {
        let content = read(doc);
        for target in link_targets(&content) {
            // External and intra-document links are out of scope.
            if target.starts_with("http://")
                || target.starts_with("https://")
                || target.starts_with('#')
                || target.is_empty()
            {
                continue;
            }
            let path = target.split('#').next().unwrap_or(&target);
            assert!(
                repo_root().join(path).exists(),
                "{doc}: broken relative link to {target}"
            );
        }
    }
}

#[test]
fn referenced_repository_paths_exist() {
    for doc in ["ARCHITECTURE.md", "PAPER_MAP.md", "ROADMAP.md"] {
        let content = read(doc);
        for path in backticked_paths(&content) {
            assert!(
                Path::new(&repo_root()).join(&path).exists(),
                "{doc}: references `{path}`, which does not exist"
            );
        }
    }
}
