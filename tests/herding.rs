//! Herding integration test: the phenomenon of Section 1 reproduced on the
//! simulator — JSQ/SED get *worse* as dispatchers are added (at fixed offered
//! load), while SCD does not.

use scd::prelude::*;

fn cluster(seed: u64) -> ClusterSpec {
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    RateProfile::paper_moderate()
        .materialize(40, &mut rng)
        .unwrap()
}

fn p99_with_dispatchers(spec: &ClusterSpec, policy: &str, m: usize) -> u64 {
    let config = SimConfig::builder(spec.clone())
        .dispatchers(m)
        .rounds(6_000)
        .warmup_rounds(600)
        .seed(123)
        .arrivals(ArrivalSpec::PoissonOfferedLoad { offered_load: 0.9 })
        .build()
        .unwrap();
    let factory = factory_by_name(policy).unwrap();
    Simulation::new(config)
        .unwrap()
        .run(factory.as_ref())
        .unwrap()
        .response_time_percentile(0.99)
}

#[test]
fn jsq_degrades_with_more_dispatchers_while_scd_does_not() {
    let spec = cluster(31);

    let jsq_single = p99_with_dispatchers(&spec, "JSQ", 1);
    let jsq_many = p99_with_dispatchers(&spec, "JSQ", 20);
    assert!(
        jsq_many as f64 >= 1.5 * jsq_single as f64,
        "JSQ should herd: p99 with 20 dispatchers ({jsq_many}) vs 1 dispatcher ({jsq_single})"
    );

    let scd_single = p99_with_dispatchers(&spec, "SCD", 1);
    let scd_many = p99_with_dispatchers(&spec, "SCD", 20);
    assert!(
        (scd_many as f64) < 2.0 * (scd_single as f64).max(3.0),
        "SCD should not herd: p99 with 20 dispatchers ({scd_many}) vs 1 dispatcher ({scd_single})"
    );

    // And with many dispatchers SCD clearly beats JSQ.
    assert!(
        scd_many < jsq_many,
        "with 20 dispatchers SCD p99 ({scd_many}) must beat JSQ p99 ({jsq_many})"
    );
}

#[test]
fn sed_herds_too_but_scd_keeps_the_tail_low() {
    let spec = cluster(32);
    let sed_many = p99_with_dispatchers(&spec, "SED", 16);
    let scd_many = p99_with_dispatchers(&spec, "SCD", 16);
    assert!(
        scd_many <= sed_many,
        "SCD p99 ({scd_many}) should not exceed SED p99 ({sed_many}) with 16 dispatchers"
    );
}
