//! Reproducibility guarantees: identical seeds give identical runs, the
//! arrival/departure streams are policy-independent, and different seeds
//! actually differ.

use scd::prelude::*;

fn cluster() -> ClusterSpec {
    ClusterSpec::from_rates(vec![6.0, 4.0, 2.0, 1.0, 1.0]).unwrap()
}

fn config_with_seed(seed: u64) -> SimConfig {
    SimConfig::builder(cluster())
        .dispatchers(3)
        .rounds(2_000)
        .warmup_rounds(200)
        .seed(seed)
        .arrivals(ArrivalSpec::PoissonOfferedLoad { offered_load: 0.9 })
        .build()
        .unwrap()
}

#[test]
fn same_seed_same_everything() {
    let factory = ScdFactory::new();
    let a = Simulation::new(config_with_seed(5))
        .unwrap()
        .run(&factory)
        .unwrap();
    let b = Simulation::new(config_with_seed(5))
        .unwrap()
        .run(&factory)
        .unwrap();
    assert_eq!(a.response_times, b.response_times);
    assert_eq!(a.jobs_dispatched, b.jobs_dispatched);
    assert_eq!(a.jobs_completed, b.jobs_completed);
    assert_eq!(a.queues.max_total_backlog, b.queues.max_total_backlog);
}

#[test]
fn different_seeds_differ() {
    let factory = ScdFactory::new();
    let a = Simulation::new(config_with_seed(5))
        .unwrap()
        .run(&factory)
        .unwrap();
    let b = Simulation::new(config_with_seed(6))
        .unwrap()
        .run(&factory)
        .unwrap();
    assert_ne!(
        a.response_times, b.response_times,
        "different seeds should produce different sample paths"
    );
}

#[test]
fn arrival_and_service_streams_are_policy_independent() {
    // Every policy sees the same arrivals; the number of dispatched jobs in
    // the measured window must therefore be identical across policies.
    let mut dispatched = Vec::new();
    for name in ["SCD", "JSQ", "SED", "WR", "hLSQ", "JIQ", "TWF"] {
        let factory = factory_by_name(name).unwrap();
        let report = Simulation::new(config_with_seed(77))
            .unwrap()
            .run(factory.as_ref())
            .unwrap();
        dispatched.push((name, report.jobs_dispatched));
    }
    let first = dispatched[0].1;
    for (name, count) in &dispatched {
        assert_eq!(
            *count, first,
            "policy {name} saw {count} dispatched jobs, expected {first}"
        );
    }
}

#[test]
fn comparison_runner_matches_individual_runs() {
    let config = config_with_seed(9);
    let scd = ScdFactory::new();
    let sed = SedFactory::new();
    let combined = run_comparison(&config, &[&scd, &sed]).unwrap();
    let solo = Simulation::new(config).unwrap().run(&scd).unwrap();
    assert_eq!(
        combined.report("SCD").unwrap().response_times,
        solo.response_times
    );
}
