//! Strong-stability integration tests (Appendix D of the paper).
//!
//! The theorem: for any admissible load (ρ < 1) the long-run average total
//! queue length under SCD is bounded. At simulation scale we check the
//! observable consequences: the backlog of a long run does not trend upwards,
//! and this holds for every arrival-estimation rule with `1 ≤ a_est < ∞`.

use scd::prelude::*;
use scd_core::estimator::ArrivalEstimator;
use scd_core::solver::SolverKind;

fn heterogeneous_cluster(n: usize, seed: u64) -> ClusterSpec {
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    RateProfile::paper_moderate()
        .materialize(n, &mut rng)
        .unwrap()
}

fn backlog_of(
    spec: &ClusterSpec,
    factory: &dyn PolicyFactory,
    rounds: u64,
    load: f64,
) -> (f64, f64) {
    // Returns (mean backlog over the first half, mean backlog over the second
    // half) — a growing gap indicates instability.
    let half = rounds / 2;
    let first = {
        let config = SimConfig::builder(spec.clone())
            .dispatchers(4)
            .rounds(half)
            .seed(33)
            .arrivals(ArrivalSpec::PoissonOfferedLoad { offered_load: load })
            .build()
            .unwrap();
        Simulation::new(config).unwrap().run(factory).unwrap()
    };
    let full = {
        let config = SimConfig::builder(spec.clone())
            .dispatchers(4)
            .rounds(rounds)
            .seed(33)
            .arrivals(ArrivalSpec::PoissonOfferedLoad { offered_load: load })
            .build()
            .unwrap();
        Simulation::new(config).unwrap().run(factory).unwrap()
    };
    (
        first.queues.mean_total_backlog,
        full.queues.mean_total_backlog,
    )
}

#[test]
fn scd_backlog_does_not_trend_upwards_at_admissible_load() {
    let spec = heterogeneous_cluster(30, 10);
    let scd = ScdFactory::new();
    let (first_half, full) = backlog_of(&spec, &scd, 16_000, 0.9);
    // A stable system's time-average backlog converges; allow generous slack
    // for stochastic noise but reject anything resembling linear growth
    // (which would roughly double the average).
    assert!(
        full < first_half * 1.5 + 20.0,
        "backlog appears to grow: first half {first_half:.1}, full run {full:.1}"
    );
}

#[test]
fn scd_is_stable_for_every_reasonable_estimator() {
    // Appendix D: the stability proof only needs 1 ≤ a_est < ∞.
    let spec = heterogeneous_cluster(20, 11);
    for (label, estimator) in [
        ("m*a(d)", ArrivalEstimator::ScaledByDispatchers),
        ("a(d)", ArrivalEstimator::OwnOnly),
        ("const(50)", ArrivalEstimator::Constant(50.0)),
    ] {
        let factory = ScdFactory::with_options(estimator, SolverKind::Fast)
            .with_name(format!("SCD[{label}]"));
        let (first_half, full) = backlog_of(&spec, &factory, 10_000, 0.85);
        assert!(
            full < first_half * 1.6 + 25.0,
            "estimator {label}: backlog grows from {first_half:.1} to {full:.1}"
        );
    }
}

#[test]
fn overload_is_visibly_unstable() {
    // Sanity check of the harness itself: at ρ > 1 no policy can be stable,
    // so the backlog must grow roughly linearly with the horizon.
    let spec = heterogeneous_cluster(15, 12);
    let scd = ScdFactory::new();
    let (first_half, full) = backlog_of(&spec, &scd, 6_000, 1.2);
    assert!(
        full > first_half * 1.5,
        "overloaded system should show a growing backlog ({first_half:.1} → {full:.1})"
    );
}

#[test]
fn fast_servers_are_not_starved_by_scd() {
    // The heterogeneous instability mode described in the paper's footnote 1
    // is fast servers idling while slow servers drown. Under SCD at high load
    // the fastest server must be busy most of the time.
    let spec = ClusterSpec::from_rates(vec![20.0, 2.0, 2.0, 2.0, 2.0, 2.0]).unwrap();
    let config = SimConfig::builder(spec)
        .dispatchers(4)
        .rounds(8_000)
        .warmup_rounds(800)
        .seed(21)
        .arrivals(ArrivalSpec::PoissonOfferedLoad { offered_load: 0.95 })
        .build()
        .unwrap();
    let report = Simulation::new(config)
        .unwrap()
        .run(&ScdFactory::new())
        .unwrap();
    assert!(
        report.queues.mean_idle_fraction < 0.6,
        "servers idle {:.0}% of rounds on average at rho=0.95 — capacity is being wasted",
        100.0 * report.queues.mean_idle_fraction
    );
    assert!(report.censored_fraction() < 0.05);
}
