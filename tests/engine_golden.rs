//! Golden determinism tests for the allocation-free round engine and the
//! parallel comparison runner.
//!
//! The constants below were captured from the engine at the time the
//! buffer-reusing hot path landed, and deliberately refreshed when the
//! indexed-queue-view PR changed the per-job RNG consumption (single-u64
//! alias draws; per-batch tie-breaking priorities instead of per-pick
//! reservoir sampling). They pin down the *exact* sample path a fixed seed
//! produces: any accidental change to RNG stream derivation, buffer-reuse
//! semantics, queue bookkeeping or runner scheduling will show up here as a
//! hard failure rather than a silent statistical drift. Refresh the
//! constants only for *deliberate* sample-path changes, and say so in the
//! commit.
//!
//! Last refresh (SCD row only): the mean-field-scale PR replaced SCD's
//! per-distinct-estimate fill/normalize/alias chain with a class-compressed
//! sampler (alias draw over (queue, rate-class) equivalence classes plus a
//! uniform member draw) — a deliberate RNG-consumption change for SCD on
//! compression-viable rounds. The JSQ and SED rows were verified unchanged,
//! which is the end-to-end proof that the grouped-trimming solver rewrite
//! and the dirty-set repair paths did not perturb any other policy's sample
//! path (and `solver_consistency` proves the per-round distribution itself
//! is unchanged).
//!
//! Earlier refresh (JSQ and SED rows only): the delta-aware-rounds PR moved
//! JSQ/SED onto warm tournament trees repaired from the engine's dirty sets,
//! which draws tie-breaking priorities once per epoch instead of once per
//! batch — a deliberate RNG-consumption (and therefore sample-path) change
//! for those two policies. The **SCD row was left untouched on purpose**:
//! the same PR warm-started the SCD solver, and an unchanged SCD golden is
//! the end-to-end proof that warm solves are bit-identical to cold ones.
//!
//! Earlier refresh: the sharded-engine PR's seed audit found that the stream
//! derivation absorbed master and tag symmetrically (`mix(master + G +
//! tag)`), letting two runs whose masters equal each other's tags share
//! stream families; the master is now pre-mixed before the tag is added
//! (`scd_model::streams::derive_stream_seed`), which re-seeds every stream.
//!
//! All quantities are integer-exact or derived from integer counts, so the
//! comparisons are safe despite floating-point representation.

use scd::prelude::*;

fn golden_config() -> SimConfig {
    let spec = ClusterSpec::from_rates(vec![6.0, 4.0, 2.0, 1.0, 1.0]).unwrap();
    SimConfig::builder(spec)
        .dispatchers(3)
        .rounds(2_000)
        .warmup_rounds(200)
        .seed(5)
        .arrivals(ArrivalSpec::PoissonOfferedLoad { offered_load: 0.9 })
        .build()
        .unwrap()
}

/// One golden record per policy: (name, dispatched, completed, p99, max backlog).
const GOLDEN: [(&str, u64, u64, u64, f64); 3] = [
    ("SCD", 23_114, 23_047, 14, 151.0),
    ("JSQ", 23_114, 23_016, 35, 172.0),
    ("SED", 23_114, 23_045, 14, 149.0),
];

#[test]
fn fixed_seed_reproduces_the_golden_sample_path() {
    for (name, dispatched, completed, p99, max_backlog) in GOLDEN {
        let factory = factory_by_name(name).unwrap();
        let report = Simulation::new(golden_config())
            .unwrap()
            .run(factory.as_ref())
            .unwrap();
        assert_eq!(report.jobs_dispatched, dispatched, "{name}: dispatched");
        assert_eq!(report.jobs_completed, completed, "{name}: completed");
        assert_eq!(report.response_time_percentile(0.99), p99, "{name}: p99");
        assert_eq!(
            report.queues.max_total_backlog, max_backlog,
            "{name}: max backlog"
        );
    }
}

#[test]
fn parallel_runner_reproduces_the_sequential_reports_exactly() {
    let scd = ScdFactory::new();
    let jsq = JsqFactory::new();
    let sed = SedFactory::new();
    let factories: [&dyn PolicyFactory; 3] = [&scd, &jsq, &sed];

    let sequential = run_comparison(&golden_config(), &factories).unwrap();
    for threads in [1usize, 2, 4, 16] {
        let parallel = run_comparison_parallel(&golden_config(), &factories, threads).unwrap();
        assert_eq!(
            sequential.reports, parallel.reports,
            "threads={threads}: parallel reports diverged"
        );
    }

    // The parallel path must also hit the golden record, not merely agree
    // with the sequential path.
    for ((name, dispatched, ..), report) in GOLDEN.iter().zip(&sequential.reports) {
        assert_eq!(&report.policy, name);
        assert_eq!(report.jobs_dispatched, *dispatched);
    }
}

#[test]
fn replications_are_deterministic_per_seed_grid() {
    let scd = ScdFactory::new();
    let seeds = [5u64, 6, 7];
    let a = run_replications(&golden_config(), &scd, &seeds, 3).unwrap();
    let b = run_replications(&golden_config(), &scd, &seeds, 1).unwrap();
    assert_eq!(a, b, "replication grid must not depend on thread count");
    // Seed 5 must match the golden SCD record.
    assert_eq!(a[0].jobs_dispatched, GOLDEN[0].1);
    // Distinct seeds redraw the processes.
    assert_ne!(a[0].response_times, a[1].response_times);
}
