//! Property-style round-trip and rejection suite for the process-fabric
//! frame codec.
//!
//! The unit tests in `crates/sim/src/fabric/codec.rs` pin the envelope
//! rules on one representative report; this suite sweeps a deterministic
//! family of *randomized* reports — saturated histograms, empty shards,
//! maxed-out degradation counters, every optional section present and
//! absent — and asserts that every one survives `encode → decode`
//! byte-for-byte, while mutated frames are always classified rejections,
//! never silent misdecodes.

use scd::metrics::{DecisionTimeHistogram, ResponseTimeHistogram};
use scd::model::streams::{counter_draw, derive_stream_seed, unit_f64};
use scd::sim::fabric::{decode_shard_report, encode_shard_report, CodecError};
use scd::sim::{DegradationMetrics, QueueSummary, ShardReport, SimReport};

/// A tiny deterministic generator on top of the model's counter streams —
/// the same splitmix machinery the engine uses, so the suite needs no RNG
/// dependency and replays bit-exactly.
struct Gen {
    seed: u64,
    step: u64,
}

impl Gen {
    fn new(case: u64) -> Self {
        Gen {
            seed: derive_stream_seed(0xC0DE_C0DE_C0DE_C0DE, 0x46_41_42_43_4F_44_45_43, case),
            step: 0,
        }
    }

    fn next_u64(&mut self) -> u64 {
        self.step += 1;
        counter_draw(self.seed, self.step)
    }

    fn next_f64(&mut self) -> f64 {
        unit_f64(self.next_u64()) * 1e4
    }

    fn next_in(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

fn random_report(case: u64) -> ShardReport {
    let mut g = Gen::new(case);
    let mut response_times = ResponseTimeHistogram::new();
    for _ in 0..g.next_in(200) {
        // Bounded support keeps the dense counts vector (and hence every
        // frame) small enough for the quadratic mutation sweeps below; the
        // 8 MiB overflow-bucket layout gets its own linear-time test.
        response_times.record_many(g.next_in(5000), 1 + g.next_in(1_000_000));
    }
    let decision_times_us = if g.next_in(2) == 0 {
        let mut hist = DecisionTimeHistogram::new();
        for _ in 0..g.next_in(100) {
            hist.record(unit_f64(g.next_u64()) * 1e6);
        }
        Some(hist)
    } else {
        None
    };
    let degradation = match g.next_in(3) {
        0 => None,
        1 => Some(DegradationMetrics {
            server_down_rounds: g.next_u64(),
            dispatcher_offline_rounds: g.next_u64(),
            arrivals_lost: g.next_u64(),
            probes_dropped: g.next_u64(),
            stale_decision_rounds: g.next_u64(),
            herding_rounds: g.next_u64(),
            shards_lost: g.next_in(16),
            rounds_lost: g.next_u64(),
        }),
        // Saturated counters — the merge's saturating discipline must
        // survive the wire unclamped.
        _ => Some(DegradationMetrics {
            server_down_rounds: u64::MAX,
            dispatcher_offline_rounds: u64::MAX,
            arrivals_lost: u64::MAX,
            probes_dropped: u64::MAX,
            stale_decision_rounds: u64::MAX,
            herding_rounds: u64::MAX,
            shards_lost: u64::MAX,
            rounds_lost: u64::MAX,
        }),
    };
    let num_shards = 1 + g.next_in(8) as usize;
    ShardReport {
        shard: g.next_in(num_shards as u64) as usize,
        num_shards,
        num_servers: g.next_in(512) as usize,
        config_digest: g.next_u64(),
        report: SimReport {
            policy: format!("P{}", g.next_in(1 << 20)),
            rounds: g.next_u64(),
            warmup_rounds: g.next_u64(),
            offered_load: g.next_f64(),
            jobs_dispatched: g.next_u64(),
            jobs_completed: g.next_u64(),
            jobs_in_flight: g.next_u64(),
            response_times,
            queues: QueueSummary {
                mean_total_backlog: g.next_f64(),
                max_total_backlog: g.next_f64(),
                worst_mean_queue: g.next_f64(),
                mean_idle_fraction: unit_f64(g.next_u64()),
            },
            queue_occupancy: (0..g.next_in(64)).map(|_| g.next_u64()).collect(),
            decision_times_us,
            degradation,
        },
    }
}

#[test]
fn randomized_reports_round_trip_bit_for_bit() {
    for case in 0..64 {
        let report = random_report(case);
        let frame = encode_shard_report(&report).unwrap();
        let decoded = decode_shard_report(&frame).unwrap();
        assert_eq!(decoded, report, "case {case} did not survive the wire");
        // Encoding is deterministic: the same report yields the same bytes.
        assert_eq!(frame, encode_shard_report(&decoded).unwrap());
    }
}

#[test]
fn saturated_overflow_bucket_round_trips() {
    // Recording at the clamp value inflates the dense counts vector to its
    // ~8 MiB worst case and saturates the top bucket — the largest legal
    // frame the codec can meet. Round-trip only: the mutation sweeps above
    // would be quadratic in this frame's size.
    let mut report = random_report(99);
    report
        .report
        .response_times
        .record_many(ResponseTimeHistogram::MAX_RESPONSE_TIME + 12345, u64::MAX);
    let frame = encode_shard_report(&report).unwrap();
    assert!(frame.len() > 8 << 20, "overflow layout is the big one");
    assert_eq!(decode_shard_report(&frame).unwrap(), report);
}

#[test]
fn empty_shard_report_round_trips() {
    // A shard that dispatched nothing: empty histogram, zero counters.
    let report = ShardReport {
        shard: 0,
        num_shards: 1,
        num_servers: 0,
        config_digest: 0,
        report: SimReport {
            policy: String::new(),
            rounds: 0,
            warmup_rounds: 0,
            offered_load: 0.0,
            jobs_dispatched: 0,
            jobs_completed: 0,
            jobs_in_flight: 0,
            response_times: ResponseTimeHistogram::new(),
            queues: QueueSummary {
                mean_total_backlog: 0.0,
                max_total_backlog: 0.0,
                worst_mean_queue: 0.0,
                mean_idle_fraction: 0.0,
            },
            queue_occupancy: Vec::new(),
            decision_times_us: None,
            degradation: None,
        },
    };
    let frame = encode_shard_report(&report).unwrap();
    assert_eq!(decode_shard_report(&frame).unwrap(), report);
}

#[test]
fn nonfinite_payload_floats_survive_the_wire() {
    // min()/max() of an empty decision histogram are ±∞ sentinels; the
    // codec ships raw bits, so they must come back exactly.
    let mut report = random_report(7);
    report.report.decision_times_us = Some(DecisionTimeHistogram::new());
    report.report.offered_load = f64::INFINITY;
    let frame = encode_shard_report(&report).unwrap();
    let decoded = decode_shard_report(&frame).unwrap();
    assert_eq!(decoded.report.offered_load, f64::INFINITY);
    let decoded_hist = decoded.report.decision_times_us.as_ref().unwrap();
    assert!(decoded_hist.is_empty());
    assert_eq!(
        decoded_hist.raw_parts(),
        DecisionTimeHistogram::new().raw_parts()
    );
}

#[test]
fn every_prefix_of_every_frame_is_rejected() {
    for case in [0u64, 3, 11] {
        let frame = encode_shard_report(&random_report(case)).unwrap();
        for len in 0..frame.len() {
            assert!(
                decode_shard_report(&frame[..len]).is_err(),
                "case {case}: prefix of length {len} decoded"
            );
        }
    }
}

#[test]
fn single_byte_mutations_never_misdecode() {
    let report = random_report(42);
    let frame = encode_shard_report(&report).unwrap();
    for index in 0..frame.len() {
        let mut mutated = frame.clone();
        mutated[index] ^= 0x10;
        match decode_shard_report(&mutated) {
            // Every mutation must either be rejected...
            Err(_) => {}
            // ...or (never, given the checksum) decode to the original.
            Ok(decoded) => panic!(
                "mutated byte {index} decoded silently (equal to original: {})",
                decoded == report
            ),
        }
    }
}

#[test]
fn envelope_violations_are_classified_not_lumped() {
    let frame = encode_shard_report(&random_report(1)).unwrap();

    let mut wrong_magic = frame.clone();
    wrong_magic[0] = b'X';
    assert!(matches!(
        decode_shard_report(&wrong_magic),
        Err(CodecError::BadMagic { .. })
    ));

    let mut wrong_version = frame.clone();
    wrong_version[4] = 99;
    assert!(matches!(
        decode_shard_report(&wrong_version),
        Err(CodecError::UnsupportedVersion { got: 99 })
    ));

    let mut oversized = frame.clone();
    oversized[13..17].copy_from_slice(&u32::MAX.to_le_bytes());
    assert!(matches!(
        decode_shard_report(&oversized),
        Err(CodecError::Oversized { .. })
    ));

    let mut trailing = frame.clone();
    trailing.push(0);
    assert!(matches!(
        decode_shard_report(&trailing),
        Err(CodecError::TrailingBytes { extra: 1 })
    ));

    let mut corrupt = frame;
    let payload_start = 17;
    corrupt[payload_start] ^= 0xFF;
    assert!(matches!(
        decode_shard_report(&corrupt),
        Err(CodecError::ChecksumMismatch { .. })
    ));
}
