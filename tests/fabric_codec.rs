//! Property-style round-trip and rejection suite for the process-fabric
//! frame codec.
//!
//! The unit tests in `crates/sim/src/fabric/codec.rs` pin the envelope
//! rules on one representative report; this suite sweeps a deterministic
//! family of *randomized* reports — saturated histograms, empty shards,
//! maxed-out degradation counters, every optional section present and
//! absent — and asserts that every one survives `encode → decode`
//! byte-for-byte, while mutated frames are always classified rejections,
//! never silent misdecodes.

use scd::metrics::{DecisionTimeHistogram, ResponseTimeHistogram};
use scd::model::streams::{counter_draw, derive_stream_seed, unit_f64};
use scd::sim::fabric::{
    decode_frame, decode_shard_report, encode_checkpoint_frame, encode_final_frame,
    encode_progress_frame, encode_shard_report, peek_frame_len, CheckpointFrame, CodecError, Frame,
    ProgressFrame, FRAME_VERSION, FRAME_VERSION_V2,
};
use scd::sim::{DegradationMetrics, QueueSummary, ShardReport, SimReport};

/// A tiny deterministic generator on top of the model's counter streams —
/// the same splitmix machinery the engine uses, so the suite needs no RNG
/// dependency and replays bit-exactly.
struct Gen {
    seed: u64,
    step: u64,
}

impl Gen {
    fn new(case: u64) -> Self {
        Gen {
            seed: derive_stream_seed(0xC0DE_C0DE_C0DE_C0DE, 0x46_41_42_43_4F_44_45_43, case),
            step: 0,
        }
    }

    fn next_u64(&mut self) -> u64 {
        self.step += 1;
        counter_draw(self.seed, self.step)
    }

    fn next_f64(&mut self) -> f64 {
        unit_f64(self.next_u64()) * 1e4
    }

    fn next_in(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

fn random_report(case: u64) -> ShardReport {
    let mut g = Gen::new(case);
    let mut response_times = ResponseTimeHistogram::new();
    for _ in 0..g.next_in(200) {
        // Bounded support keeps the dense counts vector (and hence every
        // frame) small enough for the quadratic mutation sweeps below; the
        // 8 MiB overflow-bucket layout gets its own linear-time test.
        response_times.record_many(g.next_in(5000), 1 + g.next_in(1_000_000));
    }
    let decision_times_us = if g.next_in(2) == 0 {
        let mut hist = DecisionTimeHistogram::new();
        for _ in 0..g.next_in(100) {
            hist.record(unit_f64(g.next_u64()) * 1e6);
        }
        Some(hist)
    } else {
        None
    };
    let degradation = match g.next_in(3) {
        0 => None,
        // The recovery counters stay zero here: these reports ride the v2
        // envelope, which refuses counters it cannot represent (pinned by
        // `recovery_counters_do_not_fit_the_v2_envelope` below).
        1 => Some(DegradationMetrics {
            server_down_rounds: g.next_u64(),
            dispatcher_offline_rounds: g.next_u64(),
            arrivals_lost: g.next_u64(),
            probes_dropped: g.next_u64(),
            stale_decision_rounds: g.next_u64(),
            herding_rounds: g.next_u64(),
            shards_lost: g.next_in(16),
            rounds_lost: g.next_u64(),
            checkpoints_taken: 0,
            rounds_replayed: 0,
        }),
        // Saturated counters — the merge's saturating discipline must
        // survive the wire unclamped.
        _ => Some(DegradationMetrics {
            server_down_rounds: u64::MAX,
            dispatcher_offline_rounds: u64::MAX,
            arrivals_lost: u64::MAX,
            probes_dropped: u64::MAX,
            stale_decision_rounds: u64::MAX,
            herding_rounds: u64::MAX,
            shards_lost: u64::MAX,
            rounds_lost: u64::MAX,
            checkpoints_taken: 0,
            rounds_replayed: 0,
        }),
    };
    let num_shards = 1 + g.next_in(8) as usize;
    ShardReport {
        shard: g.next_in(num_shards as u64) as usize,
        num_shards,
        num_servers: g.next_in(512) as usize,
        config_digest: g.next_u64(),
        report: SimReport {
            policy: format!("P{}", g.next_in(1 << 20)),
            rounds: g.next_u64(),
            warmup_rounds: g.next_u64(),
            offered_load: g.next_f64(),
            jobs_dispatched: g.next_u64(),
            jobs_completed: g.next_u64(),
            jobs_in_flight: g.next_u64(),
            response_times,
            queues: QueueSummary {
                mean_total_backlog: g.next_f64(),
                max_total_backlog: g.next_f64(),
                worst_mean_queue: g.next_f64(),
                mean_idle_fraction: unit_f64(g.next_u64()),
            },
            queue_occupancy: (0..g.next_in(64)).map(|_| g.next_u64()).collect(),
            decision_times_us,
            degradation,
        },
    }
}

#[test]
fn randomized_reports_round_trip_bit_for_bit() {
    for case in 0..64 {
        let report = random_report(case);
        let frame = encode_shard_report(&report).unwrap();
        let decoded = decode_shard_report(&frame).unwrap();
        assert_eq!(decoded, report, "case {case} did not survive the wire");
        // Encoding is deterministic: the same report yields the same bytes.
        assert_eq!(frame, encode_shard_report(&decoded).unwrap());
    }
}

#[test]
fn saturated_overflow_bucket_round_trips() {
    // Recording at the clamp value inflates the dense counts vector to its
    // ~8 MiB worst case and saturates the top bucket — the largest legal
    // frame the codec can meet. Round-trip only: the mutation sweeps above
    // would be quadratic in this frame's size.
    let mut report = random_report(99);
    report
        .report
        .response_times
        .record_many(ResponseTimeHistogram::MAX_RESPONSE_TIME + 12345, u64::MAX);
    let frame = encode_shard_report(&report).unwrap();
    assert!(frame.len() > 8 << 20, "overflow layout is the big one");
    assert_eq!(decode_shard_report(&frame).unwrap(), report);
}

#[test]
fn empty_shard_report_round_trips() {
    // A shard that dispatched nothing: empty histogram, zero counters.
    let report = ShardReport {
        shard: 0,
        num_shards: 1,
        num_servers: 0,
        config_digest: 0,
        report: SimReport {
            policy: String::new(),
            rounds: 0,
            warmup_rounds: 0,
            offered_load: 0.0,
            jobs_dispatched: 0,
            jobs_completed: 0,
            jobs_in_flight: 0,
            response_times: ResponseTimeHistogram::new(),
            queues: QueueSummary {
                mean_total_backlog: 0.0,
                max_total_backlog: 0.0,
                worst_mean_queue: 0.0,
                mean_idle_fraction: 0.0,
            },
            queue_occupancy: Vec::new(),
            decision_times_us: None,
            degradation: None,
        },
    };
    let frame = encode_shard_report(&report).unwrap();
    assert_eq!(decode_shard_report(&frame).unwrap(), report);
}

#[test]
fn nonfinite_payload_floats_survive_the_wire() {
    // min()/max() of an empty decision histogram are ±∞ sentinels; the
    // codec ships raw bits, so they must come back exactly.
    let mut report = random_report(7);
    report.report.decision_times_us = Some(DecisionTimeHistogram::new());
    report.report.offered_load = f64::INFINITY;
    let frame = encode_shard_report(&report).unwrap();
    let decoded = decode_shard_report(&frame).unwrap();
    assert_eq!(decoded.report.offered_load, f64::INFINITY);
    let decoded_hist = decoded.report.decision_times_us.as_ref().unwrap();
    assert!(decoded_hist.is_empty());
    assert_eq!(
        decoded_hist.raw_parts(),
        DecisionTimeHistogram::new().raw_parts()
    );
}

#[test]
fn every_prefix_of_every_frame_is_rejected() {
    for case in [0u64, 3, 11] {
        let frame = encode_shard_report(&random_report(case)).unwrap();
        for len in 0..frame.len() {
            assert!(
                decode_shard_report(&frame[..len]).is_err(),
                "case {case}: prefix of length {len} decoded"
            );
        }
    }
}

#[test]
fn single_byte_mutations_never_misdecode() {
    let report = random_report(42);
    let frame = encode_shard_report(&report).unwrap();
    for index in 0..frame.len() {
        let mut mutated = frame.clone();
        mutated[index] ^= 0x10;
        match decode_shard_report(&mutated) {
            // Every mutation must either be rejected...
            Err(_) => {}
            // ...or (never, given the checksum) decode to the original.
            Ok(decoded) => panic!(
                "mutated byte {index} decoded silently (equal to original: {})",
                decoded == report
            ),
        }
    }
}

#[test]
fn envelope_violations_are_classified_not_lumped() {
    let frame = encode_shard_report(&random_report(1)).unwrap();

    let mut wrong_magic = frame.clone();
    wrong_magic[0] = b'X';
    assert!(matches!(
        decode_shard_report(&wrong_magic),
        Err(CodecError::BadMagic { .. })
    ));

    let mut wrong_version = frame.clone();
    wrong_version[4] = 99;
    assert!(matches!(
        decode_shard_report(&wrong_version),
        Err(CodecError::UnsupportedVersion { got: 99 })
    ));

    let mut oversized = frame.clone();
    oversized[13..17].copy_from_slice(&u32::MAX.to_le_bytes());
    assert!(matches!(
        decode_shard_report(&oversized),
        Err(CodecError::Oversized { .. })
    ));

    let mut trailing = frame.clone();
    trailing.push(0);
    assert!(matches!(
        decode_shard_report(&trailing),
        Err(CodecError::TrailingBytes { extra: 1 })
    ));

    let mut corrupt = frame;
    let payload_start = 17;
    corrupt[payload_start] ^= 0xFF;
    assert!(matches!(
        decode_shard_report(&corrupt),
        Err(CodecError::ChecksumMismatch { .. })
    ));
}

// ---------------------------------------------------------------------------
// The streaming (v3) envelope generation: progress heartbeats, checkpoint
// frames and recovery-counter-bearing final frames.
// ---------------------------------------------------------------------------

/// v3 header layout: magic 0..4, version @4, kind @5, digest 6..14,
/// payload length 14..18.
const V3_VERSION_AT: usize = 4;
const V3_KIND_AT: usize = 5;
const V3_LEN_AT: usize = 14;
const V3_HEADER_LEN: usize = 18;

fn random_progress(case: u64) -> ProgressFrame {
    let mut g = Gen::new(0x5050_0000 | case);
    let num_shards = 1 + g.next_in(32) as u32;
    ProgressFrame {
        shard: g.next_in(u64::from(num_shards)) as u32,
        num_shards,
        config_digest: g.next_u64(),
        round: g.next_u64(),
        rounds_total: g.next_u64(),
        jobs_dispatched: g.next_u64(),
    }
}

fn random_checkpoint(case: u64) -> CheckpointFrame {
    let mut g = Gen::new(0xC4EC_0000 | case);
    let num_shards = 1 + g.next_in(32) as u32;
    CheckpointFrame {
        shard: g.next_in(u64::from(num_shards)) as u32,
        num_shards,
        config_digest: g.next_u64(),
        state: (0..1 + g.next_in(4096))
            .map(|_| g.next_u64() as u8)
            .collect(),
    }
}

/// A report whose recovery counters are nonzero — only the v3 `Final`
/// frame can carry it.
fn recovered_report(case: u64) -> ShardReport {
    let mut report = random_report(case);
    report.report.degradation = Some(DegradationMetrics {
        shards_lost: 1,
        rounds_lost: 4_000,
        checkpoints_taken: 7,
        rounds_replayed: 123,
        ..DegradationMetrics::default()
    });
    report
}

#[test]
fn streaming_frames_round_trip_bit_for_bit() {
    for case in 0..32 {
        let progress = random_progress(case);
        let frame = encode_progress_frame(&progress).unwrap();
        assert_eq!(peek_frame_len(&frame).unwrap(), Some(frame.len()));
        match decode_frame(&frame).unwrap() {
            Frame::Progress(decoded) => assert_eq!(decoded, progress),
            other => panic!("case {case}: progress decoded as {other:?}"),
        }
        assert_eq!(frame, encode_progress_frame(&progress).unwrap());

        let checkpoint = random_checkpoint(case);
        let frame = encode_checkpoint_frame(&checkpoint).unwrap();
        assert_eq!(peek_frame_len(&frame).unwrap(), Some(frame.len()));
        match decode_frame(&frame).unwrap() {
            Frame::Checkpoint(decoded) => assert_eq!(decoded, checkpoint),
            other => panic!("case {case}: checkpoint decoded as {other:?}"),
        }
    }
    // A final frame with live recovery counters survives the v3 wire...
    let report = recovered_report(5);
    let frame = encode_final_frame(&report).unwrap();
    assert_eq!(decode_shard_report(&frame).unwrap(), report);
    match decode_frame(&frame).unwrap() {
        Frame::Final(decoded) => assert_eq!(decoded, report),
        other => panic!("final decoded as {other:?}"),
    }
}

#[test]
fn recovery_counters_do_not_fit_the_v2_envelope() {
    // ...while the legacy envelope refuses to silently drop them.
    let report = recovered_report(6);
    assert!(matches!(
        encode_shard_report(&report),
        Err(CodecError::Malformed(_))
    ));
    // A v2 frame of the same report with zeroed counters decodes with the
    // counters zero-filled, not garbage.
    let mut legacy = report.clone();
    {
        let degradation = legacy.report.degradation.as_mut().unwrap();
        degradation.checkpoints_taken = 0;
        degradation.rounds_replayed = 0;
    }
    let frame = encode_shard_report(&legacy).unwrap();
    assert_eq!(decode_shard_report(&frame).unwrap(), legacy);
}

#[test]
fn streaming_frames_are_not_final_reports() {
    // The one-shot entry point must never mistake a heartbeat or a
    // checkpoint for a result.
    let progress = encode_progress_frame(&random_progress(0)).unwrap();
    assert!(matches!(
        decode_shard_report(&progress),
        Err(CodecError::Malformed(_))
    ));
    let checkpoint = encode_checkpoint_frame(&random_checkpoint(0)).unwrap();
    assert!(matches!(
        decode_shard_report(&checkpoint),
        Err(CodecError::Malformed(_))
    ));
}

#[test]
fn every_prefix_of_every_streaming_frame_is_rejected_or_incomplete() {
    let frames = [
        encode_progress_frame(&random_progress(3)).unwrap(),
        encode_checkpoint_frame(&random_checkpoint(3)).unwrap(),
        encode_final_frame(&recovered_report(3)).unwrap(),
    ];
    for frame in &frames {
        for len in 0..frame.len() {
            // Strict decode never accepts a prefix...
            assert!(
                decode_frame(&frame[..len]).is_err(),
                "prefix of length {len} decoded"
            );
            // ...and the stream peeker either keeps waiting or reports the
            // exact total length — a valid prefix is never an error.
            match peek_frame_len(&frame[..len]).unwrap() {
                None => assert!(len < V3_HEADER_LEN),
                Some(total) => assert_eq!(total, frame.len()),
            }
        }
    }
}

#[test]
fn single_byte_mutations_of_streaming_frames_never_misdecode() {
    let frames = [
        encode_progress_frame(&random_progress(11)).unwrap(),
        encode_checkpoint_frame(&random_checkpoint(11)).unwrap(),
    ];
    for frame in &frames {
        for index in 0..frame.len() {
            let mut mutated = frame.clone();
            mutated[index] ^= 0x10;
            assert!(
                decode_frame(&mutated).is_err(),
                "mutated byte {index} decoded silently"
            );
        }
    }
}

#[test]
fn length_prefix_lies_are_classified() {
    let frame = encode_progress_frame(&random_progress(21)).unwrap();
    let declared = u32::from_le_bytes(frame[V3_LEN_AT..V3_LEN_AT + 4].try_into().unwrap());

    // An inflated length makes the frame look incomplete, never panics.
    let mut inflated = frame.clone();
    inflated[V3_LEN_AT..V3_LEN_AT + 4].copy_from_slice(&(declared + 4).to_le_bytes());
    assert!(matches!(
        decode_frame(&inflated),
        Err(CodecError::Truncated { .. })
    ));

    // A deflated length leaves trailing bytes behind the declared frame.
    let mut deflated = frame.clone();
    deflated[V3_LEN_AT..V3_LEN_AT + 4].copy_from_slice(&(declared - 4).to_le_bytes());
    assert!(matches!(
        decode_frame(&deflated),
        Err(CodecError::TrailingBytes { .. })
    ));

    // An absurd length is rejected before any allocation, by the peeker
    // too — a stream reader must not wait 4 GiB for garbage.
    let mut absurd = frame;
    absurd[V3_LEN_AT..V3_LEN_AT + 4].copy_from_slice(&u32::MAX.to_le_bytes());
    assert!(matches!(
        decode_frame(&absurd),
        Err(CodecError::Oversized { .. })
    ));
    assert!(matches!(
        peek_frame_len(&absurd),
        Err(CodecError::Oversized { .. })
    ));
}

#[test]
fn version_and_kind_skew_is_rejected_not_misread() {
    let v3 = encode_progress_frame(&random_progress(31)).unwrap();
    let v2 = encode_shard_report(&random_report(31)).unwrap();

    // A future version is refused outright, by the peeker too.
    let mut future = v3.clone();
    future[V3_VERSION_AT] = FRAME_VERSION + 1;
    assert!(matches!(
        decode_frame(&future),
        Err(CodecError::UnsupportedVersion { .. })
    ));
    assert!(matches!(
        peek_frame_len(&future),
        Err(CodecError::UnsupportedVersion { .. })
    ));

    // An unknown kind byte fails fast in both entry points.
    let mut unknown = v3.clone();
    unknown[V3_KIND_AT] = 0x7F;
    assert!(matches!(
        decode_frame(&unknown),
        Err(CodecError::UnknownKind { .. })
    ));
    assert!(matches!(
        peek_frame_len(&unknown),
        Err(CodecError::UnknownKind { .. })
    ));

    // Cross-generation relabeling re-frames the header bytes, so the
    // checksum (or the kind gate) must catch it — a classified error,
    // never a silent misdecode or a panic.
    let mut v3_as_v2 = v3;
    v3_as_v2[V3_VERSION_AT] = FRAME_VERSION_V2;
    assert!(decode_frame(&v3_as_v2).is_err());
    let mut v2_as_v3 = v2;
    v2_as_v3[V3_VERSION_AT] = FRAME_VERSION;
    assert!(decode_frame(&v2_as_v3).is_err());
}

#[test]
fn empty_checkpoint_state_is_rejected_at_both_ends() {
    let mut checkpoint = random_checkpoint(1);
    checkpoint.state.clear();
    // The encoder refuses to build the degenerate frame...
    let encoded = encode_checkpoint_frame(&checkpoint);
    assert!(matches!(encoded, Err(CodecError::Malformed(_))));
    // ...and a hand-forged empty-state frame is refused by the decoder:
    // keep the envelope intact but empty the payload down to the
    // coordinates. Build it from a 1-byte-state frame by shrinking the
    // declared length — the checksum then mismatches, which is exactly
    // the point: there is no way to smuggle an empty checkpoint through.
    let mut tiny = random_checkpoint(2);
    tiny.state = vec![0xAB];
    let forged = encode_checkpoint_frame(&tiny).unwrap();
    let declared = u32::from_le_bytes(forged[V3_LEN_AT..V3_LEN_AT + 4].try_into().unwrap());
    let mut shrunk = forged;
    shrunk[V3_LEN_AT..V3_LEN_AT + 4].copy_from_slice(&(declared - 1).to_le_bytes());
    assert!(decode_frame(&shrunk).is_err());
}
