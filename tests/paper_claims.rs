//! Cross-crate integration tests asserting the paper's qualitative claims at
//! reduced scale: who wins, and roughly where, on heterogeneous
//! multi-dispatcher systems.

use scd::prelude::*;

/// Builds a moderately heterogeneous cluster (µ ~ U[1,10]) of `n` servers.
fn moderate_cluster(n: usize, seed: u64) -> ClusterSpec {
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    RateProfile::paper_moderate()
        .materialize(n, &mut rng)
        .unwrap()
}

/// Builds a highly heterogeneous cluster (µ ~ U[1,100]).
fn high_cluster(n: usize, seed: u64) -> ClusterSpec {
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    RateProfile::paper_high().materialize(n, &mut rng).unwrap()
}

fn run(spec: &ClusterSpec, m: usize, load: f64, rounds: u64, seed: u64, policy: &str) -> SimReport {
    let config = SimConfig::builder(spec.clone())
        .dispatchers(m)
        .rounds(rounds)
        .warmup_rounds(rounds / 10)
        .seed(seed)
        .arrivals(ArrivalSpec::PoissonOfferedLoad { offered_load: load })
        .build()
        .unwrap();
    let factory = factory_by_name(policy).expect("registered policy");
    Simulation::new(config)
        .unwrap()
        .run(factory.as_ref())
        .unwrap()
}

#[test]
fn scd_beats_the_competitive_baselines_at_high_load() {
    // Reduced-scale version of Figures 3a/4a: n=40, m=8, ρ=0.95.
    let spec = moderate_cluster(40, 1);
    let scd = run(&spec, 8, 0.95, 6_000, 7, "SCD");
    for baseline in ["TWF", "JSQ", "SED", "hJSQ(2)", "hJIQ"] {
        let other = run(&spec, 8, 0.95, 6_000, 7, baseline);
        assert!(
            scd.mean_response_time() <= other.mean_response_time() * 1.05,
            "SCD mean {:.3} should not lose to {baseline} mean {:.3}",
            scd.mean_response_time(),
            other.mean_response_time()
        );
    }
}

#[test]
fn scd_tail_beats_the_heterogeneity_oblivious_twf() {
    // Figures 3b/4b headline: TWF's tail collapses under heterogeneity.
    let spec = high_cluster(30, 2);
    let scd = run(&spec, 6, 0.9, 6_000, 9, "SCD");
    let twf = run(&spec, 6, 0.9, 6_000, 9, "TWF");
    assert!(
        scd.response_time_percentile(0.99) < twf.response_time_percentile(0.99),
        "SCD p99 {} should beat TWF p99 {}",
        scd.response_time_percentile(0.99),
        twf.response_time_percentile(0.99)
    );
    assert!(scd.mean_response_time() < twf.mean_response_time());
}

#[test]
fn heterogeneity_aware_variants_beat_their_oblivious_counterparts() {
    // Appendix E.1 rationale: JSQ(2)/JIQ/LSQ ignore rates and lose to their
    // h* variants on a heterogeneous cluster under load.
    let spec = high_cluster(30, 3);
    for (oblivious, aware) in [("JSQ(2)", "hJSQ(2)"), ("JIQ", "hJIQ"), ("LSQ", "hLSQ")] {
        let plain = run(&spec, 5, 0.9, 5_000, 11, oblivious);
        let hetero = run(&spec, 5, 0.9, 5_000, 11, aware);
        assert!(
            hetero.mean_response_time() < plain.mean_response_time(),
            "{aware} mean {:.2} should beat {oblivious} mean {:.2}",
            hetero.mean_response_time(),
            plain.mean_response_time()
        );
    }
}

#[test]
fn scd_and_twf_coincide_on_homogeneous_clusters() {
    // TWF is exactly SCD with unit rates, so on a homogeneous cluster the two
    // solve the same optimization problem and must be statistically
    // indistinguishable. (They are not bit-identical: the common rate enters
    // the floating-point computation differently, so a tiny fraction of
    // sampling decisions can flip.)
    let spec = ClusterSpec::homogeneous(20, 3.0).unwrap();
    let scd = run(&spec, 4, 0.9, 3_000, 5, "SCD");
    let twf = run(&spec, 4, 0.9, 3_000, 5, "TWF");
    let mean_gap =
        (scd.mean_response_time() - twf.mean_response_time()).abs() / scd.mean_response_time();
    assert!(
        mean_gap < 0.02,
        "homogeneous SCD and TWF means diverge: {:.4} vs {:.4}",
        scd.mean_response_time(),
        twf.mean_response_time()
    );
    let p99_gap = scd
        .response_time_percentile(0.99)
        .abs_diff(twf.response_time_percentile(0.99));
    assert!(
        p99_gap <= 1,
        "homogeneous SCD and TWF p99 diverge by {p99_gap}"
    );
}

#[test]
fn weighted_random_and_jiq_degrade_at_high_load() {
    // Section 1.1: JIQ approaches random dispatching at high load, and WR
    // ignores queue information; both are clearly worse than SCD at ρ = 0.95.
    let spec = moderate_cluster(30, 4);
    let scd = run(&spec, 6, 0.95, 5_000, 13, "SCD");
    for weak in ["WR", "JIQ"] {
        let other = run(&spec, 6, 0.95, 5_000, 13, weak);
        assert!(
            other.mean_response_time() > 1.3 * scd.mean_response_time(),
            "{weak} mean {:.2} should be clearly worse than SCD mean {:.2}",
            other.mean_response_time(),
            scd.mean_response_time()
        );
    }
}

#[test]
fn single_dispatcher_sed_is_a_tough_baseline_that_scd_matches() {
    // With m = 1 there is no coordination problem: SED is near-optimal and
    // SCD must essentially match it (the paper's SCD reduces to an
    // SED-flavoured policy when a_est is small).
    let spec = moderate_cluster(25, 6);
    let scd = run(&spec, 1, 0.9, 6_000, 17, "SCD");
    let sed = run(&spec, 1, 0.9, 6_000, 17, "SED");
    let ratio = scd.mean_response_time() / sed.mean_response_time();
    assert!(
        ratio < 1.35,
        "single-dispatcher SCD should be close to SED (ratio {ratio:.2})"
    );
}
