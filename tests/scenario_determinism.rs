//! Determinism and equivalence guarantees of the scenario layer (PR 6).
//!
//! A [`ScenarioSpec`] adds seeded server crash/repair, dispatcher churn,
//! stale snapshots and probe loss to a run. Every schedule derives from the
//! scenario master seed through dedicated counter-mode streams, so:
//!
//! 1. the **empty** scenario reconstructs the fair-weather engine bit for
//!    bit (the untouched goldens in `engine_golden.rs` are the proof; here
//!    we pin the `Fixed { k: 0 }` staleness contract, which routes through
//!    the scenario code path and must still match the fast path exactly);
//! 2. a fixed `(seed, ScenarioSpec)` replays the identical trajectory on
//!    every in-process repetition;
//! 3. the unsharded and sharded engines agree on the layout-invariant
//!    degradation schedule (`server_down_rounds`,
//!    `dispatcher_offline_rounds`, `stale_decision_rounds`,
//!    `probes_dropped`) for every shard count, because fault draws key on
//!    **global** server/dispatcher ids and are independent of queue state;
//! 4. the engine's delta tracking stays a pure accelerator under active
//!    faults (reports equal with tracking on and off).

use scd::prelude::*;
use scd_policies::LedFactory;

fn registry_factories() -> Vec<Box<dyn PolicyFactory>> {
    vec![
        Box::new(ScdFactory::new()),
        Box::new(JsqFactory::new()),
        Box::new(SedFactory::new()),
        Box::new(LsqFactory::new()),
        Box::new(LsqFactory::heterogeneous()),
        Box::new(LedFactory::new()),
        Box::new(TwfFactory::new()),
        Box::new(WeightedRandomFactory::new()),
    ]
}

fn config(n: usize, m: usize, seed: u64, scenario: ScenarioSpec) -> SimConfig {
    let rates: Vec<f64> = (0..n).map(|s| 1.0 + (s % 5) as f64).collect();
    SimConfig::builder(ClusterSpec::from_rates(rates).unwrap())
        .dispatchers(m)
        .rounds(400)
        .warmup_rounds(40)
        .seed(seed)
        .arrivals(ArrivalSpec::PoissonOfferedLoad { offered_load: 0.9 })
        .scenario(scenario)
        .build()
        .unwrap()
}

/// Four qualitatively different degraded regimes (plus combinations) that
/// every cross-layout and replay test sweeps.
fn scenarios() -> Vec<(&'static str, ScenarioSpec)> {
    let crashes = ScenarioSpec {
        server_fail_rate: 0.02,
        server_repair_rate: 0.3,
        ..ScenarioSpec::default()
    };
    let stale = ScenarioSpec {
        staleness: StalenessSpec::Fixed { k: 2 },
        ..ScenarioSpec::default()
    };
    let churn_and_loss = ScenarioSpec {
        dispatcher_fail_rate: 0.05,
        dispatcher_repair_rate: 0.3,
        probe_loss_rate: 0.3,
        ..ScenarioSpec::default()
    };
    let kitchen_sink = ScenarioSpec {
        server_fail_rate: 0.01,
        server_repair_rate: 0.2,
        dispatcher_fail_rate: 0.03,
        dispatcher_repair_rate: 0.25,
        staleness: StalenessSpec::UniformPerRound { max_k: 3 },
        probe_loss_rate: 0.15,
        ..ScenarioSpec::default()
    };
    vec![
        ("crashes", crashes),
        ("stale", stale),
        ("churn+loss", churn_and_loss),
        ("kitchen-sink", kitchen_sink),
    ]
}

/// Strips the degradation block so fair-weather and scenario-path runs of
/// the same trajectory compare equal on everything the dispatchers decided.
fn fair_weather(mut report: SimReport) -> SimReport {
    report.degradation = None;
    report
}

/// `Fixed { k: 0 }` staleness routes every dispatcher through the scenario
/// code path (per-dispatcher contexts reading the depth-0 snapshot ring) but
/// describes a fully fresh view — the trajectory must be bit-identical to
/// the fast path, for all eight registry policies.
#[test]
fn stale_k_zero_is_bit_identical_to_the_fresh_path() {
    let zero_stale = ScenarioSpec {
        staleness: StalenessSpec::Fixed { k: 0 },
        ..ScenarioSpec::default()
    };
    assert!(!zero_stale.is_inert(), "k = 0 exercises the scenario path");
    for factory in registry_factories() {
        let fresh = Simulation::new(config(16, 4, 7, ScenarioSpec::default()))
            .unwrap()
            .run(factory.as_ref())
            .unwrap();
        let routed = Simulation::new(config(16, 4, 7, zero_stale.clone()))
            .unwrap()
            .run(factory.as_ref())
            .unwrap();
        let degradation = routed
            .degradation
            .expect("scenario runs report degradation");
        assert_eq!(degradation.stale_decision_rounds, 0);
        assert_eq!(degradation.server_down_rounds, 0);
        assert_eq!(
            fresh,
            fair_weather(routed),
            "{}: the k = 0 scenario path diverged from the fast path",
            factory.name()
        );
    }
}

/// A fixed `(seed, ScenarioSpec)` replays byte-identically: same report,
/// same degradation schedule, twice in-process — for every scenario and
/// every registry policy.
#[test]
fn fixed_seed_and_scenario_replay_identically() {
    for (name, scenario) in scenarios() {
        for factory in registry_factories() {
            let sim = Simulation::new(config(16, 4, 2021, scenario.clone())).unwrap();
            let first = sim.run(factory.as_ref()).unwrap();
            let second = sim.run(factory.as_ref()).unwrap();
            assert_eq!(
                first,
                second,
                "{name}/{}: scenario replay diverged",
                factory.name()
            );
            assert!(first.degradation.is_some(), "{name}: degradation reported");
        }
    }
}

/// k = 1 sharding pins the **whole** report to the unsharded engine (the
/// single-shard config is the base config); k ∈ {2, 4} must reproduce the
/// layout-invariant degradation schedule exactly, because fault, staleness
/// and probe-loss draws key on global ids under the shared scenario master
/// seed.
#[test]
fn sharded_runs_reproduce_the_global_fault_schedule() {
    for (name, scenario) in scenarios() {
        for factory in registry_factories() {
            let cfg = config(16, 4, 5, scenario.clone());
            let unsharded = Simulation::new(cfg.clone())
                .unwrap()
                .run(factory.as_ref())
                .unwrap();
            let base = unsharded.degradation.expect("scenario runs degrade");
            for k in [1usize, 2, 4] {
                let sharded = ShardedSimulation::new(cfg.clone(), k)
                    .unwrap()
                    .run(factory.as_ref())
                    .unwrap();
                if k == 1 {
                    assert_eq!(
                        unsharded,
                        sharded,
                        "{name}/{}: k=1 is not the base engine",
                        factory.name()
                    );
                    continue;
                }
                let merged = sharded.degradation.expect("sharded scenario runs degrade");
                for (label, mine, theirs) in [
                    (
                        "server_down_rounds",
                        base.server_down_rounds,
                        merged.server_down_rounds,
                    ),
                    (
                        "dispatcher_offline_rounds",
                        base.dispatcher_offline_rounds,
                        merged.dispatcher_offline_rounds,
                    ),
                    (
                        "stale_decision_rounds",
                        base.stale_decision_rounds,
                        merged.stale_decision_rounds,
                    ),
                    ("probes_dropped", base.probes_dropped, merged.probes_dropped),
                ] {
                    assert_eq!(
                        mine,
                        theirs,
                        "{name}/{} k={k}: {label} is not layout-invariant",
                        factory.name()
                    );
                }
            }
        }
    }
}

/// Under active faults the delta-tracked and delta-free round loops must
/// still agree bit for bit: availability masks change *decisions*, dirty
/// sets never do.
#[test]
fn delta_tracking_stays_invisible_under_active_faults() {
    let (_, scenario) = scenarios().remove(3);
    for factory in registry_factories() {
        let cfg = config(20, 5, 11, scenario.clone());
        let with_deltas = Simulation::new(cfg.clone()).unwrap();
        let without = Simulation::new(cfg).unwrap().with_delta_rounds(false);
        let a = with_deltas.run(factory.as_ref()).unwrap();
        let b = without.run(factory.as_ref()).unwrap();
        assert_eq!(
            a,
            b,
            "{}: delta tracking changed a degraded trajectory",
            factory.name()
        );
    }
}

/// Degenerate scenarios are rejected at construction with
/// [`SimError::InvalidConfig`], not discovered mid-run.
#[test]
fn degenerate_scenarios_are_rejected_up_front() {
    let cluster = ClusterSpec::from_rates(vec![1.0, 2.0]).unwrap();
    for bad in [
        ScenarioSpec {
            server_fail_rate: 1.5,
            ..ScenarioSpec::default()
        },
        ScenarioSpec {
            server_repair_rate: -0.1,
            ..ScenarioSpec::default()
        },
        ScenarioSpec {
            probe_loss_rate: f64::NAN,
            ..ScenarioSpec::default()
        },
        ScenarioSpec {
            staleness: StalenessSpec::Fixed {
                k: MAX_STALENESS + 1,
            },
            ..ScenarioSpec::default()
        },
    ] {
        let result = SimConfig::builder(cluster.clone())
            .dispatchers(2)
            .rounds(10)
            .scenario(bad)
            .build();
        let config = match result {
            // Builders that defer scenario checks surface the error at
            // engine construction instead — both count as up-front.
            Ok(config) => config,
            Err(SimError::InvalidConfig(_)) => continue,
            Err(other) => panic!("unexpected error {other}"),
        };
        match Simulation::new(config) {
            Err(SimError::InvalidConfig(_)) => {}
            other => panic!("degenerate scenario accepted: {other:?}"),
        }
    }
}
