//! Analytic-oracle regression tests for the stationary workload path.
//!
//! The round engine's fair-weather path (inert [`WorkloadSpec`], inert
//! scenario) is a textbook discrete-time queueing system: per-round Poisson
//! arrivals of total rate `Λ = ρ · Σ µ_s`, per-server geometric service
//! capacities `P(C_s = k) = p (1-p)^k` with `p = 1/(1+µ_s)`. Two exact
//! Lindley fixed points sandwich every reasonable dispatching policy on the
//! homogeneous cluster used here:
//!
//! * **Pooled oracle (lower bound).** A fully work-conserving pooled server
//!   with capacity `C = Σ_s C_s` follows `Q' = max(Q + A − C, 0)` exactly,
//!   and can only serve more per round than any real policy (which may idle
//!   one server while another is backed up), so its stationary mean backlog
//!   bounds every policy from below.
//! * **Random-split oracle (upper bound).** Splitting arrivals uniformly at
//!   random gives `n` independent single-server chains `Q' = max(Q + A_s −
//!   C_s, 0)` with `A_s ~ Poisson(Λ/n)`; JSQ and SCD dominate random
//!   splitting on a homogeneous cluster, so `n ×` that chain's mean bounds
//!   them from above (with real margin — both tests assert the policies
//!   beat random splitting by a calibrated factor, not merely match it).
//!
//! Both fixed points are computed below by direct iteration on the
//! truncated probability vector — no simulation, no sampling. On top of the
//! sandwich, Little's law ties the engine's two *independent* measurements
//! together: response times count both end rounds and the backlog tracker
//! samples before arrivals, so `E[RT] = E[Q]/Λ + 1` up to end-of-run
//! censoring.
//!
//! All runs are seeded, so the tolerances absorb only fixed-seed noise.

use scd::prelude::*;

/// Number of homogeneous servers.
const N: usize = 8;
/// Per-server mean service capacity µ (geometric with p = 1/(1+µ)).
const MU: f64 = 2.0;
/// Truncation of the backlog distribution. The slowest-decaying chain
/// solved here (single server at load 0.9) has stationary tail rate
/// `exp(-θq)` with `θ ≈ 2(µ-λ)/σ² ≈ 0.05`, so 512 states leave ~1e-11 of
/// mass out — far below the test tolerances.
const K: usize = 512;

/// Poisson pmf over `0..=max`, computed by the stable recurrence.
fn poisson_pmf(lambda: f64, max: usize) -> Vec<f64> {
    let mut pmf = vec![0.0; max + 1];
    pmf[0] = (-lambda).exp();
    for k in 1..=max {
        pmf[k] = pmf[k - 1] * lambda / k as f64;
    }
    pmf
}

/// pmf of `C = Σ_{s=1..r} Geom(p)` — negative binomial NB(r, p) — over
/// `0..=max`, by the recurrence `P(C=k) = P(C=k-1)·(1-p)·(r+k-1)/k`.
fn capacity_pmf(p: f64, r: usize, max: usize) -> Vec<f64> {
    let mut pmf = vec![0.0; max + 1];
    pmf[0] = p.powi(r as i32);
    for k in 1..=max {
        pmf[k] = pmf[k - 1] * (1.0 - p) * (r as f64 + k as f64 - 1.0) / k as f64;
    }
    pmf
}

/// Stationary mean of the Lindley chain `Q' = max(Q + A − C, 0)` with
/// `A ~ Poisson(lambda)` and `C ~ NB(servers, 1/(1+MU))`, by fixed-point
/// iteration on the truncated distribution vector.
fn lindley_mean_backlog(lambda: f64, servers: usize) -> f64 {
    let p = 1.0 / (1.0 + MU);
    // Bounds chosen so the discarded pmf tails are < 1e-15.
    let a_max = (lambda + 12.0 * lambda.sqrt()).ceil() as usize + 16;
    let c_max = 4 * (servers as f64 * MU) as usize + 64;
    let a_pmf = poisson_pmf(lambda, a_max);
    let c_pmf = capacity_pmf(p, servers, c_max);

    // pmf of the signed increment Δ = A − C, stored at index d = Δ + c_max.
    let mut delta = vec![0.0; a_max + c_max + 1];
    for (a, &pa) in a_pmf.iter().enumerate() {
        for (c, &pc) in c_pmf.iter().enumerate() {
            delta[a + c_max - c] += pa * pc;
        }
    }
    // P(Δ ≤ d − c_max), for the reflecting boundary at zero.
    let mut delta_cdf = vec![0.0; delta.len()];
    let mut acc = 0.0;
    for (d, &pd) in delta.iter().enumerate() {
        acc += pd;
        delta_cdf[d] = acc;
    }

    let mut q = vec![0.0; K];
    q[0] = 1.0;
    let mut next = vec![0.0; K];
    for _ in 0..50_000 {
        next.iter_mut().for_each(|v| *v = 0.0);
        for (i, &qi) in q.iter().enumerate() {
            if qi == 0.0 {
                continue;
            }
            // Mass absorbed at zero: Δ ≤ -i.
            if c_max >= i {
                next[0] += qi * delta_cdf[c_max - i];
            }
            // Mass moved to j = i + Δ for Δ > -i.
            let d_lo = (c_max as isize - i as isize + 1).max(0) as usize;
            for (off, &pd) in delta[d_lo..].iter().enumerate() {
                let j = i + d_lo + off - c_max;
                if j >= K {
                    break;
                }
                next[j] += qi * pd;
            }
        }
        let l1: f64 = q.iter().zip(&next).map(|(a, b)| (a - b).abs()).sum();
        std::mem::swap(&mut q, &mut next);
        if l1 < 1e-9 {
            break;
        }
    }
    let mass: f64 = q.iter().sum();
    assert!(
        (mass - 1.0).abs() < 1e-8,
        "oracle lost probability mass: {mass}"
    );
    q.iter().enumerate().map(|(i, &qi)| i as f64 * qi).sum()
}

/// Memoized oracle pair for a system load: `(pooled, n × random-split)`.
/// Both tests query the same two loads, and the debug-mode fixed-point
/// solves dominate this binary's runtime, so solve each chain once.
fn oracles(rho: f64) -> (f64, f64) {
    use std::sync::Mutex;
    static CACHE: Mutex<Vec<(u64, (f64, f64))>> = Mutex::new(Vec::new());
    let key = rho.to_bits();
    let mut cache = CACHE.lock().unwrap();
    if let Some(&(_, pair)) = cache.iter().find(|(k, _)| *k == key) {
        return pair;
    }
    let lambda = rho * N as f64 * MU;
    let pair = (
        lindley_mean_backlog(lambda, N),
        N as f64 * lindley_mean_backlog(lambda / N as f64, 1),
    );
    cache.push((key, pair));
    pair
}

fn run(rho: f64, factory: &dyn PolicyFactory, workload: WorkloadSpec) -> SimReport {
    let spec = ClusterSpec::from_rates(vec![MU; N]).unwrap();
    let config = SimConfig::builder(spec)
        .dispatchers(2)
        .rounds(4_000)
        .warmup_rounds(1_000)
        .seed(20_210_726) // the paper's PODC publication date
        .arrivals(ArrivalSpec::PoissonOfferedLoad { offered_load: rho })
        .workload(workload)
        .build()
        .unwrap();
    Simulation::new(config).unwrap().run(factory).unwrap()
}

fn check_against_oracles(report: &SimReport, rho: f64, label: &str) {
    let lambda = rho * N as f64 * MU;
    let (pooled, random_split) = oracles(rho);
    assert!(pooled.is_finite() && pooled > 0.0);
    assert!(random_split > pooled, "oracle ordering must hold");

    let sim = report.queues.mean_total_backlog;
    // Pooling is a strict lower bound in expectation; 0.95 absorbs
    // fixed-seed noise. Random splitting is a strict upper bound for JSQ
    // and SCD, and both policies beat it decisively — require at least a
    // 20% improvement so a regression toward random-quality dispatching
    // fails the test even inside the sandwich.
    assert!(
        sim >= 0.95 * pooled,
        "{label} ρ={rho}: simulated backlog {sim:.3} below the pooled \
         lower bound {pooled:.3}"
    );
    assert!(
        sim <= 0.8 * random_split,
        "{label} ρ={rho}: simulated backlog {sim:.3} does not beat random \
         splitting ({random_split:.3}) by the required margin"
    );

    // Little's law: jobs spend `departure − arrival + 1` rounds in the
    // system and the tracker samples the backlog before arrivals, so
    // E[RT] = E[Q]/Λ + 1 up to end-of-run censoring of in-flight jobs.
    let little_rt = sim / lambda + 1.0;
    let sim_rt = report.mean_response_time();
    let relative = (sim_rt - little_rt).abs() / little_rt;
    assert!(
        relative < 0.05,
        "{label} ρ={rho}: mean RT {sim_rt:.4} vs Little's-law prediction \
         {little_rt:.4} (relative error {relative:.4})"
    );
    eprintln!(
        "{label} ρ={rho}: pooled {pooled:.3} ≤ sim {sim:.3} ≤ 0.8 × \
         random-split {random_split:.3}; RT {sim_rt:.3} vs Little {little_rt:.3}"
    );
}

#[test]
fn stationary_runs_sit_inside_the_lindley_oracle_sandwich() {
    for &rho in &[0.5, 0.9] {
        for (label, factory) in [
            ("JSQ", Box::new(JsqFactory::new()) as Box<dyn PolicyFactory>),
            ("SCD", Box::new(ScdFactory::new())),
        ] {
            let report = run(rho, factory.as_ref(), WorkloadSpec::default());
            check_against_oracles(&report, rho, label);
        }
    }
}

#[test]
fn an_identity_mmpp_workload_preserves_the_stationary_law() {
    // A single always-on phase is an *active* workload (it exercises the
    // counter-mode sampler path end to end) that is statistically identical
    // to the stationary engine — the oracle sandwich must keep holding.
    let identity = WorkloadSpec {
        modulation: ModulationSpec::Mmpp {
            phases: vec![MmppPhase {
                rate_multiplier: 1.0,
                switch_prob: 0.0,
            }],
        },
        ..WorkloadSpec::default()
    };
    for &rho in &[0.5, 0.9] {
        let report = run(rho, &JsqFactory::new(), identity.clone());
        check_against_oracles(&report, rho, "JSQ/identity-MMPP");
    }
}
