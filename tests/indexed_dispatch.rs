//! Equivalence guarantees of the indexed queue views and the per-round
//! shared compute cache.
//!
//! The tournament-tree index (`scd_core::index`) and the `O(n)` scan both
//! minimize the same `(key, priority, index)` composite order and consume
//! the RNG identically, so indexed and scan dispatch must be **bit-identical**
//! — at the single-decision level and over whole simulations. The same holds
//! for the *warm* path (LSQ/LED keep one tree per instance across rounds and
//! repair only dirty keys; the scan oracle follows the identical per-instance
//! priority lifecycle). Likewise the engine's shared `RoundCache` computes
//! its tables with exactly the arithmetic the policies' private scratch
//! uses, so cached and cache-less decisions must coincide bit for bit.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use scd::prelude::*;
use scd_core::index::{scan_argmin, TournamentTree};
use scd_model::RoundCache;
use scd_policies::jsq::JsqPolicy;
use scd_policies::sed::SedPolicy;
use scd_policies::{LedFactory, LsqFactory};

fn comparison_config(seed: u64) -> SimConfig {
    let spec = ClusterSpec::from_rates(vec![9.0, 6.0, 4.0, 2.0, 1.0, 1.0, 1.0]).unwrap();
    SimConfig::builder(spec)
        .dispatchers(4)
        .rounds(1_500)
        .warmup_rounds(150)
        .seed(seed)
        .arrivals(ArrivalSpec::PoissonOfferedLoad { offered_load: 0.92 })
        .build()
        .unwrap()
}

#[test]
fn indexed_and_scan_jsq_runs_are_bit_identical() {
    for seed in [1u64, 7, 2021] {
        let simulation = Simulation::new(comparison_config(seed)).unwrap();
        let indexed = simulation.run(&JsqFactory::new()).unwrap();
        let scan = simulation.run(&JsqFactory::scan()).unwrap();
        assert_eq!(
            indexed, scan,
            "seed {seed}: indexed JSQ diverged from the scan reference"
        );
    }
}

#[test]
fn indexed_and_scan_sed_runs_are_bit_identical() {
    for seed in [1u64, 7, 2021] {
        let simulation = Simulation::new(comparison_config(seed)).unwrap();
        let indexed = simulation.run(&SedFactory::new()).unwrap();
        let scan = simulation.run(&SedFactory::scan()).unwrap();
        assert_eq!(
            indexed, scan,
            "seed {seed}: indexed SED diverged from the scan reference"
        );
    }
}

/// Single-decision fuzz: across random snapshots and batch sizes, indexed
/// and scan JSQ/SED append the same destinations and leave the RNG in the
/// same state.
#[test]
fn indexed_and_scan_policies_agree_per_decision() {
    let mut case_rng = StdRng::seed_from_u64(0x1DE7);
    for case in 0..150 {
        let n = case_rng.gen_range(1..40usize);
        let queues: Vec<u64> = (0..n).map(|_| case_rng.gen_range(0..25)).collect();
        let rates: Vec<f64> = (0..n).map(|_| case_rng.gen_range(0.5..20.0)).collect();
        let batch = case_rng.gen_range(0..60usize);
        let seed = case_rng.gen::<u64>();
        let ctx = DispatchContext::new(&queues, &rates, 3, 0);

        let run = |policy: &mut dyn DispatchPolicy| {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut out = Vec::new();
            policy.dispatch_into(&ctx, batch, &mut out, &mut rng);
            (out, rng.next_u64())
        };

        let jsq_indexed = run(&mut JsqPolicy::new());
        let jsq_scan = run(&mut JsqPolicy::scan());
        assert_eq!(jsq_indexed, jsq_scan, "case {case}: JSQ modes diverged");

        let sed_indexed = run(&mut SedPolicy::new());
        let sed_scan = run(&mut SedPolicy::scan());
        assert_eq!(sed_indexed, sed_scan, "case {case}: SED modes diverged");
    }
}

/// Warm-tree LSQ/LED against the scan oracle, over whole simulations: the
/// warm tournament tree survives across rounds (priorities per instance,
/// dirty-key repair) and the scan mode follows the identical priority
/// lifecycle, so the two must produce bit-identical reports for equal seeds.
/// The runs are long enough to cross several priority epochs.
#[test]
fn warm_indexed_and_warm_scan_lsq_led_runs_are_bit_identical() {
    for seed in [1u64, 7, 2021] {
        let simulation = Simulation::new(comparison_config(seed)).unwrap();
        for (name, warm, oracle) in [
            ("LSQ", LsqFactory::new(), LsqFactory::new().scan()),
            (
                "hLSQ",
                LsqFactory::heterogeneous(),
                LsqFactory::heterogeneous().scan(),
            ),
        ] {
            let indexed = simulation.run(&warm).unwrap();
            let scan = simulation.run(&oracle).unwrap();
            assert_eq!(
                indexed, scan,
                "seed {seed}: warm {name} diverged from the scan oracle"
            );
        }
        for (name, warm, oracle) in [
            ("LED", LedFactory::new(), LedFactory::new().scan()),
            (
                "hLED",
                LedFactory::heterogeneous(),
                LedFactory::heterogeneous().scan(),
            ),
        ] {
            let indexed = simulation.run(&warm).unwrap();
            let scan = simulation.run(&oracle).unwrap();
            assert_eq!(
                indexed, scan,
                "seed {seed}: warm {name} diverged from the scan oracle"
            );
        }
    }
}

/// Seeded cross-round structural equivalence: a warm tree repaired with
/// `apply_updates` between batches must agree, batch after batch, with a
/// tree rebuilt from scratch over the same keys and priorities — the
/// invariant the warm dispatch path rests on, checked here directly against
/// both the rebuilt tree and the naive scan.
#[test]
fn warm_tree_repair_matches_per_batch_rebuild_across_rounds() {
    let mut rng = StdRng::seed_from_u64(0x5EEDED);
    for case in 0..40 {
        let n = rng.gen_range(1..50usize);
        let mut keys: Vec<f64> = (0..n).map(|_| rng.gen_range(0..8) as f64).collect();
        let mut prios: Vec<u64> = (0..n).map(|_| rng.gen::<u64>()).collect();
        let mut warm = TournamentTree::new();
        let mut rebuilt = TournamentTree::new();
        warm.rebuild(n, |i| keys[i], |i| prios[i]);
        let mut dirty: Vec<u32> = Vec::new();
        for round in 0..120 {
            // Between-round mutations (probes / decay), recorded as dirty.
            for _ in 0..rng.gen_range(0..4usize) {
                let slot = rng.gen_range(0..n);
                keys[slot] = rng.gen_range(0..8) as f64;
                dirty.push(slot as u32);
            }
            // Occasional priority epoch refresh: both trees rebuild fully.
            if round % 40 == 39 {
                for p in prios.iter_mut() {
                    *p = rng.gen::<u64>();
                }
                warm.rebuild(n, |i| keys[i], |i| prios[i]);
                dirty.clear();
            } else {
                warm.apply_updates(&dirty, |i| keys[i]);
                dirty.clear();
            }
            rebuilt.rebuild(n, |i| keys[i], |i| prios[i]);
            // One batch of placements, both trees updated incrementally.
            for job in 0..rng.gen_range(1..6usize) {
                let expect = scan_argmin(n, |i| keys[i], |i| prios[i]);
                assert_eq!(warm.argmin(), expect, "case {case} round {round} job {job}");
                assert_eq!(
                    rebuilt.argmin(),
                    expect,
                    "case {case} round {round} job {job} (rebuilt)"
                );
                let target = warm.argmin();
                keys[target] += 1.0;
                warm.update_key(target, keys[target]);
                rebuilt.update_key(target, keys[target]);
            }
        }
    }
}

/// The shared per-round cache is a pure accelerator: dispatching against a
/// context that carries it must match dispatching without it, bit for bit,
/// for every cache-aware policy (SCD reads loads/solver keys, SED reads the
/// reciprocal rates).
#[test]
fn cached_and_cacheless_contexts_dispatch_identically() {
    let mut case_rng = StdRng::seed_from_u64(0xCAC8E);
    let mut cache = RoundCache::new();
    for case in 0..100 {
        let n = case_rng.gen_range(1..30usize);
        let queues: Vec<u64> = (0..n).map(|_| case_rng.gen_range(0..20)).collect();
        let rates: Vec<f64> = (0..n).map(|_| case_rng.gen_range(0.5..15.0)).collect();
        let batch = case_rng.gen_range(1..40usize);
        let seed = case_rng.gen::<u64>();
        cache.begin_round(&queues, &rates);
        let plain = DispatchContext::new(&queues, &rates, 5, 3);
        let cached = DispatchContext::with_cache(&queues, &rates, 5, 3, &cache);

        let run = |policy: &mut dyn DispatchPolicy, ctx: &DispatchContext<'_>| {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut out = Vec::new();
            policy.dispatch_into(ctx, batch, &mut out, &mut rng);
            (out, rng.next_u64())
        };

        // SCD is pinned to the classic sampler here: the compressed class
        // kernel only engages behind a round cache (its partition and alias
        // table are cache-memoized), so with default options the cached
        // context deliberately consumes the RNG differently. This test's
        // claim is that the cache is *transparent* to the dense dispatch
        // path; `compressed_engine_dispatch_matches_the_distribution` (core)
        // covers the compressed kernel's distribution equivalence.
        for (name, a, b) in [
            (
                "SCD",
                run(&mut ScdPolicy::new().classic_sampler(), &plain),
                run(&mut ScdPolicy::new().classic_sampler(), &cached),
            ),
            (
                "SED",
                run(&mut SedPolicy::new(), &plain),
                run(&mut SedPolicy::new(), &cached),
            ),
            (
                "JSQ",
                run(&mut JsqPolicy::new(), &plain),
                run(&mut JsqPolicy::new(), &cached),
            ),
        ] {
            assert_eq!(a, b, "case {case}: {name} diverged with the round cache");
        }
    }
}
