//! Equivalence guarantees of the indexed queue views and the per-round
//! shared compute cache.
//!
//! The tournament-tree index (`scd_core::index`) and the `O(n)` scan both
//! minimize the same `(key, priority, index)` composite order and consume
//! the RNG identically, so indexed and scan dispatch must be **bit-identical**
//! — at the single-decision level and over whole simulations. Likewise the
//! engine's shared `RoundCache` computes its tables with exactly the
//! arithmetic the policies' private scratch uses, so cached and cache-less
//! decisions must coincide bit for bit.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use scd::prelude::*;
use scd_model::RoundCache;
use scd_policies::jsq::JsqPolicy;
use scd_policies::sed::SedPolicy;

fn comparison_config(seed: u64) -> SimConfig {
    let spec = ClusterSpec::from_rates(vec![9.0, 6.0, 4.0, 2.0, 1.0, 1.0, 1.0]).unwrap();
    SimConfig::builder(spec)
        .dispatchers(4)
        .rounds(1_500)
        .warmup_rounds(150)
        .seed(seed)
        .arrivals(ArrivalSpec::PoissonOfferedLoad { offered_load: 0.92 })
        .build()
        .unwrap()
}

#[test]
fn indexed_and_scan_jsq_runs_are_bit_identical() {
    for seed in [1u64, 7, 2021] {
        let simulation = Simulation::new(comparison_config(seed)).unwrap();
        let indexed = simulation.run(&JsqFactory::new()).unwrap();
        let scan = simulation.run(&JsqFactory::scan()).unwrap();
        assert_eq!(
            indexed, scan,
            "seed {seed}: indexed JSQ diverged from the scan reference"
        );
    }
}

#[test]
fn indexed_and_scan_sed_runs_are_bit_identical() {
    for seed in [1u64, 7, 2021] {
        let simulation = Simulation::new(comparison_config(seed)).unwrap();
        let indexed = simulation.run(&SedFactory::new()).unwrap();
        let scan = simulation.run(&SedFactory::scan()).unwrap();
        assert_eq!(
            indexed, scan,
            "seed {seed}: indexed SED diverged from the scan reference"
        );
    }
}

/// Single-decision fuzz: across random snapshots and batch sizes, indexed
/// and scan JSQ/SED append the same destinations and leave the RNG in the
/// same state.
#[test]
fn indexed_and_scan_policies_agree_per_decision() {
    let mut case_rng = StdRng::seed_from_u64(0x1DE7);
    for case in 0..150 {
        let n = case_rng.gen_range(1..40usize);
        let queues: Vec<u64> = (0..n).map(|_| case_rng.gen_range(0..25)).collect();
        let rates: Vec<f64> = (0..n).map(|_| case_rng.gen_range(0.5..20.0)).collect();
        let batch = case_rng.gen_range(0..60usize);
        let seed = case_rng.gen::<u64>();
        let ctx = DispatchContext::new(&queues, &rates, 3, 0);

        let run = |policy: &mut dyn DispatchPolicy| {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut out = Vec::new();
            policy.dispatch_into(&ctx, batch, &mut out, &mut rng);
            (out, rng.next_u64())
        };

        let jsq_indexed = run(&mut JsqPolicy::new());
        let jsq_scan = run(&mut JsqPolicy::scan());
        assert_eq!(jsq_indexed, jsq_scan, "case {case}: JSQ modes diverged");

        let sed_indexed = run(&mut SedPolicy::new());
        let sed_scan = run(&mut SedPolicy::scan());
        assert_eq!(sed_indexed, sed_scan, "case {case}: SED modes diverged");
    }
}

/// The shared per-round cache is a pure accelerator: dispatching against a
/// context that carries it must match dispatching without it, bit for bit,
/// for every cache-aware policy (SCD reads loads/solver keys, SED reads the
/// reciprocal rates).
#[test]
fn cached_and_cacheless_contexts_dispatch_identically() {
    let mut case_rng = StdRng::seed_from_u64(0xCAC8E);
    let mut cache = RoundCache::new();
    for case in 0..100 {
        let n = case_rng.gen_range(1..30usize);
        let queues: Vec<u64> = (0..n).map(|_| case_rng.gen_range(0..20)).collect();
        let rates: Vec<f64> = (0..n).map(|_| case_rng.gen_range(0.5..15.0)).collect();
        let batch = case_rng.gen_range(1..40usize);
        let seed = case_rng.gen::<u64>();
        cache.begin_round(&queues, &rates);
        let plain = DispatchContext::new(&queues, &rates, 5, 3);
        let cached = DispatchContext::with_cache(&queues, &rates, 5, 3, &cache);

        let run = |policy: &mut dyn DispatchPolicy, ctx: &DispatchContext<'_>| {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut out = Vec::new();
            policy.dispatch_into(ctx, batch, &mut out, &mut rng);
            (out, rng.next_u64())
        };

        for (name, a, b) in [
            (
                "SCD",
                run(&mut ScdPolicy::new(), &plain),
                run(&mut ScdPolicy::new(), &cached),
            ),
            (
                "SED",
                run(&mut SedPolicy::new(), &plain),
                run(&mut SedPolicy::new(), &cached),
            ),
            (
                "JSQ",
                run(&mut JsqPolicy::new(), &plain),
                run(&mut JsqPolicy::new(), &cached),
            ),
        ] {
            assert_eq!(a, b, "case {case}: {name} diverged with the round cache");
        }
    }
}
