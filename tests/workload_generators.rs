//! Seeded property tests for the time-varying workload layer (PR 7).
//!
//! Every draw in [`WorkloadSpec`] is a counter-mode pure function of the
//! workload master seed, so all of these properties are exact replays — the
//! tolerances below absorb only the statistical noise of a *fixed* seed,
//! never run-to-run jitter:
//!
//! 1. the empirical per-phase arrival rates of an MMPP workload match the
//!    spec's `rate_multiplier`s;
//! 2. a flash-crowd workload's excess arrival mass equals the burst
//!    integral `magnitude × duration × λ` per window;
//! 3. a traced synthetic run replays **bit-identically** from its own
//!    recorded arrival trace, on both the unsharded and the sharded engine;
//! 4. the sharded engine records the **same global arrival trace** as the
//!    unsharded engine for every shard count, because workload draws key on
//!    global dispatcher ids and a pinned master seed;
//! 5. an inert workload (even with a pinned seed or id map) reconstructs
//!    the fair-weather engine bit for bit — the byte-exact goldens in
//!    `engine_golden.rs` are the other half of this proof;
//! 6. the Chrome `trace_event` JSON of a real traced run contains all four
//!    phase types Perfetto needs (`i`, `X`, `B`, `E`).

use scd::prelude::*;

fn base_config(seed: u64, workload: WorkloadSpec) -> SimConfig {
    let rates: Vec<f64> = (0..12).map(|s| 1.0 + (s % 4) as f64).collect();
    SimConfig::builder(ClusterSpec::from_rates(rates).unwrap())
        .dispatchers(4)
        .rounds(400)
        .warmup_rounds(40)
        .seed(seed)
        .arrivals(ArrivalSpec::PoissonOfferedLoad { offered_load: 0.9 })
        .workload(workload)
        .build()
        .unwrap()
}

fn bursty_workload() -> WorkloadSpec {
    WorkloadSpec {
        modulation: ModulationSpec::Mmpp {
            phases: vec![
                MmppPhase {
                    rate_multiplier: 1.0,
                    switch_prob: 0.05,
                },
                MmppPhase {
                    rate_multiplier: 2.5,
                    switch_prob: 0.2,
                },
            ],
        },
        classes: vec![
            JobClass {
                size: 1,
                weight: 3.0,
            },
            JobClass {
                size: 4,
                weight: 1.0,
            },
        ],
        ..WorkloadSpec::default()
    }
}

#[test]
fn mmpp_per_phase_rates_match_the_spec() {
    let multipliers = [1.0, 3.0, 0.25];
    let spec = WorkloadSpec {
        modulation: ModulationSpec::Mmpp {
            phases: multipliers
                .iter()
                .map(|&rate_multiplier| MmppPhase {
                    rate_multiplier,
                    switch_prob: 0.1,
                })
                .collect(),
        },
        ..WorkloadSpec::default()
    };
    let base_rates = [6.0, 2.0];
    let lambda: f64 = base_rates.iter().sum();
    let mut sampler = spec.sampler(0xA11CE, &base_rates);
    let rounds = 60_000u64;
    let mut phase_rounds = [0u64; 3];
    let mut phase_jobs = [0u64; 3];
    let mut out = Vec::new();
    for t in 0..rounds {
        let g = sampler.begin_round(t);
        let phase = sampler.current_phase().expect("MMPP is active");
        assert_eq!(g, multipliers[phase], "g must equal the phase multiplier");
        out.clear();
        sampler.sample_into(t, g, &mut out);
        phase_rounds[phase] += 1;
        phase_jobs[phase] += out.iter().sum::<u64>();
    }
    for (phase, &mult) in multipliers.iter().enumerate() {
        // With switch_prob 0.1 everywhere the chain spends ~1/3 of its time
        // in each phase, so each estimate averages ≥ ~15k rounds.
        assert!(
            phase_rounds[phase] > rounds / 10,
            "phase {phase} starved: {} rounds",
            phase_rounds[phase]
        );
        let empirical = phase_jobs[phase] as f64 / phase_rounds[phase] as f64;
        let expected = lambda * mult;
        let relative = (empirical - expected).abs() / expected;
        assert!(
            relative < 0.03,
            "phase {phase}: empirical rate {empirical:.3} vs expected {expected:.3} \
             (relative error {relative:.4})"
        );
    }
}

#[test]
fn flash_crowd_excess_mass_equals_the_burst_integral() {
    let (every, duration, magnitude) = (100u64, 10u64, 2.0f64);
    let spec = WorkloadSpec {
        modulation: ModulationSpec::FlashCrowd {
            every,
            duration,
            magnitude,
        },
        ..WorkloadSpec::default()
    };
    let base_rates = [4.0, 3.0];
    let lambda: f64 = base_rates.iter().sum();
    let mut sampler = spec.sampler(0xF1A5, &base_rates);
    let rounds = 50_000u64;
    let mut total = 0u64;
    let mut spike_rounds = 0u64;
    let mut out = Vec::new();
    for t in 0..rounds {
        let g = sampler.begin_round(t);
        assert!(
            g == 1.0 || g == 1.0 + magnitude,
            "flash-crowd multiplier must be bimodal, got {g}"
        );
        if g > 1.0 {
            spike_rounds += 1;
        }
        out.clear();
        sampler.sample_into(t, g, &mut out);
        total += out.iter().sum::<u64>();
    }
    // Exactly one `duration`-round spike per window, at a seeded offset.
    assert_eq!(spike_rounds, (rounds / every) * duration);
    let expected = rounds as f64 * lambda + spike_rounds as f64 * magnitude * lambda;
    let relative = (total as f64 - expected).abs() / expected;
    assert!(
        relative < 0.01,
        "total mass {total} vs expected {expected:.0} (relative error {relative:.4})"
    );
}

#[test]
fn synthetic_runs_replay_bit_identically_from_their_own_trace() {
    let config = base_config(97, bursty_workload());
    let factory = ScdFactory::new();
    let plain = Simulation::new(config.clone())
        .unwrap()
        .run(&factory)
        .unwrap();
    let (traced, trace) = Simulation::new(config.clone())
        .unwrap()
        .run_traced(&factory)
        .unwrap();
    assert_eq!(plain, traced, "tracing must not perturb the run");

    let replay = WorkloadSpec {
        replay: Some(trace.arrivals.clone()),
        ..WorkloadSpec::default()
    };
    let replayed = Simulation::new(base_config(97, replay))
        .unwrap()
        .run(&factory)
        .unwrap();
    assert_eq!(
        plain, replayed,
        "replaying the recorded arrival trace must reproduce the run bit for bit"
    );
}

#[test]
fn sharded_runs_record_and_replay_bit_identically() {
    let factory = JsqFactory::new();
    let config = base_config(31, bursty_workload());
    let (_unsharded_report, unsharded_trace) = Simulation::new(config.clone())
        .unwrap()
        .run_traced(&factory)
        .unwrap();

    for k in [1usize, 4] {
        let (report, trace) = ShardedSimulation::new(config.clone(), k)
            .unwrap()
            .run_traced(&factory)
            .unwrap();
        if k == 1 {
            // One shard leaves the config byte-identical, so the recorded
            // trace matches the unsharded engine exactly. (At k > 1 shards
            // are independent load-calibrated subsystems with their own
            // per-dispatcher base rates, so only the modulation *schedule*
            // is shared — see `shards_share_one_global_modulation_schedule`.)
            assert_eq!(trace.arrivals, unsharded_trace.arrivals);
        }

        // Record → replay closes on the sharded engine for every k.
        let replay = WorkloadSpec {
            replay: Some(trace.arrivals.clone()),
            ..WorkloadSpec::default()
        };
        let replayed = ShardedSimulation::new(base_config(31, replay), k)
            .unwrap()
            .run(&factory)
            .unwrap();
        assert_eq!(
            report, replayed,
            "k={k}: replay of the recorded trace diverged from the synthetic run"
        );
    }
}

#[test]
fn shards_share_one_global_modulation_schedule() {
    // The sharded engine pins `seed = resolved master` and maps the shard's
    // local dispatchers to their global ids, then hands the spec a *shard*
    // sub-seed at sampler construction. Because MMPP and flash draws key on
    // the pinned workload seed and system-wide chain indices, every shard —
    // whatever master it is constructed with — must walk the identical
    // multiplier schedule, and a shard's per-dispatcher counts must equal
    // the matching columns of the full system's sampler.
    let master = 31u64;
    let full = bursty_workload();
    let full_rates = [4.0, 3.0, 2.0, 1.0];
    let mut full_sampler = full.sampler(master, &full_rates);

    let shard = WorkloadSpec {
        seed: Some(master),
        dispatcher_ids: Some(vec![1, 3]),
        ..bursty_workload()
    };
    let shard_rates = [full_rates[1], full_rates[3]];
    // 0xBAD5EED stands in for the shard's derived sub-master seed; the
    // pinned workload seed must make it irrelevant.
    let mut shard_sampler = shard.sampler(0xBAD5EED, &shard_rates);

    let mut full_out = Vec::new();
    let mut shard_out = Vec::new();
    for t in 0..2_000u64 {
        let g_full = full_sampler.begin_round(t);
        let g_shard = shard_sampler.begin_round(t);
        assert_eq!(g_full, g_shard, "round {t}: multiplier schedule diverged");
        full_out.clear();
        shard_out.clear();
        full_sampler.sample_into(t, g_full, &mut full_out);
        shard_sampler.sample_into(t, g_shard, &mut shard_out);
        assert_eq!(shard_out, [full_out[1], full_out[3]], "round {t}");
    }
}

#[test]
fn inert_workloads_reconstruct_the_fair_weather_engine() {
    let rates: Vec<f64> = (0..12).map(|s| 1.0 + (s % 4) as f64).collect();
    let bare = SimConfig::builder(ClusterSpec::from_rates(rates).unwrap())
        .dispatchers(4)
        .rounds(400)
        .warmup_rounds(40)
        .seed(7)
        .arrivals(ArrivalSpec::PoissonOfferedLoad { offered_load: 0.9 })
        .build()
        .unwrap();
    let factory = ScdFactory::new();
    let baseline = Simulation::new(bare).unwrap().run(&factory).unwrap();

    // An explicit default spec, and an inert spec with a pinned seed and id
    // map (the shape the sharded engine pins onto shard configs), must all
    // leave the trajectory untouched.
    let pinned = WorkloadSpec {
        seed: Some(0xDEAD),
        dispatcher_ids: Some(vec![0, 1, 2, 3]),
        ..WorkloadSpec::default()
    };
    assert!(pinned.is_inert());
    for workload in [WorkloadSpec::default(), pinned] {
        let report = Simulation::new(base_config(7, workload))
            .unwrap()
            .run(&factory)
            .unwrap();
        assert_eq!(report, baseline);
    }
}

#[test]
fn chrome_trace_json_covers_all_perfetto_phase_types() {
    let config = base_config(5, bursty_workload());
    let (_report, trace) = Simulation::new(config)
        .unwrap()
        .run_traced(&ScdFactory::new())
        .unwrap();
    assert_eq!(trace.dropped, 0, "small run must not hit the event cap");
    let json = chrome_trace_json(&trace);
    for ph in [
        "\"ph\":\"M\"",
        "\"ph\":\"i\"",
        "\"ph\":\"X\"",
        "\"ph\":\"B\"",
        "\"ph\":\"E\"",
    ] {
        assert!(json.contains(ph), "trace JSON is missing {ph}");
    }
    assert!(json.starts_with('{') && json.ends_with('}'));
    assert!(!json.contains(",]") && !json.contains(",}"));
}
