//! Mean-field oracle: the engine's empirical queue-length distribution at
//! n = 10⁵–10⁶ must match an analytically solved per-server law.
//!
//! Under weighted-random (`WR`) dispatch the engine is **exactly** a
//! product-form system — no asymptotics needed:
//!
//! * Arrivals: each of the `m` dispatchers draws `Poisson(ρ·Σµ/m)` jobs and
//!   routes each independently to server `s` with probability `µ_s/Σµ`.
//!   Poisson superposition + thinning ⇒ server `s` receives
//!   `A_s ~ Poisson(ρ·µ_s)` arrivals per round, independent across servers.
//! * Services: every round, every server draws a capacity
//!   `C_s ~ Geom(p = 1/(1+µ_s))` (failures before the first success, mean
//!   `µ_s`), independent of everything else.
//! * The tracker observes queue lengths at **round start**, and a round
//!   serves same-round arrivals, so the observed chain is
//!   `q' = (q + A − C)⁺`.
//!
//! The across-server occupancy histogram at n = 10⁵ is therefore a sample
//! of `n` independent copies of this one-dimensional Markov chain — the
//! mean-field regime where the empirical distribution concentrates on the
//! per-server law. The oracle solves that law in-test, twice over:
//!
//! 1. the **exact finite-horizon law** `avg_{t=warmup..rounds-1} Pᵗ·δ₀`
//!    (what the run actually measures, bias-free — deviations here are pure
//!    sampling noise and pin the engine's arrival/service/observation
//!    semantics end to end), and
//! 2. the **mean-field fixed point** `π = πP` by power iteration (the
//!    steady state; the horizon is chosen long enough that the finite run
//!    probes it, which the test asserts analytically as well).
//!
//! Heterogeneity enters as a mixture: with rate classes the aggregate
//! occupancy histogram must match the class-weighted mixture of per-class
//! laws. SCD has no closed form; the suite closes with a dominance sanity
//! check — coordinated dispatch must beat the load-oblivious WR fixed point.

use scd::prelude::*;

/// Internal truncation of the oracle's state space. The stationary tails
/// here decay geometrically; mass beyond this cap is far below every
/// tolerance used (asserted in `solve` via the conserved-mass check).
const Q_CAP: usize = 192;

/// Poisson pmf `[P(A=0), …]` with the residual tail mass folded into the
/// last entry, so the vector sums to exactly 1.
fn poisson_pmf(lambda: f64) -> Vec<f64> {
    let mut pmf = Vec::with_capacity(65);
    pmf.push((-lambda).exp());
    for k in 1..64usize {
        let prev = *pmf.last().unwrap();
        pmf.push(prev * lambda / k as f64);
    }
    let tail = 1.0 - pmf.iter().sum::<f64>();
    pmf.push(tail.max(0.0));
    pmf
}

/// One exact transition of the per-server chain: convolve with the arrival
/// pmf (overflow clamped into the top state), then apply the geometric
/// service `q' = (x − C)⁺` in closed form.
fn step(dist: &[f64], pois: &[f64], mu: f64, qf_pow: &[f64]) -> Vec<f64> {
    let q = dist.len();
    let mut after = vec![0.0; q];
    for (x, &w) in dist.iter().enumerate() {
        if w == 0.0 {
            continue;
        }
        for (a, &pa) in pois.iter().enumerate() {
            after[(x + a).min(q - 1)] += w * pa;
        }
    }
    // P(C = k) = (1-p)^k p with p = 1/(1+µ); P(C ≥ x) = (1-p)^x.
    let p = 1.0 / (1.0 + mu);
    let mut next = vec![0.0; q];
    for (x, &w) in after.iter().enumerate() {
        if w == 0.0 {
            continue;
        }
        next[0] += w * qf_pow[x];
        for y in 1..=x {
            next[y] += w * qf_pow[x - y] * p;
        }
    }
    next
}

/// Precomputed powers of the geometric failure probability `(µ/(1+µ))^k`.
fn failure_powers(mu: f64) -> Vec<f64> {
    let qf = mu / (1.0 + mu);
    let mut pow = Vec::with_capacity(Q_CAP + 1);
    pow.push(1.0);
    for _ in 0..Q_CAP {
        pow.push(pow.last().unwrap() * qf);
    }
    pow
}

/// The per-server oracle for one `(µ, λ)` class: the exact law the run
/// measures (averaged over the measured observation rounds) and the
/// stationary fixed point.
struct ClassOracle {
    /// `avg_{t=warmup..rounds-1} Pᵗ·δ₀` — observation at round start is the
    /// state after `t` transitions from the empty initial queue.
    horizon: Vec<f64>,
    /// `π = πP` to within an L1 residual of 1e-12.
    fixed_point: Vec<f64>,
}

fn solve(mu: f64, lambda: f64, warmup: usize, rounds: usize) -> ClassOracle {
    let pois = poisson_pmf(lambda);
    let qf_pow = failure_powers(mu);

    let mut dist = vec![0.0; Q_CAP];
    dist[0] = 1.0;
    let mut horizon = vec![0.0; Q_CAP];
    for t in 0..rounds {
        if t >= warmup {
            for (acc, &w) in horizon.iter_mut().zip(&dist) {
                *acc += w;
            }
        }
        dist = step(&dist, &pois, mu, &qf_pow);
    }
    let measured = (rounds - warmup) as f64;
    for w in &mut horizon {
        *w /= measured;
    }

    let mut fixed_point = dist; // warm-start from the end of the horizon
    for _ in 0..30_000 {
        let next = step(&fixed_point, &pois, mu, &qf_pow);
        let residual: f64 = fixed_point
            .iter()
            .zip(&next)
            .map(|(a, b)| (a - b).abs())
            .sum();
        fixed_point = next;
        if residual < 1e-12 {
            break;
        }
    }
    for dist in [&horizon, &fixed_point] {
        let mass: f64 = dist.iter().sum();
        assert!(
            (mass - 1.0).abs() < 1e-9,
            "oracle mass leaked past the truncation: {mass}"
        );
    }
    ClassOracle {
        horizon,
        fixed_point,
    }
}

/// Element-wise mixture of per-class laws weighted by class population.
fn mixture(parts: &[(f64, &[f64])]) -> Vec<f64> {
    let mut out = vec![0.0; Q_CAP];
    for (weight, dist) in parts {
        for (acc, &w) in out.iter_mut().zip(*dist) {
            *acc += weight * w;
        }
    }
    out
}

fn total_variation(a: &[f64], b: &[f64]) -> f64 {
    let long = a.len().max(b.len());
    0.5 * (0..long)
        .map(|k| (a.get(k).copied().unwrap_or(0.0) - b.get(k).copied().unwrap_or(0.0)).abs())
        .sum::<f64>()
}

fn max_bucket_gap(a: &[f64], b: &[f64]) -> f64 {
    let long = a.len().max(b.len());
    (0..long)
        .map(|k| (a.get(k).copied().unwrap_or(0.0) - b.get(k).copied().unwrap_or(0.0)).abs())
        .fold(0.0, f64::max)
}

fn mean_of(dist: &[f64]) -> f64 {
    dist.iter()
        .enumerate()
        .map(|(k, &w)| k as f64 * w)
        .sum::<f64>()
}

const LOAD: f64 = 0.7;
const WARMUP: u64 = 100;
const ROUNDS: u64 = 180;

/// A mean-field-scale run: histogram-only metrics (the per-server vectors
/// at n = 10⁵⁻⁶ are exactly what this PR removes from the hot path).
fn run(rates: Vec<f64>, policy: &str, seed: u64) -> SimReport {
    let config = SimConfig::builder(ClusterSpec::from_rates(rates).unwrap())
        .dispatchers(10)
        .rounds(ROUNDS)
        .warmup_rounds(WARMUP)
        .seed(seed)
        .arrivals(ArrivalSpec::PoissonOfferedLoad { offered_load: LOAD })
        .histogram_metrics(true)
        .build()
        .unwrap();
    let factory = factory_by_name(policy).unwrap();
    Simulation::new(config)
        .unwrap()
        .run(factory.as_ref())
        .unwrap()
}

#[test]
fn homogeneous_wr_matches_the_mean_field_oracle_at_1e5() {
    let n = 100_000usize;
    let report = run(vec![1.0; n], "WR", 20_210_701);
    let empirical = report.queue_length_distribution();
    assert_eq!(
        report.queue_occupancy.iter().sum::<u64>(),
        (ROUNDS - WARMUP) * n as u64,
        "one observation per server per measured round"
    );

    let oracle = solve(1.0, LOAD, WARMUP as usize, ROUNDS as usize);
    // Against the exact finite-horizon law: pure sampling noise
    // (≥ 10⁵ independent servers × 80 rounds of observations).
    let tv = total_variation(&empirical, &oracle.horizon);
    assert!(tv < 5e-3, "TV(empirical, exact law) = {tv}");
    let gap = max_bucket_gap(&empirical, &oracle.horizon);
    assert!(gap < 2e-3, "worst bucket gap = {gap}");

    // The horizon probes the steady state (analytic statement, no noise)…
    let settle = total_variation(&oracle.horizon, &oracle.fixed_point);
    assert!(settle < 0.01, "horizon vs fixed point TV = {settle}");
    // …so the run matches the mean-field fixed point as well.
    let tv_pi = total_variation(&empirical, &oracle.fixed_point);
    assert!(tv_pi < 0.015, "TV(empirical, fixed point) = {tv_pi}");

    // Internal consistency: the histogram's mean is the tracked backlog.
    let per_server_backlog = report.queues.mean_total_backlog / n as f64;
    assert!(
        (mean_of(&empirical) - per_server_backlog).abs() < 1e-9,
        "occupancy mean {} vs tracked backlog {}",
        mean_of(&empirical),
        per_server_backlog
    );
    // And the zero bucket is exactly the idle fraction.
    assert!((empirical[0] - report.queues.mean_idle_fraction).abs() < 1e-12);
}

#[test]
fn bimodal_wr_matches_the_mixture_oracle_at_1e5() {
    // Two rate classes, 50/50: slow µ = 0.5 and fast µ = 2.0. The aggregate
    // occupancy histogram must match the population-weighted mixture of the
    // two per-class laws (each with its own thinned arrival rate ρ·µ).
    let n = 100_000usize;
    let mut rates = vec![0.5; n / 2];
    rates.resize(n, 2.0);
    let report = run(rates, "WR", 20_210_702);
    let empirical = report.queue_length_distribution();

    let slow = solve(0.5, LOAD * 0.5, WARMUP as usize, ROUNDS as usize);
    let fast = solve(2.0, LOAD * 2.0, WARMUP as usize, ROUNDS as usize);
    let horizon = mixture(&[(0.5, &slow.horizon), (0.5, &fast.horizon)]);
    let fixed_point = mixture(&[(0.5, &slow.fixed_point), (0.5, &fast.fixed_point)]);

    let tv = total_variation(&empirical, &horizon);
    assert!(tv < 5e-3, "TV(empirical, exact mixture law) = {tv}");
    let gap = max_bucket_gap(&empirical, &horizon);
    assert!(gap < 2e-3, "worst bucket gap = {gap}");

    let settle = total_variation(&horizon, &fixed_point);
    assert!(settle < 0.01, "horizon vs fixed point TV = {settle}");
    let tv_pi = total_variation(&empirical, &fixed_point);
    assert!(tv_pi < 0.015, "TV(empirical, fixed point) = {tv_pi}");
}

#[test]
fn scd_beats_the_wr_fixed_point_at_mean_field_scale() {
    // No closed form for SCD — the sanity check is dominance: coordinated
    // water-filling dispatch must hold a smaller per-server backlog than
    // the load-oblivious WR steady state, at a scale where the compressed
    // class sampler carries every round (homogeneous rates ⇒ one rate
    // class, grouped trimming ⇒ O(#distinct queue lengths) solves).
    let n = 20_000usize;
    let report = run(vec![1.0; n], "SCD", 20_210_703);
    let oracle = solve(1.0, LOAD, WARMUP as usize, ROUNDS as usize);
    let scd_backlog = report.queues.mean_total_backlog / n as f64;
    let wr_backlog = mean_of(&oracle.fixed_point);
    assert!(
        scd_backlog < 0.5 * wr_backlog,
        "SCD per-server backlog {scd_backlog} should be well under WR's {wr_backlog}"
    );
    // SCD's empirical distribution is still a probability law over the
    // occupancy buckets.
    let dist = report.queue_length_distribution();
    assert!((dist.iter().sum::<f64>() - 1.0).abs() < 1e-12);
}

/// The full mean-field target: n = 10⁶ servers, single shard. Ignored in
/// tier-1 (minutes in debug builds); run with
/// `cargo test --release -- --ignored meanfield` — the tolerances tighten
/// with the extra order of magnitude of samples.
#[test]
#[ignore = "n = 1e6 is a release-mode scale test"]
fn homogeneous_wr_matches_the_mean_field_oracle_at_1e6() {
    let n = 1_000_000usize;
    let report = run(vec![1.0; n], "WR", 20_210_706);
    let empirical = report.queue_length_distribution();
    let oracle = solve(1.0, LOAD, WARMUP as usize, ROUNDS as usize);
    let tv = total_variation(&empirical, &oracle.horizon);
    assert!(tv < 2e-3, "TV(empirical, exact law) = {tv}");
    let tv_pi = total_variation(&empirical, &oracle.fixed_point);
    assert!(tv_pi < 0.012, "TV(empirical, fixed point) = {tv_pi}");
}
