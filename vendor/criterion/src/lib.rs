//! Offline minimal benchmarking harness exposing the subset of the
//! `criterion` API this workspace's benches use: [`Criterion`],
//! [`BenchmarkId`], benchmark groups with `sample_size` / `warm_up_time` /
//! `measurement_time`, `bench_function`, `bench_with_input`, and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurements are simple mean-of-samples timings printed to stdout — no
//! statistics engine, plots or saved baselines. Set the environment variable
//! `CRITERION_QUICK=1` to cap every benchmark at a handful of iterations
//! (useful for smoke-testing that benches still run).

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box`, criterion-style.
pub use std::hint::black_box;

/// An identifier combining a function name and a parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a displayed parameter.
    pub fn new<S: Into<String>, P: Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            function: function_name.into(),
            parameter: parameter.to_string(),
        }
    }

    fn label(&self) -> String {
        format!("{}/{}", self.function, self.parameter)
    }
}

/// The timing loop handed to benchmark closures.
pub struct Bencher {
    samples: usize,
    warm_up: Duration,
    measurement: Duration,
    /// Mean nanoseconds per iteration of the last run.
    mean_ns: f64,
    iterations: u64,
}

impl Bencher {
    /// Times the closure, amortizing the clock overhead over batches.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let quick = std::env::var_os("CRITERION_QUICK").is_some();
        let warm_up = if quick {
            Duration::from_millis(1)
        } else {
            self.warm_up
        };
        let measurement = if quick {
            Duration::from_millis(5)
        } else {
            self.measurement
        };

        // Warm-up while estimating the per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < warm_up {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;

        // Size batches so that `samples` batches roughly fill the
        // measurement window.
        let target_batch =
            (measurement.as_secs_f64() / self.samples.max(1) as f64 / per_iter.max(1e-9)).ceil();
        let batch = (target_batch as u64).clamp(1, 1 << 24);

        let mut total = Duration::ZERO;
        let mut iterations = 0u64;
        for _ in 0..self.samples.max(1) {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            total += start.elapsed();
            iterations += batch;
            if total > measurement.saturating_mul(2) {
                break;
            }
        }
        self.mean_ns = total.as_secs_f64() * 1e9 / iterations.max(1) as f64;
        self.iterations = iterations;
    }
}

fn format_time(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// A named collection of related benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    settings: GroupSettings,
    _criterion: &'a mut Criterion,
}

#[derive(Clone, Copy)]
struct GroupSettings {
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
}

impl Default for GroupSettings {
    fn default() -> Self {
        GroupSettings {
            sample_size: 10,
            warm_up: Duration::from_millis(200),
            measurement: Duration::from_millis(500),
        }
    }
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.settings.sample_size = samples;
        self
    }

    /// Sets the warm-up duration per benchmark.
    pub fn warm_up_time(&mut self, duration: Duration) -> &mut Self {
        self.settings.warm_up = duration;
        self
    }

    /// Sets the measurement duration per benchmark.
    pub fn measurement_time(&mut self, duration: Duration) -> &mut Self {
        self.settings.measurement = duration;
        self
    }

    fn run<F: FnMut(&mut Bencher)>(&mut self, label: &str, mut f: F) {
        let mut bencher = Bencher {
            samples: self.settings.sample_size,
            warm_up: self.settings.warm_up,
            measurement: self.settings.measurement,
            mean_ns: 0.0,
            iterations: 0,
        };
        f(&mut bencher);
        println!(
            "{}/{:<40} time: {:>12}   ({} iterations)",
            self.name,
            label,
            format_time(bencher.mean_ns),
            bencher.iterations
        );
    }

    /// Benchmarks a closure under a plain name.
    pub fn bench_function<S: Into<String>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: S,
        f: F,
    ) -> &mut Self {
        let label = id.into();
        self.run(&label, f);
        self
    }

    /// Benchmarks a closure that receives a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let label = id.label();
        self.run(&label, |b| f(b, input));
        self
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(self) {}
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            settings: GroupSettings::default(),
            _criterion: self,
        }
    }

    /// Benchmarks a closure outside any group.
    pub fn bench_function<S: Into<String>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: S,
        f: F,
    ) -> &mut Self {
        let mut group = self.benchmark_group("bench");
        group.bench_function(id, f);
        group.finish();
        self
    }
}

/// Declares a group of benchmark functions, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary's `main`, criterion-style.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_run_and_report() {
        std::env::set_var("CRITERION_QUICK", "1");
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group
            .sample_size(2)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(2));
        let mut counter = 0u64;
        group.bench_function("count", |b| b.iter(|| counter = counter.wrapping_add(1)));
        group.bench_with_input(BenchmarkId::new("with_input", 7), &7u64, |b, &x| {
            b.iter(|| x * 2)
        });
        group.finish();
        assert!(counter > 0);
    }
}
