//! Offline no-op replacements for serde's derive macros.
//!
//! The vendored `serde` crate provides blanket implementations of its marker
//! traits, so these derives only need to exist (and accept `#[serde(...)]`
//! helper attributes) — they expand to nothing.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
