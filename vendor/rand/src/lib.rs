//! Offline vendored subset of the `rand` crate.
//!
//! This workspace builds in environments without access to crates.io, so the
//! small slice of the `rand` 0.8 API the simulator actually uses is
//! reimplemented here: [`RngCore`], the [`Rng`] extension trait (`gen`,
//! `gen_range`), [`SeedableRng::seed_from_u64`] and [`rngs::StdRng`].
//!
//! `StdRng` is xoshiro256++ seeded through a splitmix64 expansion — a
//! high-quality, fast, deterministic generator. It does **not** produce the
//! same streams as upstream `rand`'s ChaCha-based `StdRng`; all seeds in this
//! repository are interpreted relative to this implementation.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// The core interface of a random number generator.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be instantiated from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// The seed type (a byte array).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Creates a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanding it with splitmix64 the way
    /// upstream `rand` does.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let out = splitmix64_mix(sm);
            let bytes = out.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// The splitmix64 output (finalization) function.
#[inline]
fn splitmix64_mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Values that can be sampled uniformly from the generator's raw output
/// (the subset of `rand`'s `Standard` distribution this workspace needs).
pub trait StandardValue: Sized {
    /// Draws one value.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardValue for f64 {
    #[inline]
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardValue for f32 {
    #[inline]
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardValue for u64 {
    #[inline]
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardValue for u32 {
    #[inline]
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardValue for bool {
    #[inline]
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Draws a uniform value in `0..bound` without modulo bias (Lemire's method).
#[inline]
fn uniform_u64_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    let mut m = u128::from(rng.next_u64()) * u128::from(bound);
    let mut lo = m as u64;
    if lo < bound {
        // 2^64 mod bound, computed without 128-bit division.
        let threshold = bound.wrapping_neg() % bound;
        while lo < threshold {
            m = u128::from(rng.next_u64()) * u128::from(bound);
            lo = m as u64;
        }
    }
    (m >> 64) as u64
}

/// Types that can be drawn uniformly from a bounded range.
pub trait SampleUniform: Sized {
    /// Draws one value from `[start, end)` (`inclusive = false`) or
    /// `[start, end]` (`inclusive = true`).
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn sample_range<R: RngCore + ?Sized>(
        start: Self,
        end: Self,
        inclusive: bool,
        rng: &mut R,
    ) -> Self;
}

macro_rules! impl_int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_range<R: RngCore + ?Sized>(
                start: Self,
                end: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                let lo = start as i128;
                let hi = end as i128 + if inclusive { 1 } else { 0 };
                assert!(lo < hi, "cannot sample empty range");
                let span = (hi - lo) as u128;
                if span > u64::MAX as u128 {
                    // Only reachable for the full 64-bit domain.
                    return (lo + rng.next_u64() as i128) as $t;
                }
                let offset = uniform_u64_below(rng, span as u64);
                (lo + offset as i128) as $t
            }
        }
    )*};
}

impl_int_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_range<R: RngCore + ?Sized>(
                start: Self,
                end: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                if inclusive {
                    assert!(start <= end, "cannot sample empty range");
                } else {
                    assert!(start < end, "cannot sample empty range");
                }
                let unit = <$t as StandardValue>::standard_sample(rng);
                let value = start + (end - start) * unit;
                if !inclusive && value >= end {
                    // Guard against round-up to the excluded endpoint: clamp
                    // to the largest representable value below `end`
                    // (subtracting a span-relative epsilon can itself round
                    // back to `end` when the span is small relative to its
                    // magnitude).
                    <$t>::max(start, <$t>::next_down(end))
                } else {
                    value.clamp(start, end)
                }
            }
        }
    )*};
}

impl_float_sample_uniform!(f32, f64);

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for Range<T> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for RangeInclusive<T> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (start, end) = self.into_inner();
        T::sample_range(start, end, true, rng)
    }
}

/// Convenience extension methods over [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of type `T` from its standard uniform distribution
    /// (`[0, 1)` for floats, the full domain for integers).
    #[inline]
    fn gen<T: StandardValue>(&mut self) -> T {
        T::standard_sample(self)
    }

    /// Draws a value uniformly from `range`.
    ///
    /// # Panics
    /// Panics if the range is empty.
    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{splitmix64_mix, RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl StdRng {
        /// The raw xoshiro256++ state words, for checkpoint serialization.
        /// [`StdRng::from_state`] reconstructs a generator that continues
        /// the stream exactly where this one stands.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from state words captured by
        /// [`StdRng::state`]. The all-zero state (unreachable from any
        /// seeded generator, but possible in a corrupt checkpoint) is
        /// remapped the same way `from_seed` remaps it, preserving the
        /// xoshiro non-zero invariant.
        pub fn from_state(s: [u64; 4]) -> Self {
            if s.iter().all(|&w| w == 0) {
                return <StdRng as SeedableRng>::from_seed([0u8; 32]);
            }
            StdRng { s }
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("chunk is 8 bytes"));
            }
            // xoshiro must not start from the all-zero state.
            if s.iter().all(|&w| w == 0) {
                s = [
                    splitmix64_mix(0x9E37_79B9_7F4A_7C15),
                    splitmix64_mix(0x3C6E_F372_FE94_F82A),
                    splitmix64_mix(0xDAA6_6D2C_7DDF_743F),
                    splitmix64_mix(0x78DD_E6E5_FD29_F054),
                ];
            }
            StdRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn unit_floats_stay_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn int_ranges_cover_uniformly() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = [0usize; 6];
        for _ in 0..60_000 {
            counts[rng.gen_range(0..6usize)] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            let freq = c as f64 / 60_000.0;
            assert!((freq - 1.0 / 6.0).abs() < 0.01, "bucket {i}: {freq}");
        }
    }

    #[test]
    fn inclusive_and_exclusive_ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let a = rng.gen_range(5..10u64);
            assert!((5..10).contains(&a));
            let b = rng.gen_range(5..=10i32);
            assert!((5..=10).contains(&b));
            let f = rng.gen_range(1.0..=2.0f64);
            assert!((1.0..=2.0).contains(&f));
            let g = rng.gen_range(-3.0..4.0f64);
            assert!((-3.0..4.0).contains(&g));
        }
    }

    #[test]
    fn exclusive_float_range_never_yields_the_endpoint() {
        // At this magnitude the float spacing equals the span, so the
        // product start + span*unit rounds up to `end` on roughly half of
        // all draws — exactly the case the endpoint guard must catch.
        let mut rng = StdRng::seed_from_u64(9);
        let start = 1.0e16f64;
        let end = 1.0e16 + 2.0;
        for _ in 0..10_000 {
            let v = rng.gen_range(start..end);
            assert!(v >= start && v < end, "{v} escaped [{start}, {end})");
        }
    }

    #[test]
    fn works_through_dyn_rngcore() {
        let mut rng = StdRng::seed_from_u64(4);
        let dynref: &mut dyn RngCore = &mut rng;
        let v = dynref.gen_range(0..100usize);
        assert!(v < 100);
        let f: f64 = dynref.gen();
        assert!((0.0..1.0).contains(&f));
    }

    #[test]
    fn state_round_trip_continues_the_stream() {
        let mut rng = StdRng::seed_from_u64(77);
        for _ in 0..13 {
            rng.next_u64();
        }
        let mut resumed = StdRng::from_state(rng.state());
        for _ in 0..100 {
            assert_eq!(rng.next_u64(), resumed.next_u64());
        }
        // The all-zero state is remapped, never used verbatim.
        let mut z = StdRng::from_state([0; 4]);
        assert_eq!(z.next_u64(), StdRng::from_seed([0u8; 32]).next_u64());
    }

    #[test]
    fn fill_bytes_fills_every_byte_eventually() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        // With 13 random bytes the chance of all-zero is negligible.
        assert!(buf.iter().any(|&b| b != 0));
    }
}
