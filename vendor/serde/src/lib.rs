//! Offline stand-in for the `serde` facade.
//!
//! This workspace annotates its data types with `#[derive(Serialize,
//! Deserialize)]` so they are ready for real serialization, but no code path
//! currently serializes anything and the build environment has no access to
//! crates.io. This crate keeps the annotations compiling: the traits are
//! marker traits with blanket implementations and the derives (re-exported
//! from the vendored `serde_derive`) expand to nothing.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`; implemented for every type.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`; implemented for every type.
pub trait Deserialize {}
impl<T: ?Sized> Deserialize for T {}
