//! Offline vendored subset of the `rand_distr` crate: the [`Distribution`]
//! trait and a [`Poisson`] sampler.
//!
//! [`Poisson::new`] precomputes the inverted CDF of the distribution (the
//! rate is fixed per process in this workspace), so each draw costs one
//! uniform plus a binary search — `O(log λ)` instead of the `O(λ)` of
//! Knuth-style multiplication. The multiplication method is kept as
//! [`Poisson::sample_knuth`]: it serves as the correctness reference in
//! tests, as the pre-refactor baseline in the engine-throughput benchmark,
//! and as the fallback for rates too large to tabulate (`λ > 700`, where
//! `e^-λ` underflows the table recursion).

#![forbid(unsafe_code)]

use rand::{Rng, RngCore};
use std::error::Error as StdError;
use std::fmt;

/// Types that describe a probability distribution over `T`.
pub trait Distribution<T> {
    /// Draws one value.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
}

/// Errors produced when constructing a distribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Error {
    /// The shape parameter was not a finite positive number.
    ShapeTooSmall,
    /// The shape parameter was not finite.
    ShapeNotFinite,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::ShapeTooSmall => write!(f, "distribution parameter must be positive"),
            Error::ShapeNotFinite => write!(f, "distribution parameter must be finite"),
        }
    }
}

impl StdError for Error {}

/// Rates above this use the chunked Knuth fallback instead of a CDF table
/// (the table recursion starts from `e^-λ`, which underflows past ~745).
const MAX_TABLE_LAMBDA: f64 = 700.0;

/// Tail mass left untabulated; draws landing there clamp to the last table
/// entry.
const TABLE_TAIL_EPSILON: f64 = 1e-12;

/// The Poisson distribution `Poisson(λ)`.
#[derive(Debug, Clone)]
pub struct Poisson {
    lambda: f64,
    /// Inverted CDF table (`cdf[k] = P[X <= k]`); empty when the chunked
    /// Knuth fallback is in use.
    cdf: Vec<f64>,
}

impl Poisson {
    /// Creates a Poisson distribution with mean `lambda`, precomputing its
    /// inverted CDF (for `λ ≤ 700`).
    ///
    /// # Errors
    /// Returns an error unless `lambda` is finite and strictly positive.
    pub fn new(lambda: f64) -> Result<Poisson, Error> {
        if !lambda.is_finite() {
            return Err(Error::ShapeNotFinite);
        }
        if lambda <= 0.0 {
            return Err(Error::ShapeTooSmall);
        }
        let cdf = if lambda <= MAX_TABLE_LAMBDA {
            // pmf(0) = e^-λ, pmf(k) = pmf(k-1)·λ/k.
            let mut table = Vec::with_capacity(16 + 2 * lambda as usize);
            let mut pmf = (-lambda).exp();
            let mut acc = pmf;
            table.push(acc);
            let mut k = 0.0f64;
            while acc < 1.0 - TABLE_TAIL_EPSILON {
                k += 1.0;
                pmf *= lambda / k;
                acc += pmf;
                table.push(acc);
                if pmf == 0.0 {
                    break; // fully underflowed tail; nothing left to add
                }
            }
            table
        } else {
            Vec::new()
        };
        Ok(Poisson { lambda, cdf })
    }

    /// The mean of the distribution.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// Knuth's multiplication method applied to chunks of the rate — exact
    /// for arbitrarily large `λ` but `O(λ)` per draw. Kept as the reference
    /// implementation, the large-`λ` fallback, and the pre-refactor baseline
    /// for the engine-throughput benchmark.
    pub fn sample_knuth<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // Poisson(a + b) = Poisson(a) + Poisson(b) for independent draws, so
        // large rates are split into chunks that keep e^-chunk well away from
        // the subnormal range.
        const CHUNK: f64 = 32.0;
        let mut remaining = self.lambda;
        let mut total = 0u64;
        while remaining > CHUNK {
            total += knuth_chunk(CHUNK, rng);
            remaining -= CHUNK;
        }
        total += knuth_chunk(remaining, rng);
        total as f64
    }
}

/// Knuth's method for one chunk with `chunk <= CHUNK`: counts the uniform
/// draws whose running product stays above `e^-chunk`.
fn knuth_chunk<R: RngCore + ?Sized>(chunk: f64, rng: &mut R) -> u64 {
    let limit = (-chunk).exp();
    let mut product = 1.0f64;
    let mut count = 0u64;
    loop {
        product *= rng.gen::<f64>();
        if product <= limit {
            return count;
        }
        count += 1;
    }
}

impl Distribution<f64> for Poisson {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        if self.cdf.is_empty() {
            return self.sample_knuth(rng);
        }
        // Inversion: the smallest k with cdf[k] >= u. Draws beyond the
        // tabulated mass (probability < 1e-12) clamp to the last entry.
        let u: f64 = rng.gen();
        let k = self.cdf.partition_point(|&c| c < u);
        k.min(self.cdf.len() - 1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_invalid_parameters() {
        assert!(Poisson::new(0.0).is_err());
        assert!(Poisson::new(-1.0).is_err());
        assert!(Poisson::new(f64::NAN).is_err());
        assert!(Poisson::new(f64::INFINITY).is_err());
        assert_eq!(Poisson::new(2.0).unwrap().lambda(), 2.0);
    }

    #[test]
    fn small_lambda_mean_and_variance() {
        let dist = Poisson::new(3.5).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let n = 80_000;
        let samples: Vec<f64> = (0..n).map(|_| dist.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 3.5).abs() < 0.05, "mean {mean}");
        assert!((var - 3.5).abs() < 0.15, "variance {var}");
    }

    #[test]
    fn large_lambda_spans_chunks() {
        let dist = Poisson::new(150.0).unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| dist.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 150.0).abs() < 0.5, "mean {mean}");
        assert!((var / 150.0 - 1.0).abs() < 0.05, "variance {var}");
    }

    #[test]
    fn table_inversion_matches_knuth_distribution() {
        // Compare empirical CDFs of the two samplers at a few checkpoints
        // (they consume the RNG differently, so only distributions can be
        // compared).
        let lambda = 20.0;
        let dist = Poisson::new(lambda).unwrap();
        let n = 60_000;
        let mut rng = StdRng::seed_from_u64(21);
        let table: Vec<f64> = (0..n).map(|_| dist.sample(&mut rng)).collect();
        let knuth: Vec<f64> = (0..n).map(|_| dist.sample_knuth(&mut rng)).collect();
        for checkpoint in [10.0, 15.0, 20.0, 25.0, 30.0] {
            let p_table = table.iter().filter(|&&x| x <= checkpoint).count() as f64 / n as f64;
            let p_knuth = knuth.iter().filter(|&&x| x <= checkpoint).count() as f64 / n as f64;
            assert!(
                (p_table - p_knuth).abs() < 0.01,
                "CDF at {checkpoint}: table {p_table} vs knuth {p_knuth}"
            );
        }
    }

    #[test]
    fn huge_lambda_falls_back_to_chunked_knuth() {
        let dist = Poisson::new(1_000.0).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let n = 2_000;
        let mean = (0..n).map(|_| dist.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 1_000.0).abs() < 3.0, "mean {mean}");
    }
}
