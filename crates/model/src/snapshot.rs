//! Per-round view of the system that dispatchers observe.
//!
//! In the paper's model (Section 2) the queue lengths `q_s(t)` of all servers
//! are available to all dispatchers at the beginning of round `t`. A
//! [`DispatchContext`] is exactly that read-only view, plus the static
//! information (rates, number of dispatchers) a policy needs to make its
//! decision.

use crate::degraded::{Availability, DegradedView};
use crate::ids::ServerId;
use crate::round_cache::RoundCache;

/// Read-only information available to a dispatcher when it makes its
/// dispatching decision for one round.
///
/// The context borrows the engine's state: constructing it is free and the
/// same context is handed to every dispatcher in the round, which mirrors the
/// paper's assumption that all dispatchers see identical queue-length
/// information (this is what makes herding possible for naive policies).
///
/// A context may additionally carry a [`RoundCache`] — derived tables
/// (reciprocal rates, loads, solver keys) the engine computed once for the
/// round so that all `m` dispatchers can share them instead of recomputing
/// privately. Policies must treat the cache as an optional accelerator:
/// decisions have to be bit-identical with and without it.
///
/// # Round-to-round dirty sets
///
/// The engine knows *exactly* which servers changed between two consecutive
/// snapshots: the dispatch targets of the previous round plus the servers
/// whose queues completed jobs. A context built by the engine carries that
/// set through [`dirty_servers`](DispatchContext::dirty_servers), so warm
/// per-round structures (tournament trees over snapshot-derived keys,
/// incremental sorted orders) can repair a handful of slots instead of
/// re-deriving all `n` from scratch. Like the cache, the dirty set is a
/// **pure accelerator**: it is a superset of the servers whose queue length
/// differs from the previous round's snapshot, consumers may only use it to
/// skip provably redundant work, and decisions must be bit-identical whether
/// the set is present (`Some`), absent (`None` — treat every server as
/// potentially changed), or wider than necessary.
///
/// # Example
/// ```
/// use scd_model::DispatchContext;
/// let queues = vec![2u64, 0, 5];
/// let rates = vec![4.0, 1.0, 2.0];
/// let ctx = DispatchContext::new(&queues, &rates, 10, 42);
/// assert_eq!(ctx.num_servers(), 3);
/// assert_eq!(ctx.queue_len(scd_model::ServerId::new(2)), 5);
/// assert!((ctx.expected_delay(scd_model::ServerId::new(0)) - 0.5).abs() < 1e-12);
/// assert!(ctx.cache().is_none());
/// assert!(ctx.dirty_servers().is_none());
/// ```
#[derive(Debug, Clone, Copy)]
pub struct DispatchContext<'a> {
    queue_lengths: &'a [u64],
    rates: &'a [f64],
    num_dispatchers: usize,
    round: u64,
    cache: Option<&'a RoundCache>,
    dirty: Option<&'a [u32]>,
    degraded: Option<DegradedView<'a>>,
}

impl<'a> DispatchContext<'a> {
    /// Creates a new context (without a shared per-round cache).
    ///
    /// # Panics
    /// Panics if `queue_lengths` and `rates` have different lengths — this is
    /// an internal programming error of the simulation engine, not a user
    /// input error.
    pub fn new(
        queue_lengths: &'a [u64],
        rates: &'a [f64],
        num_dispatchers: usize,
        round: u64,
    ) -> Self {
        assert_eq!(
            queue_lengths.len(),
            rates.len(),
            "queue-length and rate vectors must describe the same cluster"
        );
        DispatchContext {
            queue_lengths,
            rates,
            num_dispatchers,
            round,
            cache: None,
            dirty: None,
            degraded: None,
        }
    }

    /// Creates a context carrying a shared per-round compute cache. The
    /// cache must have been refreshed (`begin_round`) from exactly this
    /// round's `queue_lengths` and `rates`.
    ///
    /// # Panics
    /// Panics if the vector lengths disagree (including the cache's).
    pub fn with_cache(
        queue_lengths: &'a [u64],
        rates: &'a [f64],
        num_dispatchers: usize,
        round: u64,
        cache: &'a RoundCache,
    ) -> Self {
        let mut ctx = DispatchContext::new(queue_lengths, rates, num_dispatchers, round);
        assert_eq!(
            cache.num_servers(),
            queue_lengths.len(),
            "round cache must describe the same cluster as the snapshot"
        );
        ctx.cache = Some(cache);
        ctx
    }

    /// The shared per-round compute cache, when the engine provided one.
    /// Direct policy invocations (tests, examples, micro-benchmarks)
    /// typically construct contexts without it.
    pub fn cache(&self) -> Option<&'a RoundCache> {
        self.cache
    }

    /// Attaches the engine's round-to-round dirty set (see the type-level
    /// docs): the servers whose queue length may differ from the **previous
    /// round's** snapshot. Every listed index must be a valid server; the
    /// set is deduplicated but unordered.
    ///
    /// # Panics
    /// Panics in debug builds if any listed server is out of range (release
    /// builds defer to the consumers' own bounds checks — this runs once
    /// per round on the engine hot path).
    pub fn with_dirty(mut self, dirty: &'a [u32]) -> Self {
        debug_assert!(
            dirty.iter().all(|&s| (s as usize) < self.rates.len()),
            "dirty set names a server outside the cluster"
        );
        self.dirty = Some(dirty);
        self
    }

    /// The servers whose queue length may have changed since the previous
    /// round's snapshot, when the engine tracked them. `None` means the
    /// information is unavailable (first round of a run, direct policy
    /// invocations, or delta tracking disabled) and consumers must treat
    /// every server as potentially changed.
    ///
    /// The set is authoritative in one direction only: a server *not*
    /// listed is guaranteed unchanged **relative to the previous snapshot**;
    /// listed servers may or may not have changed. The engine derives the
    /// set by diffing consecutive snapshots, so it is exact there — in
    /// particular, a queue that completed as many jobs as it received is
    /// *not* listed. Consumers that overlay private modifications on a
    /// snapshot mirror (e.g. a dispatcher's own in-batch placements) must
    /// therefore re-check those slots themselves; the dirty set only
    /// describes the engine's queues.
    pub fn dirty_servers(&self) -> Option<&'a [u32]> {
        self.dirty
    }

    /// Attaches one dispatcher's degraded-information view (availability
    /// mask + probe-loss oracle) — see [`crate::degraded`]. Contexts built
    /// by the engine under an active scenario carry this; the fair-weather
    /// engine never constructs it, and policies must behave bit-identically
    /// when the view is present but inert (all servers up, zero loss).
    ///
    /// # Panics
    /// Panics if the mask describes a different cluster size than the
    /// snapshot.
    pub fn with_degraded(mut self, view: DegradedView<'a>) -> Self {
        assert_eq!(
            view.availability().num_servers(),
            self.rates.len(),
            "availability mask must describe the same cluster as the snapshot"
        );
        self.degraded = Some(view);
        self
    }

    /// The scenario's availability mask, when the engine attached one.
    /// `None` (the fair-weather engine, direct invocations) means every
    /// server is up.
    pub fn availability(&self) -> Option<&'a Availability> {
        self.degraded.as_ref().map(|v| v.availability())
    }

    /// The availability mask *only when it currently excludes a server* —
    /// the branch point for mask-aware policies: `None` means the full
    /// unmasked code path is correct (and, for bit-identity with the
    /// fair-weather engine, mandatory).
    pub fn active_mask(&self) -> Option<&'a Availability> {
        self.availability().filter(|a| !a.all_servers_up())
    }

    /// Whether one server is up under the scenario (vacuously true without
    /// one).
    ///
    /// # Panics
    /// Panics if the server index is out of range.
    pub fn is_server_up(&self, server: ServerId) -> bool {
        match self.availability() {
            Some(avail) => avail.is_up(server.index()),
            None => true,
        }
    }

    /// Whether probe number `probe` of this round by this context's
    /// dispatcher reached `target` and returned. Always true without a
    /// degraded view; with one, a probe is lost either by the scenario's
    /// probe-loss draw (consumed and tallied first, so the loss schedule
    /// does not depend on the chosen target) or because the target is down.
    /// Probe-marking policies must call this exactly once per probe, with a
    /// per-round probe index.
    ///
    /// # Panics
    /// Panics if the server index is out of range.
    pub fn probe_delivered(&self, probe: u64, target: ServerId) -> bool {
        match &self.degraded {
            Some(view) => view.probe_delivered(self.round, probe, target.index()),
            None => true,
        }
    }

    /// Number of servers `n`.
    pub fn num_servers(&self) -> usize {
        self.rates.len()
    }

    /// Number of dispatchers `m` operating concurrently in the system.
    ///
    /// SCD uses this for its arrival estimation `a_est = m · a(d)`.
    pub fn num_dispatchers(&self) -> usize {
        self.num_dispatchers
    }

    /// The current round index `t`.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Queue length `q_s(t)` of one server at the beginning of the round.
    ///
    /// # Panics
    /// Panics if the server index is out of range.
    pub fn queue_len(&self, server: ServerId) -> u64 {
        self.queue_lengths[server.index()]
    }

    /// All queue lengths, indexed by server.
    pub fn queue_lengths(&self) -> &'a [u64] {
        self.queue_lengths
    }

    /// Service rate `µ_s` of one server.
    ///
    /// # Panics
    /// Panics if the server index is out of range.
    pub fn rate(&self, server: ServerId) -> f64 {
        self.rates[server.index()]
    }

    /// All service rates, indexed by server.
    pub fn rates(&self) -> &'a [f64] {
        self.rates
    }

    /// Total service capacity `Σ_s µ_s`.
    pub fn total_rate(&self) -> f64 {
        self.rates.iter().sum()
    }

    /// Expected delay (normalized queue length) `q_s / µ_s` of a server — the
    /// quantity SED-style policies rank servers by.
    ///
    /// # Panics
    /// Panics if the server index is out of range.
    pub fn expected_delay(&self, server: ServerId) -> f64 {
        self.queue_lengths[server.index()] as f64 / self.rates[server.index()]
    }

    /// Iterator over `(ServerId, queue length, rate)` triples.
    pub fn iter(&self) -> impl Iterator<Item = (ServerId, u64, f64)> + 'a {
        let queues = self.queue_lengths;
        let rates = self.rates;
        (0..queues.len()).map(move |i| (ServerId::new(i), queues[i], rates[i]))
    }

    /// Servers with an empty queue (the set JIQ-style policies target).
    pub fn idle_servers(&self) -> Vec<ServerId> {
        self.queue_lengths
            .iter()
            .enumerate()
            .filter(|(_, &q)| q == 0)
            .map(|(i, _)| ServerId::new(i))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx<'a>(queues: &'a [u64], rates: &'a [f64]) -> DispatchContext<'a> {
        DispatchContext::new(queues, rates, 4, 17)
    }

    #[test]
    fn accessors_return_the_underlying_data() {
        let queues = vec![2u64, 1, 3, 1];
        let rates = vec![5.0, 2.0, 1.0, 1.0];
        let c = ctx(&queues, &rates);
        assert_eq!(c.num_servers(), 4);
        assert_eq!(c.num_dispatchers(), 4);
        assert_eq!(c.round(), 17);
        assert_eq!(c.queue_lengths(), &queues[..]);
        assert_eq!(c.rates(), &rates[..]);
        assert_eq!(c.queue_len(ServerId::new(2)), 3);
        assert_eq!(c.rate(ServerId::new(0)), 5.0);
        assert_eq!(c.total_rate(), 9.0);
    }

    #[test]
    fn expected_delay_divides_by_rate() {
        let queues = vec![2u64, 1, 3, 1];
        let rates = vec![5.0, 2.0, 1.0, 1.0];
        let c = ctx(&queues, &rates);
        assert!((c.expected_delay(ServerId::new(0)) - 0.4).abs() < 1e-12);
        assert!((c.expected_delay(ServerId::new(2)) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn idle_servers_lists_empty_queues_only() {
        let queues = vec![0u64, 4, 0, 1];
        let rates = vec![1.0; 4];
        let c = ctx(&queues, &rates);
        let idle: Vec<usize> = c.idle_servers().into_iter().map(|s| s.index()).collect();
        assert_eq!(idle, vec![0, 2]);
    }

    #[test]
    fn iter_walks_servers_in_order() {
        let queues = vec![1u64, 2];
        let rates = vec![3.0, 4.0];
        let c = ctx(&queues, &rates);
        let triples: Vec<(usize, u64, f64)> = c.iter().map(|(s, q, r)| (s.index(), q, r)).collect();
        assert_eq!(triples, vec![(0, 1, 3.0), (1, 2, 4.0)]);
    }

    #[test]
    #[should_panic(expected = "same cluster")]
    fn mismatched_lengths_panic() {
        let queues = vec![1u64, 2];
        let rates = vec![3.0];
        let _ = DispatchContext::new(&queues, &rates, 1, 0);
    }

    #[test]
    fn dirty_set_round_trips_through_the_context() {
        let queues = vec![1u64, 2, 3];
        let rates = vec![1.0; 3];
        let dirty = vec![2u32, 0];
        let c = DispatchContext::new(&queues, &rates, 1, 0).with_dirty(&dirty);
        assert_eq!(c.dirty_servers(), Some(&dirty[..]));
        // Contexts without the engine's tracking report None.
        assert_eq!(ctx(&queues, &rates).dirty_servers(), None);
    }

    #[test]
    fn degraded_view_round_trips_through_the_context() {
        use crate::degraded::{Availability, DegradedView};
        let queues = vec![1u64, 2, 3];
        let rates = vec![1.0; 3];
        let plain = ctx(&queues, &rates);
        assert!(plain.availability().is_none());
        assert!(plain.active_mask().is_none());
        assert!(plain.is_server_up(ServerId::new(2)));
        assert!(plain.probe_delivered(0, ServerId::new(1)));

        let mut avail = Availability::all_up(3);
        let c = DispatchContext::new(&queues, &rates, 1, 0)
            .with_degraded(DegradedView::new(&avail, None, 0));
        // Inert mask: availability is visible but the active mask is None.
        assert!(c.availability().is_some());
        assert!(c.active_mask().is_none());

        avail.begin_round();
        avail.set(1, false);
        avail.refresh();
        let c = DispatchContext::new(&queues, &rates, 1, 0)
            .with_degraded(DegradedView::new(&avail, None, 0));
        assert!(c.active_mask().is_some());
        assert!(!c.is_server_up(ServerId::new(1)));
        assert!(!c.probe_delivered(0, ServerId::new(1)));
        assert!(c.probe_delivered(1, ServerId::new(0)));
    }

    #[test]
    #[should_panic(expected = "same cluster")]
    fn mismatched_availability_mask_panics() {
        use crate::degraded::{Availability, DegradedView};
        let queues = vec![1u64, 2];
        let rates = vec![1.0; 2];
        let avail = Availability::all_up(3);
        let _ = DispatchContext::new(&queues, &rates, 1, 0)
            .with_degraded(DegradedView::new(&avail, None, 0));
    }

    #[test]
    #[should_panic(expected = "outside the cluster")]
    fn out_of_range_dirty_servers_panic() {
        let queues = vec![1u64, 2];
        let rates = vec![1.0; 2];
        let dirty = vec![2u32];
        let _ = DispatchContext::new(&queues, &rates, 1, 0).with_dirty(&dirty);
    }
}
