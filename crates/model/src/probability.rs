//! Validated probability vectors over servers.
//!
//! Policies based on stochastic coordination (SCD, TWF) and weighted random
//! compute a per-round distribution `P = [p_1, …, p_n]` over servers and then
//! draw every job's destination from it. [`ProbabilityVector`] is the checked
//! representation of such a distribution: entries are finite, non-negative,
//! and sum to one (after an explicit, tolerance-bounded normalization step
//! that absorbs accumulated floating-point error from the solver).

use crate::error::ModelError;
use crate::ids::ServerId;
use crate::sampler::AliasSampler;
use serde::{Deserialize, Serialize};

/// Relative tolerance accepted when validating that probabilities sum to one.
pub const NORMALIZATION_TOLERANCE: f64 = 1e-6;

/// A probability distribution over the servers of a cluster.
///
/// # Example
/// ```
/// use scd_model::ProbabilityVector;
/// let p = ProbabilityVector::new(vec![0.5, 0.25, 0.25]).unwrap();
/// assert_eq!(p.len(), 3);
/// assert!((p.get(scd_model::ServerId::new(0)) - 0.5).abs() < 1e-12);
/// assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProbabilityVector {
    probs: Vec<f64>,
}

impl ProbabilityVector {
    /// Creates a probability vector, normalizing away floating-point drift.
    ///
    /// The input may deviate from summing to exactly 1 by at most
    /// [`NORMALIZATION_TOLERANCE`] (relative); larger deviations are rejected
    /// because they indicate a solver bug rather than round-off.
    ///
    /// # Errors
    /// * [`ModelError::EmptyCluster`] for an empty vector;
    /// * [`ModelError::InvalidProbability`] for negative/NaN/infinite entries
    ///   (tiny negative values above `-1e-12` are clamped to zero);
    /// * [`ModelError::UnnormalizableProbabilities`] if the mass is zero or
    ///   too far from one.
    pub fn new(probs: Vec<f64>) -> Result<Self, ModelError> {
        Self::with_tolerance(probs, NORMALIZATION_TOLERANCE)
    }

    /// Like [`ProbabilityVector::new`] but with a caller-chosen tolerance on
    /// the deviation of the total mass from 1.
    ///
    /// # Errors
    /// See [`ProbabilityVector::new`].
    pub fn with_tolerance(mut probs: Vec<f64>, tolerance: f64) -> Result<Self, ModelError> {
        if probs.is_empty() {
            return Err(ModelError::EmptyCluster);
        }
        for (index, p) in probs.iter_mut().enumerate() {
            if !p.is_finite() {
                return Err(ModelError::InvalidProbability { index, value: *p });
            }
            if *p < 0.0 {
                // Clamp only round-off-sized negatives; anything larger is a bug.
                if *p > -1e-12 {
                    *p = 0.0;
                } else {
                    return Err(ModelError::InvalidProbability { index, value: *p });
                }
            }
        }
        let total: f64 = probs.iter().sum();
        if !total.is_finite() || total <= 0.0 {
            return Err(ModelError::UnnormalizableProbabilities { total });
        }
        if (total - 1.0).abs() > tolerance {
            return Err(ModelError::UnnormalizableProbabilities { total });
        }
        for p in probs.iter_mut() {
            *p /= total;
        }
        Ok(ProbabilityVector { probs })
    }

    /// Builds the distribution proportional to the given non-negative weights
    /// (they need not sum to one). Used by weighted-random and by the
    /// rate-proportional sampling of the `h*` policies.
    ///
    /// # Errors
    /// Returns [`ModelError::DegenerateWeights`] if no weight is strictly
    /// positive, and [`ModelError::InvalidProbability`] for negative or
    /// non-finite weights.
    pub fn from_weights(weights: &[f64]) -> Result<Self, ModelError> {
        if weights.is_empty() {
            return Err(ModelError::EmptyCluster);
        }
        for (index, &w) in weights.iter().enumerate() {
            if !w.is_finite() || w < 0.0 {
                return Err(ModelError::InvalidProbability { index, value: w });
            }
        }
        let total: f64 = weights.iter().sum();
        if total <= 0.0 {
            return Err(ModelError::DegenerateWeights);
        }
        Ok(ProbabilityVector {
            probs: weights.iter().map(|w| w / total).collect(),
        })
    }

    /// The distribution that puts all mass on a single server.
    pub fn degenerate(n: usize, server: ServerId) -> Result<Self, ModelError> {
        if n == 0 {
            return Err(ModelError::EmptyCluster);
        }
        if server.index() >= n {
            return Err(ModelError::UnknownServer {
                server: server.index(),
                num_servers: n,
            });
        }
        let mut probs = vec![0.0; n];
        probs[server.index()] = 1.0;
        Ok(ProbabilityVector { probs })
    }

    /// The uniform distribution over `n` servers.
    pub fn uniform(n: usize) -> Result<Self, ModelError> {
        if n == 0 {
            return Err(ModelError::EmptyCluster);
        }
        Ok(ProbabilityVector {
            probs: vec![1.0 / n as f64; n],
        })
    }

    /// Number of servers.
    pub fn len(&self) -> usize {
        self.probs.len()
    }

    /// True when there are no entries (never the case for a constructed
    /// vector; provided for API completeness).
    pub fn is_empty(&self) -> bool {
        self.probs.is_empty()
    }

    /// Probability assigned to a server.
    ///
    /// # Panics
    /// Panics if the server index is out of range.
    pub fn get(&self, server: ServerId) -> f64 {
        self.probs[server.index()]
    }

    /// Iterates over the probabilities in server order.
    pub fn iter(&self) -> impl Iterator<Item = f64> + '_ {
        self.probs.iter().copied()
    }

    /// The probabilities as a slice, indexed by server.
    pub fn as_slice(&self) -> &[f64] {
        &self.probs
    }

    /// Consumes the vector and returns the raw probabilities.
    pub fn into_inner(self) -> Vec<f64> {
        self.probs
    }

    /// Servers with strictly positive probability — the "probable set" `S+`
    /// of the paper.
    pub fn support(&self) -> Vec<ServerId> {
        self.probs
            .iter()
            .enumerate()
            .filter(|(_, &p)| p > 0.0)
            .map(|(i, _)| ServerId::new(i))
            .collect()
    }

    /// Builds an O(1)-per-draw alias sampler for this distribution.
    ///
    /// # Errors
    /// Propagates [`ModelError::DegenerateWeights`] (cannot happen for a
    /// validated distribution, but the signature is fallible for uniformity).
    pub fn sampler(&self) -> Result<AliasSampler, ModelError> {
        AliasSampler::new(&self.probs)
    }
}

impl AsRef<[f64]> for ProbabilityVector {
    fn as_ref(&self) -> &[f64] {
        &self.probs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_and_normalizes_nearly_normalized_input() {
        let p = ProbabilityVector::new(vec![0.5, 0.5 + 2e-7]).unwrap();
        let total: f64 = p.iter().sum();
        assert!((total - 1.0).abs() < 1e-15);
    }

    #[test]
    fn rejects_badly_normalized_input() {
        let err = ProbabilityVector::new(vec![0.5, 0.4]).unwrap_err();
        assert!(matches!(
            err,
            ModelError::UnnormalizableProbabilities { .. }
        ));
    }

    #[test]
    fn rejects_nan_and_large_negative_entries() {
        assert!(matches!(
            ProbabilityVector::new(vec![f64::NAN, 1.0]).unwrap_err(),
            ModelError::InvalidProbability { index: 0, .. }
        ));
        assert!(matches!(
            ProbabilityVector::new(vec![-0.2, 1.2]).unwrap_err(),
            ModelError::InvalidProbability { index: 0, .. }
        ));
    }

    #[test]
    fn clamps_round_off_negatives() {
        let p = ProbabilityVector::new(vec![1.0, -1e-15]).unwrap();
        assert_eq!(p.get(ServerId::new(1)), 0.0);
        assert_eq!(p.support(), vec![ServerId::new(0)]);
    }

    #[test]
    fn from_weights_normalizes() {
        let p = ProbabilityVector::from_weights(&[5.0, 2.0, 1.0, 1.0, 1.0]).unwrap();
        assert!((p.get(ServerId::new(0)) - 0.5).abs() < 1e-12);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn from_weights_rejects_all_zero() {
        assert_eq!(
            ProbabilityVector::from_weights(&[0.0, 0.0]).unwrap_err(),
            ModelError::DegenerateWeights
        );
    }

    #[test]
    fn degenerate_and_uniform_constructors() {
        let d = ProbabilityVector::degenerate(3, ServerId::new(1)).unwrap();
        assert_eq!(d.as_slice(), &[0.0, 1.0, 0.0]);
        assert_eq!(d.support(), vec![ServerId::new(1)]);

        let u = ProbabilityVector::uniform(4).unwrap();
        assert!(u.iter().all(|p| (p - 0.25).abs() < 1e-12));

        assert!(ProbabilityVector::degenerate(2, ServerId::new(5)).is_err());
        assert!(ProbabilityVector::uniform(0).is_err());
    }

    #[test]
    fn empty_input_is_rejected() {
        assert_eq!(
            ProbabilityVector::new(vec![]).unwrap_err(),
            ModelError::EmptyCluster
        );
        assert_eq!(
            ProbabilityVector::from_weights(&[]).unwrap_err(),
            ModelError::EmptyCluster
        );
    }

    #[test]
    fn sampler_construction_succeeds() {
        let p = ProbabilityVector::from_weights(&[1.0, 3.0]).unwrap();
        let sampler = p.sampler().unwrap();
        assert_eq!(sampler.len(), 2);
    }

    #[test]
    fn into_inner_round_trips() {
        let p = ProbabilityVector::new(vec![0.25, 0.75]).unwrap();
        let raw = p.clone().into_inner();
        assert_eq!(raw, vec![0.25, 0.75]);
        assert_eq!(p.as_ref(), &[0.25, 0.75]);
    }
}
