//! Static description of a heterogeneous cluster: the per-server service
//! rates `µ_s` of the paper's model (Section 2) and helpers for generating
//! the heterogeneity profiles used in the evaluation (Section 6.2).

use crate::error::ModelError;
use crate::ids::ServerId;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// The static configuration of a cluster: one processing rate per server.
///
/// A rate `µ_s` is the *expected* number of jobs server `s` completes per
/// round (`E[c_s(t)] = µ_s` in the paper). Rates must be finite and strictly
/// positive; the constructor validates this so that downstream algorithms can
/// divide by `µ_s` without checks.
///
/// # Example
/// ```
/// use scd_model::ClusterSpec;
/// let spec = ClusterSpec::from_rates(vec![5.0, 2.0, 1.0, 1.0]).unwrap();
/// assert_eq!(spec.num_servers(), 4);
/// assert_eq!(spec.total_rate(), 9.0);
/// assert_eq!(spec.rate(scd_model::ServerId::new(0)), 5.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterSpec {
    rates: Vec<f64>,
}

impl ClusterSpec {
    /// Builds a cluster specification from explicit per-server rates.
    ///
    /// # Errors
    /// Returns [`ModelError::EmptyCluster`] if `rates` is empty and
    /// [`ModelError::InvalidRate`] if any rate is not finite and strictly
    /// positive.
    pub fn from_rates(rates: Vec<f64>) -> Result<Self, ModelError> {
        if rates.is_empty() {
            return Err(ModelError::EmptyCluster);
        }
        for (server, &rate) in rates.iter().enumerate() {
            if !rate.is_finite() || rate <= 0.0 {
                return Err(ModelError::InvalidRate { server, rate });
            }
        }
        Ok(ClusterSpec { rates })
    }

    /// Builds a homogeneous cluster of `n` servers, all with rate `rate`.
    ///
    /// # Errors
    /// Returns an error if `n == 0` or the rate is invalid.
    pub fn homogeneous(n: usize, rate: f64) -> Result<Self, ModelError> {
        Self::from_rates(vec![rate; n])
    }

    /// Number of servers `n` in the cluster.
    pub fn num_servers(&self) -> usize {
        self.rates.len()
    }

    /// The rate `µ_s` of a particular server.
    ///
    /// # Panics
    /// Panics if the server index is out of range.
    pub fn rate(&self, server: ServerId) -> f64 {
        self.rates[server.index()]
    }

    /// All rates, indexed by server.
    pub fn rates(&self) -> &[f64] {
        &self.rates
    }

    /// Total processing capacity `Σ_s µ_s` of the cluster.
    pub fn total_rate(&self) -> f64 {
        self.rates.iter().sum()
    }

    /// Smallest rate in the cluster (`µ_min` in the stability analysis).
    pub fn min_rate(&self) -> f64 {
        self.rates.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Largest rate in the cluster.
    pub fn max_rate(&self) -> f64 {
        self.rates.iter().copied().fold(f64::NEG_INFINITY, f64::max)
    }

    /// Ratio between the fastest and the slowest server — a convenient scalar
    /// measure of how heterogeneous the cluster is (1.0 means homogeneous).
    pub fn heterogeneity_ratio(&self) -> f64 {
        self.max_rate() / self.min_rate()
    }

    /// Iterates over `(ServerId, rate)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (ServerId, f64)> + '_ {
        self.rates
            .iter()
            .enumerate()
            .map(|(i, &r)| (ServerId::new(i), r))
    }

    /// The sub-cluster containing exactly the given servers, in the given
    /// order — how the sharded engine splits one cluster into per-shard
    /// specifications (each shard simulates the sub-cluster it owns).
    ///
    /// # Errors
    /// Returns [`ModelError::EmptyCluster`] for an empty selection.
    ///
    /// # Panics
    /// Panics if any index is out of range.
    pub fn subset(&self, servers: &[usize]) -> Result<ClusterSpec, ModelError> {
        ClusterSpec::from_rates(servers.iter().map(|&s| self.rates[s]).collect())
    }

    /// Returns a copy of this specification with every rate replaced by 1.0.
    ///
    /// This is how the heterogeneity-oblivious TWF policy of the companion
    /// paper is expressed in this workspace: the same stochastic-coordination
    /// pipeline, run as if the cluster were homogeneous.
    pub fn rate_oblivious(&self) -> ClusterSpec {
        ClusterSpec {
            rates: vec![1.0; self.rates.len()],
        }
    }
}

/// A recipe for drawing the per-server rates of a cluster.
///
/// The paper evaluates two heterogeneity levels: rates drawn uniformly from
/// `[1, 10]` (moderate, different CPU generations) and from `[1, 100]` (high,
/// accelerators present). [`RateProfile`] captures those plus a few additional
/// profiles that are useful for tests and examples.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RateProfile {
    /// Every server has the same rate.
    Homogeneous {
        /// The common service rate.
        rate: f64,
    },
    /// Each rate is drawn independently and uniformly from `[low, high]`.
    Uniform {
        /// Lower bound of the rate interval.
        low: f64,
        /// Upper bound of the rate interval.
        high: f64,
    },
    /// A two-class cluster: a fraction of fast servers and the rest slow.
    Bimodal {
        /// Rate of the fast class.
        fast_rate: f64,
        /// Rate of the slow class.
        slow_rate: f64,
        /// Fraction of servers (0..=1) that belong to the fast class.
        fast_fraction: f64,
    },
    /// Explicit rates; the cluster size must match the vector length.
    Explicit {
        /// The explicit per-server rates.
        rates: Vec<f64>,
    },
}

impl RateProfile {
    /// The moderate-heterogeneity profile of the paper: `µ_s ~ U[1, 10]`.
    pub fn paper_moderate() -> Self {
        RateProfile::Uniform {
            low: 1.0,
            high: 10.0,
        }
    }

    /// The high-heterogeneity profile of the paper: `µ_s ~ U[1, 100]`.
    pub fn paper_high() -> Self {
        RateProfile::Uniform {
            low: 1.0,
            high: 100.0,
        }
    }

    /// Materializes a [`ClusterSpec`] with `n` servers using the supplied RNG
    /// for any random draws.
    ///
    /// # Errors
    /// Returns an error if the profile produces invalid rates (e.g. an
    /// explicit vector of the wrong length is reported as
    /// [`ModelError::EmptyCluster`] / [`ModelError::InvalidRate`] as
    /// appropriate) or if `n == 0`.
    pub fn materialize<R: Rng + ?Sized>(
        &self,
        n: usize,
        rng: &mut R,
    ) -> Result<ClusterSpec, ModelError> {
        if n == 0 {
            return Err(ModelError::EmptyCluster);
        }
        let rates = match self {
            RateProfile::Homogeneous { rate } => vec![*rate; n],
            RateProfile::Uniform { low, high } => {
                (0..n).map(|_| rng.gen_range(*low..=*high)).collect()
            }
            RateProfile::Bimodal {
                fast_rate,
                slow_rate,
                fast_fraction,
            } => {
                let fast_count = ((n as f64) * fast_fraction).round() as usize;
                let fast_count = fast_count.min(n);
                let mut rates = vec![*fast_rate; fast_count];
                rates.extend(std::iter::repeat_n(*slow_rate, n - fast_count));
                rates
            }
            RateProfile::Explicit { rates } => {
                if rates.len() != n {
                    // Surface a mismatch as an invalid-rate error on the first
                    // missing/extra position so the caller gets a precise hint.
                    return Err(ModelError::ProbabilityLength {
                        got: rates.len(),
                        expected: n,
                    });
                }
                rates.clone()
            }
        };
        ClusterSpec::from_rates(rates)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_empty_cluster() {
        assert_eq!(
            ClusterSpec::from_rates(vec![]),
            Err(ModelError::EmptyCluster)
        );
    }

    #[test]
    fn rejects_non_positive_and_non_finite_rates() {
        for bad in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            let err = ClusterSpec::from_rates(vec![1.0, bad, 2.0]).unwrap_err();
            match err {
                ModelError::InvalidRate { server, .. } => assert_eq!(server, 1),
                other => panic!("unexpected error {other:?}"),
            }
        }
    }

    #[test]
    fn aggregates_match_figure_one_cluster() {
        // Figure 1 of the paper: rates [5, 2, 1, 1].
        let spec = ClusterSpec::from_rates(vec![5.0, 2.0, 1.0, 1.0]).unwrap();
        assert_eq!(spec.num_servers(), 4);
        assert_eq!(spec.total_rate(), 9.0);
        assert_eq!(spec.min_rate(), 1.0);
        assert_eq!(spec.max_rate(), 5.0);
        assert_eq!(spec.heterogeneity_ratio(), 5.0);
    }

    #[test]
    fn homogeneous_constructor_and_rate_oblivious() {
        let spec = ClusterSpec::homogeneous(3, 4.0).unwrap();
        assert_eq!(spec.rates(), &[4.0, 4.0, 4.0]);
        let flat = spec.rate_oblivious();
        assert_eq!(flat.rates(), &[1.0, 1.0, 1.0]);

        let hetero = ClusterSpec::from_rates(vec![10.0, 1.0]).unwrap();
        assert_eq!(hetero.rate_oblivious().rates(), &[1.0, 1.0]);
    }

    #[test]
    fn subset_selects_servers_in_order() {
        let spec = ClusterSpec::from_rates(vec![5.0, 2.0, 1.0, 3.0]).unwrap();
        let sub = spec.subset(&[3, 0]).unwrap();
        assert_eq!(sub.rates(), &[3.0, 5.0]);
        assert_eq!(spec.subset(&[]), Err(ModelError::EmptyCluster));
        // A striped 2-way split covers every server exactly once.
        let even = spec.subset(&[0, 2]).unwrap();
        let odd = spec.subset(&[1, 3]).unwrap();
        assert_eq!(even.total_rate() + odd.total_rate(), spec.total_rate());
    }

    #[test]
    fn iter_yields_ids_in_order() {
        let spec = ClusterSpec::from_rates(vec![3.0, 1.0]).unwrap();
        let collected: Vec<(usize, f64)> = spec.iter().map(|(id, r)| (id.index(), r)).collect();
        assert_eq!(collected, vec![(0, 3.0), (1, 1.0)]);
    }

    #[test]
    fn uniform_profile_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        let spec = RateProfile::paper_moderate()
            .materialize(200, &mut rng)
            .unwrap();
        assert_eq!(spec.num_servers(), 200);
        for (_, rate) in spec.iter() {
            assert!((1.0..=10.0).contains(&rate), "rate {rate} out of bounds");
        }
        let spec_high = RateProfile::paper_high().materialize(50, &mut rng).unwrap();
        assert!(spec_high.max_rate() <= 100.0);
        assert!(spec_high.min_rate() >= 1.0);
    }

    #[test]
    fn uniform_profile_is_deterministic_per_seed() {
        let a = RateProfile::paper_moderate()
            .materialize(32, &mut StdRng::seed_from_u64(7))
            .unwrap();
        let b = RateProfile::paper_moderate()
            .materialize(32, &mut StdRng::seed_from_u64(7))
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn bimodal_profile_splits_classes() {
        let mut rng = StdRng::seed_from_u64(1);
        let spec = RateProfile::Bimodal {
            fast_rate: 10.0,
            slow_rate: 1.0,
            fast_fraction: 0.25,
        }
        .materialize(8, &mut rng)
        .unwrap();
        let fast = spec.rates().iter().filter(|&&r| r == 10.0).count();
        assert_eq!(fast, 2);
        assert_eq!(spec.num_servers(), 8);
    }

    #[test]
    fn explicit_profile_checks_length() {
        let mut rng = StdRng::seed_from_u64(1);
        let profile = RateProfile::Explicit {
            rates: vec![1.0, 2.0],
        };
        assert!(profile.materialize(2, &mut rng).is_ok());
        assert!(profile.materialize(3, &mut rng).is_err());
    }

    #[test]
    fn zero_sized_cluster_is_rejected_by_profiles() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(
            RateProfile::Homogeneous { rate: 1.0 }.materialize(0, &mut rng),
            Err(ModelError::EmptyCluster)
        );
    }

    #[test]
    fn paper_profiles_have_expected_bounds() {
        assert_eq!(
            RateProfile::paper_moderate(),
            RateProfile::Uniform {
                low: 1.0,
                high: 10.0
            }
        );
        assert_eq!(
            RateProfile::paper_high(),
            RateProfile::Uniform {
                low: 1.0,
                high: 100.0
            }
        );
    }
}
