//! Shared model types for the SCD load-balancing reproduction.
//!
//! This crate defines the vocabulary that every other crate in the workspace
//! speaks:
//!
//! * [`ServerId`] / [`DispatcherId`] — typed identifiers for the two kinds of
//!   participants in the system model of the paper (Section 2).
//! * [`ClusterSpec`] — the static description of a heterogeneous cluster,
//!   i.e. the per-server processing rates `µ_s`.
//! * [`DispatchContext`] — the information a dispatcher observes at the
//!   beginning of a round (true queue lengths, rates, number of dispatchers).
//! * [`RoundCache`] — derived per-round tables (reciprocal rates, loads,
//!   solver keys) computed once by the engine and shared read-only by all
//!   dispatchers of a round (see `ARCHITECTURE.md`, "Per-round shared
//!   compute cache").
//! * [`DispatchPolicy`] / [`PolicyFactory`] — the trait every dispatching
//!   policy implements, and the factory used by the simulator to instantiate
//!   one (stateful) policy object per dispatcher.
//! * [`ProbabilityVector`] and [`AliasSampler`] — utilities for policies that
//!   are defined by a per-round probability distribution over servers (SCD,
//!   TWF, weighted random).
//! * [`streams`] — splitmix64 seed-stream derivation shared by the unsharded
//!   and sharded engines (per-stream tags, per-shard sub-masters).
//!
//! # Example
//!
//! ```
//! use scd_model::{ClusterSpec, DispatchContext, DispatchPolicy, ServerId};
//! use rand::SeedableRng;
//!
//! /// A toy policy that always picks the first server.
//! struct AlwaysFirst;
//!
//! impl DispatchPolicy for AlwaysFirst {
//!     fn policy_name(&self) -> &str { "always-first" }
//!     fn dispatch_batch(
//!         &mut self,
//!         _ctx: &DispatchContext<'_>,
//!         batch: usize,
//!         _rng: &mut dyn rand::RngCore,
//!     ) -> Vec<ServerId> {
//!         vec![ServerId::new(0); batch]
//!     }
//! }
//!
//! let spec = ClusterSpec::from_rates(vec![4.0, 1.0]).unwrap();
//! let queues = vec![3u64, 0u64];
//! let ctx = DispatchContext::new(&queues, spec.rates(), 2, 0);
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let mut policy = AlwaysFirst;
//! let targets = policy.dispatch_batch(&ctx, 3, &mut rng);
//! assert_eq!(targets.len(), 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod classes;
pub mod degraded;
pub mod error;
pub mod ids;
pub mod policy;
pub mod probability;
pub mod round_cache;
pub mod sampler;
pub mod snapshot;
pub mod spec;
pub mod state_bytes;
pub mod streams;

pub use classes::ClassPartition;
pub use degraded::{Availability, DegradedView, ProbeLossOracle};
pub use error::ModelError;
pub use ids::{DispatcherId, ServerId};
pub use policy::{BoxedPolicy, DispatchPolicy, PolicyFactory};
pub use probability::ProbabilityVector;
pub use round_cache::{
    reciprocal_rates, refresh_reciprocal_rates, CacheDemand, RoundCache, WarmSeeds,
};
pub use sampler::{AliasSampler, CdfSampler};
pub use snapshot::DispatchContext;
pub use spec::{ClusterSpec, RateProfile};
pub use state_bytes::{StateReader, StateWriter};
pub use streams::{counter_draw, derive_stream_seed, shard_master_seed, splitmix64_mix, unit_f64};
