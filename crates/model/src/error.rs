//! Error types shared across the workspace.

use std::error::Error;
use std::fmt;

/// Errors produced when constructing or validating model objects.
///
/// Every variant carries enough context to explain *which* input was invalid,
/// so that a misconfigured experiment fails with an actionable message instead
/// of a generic panic deep inside a policy.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelError {
    /// A cluster was specified with zero servers.
    EmptyCluster,
    /// A service rate was not strictly positive and finite.
    InvalidRate {
        /// Index of the offending server.
        server: usize,
        /// The rejected rate value.
        rate: f64,
    },
    /// A probability vector had the wrong length for the cluster.
    ProbabilityLength {
        /// Number of entries supplied.
        got: usize,
        /// Number of servers expected.
        expected: usize,
    },
    /// A probability entry was negative, NaN or infinite.
    InvalidProbability {
        /// Index of the offending entry.
        index: usize,
        /// The rejected value.
        value: f64,
    },
    /// The probabilities did not sum to (approximately) one and could not be
    /// normalized because the total mass was zero or non-finite.
    UnnormalizableProbabilities {
        /// The total mass that was found.
        total: f64,
    },
    /// A weighted sampler was constructed from an empty or all-zero weight
    /// vector.
    DegenerateWeights,
    /// A policy returned an assignment whose length does not match the number
    /// of jobs it was asked to place.
    AssignmentArity {
        /// Number of destinations returned by the policy.
        got: usize,
        /// Number of jobs in the batch.
        expected: usize,
    },
    /// A policy returned a destination server that does not exist.
    UnknownServer {
        /// The offending server index.
        server: usize,
        /// Number of servers in the cluster.
        num_servers: usize,
    },
    /// A policy dispatched to a server that is down under the active
    /// scenario's availability mask.
    ServerDown {
        /// The offending server index.
        server: usize,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::EmptyCluster => write!(f, "cluster must contain at least one server"),
            ModelError::InvalidRate { server, rate } => write!(
                f,
                "service rate of server {server} must be finite and strictly positive, got {rate}"
            ),
            ModelError::ProbabilityLength { got, expected } => write!(
                f,
                "probability vector has {got} entries but the cluster has {expected} servers"
            ),
            ModelError::InvalidProbability { index, value } => write!(
                f,
                "probability entry {index} must be a finite non-negative number, got {value}"
            ),
            ModelError::UnnormalizableProbabilities { total } => write!(
                f,
                "probability vector cannot be normalized: total mass is {total}"
            ),
            ModelError::DegenerateWeights => {
                write!(f, "weighted sampler requires at least one strictly positive weight")
            }
            ModelError::AssignmentArity { got, expected } => write!(
                f,
                "policy returned {got} destinations for a batch of {expected} jobs"
            ),
            ModelError::UnknownServer { server, num_servers } => write!(
                f,
                "policy dispatched to server {server} but the cluster only has {num_servers} servers"
            ),
            ModelError::ServerDown { server } => write!(
                f,
                "policy dispatched to server {server}, which is down under the active scenario"
            ),
        }
    }
}

impl Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let cases: Vec<(ModelError, &str)> = vec![
            (ModelError::EmptyCluster, "at least one server"),
            (
                ModelError::InvalidRate {
                    server: 3,
                    rate: -1.0,
                },
                "server 3",
            ),
            (
                ModelError::ProbabilityLength {
                    got: 2,
                    expected: 5,
                },
                "2 entries",
            ),
            (
                ModelError::InvalidProbability {
                    index: 1,
                    value: f64::NAN,
                },
                "entry 1",
            ),
            (
                ModelError::UnnormalizableProbabilities { total: 0.0 },
                "cannot be normalized",
            ),
            (ModelError::DegenerateWeights, "strictly positive weight"),
            (
                ModelError::AssignmentArity {
                    got: 1,
                    expected: 4,
                },
                "batch of 4",
            ),
            (
                ModelError::UnknownServer {
                    server: 9,
                    num_servers: 4,
                },
                "server 9",
            ),
            (ModelError::ServerDown { server: 2 }, "server 2"),
        ];
        for (err, needle) in cases {
            let msg = err.to_string();
            assert!(
                msg.contains(needle),
                "message {msg:?} should contain {needle:?}"
            );
        }
    }

    #[test]
    fn error_trait_object_is_usable() {
        let err: Box<dyn Error> = Box::new(ModelError::EmptyCluster);
        assert!(err.source().is_none());
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(ModelError::EmptyCluster, ModelError::EmptyCluster);
        assert_ne!(ModelError::EmptyCluster, ModelError::DegenerateWeights);
    }
}
