//! Per-round shared compute cache.
//!
//! Within one simulation round every dispatcher observes the *same* queue
//! snapshot and the *same* (static) service rates, so the derived tables the
//! decision procedures consume — reciprocal rates `1/µ_s`, loads `q_s/µ_s`
//! (Algorithm 3's water-filling inputs) and the Corollary 1 candidate keys
//! `(2q_s + 1)/µ_s` — are identical across all `m` dispatchers. Before this
//! cache existed every policy instance recomputed them privately, paying the
//! `O(n)` setup `m` times per round.
//!
//! A [`RoundCache`] is owned by the simulation engine, refreshed **once** at
//! the start of each round ([`RoundCache::begin_round`]), and handed to every
//! dispatcher as an immutable view through
//! [`DispatchContext::with_cache`](crate::DispatchContext::with_cache).
//! Dispatcher independence is preserved: policies only *read* the tables, and
//! every per-dispatcher quantity (arrival estimates, local queue copies,
//! RNG streams) stays inside the policy objects.
//!
//! The tables are computed with exactly the arithmetic the policies would use
//! privately (`1.0/µ`, then multiplications by the reciprocal), so runs with
//! and without the cache are **bit-identical** — the property the engine
//! equivalence tests pin down.
//!
//! # The per-round solver memo
//!
//! Beyond the derived tables, the cache carries a *solver memo*: within one
//! round, a dispatcher's SCD solve is a pure function of `(queue snapshot,
//! rates, a_est, solver kind)` — and the snapshot and rates are fixed for
//! the round. With `m` dispatchers whose batch-size estimates collide (the
//! common case under the paper's `a_est = m·a(d)` estimator at equal
//! arrival rates), up to `m` identical Algorithm-1/4 solves per round dedupe
//! to one solve per *distinct* estimate. The memo is engine-owned,
//! invalidated by [`begin_round`](RoundCache::begin_round), and accessed
//! through interior mutability ([`std::cell::RefCell`]) so policies can
//! populate it through the same shared immutable view they read the tables
//! from. Dispatcher independence is preserved: the memo is a pure function
//! cache — a hit returns bit-for-bit the vector a fresh solve would produce,
//! never any policy's private state.

/// The reciprocal-rate table `inv[s] = 1.0/µ_s`, as a fresh vector.
///
/// Every reciprocal-rate table in the workspace (the [`RoundCache`], the SCD
/// solver scratch, the SED/LSQ/LED key functions) is built from this one
/// expression — the cached/uncached equivalence guarantees depend on every
/// reciprocal being computed as exactly `1.0/µ`.
pub fn reciprocal_rates(rates: &[f64]) -> Vec<f64> {
    rates.iter().map(|&mu| 1.0 / mu).collect()
}

/// Refreshes a cached reciprocal-rate table (`inv[s] = 1.0/µ_s`) if `rates`
/// changed since the last call, using `snapshot` as the change detector.
/// Policies and scratches that keep a `(snapshot, inv)` pair across rounds
/// ([`RoundCache`], the SCD solver scratch, the SED policy) all refresh it
/// through here.
pub fn refresh_reciprocal_rates(snapshot: &mut Vec<f64>, inv: &mut Vec<f64>, rates: &[f64]) {
    if snapshot != rates {
        snapshot.clear();
        snapshot.extend_from_slice(rates);
        inv.clear();
        inv.extend(rates.iter().map(|&mu| 1.0 / mu));
    }
}

/// How much of the shared per-round cache a policy consumes; the engine
/// refreshes only what the most demanding policy of the run declares
/// (ordering: `None < ReciprocalRates < SolverTables`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum CacheDemand {
    /// The policy never reads the cache (the default).
    #[default]
    None,
    /// Only [`RoundCache::inv_rates`] — static per run, refreshed for free.
    ReciprocalRates,
    /// The full per-round tables: [`RoundCache::loads`] and
    /// [`RoundCache::scd_keys`] too (two `O(n)` fills per round).
    SolverTables,
}

/// Upper bound on live solver-memo entries per round. One entry exists per
/// distinct `(a_est, kind)` pair, which is bounded by the dispatcher count;
/// the cap keeps the linear memo scan cheap for very wide systems (excess
/// distinct estimates simply solve unmemoized).
const SOLVER_MEMO_CAP: usize = 32;

/// Warm-start seeds for an iterative solver, plus accept/fallback counters.
///
/// The cells are opaque to this crate: the SCD solver (in `scd-core`) stores
/// the previous solve's water level and Lagrange multiplier here and uses
/// them to seed the next solve's trimming iterations. Seeds are **hints, not
/// state**: every use is verified against the current inputs and discarded
/// on verification failure, so a stale (or adversarial) seed can cost time
/// but never change a result. They therefore survive
/// [`RoundCache::begin_round`] deliberately — the previous round's level is
/// exactly the warm start the next round wants.
///
/// Interior mutability (like the solver memo) lets the solver update the
/// seeds through the shared immutable view policies hold.
#[derive(Debug, Clone, Default)]
pub struct WarmSeeds {
    level: std::cell::Cell<Option<f64>>,
    lambda: std::cell::Cell<Option<f64>>,
    /// `(Σ_S q, Σ_S µ, |S|)` of the last accepted level's active set,
    /// valid only within the round (generation) it was computed in: the
    /// sums read the round's queue snapshot, which the next `begin_round*`
    /// invalidates.
    level_sums: std::cell::Cell<Option<(f64, f64, usize)>>,
    /// The cache generation `level_sums` belongs to.
    sums_generation: std::cell::Cell<u64>,
    /// Bumped by the owner on every round refresh (see
    /// [`RoundCache::begin_round_for`]).
    generation: std::cell::Cell<u64>,
    accepts: std::cell::Cell<u64>,
    fallbacks: std::cell::Cell<u64>,
}

impl WarmSeeds {
    /// Creates empty seeds (first use always takes the cold path).
    pub fn new() -> Self {
        WarmSeeds::default()
    }

    /// The previous solve's water level, if any.
    pub fn level(&self) -> Option<f64> {
        self.level.get()
    }

    /// Stores the accepted water level for the next solve.
    pub fn set_level(&self, level: f64) {
        self.level.set(Some(level));
    }

    /// The previous solve's Lagrange multiplier, if any.
    pub fn lambda(&self) -> Option<f64> {
        self.lambda.get()
    }

    /// Stores the accepted multiplier for the next solve.
    pub fn set_lambda(&self, lambda: f64) {
        self.lambda.set(Some(lambda));
    }

    /// The `(Σ_S q, Σ_S µ, |S|)` sums of the last accepted level's active
    /// set, if they were recorded **in the current generation** (i.e. for
    /// this round's snapshot). Within one round the snapshot is fixed, so a
    /// later solve of the same round can derive its level candidate from
    /// these sums in `O(1)` instead of a membership pass.
    pub fn level_sums(&self) -> Option<(f64, f64, usize)> {
        if self.sums_generation.get() == self.generation.get() {
            self.level_sums.get()
        } else {
            None
        }
    }

    /// Records the accepted level's active-set sums for the current
    /// generation.
    pub fn set_level_sums(&self, sq: f64, smu: f64, count: usize) {
        self.level_sums.set(Some((sq, smu, count)));
        self.sums_generation.set(self.generation.get());
    }

    /// Starts a new generation (round): in-round caches like
    /// [`level_sums`](WarmSeeds::level_sums) become stale; the cross-round
    /// seeds (level, lambda) stay.
    pub fn advance_generation(&self) {
        self.generation.set(self.generation.get().wrapping_add(1));
    }

    /// Counts one verified warm solve.
    pub fn record_accept(&self) {
        self.accepts.set(self.accepts.get() + 1);
    }

    /// Counts one rejected warm attempt (the solve fell back to cold).
    pub fn record_fallback(&self) {
        self.fallbacks.set(self.fallbacks.get() + 1);
    }

    /// Cumulative `(accepts, fallbacks)` over this seed store's lifetime.
    pub fn stats(&self) -> (u64, u64) {
        (self.accepts.get(), self.fallbacks.get())
    }

    /// Drops the seeds (counters survive); the next solve runs cold.
    pub fn clear(&self) {
        self.level.set(None);
        self.lambda.set(None);
        self.level_sums.set(None);
    }
}

/// One memoized per-round solver result.
#[derive(Debug, Clone, Default)]
struct SolverMemoEntry {
    /// The estimate the solve was keyed by (compared bit-for-bit).
    a_est: f64,
    /// Caller-chosen discriminant for the solver algorithm.
    kind: u8,
    /// The ideal workload the solve produced.
    iwl: f64,
    /// The probability vector the solve produced.
    probabilities: Vec<f64>,
    /// The alias table built from `probabilities`, once some dispatcher
    /// attached it ([`RoundCache::sampler_memo_attach`]); later dispatchers
    /// with the same estimate copy the finished table instead of rebuilding
    /// it.
    sampler: crate::sampler::AliasSampler,
    /// Whether `sampler` holds the table for this entry's probabilities.
    has_sampler: bool,
    /// Whether `sampler` is a **class-level** table over the round's
    /// [`ClassPartition`](crate::ClassPartition) (its columns are class
    /// indices, resolved to servers by a second uniform member draw) rather
    /// than a per-server table. Per-server consumers must never draw from a
    /// class table and vice versa — the lookup paths filter on this flag.
    class_sampler: bool,
}

/// Derived per-round tables shared (read-only) by all dispatchers of a round.
///
/// All buffers are reused across rounds; after the first round at a given
/// cluster size [`begin_round`](RoundCache::begin_round) performs no heap
/// allocations. The reciprocal rates are recomputed only when the rates
/// change, which happens once per simulation run.
///
/// # Example
/// ```
/// use scd_model::RoundCache;
/// let mut cache = RoundCache::new();
/// cache.begin_round(&[3, 0], &[2.0, 1.0]);
/// assert_eq!(cache.inv_rates(), &[0.5, 1.0]);
/// assert_eq!(cache.loads(), &[1.5, 0.0]);
/// assert_eq!(cache.scd_keys(), &[3.5, 1.0]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct RoundCache {
    /// The rates the reciprocals were computed for (change detector).
    rates_snapshot: Vec<f64>,
    /// Reciprocal rates `1/µ_s`.
    inv_rates: Vec<f64>,
    /// Loads `q_s/µ_s` (computed as `q_s · (1/µ_s)`).
    loads: Vec<f64>,
    /// Corollary 1 candidate keys `(2q_s + 1)/µ_s` (same reciprocal trick).
    scd_keys: Vec<f64>,
    /// The queue snapshot the tables were last refreshed from — the change
    /// detector that lets [`begin_round_delta`](RoundCache::begin_round_delta)
    /// repair only the servers the engine reports dirty.
    queues_snapshot: Vec<u64>,
    /// The demand level the last refresh actually filled tables for.
    ready_demand: CacheDemand,
    /// Warm-start seeds for the SCD solver (see [`WarmSeeds`]).
    warm: WarmSeeds,
    /// Per-round solver memo (see the module docs). Entries beyond
    /// `memo_live` are dead but keep their buffers for reuse.
    memo: std::cell::RefCell<Vec<SolverMemoEntry>>,
    /// Number of live memo entries this round.
    memo_live: std::cell::Cell<usize>,
    /// Cumulative (per cache lifetime, i.e. per run) memo hit counter.
    memo_hits: std::cell::Cell<u64>,
    /// Cumulative memo miss counter.
    memo_misses: std::cell::Cell<u64>,
    /// The round's `(rate, q)` class partition
    /// ([`ClassPartition`](crate::ClassPartition)), built lazily on the
    /// first [`class_partition`](RoundCache::class_partition) call of a
    /// round through the same interior mutability the memo uses.
    classes: std::cell::RefCell<crate::ClassPartition>,
    /// The `round_generation` the partition was last built for.
    classes_generation: std::cell::Cell<u64>,
    /// Bumped by every `begin_round*`; 0 means "no round begun yet".
    round_generation: std::cell::Cell<u64>,
}

impl RoundCache {
    /// Creates an empty cache; call
    /// [`begin_round`](RoundCache::begin_round) before reading any table.
    pub fn new() -> Self {
        RoundCache::default()
    }

    /// Recomputes all per-round tables from this round's queue snapshot
    /// (equivalent to [`begin_round_for`](RoundCache::begin_round_for) with
    /// [`CacheDemand::SolverTables`]).
    ///
    /// # Panics
    /// Panics if `queues` and `rates` differ in length.
    pub fn begin_round(&mut self, queues: &[u64], rates: &[f64]) {
        self.begin_round_for(queues, rates, CacheDemand::SolverTables);
    }

    /// Recomputes the per-round tables a run actually consumes: with
    /// [`CacheDemand::ReciprocalRates`] only the (static) reciprocal rates
    /// are kept fresh and the per-round solver tables are cleared, so a
    /// policy reading beyond its declared demand fails loudly instead of
    /// seeing stale data.
    ///
    /// # Panics
    /// Panics if `queues` and `rates` differ in length.
    pub fn begin_round_for(&mut self, queues: &[u64], rates: &[f64], demand: CacheDemand) {
        assert_eq!(
            queues.len(),
            rates.len(),
            "queue-length and rate vectors must describe the same cluster"
        );
        refresh_reciprocal_rates(&mut self.rates_snapshot, &mut self.inv_rates, rates);
        // The memoized solves (and the warm in-round sums) describe the
        // previous round's snapshot.
        self.memo_live.set(0);
        self.warm.advance_generation();
        self.round_generation
            .set(self.round_generation.get().wrapping_add(1));
        self.queues_snapshot.clear();
        self.queues_snapshot.extend_from_slice(queues);
        self.ready_demand = demand;
        self.loads.clear();
        self.scd_keys.clear();
        if demand < CacheDemand::SolverTables {
            return;
        }
        self.loads.extend(
            queues
                .iter()
                .zip(&self.inv_rates)
                .map(|(&q, &inv_mu)| q as f64 * inv_mu),
        );
        self.scd_keys.extend(
            queues
                .iter()
                .zip(&self.inv_rates)
                .map(|(&q, &inv_mu)| (2.0 * q as f64 + 1.0) * inv_mu),
        );
    }

    /// Delta refresh: repairs only the servers the engine reports dirty
    /// instead of refilling every per-round table.
    ///
    /// `dirty` must be a superset of the servers whose queue length differs
    /// from the snapshot of the previous `begin_round*` call (the engine's
    /// round-to-round dirty set satisfies this by construction; duplicates
    /// are harmless). The repaired entries are computed with exactly the
    /// arithmetic of the full refresh over unchanged reciprocals, so a delta
    /// round is **bit-identical** to [`begin_round_for`] — asserted in debug
    /// builds by comparing the tracked snapshot against `queues`.
    ///
    /// Falls back to the full refresh whenever the incremental invariants do
    /// not hold: first use, a cluster-size or rate change, or a demand wider
    /// than the previous refresh filled.
    ///
    /// [`begin_round_for`]: RoundCache::begin_round_for
    ///
    /// # Panics
    /// Panics if `queues` and `rates` differ in length or `dirty` names a
    /// server out of range.
    pub fn begin_round_delta(
        &mut self,
        queues: &[u64],
        rates: &[f64],
        dirty: &[u32],
        demand: CacheDemand,
    ) {
        assert_eq!(
            queues.len(),
            rates.len(),
            "queue-length and rate vectors must describe the same cluster"
        );
        if self.queues_snapshot.len() != queues.len()
            || self.rates_snapshot != rates
            || self.ready_demand != demand
            || dirty.len() * 2 >= queues.len()
        {
            // First use, a cluster change, a demand change (wider demands
            // need tables the last refresh skipped; narrower demands must
            // clear tables so out-of-contract reads keep failing loudly) —
            // or a dirty set dense enough that branchy per-entry repair
            // costs more than the straight-line full refill.
            self.begin_round_for(queues, rates, demand);
            return;
        }
        self.memo_live.set(0);
        self.warm.advance_generation();
        self.round_generation
            .set(self.round_generation.get().wrapping_add(1));
        if demand >= CacheDemand::SolverTables {
            for &s in dirty {
                let s = s as usize;
                let q = queues[s];
                if self.queues_snapshot[s] == q {
                    continue;
                }
                let inv_mu = self.inv_rates[s];
                self.loads[s] = q as f64 * inv_mu;
                self.scd_keys[s] = (2.0 * q as f64 + 1.0) * inv_mu;
                self.queues_snapshot[s] = q;
            }
        } else {
            for &s in dirty {
                let s = s as usize;
                self.queues_snapshot[s] = queues[s];
            }
        }
        debug_assert_eq!(
            self.queues_snapshot, queues,
            "dirty set missed a changed server — the engine's delta contract is broken"
        );
    }

    /// The warm-start seed store the SCD solver shares across rounds (see
    /// [`WarmSeeds`]). Seeds survive `begin_round*` on purpose — they are
    /// verified hints, not per-round state.
    pub fn warm_seeds(&self) -> &WarmSeeds {
        &self.warm
    }

    /// Number of servers the tables describe.
    pub fn num_servers(&self) -> usize {
        self.inv_rates.len()
    }

    /// Reciprocal rates `1/µ_s`.
    pub fn inv_rates(&self) -> &[f64] {
        &self.inv_rates
    }

    /// Loads `q_s/µ_s` of the current round's snapshot.
    pub fn loads(&self) -> &[f64] {
        &self.loads
    }

    /// Corollary 1 candidate keys `(2q_s + 1)/µ_s` of the current snapshot.
    pub fn scd_keys(&self) -> &[f64] {
        &self.scd_keys
    }

    /// Looks up a memoized solver result for this round.
    ///
    /// On a hit, copies the memoized probability vector into `out` (cleared
    /// first) and returns the memoized ideal workload — bit-for-bit what the
    /// corresponding fresh solve produced. `a_est` is compared by bit
    /// pattern; `kind` is an opaque discriminant chosen by the caller (the
    /// solver crate tags its algorithms). Hits and misses are counted; see
    /// [`solver_memo_stats`](RoundCache::solver_memo_stats).
    ///
    /// Only valid between [`begin_round`](RoundCache::begin_round) calls:
    /// the memo is keyed by `(a_est, kind)` alone because the remaining
    /// solver inputs (snapshot, rates) are fixed within a round.
    pub fn solver_memo_lookup(&self, a_est: f64, kind: u8, out: &mut Vec<f64>) -> Option<f64> {
        let memo = self.memo.borrow();
        for entry in &memo[..self.memo_live.get()] {
            if entry.kind == kind && entry.a_est.to_bits() == a_est.to_bits() {
                if entry.probabilities.is_empty() {
                    // The entry was created by the dispatch-kernel path
                    // ([`sampler_memo_build_draw`](RoundCache::sampler_memo_build_draw)),
                    // which stores only the finished table: there is no
                    // distribution to return, so report a miss and let the
                    // caller re-solve instead of handing back an empty
                    // vector. (A solved distribution always has one entry
                    // per server, so emptiness is an unambiguous marker.)
                    break;
                }
                out.clear();
                out.extend_from_slice(&entry.probabilities);
                self.memo_hits.set(self.memo_hits.get() + 1);
                return Some(entry.iwl);
            }
        }
        self.memo_misses.set(self.memo_misses.get() + 1);
        None
    }

    /// Stores one solver result in the per-round memo, reusing a dead
    /// entry's buffer when available. Beyond a fixed cap of live entries
    /// (32 — one entry exists per distinct estimate, bounded by the
    /// dispatcher count) the store is silently dropped; later equal
    /// estimates simply solve again.
    pub fn solver_memo_store(&self, a_est: f64, kind: u8, iwl: f64, probabilities: &[f64]) {
        let live = self.memo_live.get();
        if live >= SOLVER_MEMO_CAP {
            return;
        }
        let mut memo = self.memo.borrow_mut();
        if live < memo.len() {
            let entry = &mut memo[live];
            entry.a_est = a_est;
            entry.kind = kind;
            entry.iwl = iwl;
            entry.probabilities.clear();
            entry.probabilities.extend_from_slice(probabilities);
            entry.has_sampler = false;
            entry.class_sampler = false;
        } else {
            memo.push(SolverMemoEntry {
                a_est,
                kind,
                iwl,
                probabilities: probabilities.to_vec(),
                sampler: crate::sampler::AliasSampler::default(),
                has_sampler: false,
                class_sampler: false,
            });
        }
        self.memo_live.set(live + 1);
    }

    /// Draws `batch` destinations straight from the memoized **alias
    /// table** for `(a_est, kind)`, with zero copying: the table lives
    /// inside the memo entry ([`sampler_memo_build_draw`]) and the draws
    /// are bit-identical to draws from any private rebuild of the same
    /// probabilities. Returns the memoized ideal workload on a hit; `None`
    /// when no entry (or no table) exists — the caller solves and calls
    /// [`sampler_memo_build_draw`](RoundCache::sampler_memo_build_draw).
    ///
    /// Hits count toward [`solver_memo_stats`](RoundCache::solver_memo_stats);
    /// misses are not counted here (the caller's fallback path counts its
    /// own lookup).
    ///
    /// [`sampler_memo_build_draw`]: RoundCache::sampler_memo_build_draw
    pub fn sampler_memo_draw(
        &self,
        a_est: f64,
        kind: u8,
        batch: usize,
        out: &mut Vec<crate::ServerId>,
        rng: &mut dyn rand::RngCore,
    ) -> Option<f64> {
        let memo = self.memo.borrow();
        for entry in &memo[..self.memo_live.get()] {
            if entry.kind == kind && entry.a_est.to_bits() == a_est.to_bits() {
                if !entry.has_sampler || entry.class_sampler {
                    // No table yet, or a class-level table whose columns are
                    // class indices — either way this per-server consumer
                    // must solve for itself.
                    return None;
                }
                out.extend((0..batch).map(|_| crate::ServerId::new(entry.sampler.sample(rng))));
                self.memo_hits.set(self.memo_hits.get() + 1);
                return Some(entry.iwl);
            }
        }
        None
    }

    /// Builds the alias table for `(a_est, kind)` **in place inside a fresh
    /// memo entry** — via [`AliasSampler::rebuild_with_total`] when the
    /// caller knows the exact index-order weight sum, the validating
    /// [`AliasSampler::rebuild`] otherwise — draws `batch` destinations
    /// from it, and returns `true`. Returns `false` without drawing when
    /// the memo is at capacity (the caller builds a private table instead).
    ///
    /// The created entry carries an **empty probability vector**: dispatch
    /// consumers share finished tables, so storing the distribution twice
    /// would be pure copying cost.
    /// [`solver_memo_lookup`](RoundCache::solver_memo_lookup) treats such
    /// an entry as a miss (emptiness is unambiguous — a solved
    /// distribution always has one entry per server), so mixing the two
    /// consumption styles under one key is safe, merely unshared.
    ///
    /// [`AliasSampler::rebuild_with_total`]: crate::AliasSampler::rebuild_with_total
    /// [`AliasSampler::rebuild`]: crate::AliasSampler::rebuild
    #[allow(clippy::too_many_arguments)] // engine-facing dispatch path: full decision state
    pub fn sampler_memo_build_draw(
        &self,
        a_est: f64,
        kind: u8,
        iwl: f64,
        weights: &[f64],
        total: Option<f64>,
        batch: usize,
        out: &mut Vec<crate::ServerId>,
        rng: &mut dyn rand::RngCore,
    ) -> bool {
        let live = self.memo_live.get();
        if live >= SOLVER_MEMO_CAP {
            return false;
        }
        let mut memo = self.memo.borrow_mut();
        if live >= memo.len() {
            memo.push(SolverMemoEntry::default());
        }
        let entry = &mut memo[live];
        entry.a_est = a_est;
        entry.kind = kind;
        entry.iwl = iwl;
        entry.probabilities.clear();
        match total {
            Some(total) if total > 0.0 => entry.sampler.rebuild_with_total(weights, total),
            _ => {
                if entry.sampler.rebuild(weights).is_err() {
                    // Degenerate weights cannot come out of a successful
                    // solve; refuse the entry and let the caller's private
                    // rebuild surface the error.
                    return false;
                }
            }
        }
        entry.has_sampler = true;
        entry.class_sampler = false;
        self.memo_live.set(live + 1);
        out.extend((0..batch).map(|_| crate::ServerId::new(entry.sampler.sample(rng))));
        true
    }

    /// The round's `(rate, q)` class partition
    /// ([`ClassPartition`](crate::ClassPartition)), built lazily from the
    /// cache's own tracked snapshot on the first call of each round and
    /// shared by every later caller of the round. Returns `None` when the
    /// snapshot is not viable for compression (see the partition's module
    /// docs) or no round has begun — the decision is a pure function of the
    /// round state, so delta/full/sharded replays agree on it.
    pub fn class_partition(&self) -> Option<std::cell::Ref<'_, crate::ClassPartition>> {
        let round = self.round_generation.get();
        if self.classes_generation.get() != round {
            let mut part = self.classes.borrow_mut();
            part.build(&self.queues_snapshot, &self.rates_snapshot);
            drop(part);
            self.classes_generation.set(round);
        }
        let part = self.classes.borrow();
        if part.is_built() {
            Some(part)
        } else {
            None
        }
    }

    /// Draws `batch` destinations from the memoized **class-level alias
    /// table** for `(a_est, kind)`: per job, one alias draw picks a class
    /// and one further `u64` picks a uniform member of that class through
    /// the round's [`class_partition`](RoundCache::class_partition).
    /// Returns the memoized ideal workload on a hit; `None` when no
    /// class-table entry exists (per-server entries under the same key are
    /// skipped — the flags keep the two consumption styles apart).
    ///
    /// # Panics
    /// Debug builds panic if the partition was not built this round (a
    /// class entry can only have been stored through
    /// [`class_sampler_memo_build_draw`](RoundCache::class_sampler_memo_build_draw),
    /// which requires it).
    pub fn class_sampler_memo_draw(
        &self,
        a_est: f64,
        kind: u8,
        batch: usize,
        out: &mut Vec<crate::ServerId>,
        rng: &mut dyn rand::RngCore,
    ) -> Option<f64> {
        let memo = self.memo.borrow();
        for entry in &memo[..self.memo_live.get()] {
            if entry.kind == kind && entry.a_est.to_bits() == a_est.to_bits() {
                if !entry.has_sampler || !entry.class_sampler {
                    return None;
                }
                let part = self.classes.borrow();
                debug_assert!(
                    part.is_built(),
                    "class memo entry stored without a built partition"
                );
                out.extend((0..batch).map(|_| {
                    let class = entry.sampler.sample(rng);
                    crate::ServerId::new(part.member(class, rng.next_u64()) as usize)
                }));
                self.memo_hits.set(self.memo_hits.get() + 1);
                return Some(entry.iwl);
            }
        }
        None
    }

    /// Builds a **class-level** alias table for `(a_est, kind)` in place
    /// inside a fresh memo entry (the class-partition counterpart of
    /// [`sampler_memo_build_draw`](RoundCache::sampler_memo_build_draw)),
    /// draws `batch` destinations through the two-level scheme of
    /// [`class_sampler_memo_draw`](RoundCache::class_sampler_memo_draw),
    /// and returns `true`. Returns `false` without drawing when the memo is
    /// at capacity or the weights are degenerate (the caller builds a
    /// private table instead). `weights` must be indexed by canonical class
    /// order; the partition must have been built this round.
    #[allow(clippy::too_many_arguments)] // engine-facing dispatch path: full decision state
    pub fn class_sampler_memo_build_draw(
        &self,
        a_est: f64,
        kind: u8,
        iwl: f64,
        weights: &[f64],
        total: Option<f64>,
        batch: usize,
        out: &mut Vec<crate::ServerId>,
        rng: &mut dyn rand::RngCore,
    ) -> bool {
        let live = self.memo_live.get();
        if live >= SOLVER_MEMO_CAP {
            return false;
        }
        let mut memo = self.memo.borrow_mut();
        if live >= memo.len() {
            memo.push(SolverMemoEntry::default());
        }
        let entry = &mut memo[live];
        entry.a_est = a_est;
        entry.kind = kind;
        entry.iwl = iwl;
        entry.probabilities.clear();
        match total {
            Some(total) if total > 0.0 => entry.sampler.rebuild_with_total(weights, total),
            _ => {
                if entry.sampler.rebuild(weights).is_err() {
                    return false;
                }
            }
        }
        entry.has_sampler = true;
        entry.class_sampler = true;
        self.memo_live.set(live + 1);
        let part = self.classes.borrow();
        debug_assert!(
            part.is_built(),
            "class tables require a built partition for the member draws"
        );
        out.extend((0..batch).map(|_| {
            let class = entry.sampler.sample(rng);
            crate::ServerId::new(part.member(class, rng.next_u64()) as usize)
        }));
        true
    }

    /// Cumulative `(hits, misses)` of the solver memo over this cache's
    /// lifetime (i.e. over a simulation run — the counters survive
    /// [`begin_round`](RoundCache::begin_round), only the entries are
    /// invalidated).
    pub fn solver_memo_stats(&self) -> (u64, u64) {
        (self.memo_hits.get(), self.memo_misses.get())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_match_the_private_computation() {
        let queues = [4u64, 0, 7];
        let rates = [2.0, 0.5, 7.0];
        let mut cache = RoundCache::new();
        cache.begin_round(&queues, &rates);
        assert_eq!(cache.num_servers(), 3);
        for s in 0..3 {
            let inv = 1.0 / rates[s];
            // Bit-identical, not merely close: the cache must reproduce the
            // exact expression policies used privately.
            assert_eq!(cache.inv_rates()[s], inv);
            assert_eq!(cache.loads()[s], queues[s] as f64 * inv);
            assert_eq!(cache.scd_keys()[s], (2.0 * queues[s] as f64 + 1.0) * inv);
        }
    }

    #[test]
    fn rounds_refresh_loads_but_not_reciprocals() {
        let rates = [2.0, 4.0];
        let mut cache = RoundCache::new();
        cache.begin_round(&[0, 0], &rates);
        let inv_before = cache.inv_rates().to_vec();
        cache.begin_round(&[5, 1], &rates);
        assert_eq!(cache.inv_rates(), &inv_before[..]);
        assert_eq!(cache.loads(), &[2.5, 0.25]);
    }

    #[test]
    fn rate_changes_rebuild_the_reciprocals() {
        let mut cache = RoundCache::new();
        cache.begin_round(&[1], &[2.0]);
        assert_eq!(cache.inv_rates(), &[0.5]);
        cache.begin_round(&[1, 1], &[2.0, 8.0]);
        assert_eq!(cache.inv_rates(), &[0.5, 0.125]);
    }

    #[test]
    #[should_panic(expected = "same cluster")]
    fn mismatched_lengths_panic() {
        RoundCache::new().begin_round(&[1, 2], &[1.0]);
    }

    #[test]
    fn reciprocal_only_demand_skips_and_clears_solver_tables() {
        let mut cache = RoundCache::new();
        cache.begin_round(&[3, 1], &[2.0, 1.0]);
        assert_eq!(cache.loads().len(), 2);
        // A reciprocal-only round keeps inv_rates fresh but empties the
        // per-round tables so out-of-contract reads fail loudly.
        cache.begin_round_for(&[4, 2], &[2.0, 1.0], CacheDemand::ReciprocalRates);
        assert_eq!(cache.inv_rates(), &[0.5, 1.0]);
        assert!(cache.loads().is_empty());
        assert!(cache.scd_keys().is_empty());
    }

    #[test]
    fn cache_demand_orders_none_below_reciprocals_below_tables() {
        assert!(CacheDemand::None < CacheDemand::ReciprocalRates);
        assert!(CacheDemand::ReciprocalRates < CacheDemand::SolverTables);
        assert_eq!(CacheDemand::default(), CacheDemand::None);
    }

    #[test]
    fn solver_memo_round_trips_and_counts() {
        let cache = RoundCache::new();
        let mut out = Vec::new();
        assert_eq!(cache.solver_memo_lookup(6.0, 0, &mut out), None);
        cache.solver_memo_store(6.0, 0, 1.25, &[0.5, 0.5]);
        assert_eq!(cache.solver_memo_lookup(6.0, 0, &mut out), Some(1.25));
        assert_eq!(out, vec![0.5, 0.5]);
        // Different kind or different estimate: miss.
        assert_eq!(cache.solver_memo_lookup(6.0, 1, &mut out), None);
        assert_eq!(cache.solver_memo_lookup(7.0, 0, &mut out), None);
        assert_eq!(cache.solver_memo_stats(), (1, 3));
    }

    #[test]
    fn begin_round_invalidates_memo_entries_but_keeps_counters() {
        let mut cache = RoundCache::new();
        cache.begin_round(&[1, 2], &[1.0, 2.0]);
        cache.solver_memo_store(4.0, 0, 2.0, &[1.0, 0.0]);
        let mut out = Vec::new();
        assert!(cache.solver_memo_lookup(4.0, 0, &mut out).is_some());
        cache.begin_round(&[3, 2], &[1.0, 2.0]);
        // New round, same estimate: the old solve no longer applies.
        assert_eq!(cache.solver_memo_lookup(4.0, 0, &mut out), None);
        assert_eq!(cache.solver_memo_stats(), (1, 1));
    }

    #[test]
    fn solver_memo_store_saturates_at_the_cap() {
        let cache = RoundCache::new();
        let mut out = Vec::new();
        for i in 0..(SOLVER_MEMO_CAP + 5) {
            cache.solver_memo_store(i as f64, 0, 0.0, &[1.0]);
        }
        // Entries within the cap are retrievable; the overflow was dropped.
        assert!(cache
            .solver_memo_lookup((SOLVER_MEMO_CAP - 1) as f64, 0, &mut out)
            .is_some());
        assert!(cache
            .solver_memo_lookup(SOLVER_MEMO_CAP as f64, 0, &mut out)
            .is_none());
    }

    #[test]
    fn delta_refresh_matches_the_full_refresh_bit_for_bit() {
        use rand::Rng;
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(0xD1217);
        let n = 24usize;
        let rates: Vec<f64> = (0..n).map(|_| rng.gen_range(0.5..12.0)).collect();
        let mut queues: Vec<u64> = (0..n).map(|_| rng.gen_range(0..20)).collect();
        let mut delta = RoundCache::new();
        let mut full = RoundCache::new();
        delta.begin_round_delta(&queues, &rates, &[], CacheDemand::SolverTables);
        full.begin_round(&queues, &rates);
        for _round in 0..200 {
            // Mutate a few servers; the dirty set lists them (with a
            // duplicate and an unchanged server to exercise both edges).
            let k = rng.gen_range(0..5usize);
            let mut dirty: Vec<u32> = (0..k).map(|_| rng.gen_range(0..n) as u32).collect();
            for &s in &dirty {
                queues[s as usize] = rng.gen_range(0..20);
            }
            if k > 0 {
                dirty.push(dirty[0]);
            }
            dirty.push(rng.gen_range(0..n) as u32); // possibly unchanged
            let extra = *dirty.last().unwrap() as usize;
            let _ = extra;
            delta.begin_round_delta(&queues, &rates, &dirty, CacheDemand::SolverTables);
            full.begin_round(&queues, &rates);
            assert_eq!(delta.loads(), full.loads());
            assert_eq!(delta.scd_keys(), full.scd_keys());
            assert_eq!(delta.inv_rates(), full.inv_rates());
        }
    }

    #[test]
    fn delta_refresh_falls_back_on_shape_or_demand_changes() {
        let mut cache = RoundCache::new();
        // First use: no snapshot yet → full refresh despite the empty dirty
        // set.
        cache.begin_round_delta(&[3, 1], &[2.0, 1.0], &[], CacheDemand::SolverTables);
        assert_eq!(cache.loads(), &[1.5, 1.0]);
        // Cluster-size change → full refresh.
        cache.begin_round_delta(&[1, 1, 1], &[1.0, 2.0, 4.0], &[], CacheDemand::SolverTables);
        assert_eq!(cache.loads(), &[1.0, 0.5, 0.25]);
        // A reciprocal-only refresh empties the tables; widening the demand
        // afterwards must refill them in full.
        cache.begin_round_delta(
            &[2, 1, 1],
            &[1.0, 2.0, 4.0],
            &[0],
            CacheDemand::ReciprocalRates,
        );
        assert!(cache.loads().is_empty());
        cache.begin_round_delta(
            &[4, 1, 1],
            &[1.0, 2.0, 4.0],
            &[0],
            CacheDemand::SolverTables,
        );
        assert_eq!(cache.loads(), &[4.0, 0.5, 0.25]);
    }

    #[test]
    fn delta_refresh_invalidates_the_solver_memo() {
        let mut cache = RoundCache::new();
        cache.begin_round(&[1, 2], &[1.0, 2.0]);
        cache.solver_memo_store(4.0, 0, 2.0, &[1.0, 0.0]);
        let mut out = Vec::new();
        assert!(cache.solver_memo_lookup(4.0, 0, &mut out).is_some());
        cache.begin_round_delta(&[1, 3], &[1.0, 2.0], &[1], CacheDemand::SolverTables);
        assert_eq!(cache.solver_memo_lookup(4.0, 0, &mut out), None);
    }

    #[test]
    fn warm_seeds_round_trip_and_survive_rounds() {
        let mut cache = RoundCache::new();
        cache.begin_round(&[1, 2], &[1.0, 2.0]);
        assert_eq!(cache.warm_seeds().level(), None);
        cache.warm_seeds().set_level(1.25);
        cache.warm_seeds().set_lambda(-0.5);
        cache.warm_seeds().record_accept();
        cache.warm_seeds().record_fallback();
        // Seeds are verified hints: they deliberately survive the per-round
        // invalidation that clears the solver memo.
        cache.begin_round(&[5, 2], &[1.0, 2.0]);
        assert_eq!(cache.warm_seeds().level(), Some(1.25));
        assert_eq!(cache.warm_seeds().lambda(), Some(-0.5));
        assert_eq!(cache.warm_seeds().stats(), (1, 1));
        cache.warm_seeds().clear();
        assert_eq!(cache.warm_seeds().level(), None);
        assert_eq!(cache.warm_seeds().stats(), (1, 1), "counters survive clear");
    }

    #[test]
    fn probability_lookup_misses_sampler_only_entries() {
        // The dispatch kernel stores table-only entries (empty probability
        // vector); a probability-memo consumer hitting the same key must
        // see a miss and re-solve, never an empty distribution.
        use rand::SeedableRng;
        let mut cache = RoundCache::new();
        cache.begin_round(&[3, 1], &[2.0, 1.0]);
        let mut out = Vec::new();
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let mut draws = Vec::new();
        assert!(cache.sampler_memo_build_draw(
            6.0,
            0,
            1.25,
            &[0.5, 0.5],
            None,
            4,
            &mut draws,
            &mut rng
        ));
        assert_eq!(draws.len(), 4);
        assert_eq!(
            cache.solver_memo_lookup(6.0, 0, &mut out),
            None,
            "table-only entries must not satisfy probability lookups"
        );
        // The table itself keeps serving draws.
        assert!(cache
            .sampler_memo_draw(6.0, 0, 2, &mut draws, &mut rng)
            .is_some());
    }

    #[test]
    fn reciprocal_helper_matches_the_refresh_path() {
        let rates = [2.0, 0.5, 7.0];
        let fresh = reciprocal_rates(&rates);
        let mut snapshot = Vec::new();
        let mut inv = Vec::new();
        refresh_reciprocal_rates(&mut snapshot, &mut inv, &rates);
        assert_eq!(fresh, inv);
    }
}
