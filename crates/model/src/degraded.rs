//! Degraded-information primitives of the scenario layer.
//!
//! The fair-weather engine promises every dispatcher a fresh snapshot of a
//! fully-up cluster. The scenario layer (see `crates/sim/src/scenario.rs` and
//! the "Scenario layer" section of `ARCHITECTURE.md`) weakens that promise
//! deterministically: servers crash and repair, probes get lost, snapshots go
//! stale. This module holds the two pieces of that machinery which policies
//! observe through the [`DispatchContext`](crate::DispatchContext):
//!
//! * [`Availability`] — the round's server up/down mask, maintained by the
//!   engine's fault phase and consulted by every mask-aware policy. Down
//!   servers freeze their queues and leave the active set; dispatching to
//!   one is a [`ModelError::ServerDown`](crate::ModelError) contract
//!   violation.
//! * [`ProbeLossOracle`] — a counter-mode oracle deciding, per `(dispatcher,
//!   round, probe)`, whether a probe of the probe-marking policies (LSQ,
//!   LED) was delivered. Being a pure function of the derived stream seeds,
//!   its verdicts are identical for any sharding of the cluster.
//!
//! Both are **decision-invisible when inert**: with every server up and a
//! zero loss rate, a context carrying them produces bit-identical policy
//! behaviour to one without (the scenario equivalence tests pin this down).

use crate::streams::{counter_draw, unit_f64};
use std::cell::Cell;

/// The per-round server availability mask of a scenario run.
///
/// The engine's fault phase drives it: [`begin_round`](Availability::begin_round)
/// opens the round, [`set`](Availability::set) applies that round's
/// crash/repair transitions (recording every flip), and
/// [`refresh`](Availability::refresh) rebuilds the compact
/// [`up_list`](Availability::up_list) that sampling policies draw from.
/// Policies receive it read-only through the context and must treat a down
/// server as non-existent: argmin families exclude it from the key order,
/// sampling families renormalize over the up set, and the SCD/TWF solvers
/// solve the compacted subproblem.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Availability {
    up: Vec<bool>,
    up_list: Vec<u32>,
    changed: Vec<u32>,
}

impl Availability {
    /// A mask over `n` servers with every server up.
    pub fn all_up(n: usize) -> Self {
        Availability {
            up: vec![true; n],
            up_list: (0..n as u32).collect(),
            changed: Vec::new(),
        }
    }

    /// Number of servers the mask describes.
    pub fn num_servers(&self) -> usize {
        self.up.len()
    }

    /// Opens a new round: forgets the previous round's transition record.
    pub fn begin_round(&mut self) {
        self.changed.clear();
    }

    /// Applies one transition; a flip (up→down or down→up) is recorded in
    /// [`changed`](Availability::changed). Call
    /// [`refresh`](Availability::refresh) once all transitions of the round
    /// are in.
    ///
    /// # Panics
    /// Panics if `server` is out of range.
    pub fn set(&mut self, server: usize, up: bool) {
        if self.up[server] != up {
            self.up[server] = up;
            self.changed.push(server as u32);
        }
    }

    /// Rebuilds the compact up-list after the round's transitions.
    pub fn refresh(&mut self) {
        self.up_list.clear();
        self.up_list
            .extend((0..self.up.len() as u32).filter(|&s| self.up[s as usize]));
    }

    /// Whether one server is up.
    ///
    /// # Panics
    /// Panics if `server` is out of range.
    pub fn is_up(&self, server: usize) -> bool {
        self.up[server]
    }

    /// The indices of the up servers, ascending. Valid since the last
    /// [`refresh`](Availability::refresh).
    pub fn up_list(&self) -> &[u32] {
        &self.up_list
    }

    /// The servers whose availability flipped this round (since
    /// [`begin_round`](Availability::begin_round)), in application order.
    /// Warm argmin structures use this to repair exactly the keys the mask
    /// invalidated.
    pub fn changed(&self) -> &[u32] {
        &self.changed
    }

    /// Number of up servers.
    pub fn num_up(&self) -> usize {
        self.up_list.len()
    }

    /// Whether every server is up — the inert case in which mask-aware
    /// policies must be bit-identical to their unmasked selves.
    pub fn all_servers_up(&self) -> bool {
        self.up_list.len() == self.up.len()
    }
}

/// Counter-mode probe-loss oracle for the probe-marking policies (LSQ, LED).
///
/// Holds one derived stream seed per dispatcher (seeded from the scenario
/// master under `PROBE_LOSS_STREAM_TAG` with the dispatcher's **global** id,
/// so shards replay the identical loss schedule) and a loss probability.
/// Each `(round, probe)` verdict is a pure function of the seed, which makes
/// the schedule independent of the order in which dispatchers consult it.
/// Losses are tallied internally (the policies that consult the oracle are
/// the only witnesses of a loss) and drained into the report's degradation
/// metrics by the engine.
#[derive(Debug, Clone)]
pub struct ProbeLossOracle {
    seeds: Vec<u64>,
    rate: f64,
    dropped: Cell<u64>,
}

impl ProbeLossOracle {
    /// Creates the oracle from per-dispatcher stream seeds and a loss
    /// probability in `[0, 1]`.
    ///
    /// # Panics
    /// Panics if `rate` is not a probability.
    pub fn new(seeds: Vec<u64>, rate: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&rate),
            "probe loss rate must be a probability, got {rate}"
        );
        ProbeLossOracle {
            seeds,
            rate,
            dropped: Cell::new(0),
        }
    }

    /// Whether probe number `probe` of `dispatcher` in `round` was lost;
    /// a loss is tallied in [`dropped`](ProbeLossOracle::dropped).
    ///
    /// # Panics
    /// Panics if `dispatcher` has no seed.
    pub fn lost(&self, dispatcher: usize, round: u64, probe: u64) -> bool {
        let round_seed = counter_draw(self.seeds[dispatcher], round);
        let lost = unit_f64(counter_draw(round_seed, probe)) < self.rate;
        if lost {
            self.dropped.set(self.dropped.get().saturating_add(1));
        }
        lost
    }

    /// Total probes lost so far.
    pub fn dropped(&self) -> u64 {
        self.dropped.get()
    }

    /// Preloads the loss tally — used when resuming from a checkpoint, so
    /// the drained degradation metrics continue from the interrupted run's
    /// count instead of restarting at zero.
    pub fn preload_dropped(&self, dropped: u64) {
        self.dropped.set(dropped);
    }
}

/// The degraded-information view one dispatcher's context carries: the
/// round's availability mask, the probe-loss oracle (when the scenario has
/// one), and the slot identifying the dispatcher to the oracle.
#[derive(Debug, Clone, Copy)]
pub struct DegradedView<'a> {
    availability: &'a Availability,
    probe_loss: Option<&'a ProbeLossOracle>,
    dispatcher_slot: usize,
}

impl<'a> DegradedView<'a> {
    /// Bundles the scenario state for one dispatcher's context.
    pub fn new(
        availability: &'a Availability,
        probe_loss: Option<&'a ProbeLossOracle>,
        dispatcher_slot: usize,
    ) -> Self {
        DegradedView {
            availability,
            probe_loss,
            dispatcher_slot,
        }
    }

    /// The round's availability mask.
    pub fn availability(&self) -> &'a Availability {
        self.availability
    }

    /// Whether probe number `probe` of this dispatcher in `round` reached an
    /// up server and came back. The loss draw is consumed (and tallied)
    /// before the target's availability is checked, so the loss schedule is
    /// independent of dispatching decisions.
    pub fn probe_delivered(&self, round: u64, probe: u64, target: usize) -> bool {
        if let Some(oracle) = self.probe_loss {
            if oracle.lost(self.dispatcher_slot, round, probe) {
                return false;
            }
        }
        self.availability.is_up(target)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::streams::{derive_stream_seed, PROBE_LOSS_STREAM_TAG};

    #[test]
    fn availability_tracks_transitions_and_up_list() {
        let mut avail = Availability::all_up(4);
        assert!(avail.all_servers_up());
        assert_eq!(avail.up_list(), &[0, 1, 2, 3]);
        avail.begin_round();
        avail.set(2, false);
        avail.set(2, false); // repeated transition is not a flip
        avail.set(0, false);
        avail.refresh();
        assert_eq!(avail.changed(), &[2, 0]);
        assert_eq!(avail.up_list(), &[1, 3]);
        assert_eq!(avail.num_up(), 2);
        assert!(!avail.is_up(2) && avail.is_up(1));
        assert!(!avail.all_servers_up());
        avail.begin_round();
        avail.set(2, true);
        avail.refresh();
        assert_eq!(avail.changed(), &[2]);
        assert_eq!(avail.up_list(), &[1, 2, 3]);
    }

    #[test]
    fn probe_loss_is_deterministic_and_tallied() {
        let seeds: Vec<u64> = (0..3)
            .map(|d| derive_stream_seed(2021, PROBE_LOSS_STREAM_TAG, d))
            .collect();
        let a = ProbeLossOracle::new(seeds.clone(), 0.3);
        let b = ProbeLossOracle::new(seeds, 0.3);
        let mut losses = 0u64;
        for round in 0..200u64 {
            for d in 0..3usize {
                let verdict = a.lost(d, round, 0);
                // Out-of-order replay on an independent oracle agrees.
                assert_eq!(verdict, b.lost(d, round, 0));
                losses += verdict as u64;
            }
        }
        assert_eq!(a.dropped(), losses);
        // ~30% of 600 probes; a deterministic schedule, loosely banded.
        assert!(
            (100..=260).contains(&losses),
            "implausible loss count {losses}"
        );
    }

    #[test]
    fn zero_and_one_loss_rates_are_absolute() {
        let seeds = vec![derive_stream_seed(7, PROBE_LOSS_STREAM_TAG, 0)];
        let never = ProbeLossOracle::new(seeds.clone(), 0.0);
        let always = ProbeLossOracle::new(seeds, 1.0);
        for round in 0..64u64 {
            assert!(!never.lost(0, round, 0));
            assert!(always.lost(0, round, 0));
        }
        assert_eq!(never.dropped(), 0);
        assert_eq!(always.dropped(), 64);
    }

    #[test]
    fn degraded_view_gates_probes_on_loss_then_availability() {
        let mut avail = Availability::all_up(2);
        avail.begin_round();
        avail.set(1, false);
        avail.refresh();
        let view = DegradedView::new(&avail, None, 0);
        assert!(view.probe_delivered(0, 0, 0));
        assert!(!view.probe_delivered(0, 0, 1));
        let seeds = vec![derive_stream_seed(3, PROBE_LOSS_STREAM_TAG, 0)];
        let oracle = ProbeLossOracle::new(seeds, 1.0);
        let lossy = DegradedView::new(&avail, Some(&oracle), 0);
        assert!(!lossy.probe_delivered(0, 0, 0));
        assert_eq!(oracle.dropped(), 1);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn oracle_rejects_non_probability_rates() {
        let _ = ProbeLossOracle::new(vec![1], 1.5);
    }
}
