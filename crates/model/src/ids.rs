//! Typed identifiers for servers and dispatchers.
//!
//! The paper's model (Section 2) has two kinds of participants: a set `S` of
//! `n` servers and a set `D` of `m` dispatchers. Using dedicated newtypes
//! instead of bare `usize` indices prevents the classic bug of indexing the
//! queue-length array with a dispatcher index (or vice versa), at zero runtime
//! cost.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a server (an index into the cluster's rate / queue arrays).
///
/// # Example
/// ```
/// use scd_model::ServerId;
/// let s = ServerId::new(3);
/// assert_eq!(s.index(), 3);
/// assert_eq!(s.to_string(), "server#3");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct ServerId(usize);

impl ServerId {
    /// Creates a server identifier from its index.
    pub fn new(index: usize) -> Self {
        ServerId(index)
    }

    /// Returns the underlying index.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for ServerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "server#{}", self.0)
    }
}

impl From<usize> for ServerId {
    fn from(index: usize) -> Self {
        ServerId(index)
    }
}

impl From<ServerId> for usize {
    fn from(id: ServerId) -> usize {
        id.0
    }
}

/// Identifier of a dispatcher (an entry point for client requests).
///
/// # Example
/// ```
/// use scd_model::DispatcherId;
/// let d = DispatcherId::new(0);
/// assert_eq!(d.index(), 0);
/// assert_eq!(d.to_string(), "dispatcher#0");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct DispatcherId(usize);

impl DispatcherId {
    /// Creates a dispatcher identifier from its index.
    pub fn new(index: usize) -> Self {
        DispatcherId(index)
    }

    /// Returns the underlying index.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for DispatcherId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "dispatcher#{}", self.0)
    }
}

impl From<usize> for DispatcherId {
    fn from(index: usize) -> Self {
        DispatcherId(index)
    }
}

impl From<DispatcherId> for usize {
    fn from(id: DispatcherId) -> usize {
        id.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn server_id_round_trips_through_usize() {
        for i in [0usize, 1, 17, 9999] {
            let id = ServerId::new(i);
            assert_eq!(usize::from(id), i);
            assert_eq!(ServerId::from(i), id);
            assert_eq!(id.index(), i);
        }
    }

    #[test]
    fn dispatcher_id_round_trips_through_usize() {
        for i in [0usize, 2, 31] {
            let id = DispatcherId::new(i);
            assert_eq!(usize::from(id), i);
            assert_eq!(DispatcherId::from(i), id);
        }
    }

    #[test]
    fn ids_are_ordered_and_hashable() {
        assert!(ServerId::new(1) < ServerId::new(2));
        assert!(DispatcherId::new(0) < DispatcherId::new(5));
        let set: HashSet<ServerId> = (0..4).map(ServerId::new).collect();
        assert_eq!(set.len(), 4);
    }

    #[test]
    fn display_is_distinct_per_kind() {
        assert_eq!(ServerId::new(2).to_string(), "server#2");
        assert_eq!(DispatcherId::new(2).to_string(), "dispatcher#2");
    }
}
