//! `(rate, queue-length)` equivalence classes — the compressed snapshot
//! representation behind the mean-field-scale SCD sampler.
//!
//! At datacenter scale (`n = 10^5..10^6` servers) the dominant SCD round
//! cost is the per-distinct-estimate `fill → normalize → alias-rebuild`
//! chain, three `O(n)` passes per solve. But the optimal distribution
//! `p_s = µ_s·(2·iwl − Λ0 − key_s)⁺ / (2(a−1))` is a pure function of the
//! pair `(q_s, µ_s)`: every two servers with the same queue length and the
//! same rate carry *exactly* the same probability. Real clusters have a
//! handful of hardware generations (a handful of distinct rates `R`) and
//! bounded queue lengths, so the number of **distinct** `(q, µ)` pairs `C`
//! is tiny compared to `n` — typically `O(R·q_max) ≈ 10^1..10^3`.
//!
//! A [`ClassPartition`] groups the round's servers into those classes once
//! (`O(n)` counting sort over a dense `(q, rate-class)` cell table), after
//! which every solve and every alias-table build is `O(C)` instead of
//! `O(n)`, and sampling a destination is two uniform draws: one alias draw
//! over the classes, one uniform member pick inside the chosen class.
//! Because members of one class are exactly interchangeable under the
//! solver's distribution, the two-level sampler draws from *the same*
//! per-server distribution the dense chain materializes — only the RNG
//! consumption differs (two `u64` per job instead of one), which is why
//! adopting it is a deliberate sample-path change (goldens re-captured).
//!
//! # Canonical class order
//!
//! Classes are emitted in `(q ascending, rate ascending)` order and members
//! are scattered in server-index order, so the partition is a pure function
//! of the snapshot: delta-repaired and cold rounds, sharded and unsharded
//! runs all build bit-identical partitions.
//!
//! # Viability
//!
//! The dense cell table has `R·(q_max + 1)` entries. When rates are
//! all-distinct (e.g. a continuous `Uniform` rate profile, `R = n`) or
//! queues are extremely deep, the table would dwarf `n` and the compression
//! buys nothing — [`ClassPartition::build`] then reports the round as not
//! viable and callers fall back to the dense per-server path. The predicate
//! is a pure function of the snapshot, so the fallback decision is
//! deterministic and identical across delta/full/sharded replays.

/// Maximum dense-cell-table size, as a multiple of `n` (plus a small
/// constant floor so tiny clusters always compress): beyond this the
/// counting sort's `O(R·q_max)` scan would dominate the `O(n)` passes it
/// replaces.
const CELL_BUDGET_FACTOR: usize = 4;
/// Constant floor added to the cell budget (lets small clusters with
/// moderately deep queues still compress).
const CELL_BUDGET_FLOOR: usize = 64;

/// The per-round `(rate-class, queue-length)` partition of a cluster
/// snapshot. See the module docs for the full story.
///
/// All buffers are reused across rounds; after the first round at a given
/// cluster size a rebuild performs no heap allocations (the dense cell
/// table grows monotonically to the deepest snapshot seen).
#[derive(Debug, Clone, Default)]
pub struct ClassPartition {
    /// The rates the rate-class table was computed for (change detector;
    /// rates are static per run, so this almost never changes).
    rates_snapshot: Vec<f64>,
    /// Sorted distinct rate values (ascending).
    unique_rates: Vec<f64>,
    /// Reciprocals `1/µ` of `unique_rates`, computed with the workspace's
    /// canonical `1.0/µ` expression.
    unique_inv: Vec<f64>,
    /// Per-server rate-class index into `unique_rates`.
    rate_class: Vec<u32>,
    /// Whether the last `build` produced a usable partition.
    built: bool,
    /// Number of live classes `C`.
    num_classes: usize,
    /// Per-class queue length.
    class_q: Vec<u64>,
    /// Per-class service rate `µ`.
    class_mu: Vec<f64>,
    /// Per-class member count.
    class_count: Vec<u32>,
    /// Per-class Corollary 1 key `(2q + 1)·(1/µ)`.
    class_key: Vec<f64>,
    /// Per-class load `q·(1/µ)`.
    class_load: Vec<f64>,
    /// Per-class aggregate queue mass `count·q`.
    class_cq: Vec<f64>,
    /// Per-class aggregate rate `count·µ`.
    class_cmu: Vec<f64>,
    /// Start offset of each class's members in `members`.
    offsets: Vec<u32>,
    /// Server indices grouped by class (server-index order within a class).
    members: Vec<u32>,
    /// Dense `(q·R + rate_class)` scratch table (counts, then cursors).
    cells: Vec<u32>,
}

impl ClassPartition {
    /// Creates an empty partition; call [`build`](ClassPartition::build)
    /// before reading it.
    pub fn new() -> Self {
        ClassPartition::default()
    }

    /// Refreshes the static rate-class table when `rates` changed since the
    /// last call (rates are fixed per run, so this is a one-time cost of
    /// `O(n log n)`).
    fn refresh_rate_classes(&mut self, rates: &[f64]) {
        if self.rates_snapshot == rates {
            return;
        }
        self.rates_snapshot.clear();
        self.rates_snapshot.extend_from_slice(rates);
        self.unique_rates.clear();
        self.unique_rates.extend_from_slice(rates);
        self.unique_rates
            .sort_unstable_by(|a, b| a.partial_cmp(b).expect("rates are finite"));
        self.unique_rates.dedup();
        self.unique_inv.clear();
        self.unique_inv
            .extend(self.unique_rates.iter().map(|&mu| 1.0 / mu));
        self.rate_class.clear();
        self.rate_class.extend(rates.iter().map(|&mu| {
            // partition_point over the sorted distinct values gives the
            // exact slot: rates are finite and positive, so `<` is total.
            self.unique_rates.partition_point(|&u| u < mu) as u32
        }));
    }

    /// (Re)builds the partition for one round's queue snapshot. Returns
    /// `true` when the snapshot is viable (see the module docs); on `false`
    /// the partition holds no classes and callers must take the dense
    /// per-server path. Either way the outcome is a pure function of
    /// `(queues, rates)`.
    ///
    /// # Panics
    /// Panics if `queues` and `rates` differ in length.
    pub fn build(&mut self, queues: &[u64], rates: &[f64]) -> bool {
        assert_eq!(
            queues.len(),
            rates.len(),
            "queue-length and rate vectors must describe the same cluster"
        );
        self.built = false;
        self.num_classes = 0;
        let n = queues.len();
        if n == 0 || n > u32::MAX as usize {
            return false;
        }
        self.refresh_rate_classes(rates);
        let r = self.unique_rates.len();
        let qmax = queues.iter().copied().max().unwrap_or(0);
        let budget = (CELL_BUDGET_FACTOR * n + CELL_BUDGET_FLOOR) as u128;
        let cells_len = (qmax as u128 + 1) * r as u128;
        if cells_len > budget {
            return false;
        }
        let cells_len = cells_len as usize;
        self.cells.clear();
        self.cells.resize(cells_len, 0);
        // Pass 1: count members per (q, rate-class) cell.
        for (&q, &rc) in queues.iter().zip(&self.rate_class) {
            self.cells[q as usize * r + rc as usize] += 1;
        }
        // Pass 2: compact the non-empty cells, in cell order (q ascending,
        // rate ascending — the canonical class order), replacing each
        // cell's count with its members' start cursor.
        self.class_q.clear();
        self.class_mu.clear();
        self.class_count.clear();
        self.class_key.clear();
        self.class_load.clear();
        self.class_cq.clear();
        self.class_cmu.clear();
        self.offsets.clear();
        let mut cursor = 0u32;
        for cell in 0..cells_len {
            let count = self.cells[cell];
            if count == 0 {
                continue;
            }
            let q = (cell / r) as u64;
            let rc = cell % r;
            let mu = self.unique_rates[rc];
            let inv = self.unique_inv[rc];
            let qf = q as f64;
            self.class_q.push(q);
            self.class_mu.push(mu);
            self.class_count.push(count);
            self.class_key.push((2.0 * qf + 1.0) * inv);
            self.class_load.push(qf * inv);
            self.class_cq.push(count as f64 * qf);
            self.class_cmu.push(count as f64 * mu);
            self.offsets.push(cursor);
            self.cells[cell] = cursor;
            cursor += count;
        }
        debug_assert_eq!(cursor as usize, n);
        // Pass 3: scatter the members in server-index order.
        self.members.clear();
        self.members.resize(n, 0);
        for (s, (&q, &rc)) in queues.iter().zip(&self.rate_class).enumerate() {
            let cell = q as usize * r + rc as usize;
            let at = self.cells[cell];
            self.members[at as usize] = s as u32;
            self.cells[cell] = at + 1;
        }
        self.num_classes = self.class_q.len();
        self.built = true;
        true
    }

    /// Whether the last [`build`](ClassPartition::build) produced a usable
    /// partition.
    pub fn is_built(&self) -> bool {
        self.built
    }

    /// Number of live classes `C` (0 when not built).
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Number of distinct rates `R` of the current rate table.
    pub fn num_rate_classes(&self) -> usize {
        self.unique_rates.len()
    }

    /// Per-class queue lengths, in canonical class order.
    pub fn qs(&self) -> &[u64] {
        &self.class_q[..self.num_classes]
    }

    /// Per-class service rates `µ`.
    pub fn mus(&self) -> &[f64] {
        &self.class_mu[..self.num_classes]
    }

    /// Per-class member counts.
    pub fn counts(&self) -> &[u32] {
        &self.class_count[..self.num_classes]
    }

    /// Per-class Corollary 1 keys `(2q + 1)/µ`.
    pub fn keys(&self) -> &[f64] {
        &self.class_key[..self.num_classes]
    }

    /// Per-class loads `q/µ`.
    pub fn loads(&self) -> &[f64] {
        &self.class_load[..self.num_classes]
    }

    /// Per-class aggregate queue mass `count·q` (the water-filling sweep's
    /// grouped numerator terms).
    pub fn cq(&self) -> &[f64] {
        &self.class_cq[..self.num_classes]
    }

    /// Per-class aggregate rates `count·µ` (the grouped denominator terms).
    pub fn cmu(&self) -> &[f64] {
        &self.class_cmu[..self.num_classes]
    }

    /// The members of one class, in server-index order.
    ///
    /// # Panics
    /// Panics if `class >= num_classes()`.
    pub fn class_members(&self, class: usize) -> &[u32] {
        assert!(class < self.num_classes, "class {class} out of range");
        let start = self.offsets[class] as usize;
        let end = start + self.class_count[class] as usize;
        &self.members[start..end]
    }

    /// Picks a uniformly random member of `class` from one `u64` draw,
    /// using the same high-32-bit fixed-point reduction
    /// [`AliasSampler::sample`](crate::AliasSampler::sample) uses for its
    /// column pick.
    ///
    /// # Panics
    /// Debug builds panic if `class >= num_classes()`.
    #[inline]
    pub fn member(&self, class: usize, draw: u64) -> u32 {
        debug_assert!(class < self.num_classes, "class {class} out of range");
        let count = self.class_count[class] as u64;
        let idx = ((draw >> 32) * count) >> 32;
        self.members[self.offsets[class] as usize + idx as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partitions_a_bimodal_cluster_canonically() {
        // Two rates, queue depths 0..=2: classes come out in
        // (q asc, rate asc) order with members in server-index order.
        let rates = [4.0, 1.0, 4.0, 1.0, 1.0, 4.0];
        let queues = [0u64, 2, 1, 0, 2, 0];
        let mut part = ClassPartition::new();
        assert!(part.build(&queues, &rates));
        assert_eq!(part.num_rate_classes(), 2);
        // Present (q, µ) pairs: (0,1) {3}, (0,4) {0,5}, (1,4) {2},
        // (2,1) {1,4}.
        assert_eq!(part.num_classes(), 4);
        assert_eq!(part.qs(), &[0, 0, 1, 2]);
        assert_eq!(part.mus(), &[1.0, 4.0, 4.0, 1.0]);
        assert_eq!(part.counts(), &[1, 2, 1, 2]);
        assert_eq!(part.class_members(0), &[3]);
        assert_eq!(part.class_members(1), &[0, 5]);
        assert_eq!(part.class_members(2), &[2]);
        assert_eq!(part.class_members(3), &[1, 4]);
        // Derived tables use the canonical reciprocal arithmetic.
        assert_eq!(part.keys()[2], (2.0 * 1.0 + 1.0) * (1.0 / 4.0));
        assert_eq!(part.loads()[3], 2.0 * (1.0 / 1.0));
        assert_eq!(part.cq(), &[0.0, 0.0, 1.0, 4.0]);
        assert_eq!(part.cmu(), &[1.0, 8.0, 4.0, 2.0]);
    }

    #[test]
    fn all_distinct_rates_are_not_viable_at_depth() {
        // R = n distinct rates with deep queues blows the cell budget.
        let n = 64usize;
        let rates: Vec<f64> = (0..n).map(|i| 1.0 + i as f64 * 0.01).collect();
        let queues: Vec<u64> = (0..n).map(|i| i as u64 * 7).collect();
        let mut part = ClassPartition::new();
        assert!(!part.build(&queues, &rates));
        assert!(!part.is_built());
        assert_eq!(part.num_classes(), 0);
    }

    #[test]
    fn homogeneous_rates_stay_viable_at_any_width() {
        let n = 10_000usize;
        let rates = vec![2.0; n];
        let queues: Vec<u64> = (0..n).map(|i| (i % 17) as u64).collect();
        let mut part = ClassPartition::new();
        assert!(part.build(&queues, &rates));
        assert_eq!(part.num_classes(), 17);
        let total: u32 = part.counts().iter().sum();
        assert_eq!(total as usize, n);
        // Every server appears exactly once across the member lists.
        let mut seen = vec![false; n];
        for c in 0..part.num_classes() {
            for &s in part.class_members(c) {
                assert!(!seen[s as usize]);
                seen[s as usize] = true;
                assert_eq!(queues[s as usize], part.qs()[c]);
            }
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn rebuilds_reuse_the_rate_table_and_follow_the_snapshot() {
        let rates = [1.0, 2.0, 1.0, 2.0];
        let mut part = ClassPartition::new();
        assert!(part.build(&[0, 0, 0, 0], &rates));
        assert_eq!(part.num_classes(), 2);
        assert!(part.build(&[3, 0, 0, 1], &rates));
        assert_eq!(part.qs(), &[0, 0, 1, 3]);
        assert_eq!(part.mus(), &[1.0, 2.0, 2.0, 1.0]);
        assert_eq!(part.class_members(3), &[0]);
    }

    #[test]
    fn member_draw_is_in_range_and_uniformish() {
        let rates = vec![1.0; 8];
        let queues = vec![5u64; 8];
        let mut part = ClassPartition::new();
        assert!(part.build(&queues, &rates));
        assert_eq!(part.num_classes(), 1);
        let mut hits = [0u32; 8];
        let mut x = 0x9E37_79B9_7F4A_7C15u64;
        for _ in 0..8000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let m = part.member(0, x);
            hits[m as usize] += 1;
        }
        assert!(
            hits.iter().all(|&h| h > 700),
            "draws badly skewed: {hits:?}"
        );
    }

    #[test]
    #[should_panic(expected = "same cluster")]
    fn mismatched_lengths_panic() {
        ClassPartition::new().build(&[1, 2], &[1.0]);
    }
}
