//! Weighted sampling of server indices.
//!
//! Stochastic-coordination policies draw the destination of every arriving
//! job from a freshly computed probability vector. With hundreds of servers
//! and potentially hundreds of jobs per dispatcher per round, the sampling
//! step itself matters for the "SCD is as cheap as JSQ" claim of the paper
//! (Section 6.3). This module provides two samplers:
//!
//! * [`AliasSampler`] — Walker/Vose alias method: `O(n)` construction,
//!   `O(1)` per draw. Used by the SCD/TWF/WR policies.
//! * [`CdfSampler`] — cumulative-distribution binary search: `O(n)`
//!   construction, `O(log n)` per draw. Kept as the ablation baseline for the
//!   sampler micro-benchmark.

use crate::error::ModelError;
use rand::Rng;
use rand::RngCore;

/// Walker/Vose alias-method sampler over `0..n`.
///
/// # Example
/// ```
/// use scd_model::AliasSampler;
/// use rand::SeedableRng;
/// let sampler = AliasSampler::new(&[0.7, 0.2, 0.1]).unwrap();
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let draw = sampler.sample(&mut rng);
/// assert!(draw < 3);
/// ```
#[derive(Debug, Clone, Default)]
pub struct AliasSampler {
    /// Probability of keeping column `i` (as opposed to its alias).
    keep: Vec<f64>,
    /// Alias column for each slot.
    alias: Vec<usize>,
    /// Construction scratch (kept so [`rebuild`](AliasSampler::rebuild) is
    /// allocation-free once the table has reached its steady-state size).
    remaining: Vec<f64>,
    small: Vec<usize>,
    large: Vec<usize>,
}

impl AliasSampler {
    /// Builds the alias table from non-negative weights (not necessarily
    /// normalized).
    ///
    /// # Errors
    /// * [`ModelError::EmptyCluster`] for an empty weight vector;
    /// * [`ModelError::InvalidProbability`] for negative or non-finite weights;
    /// * [`ModelError::DegenerateWeights`] when every weight is zero.
    pub fn new(weights: &[f64]) -> Result<Self, ModelError> {
        let mut sampler = AliasSampler::default();
        sampler.rebuild(weights)?;
        Ok(sampler)
    }

    /// Rebuilds the alias table in place from fresh weights, reusing the
    /// existing buffers. After the first round at a given cluster size this
    /// performs no heap allocations — it is the hot path of probability-based
    /// policies (SCD, TWF) that redraw their distribution every round.
    ///
    /// On error the sampler is left unchanged.
    ///
    /// # Errors
    /// Same conditions as [`AliasSampler::new`].
    pub fn rebuild(&mut self, weights: &[f64]) -> Result<(), ModelError> {
        if weights.is_empty() {
            return Err(ModelError::EmptyCluster);
        }
        for (index, &w) in weights.iter().enumerate() {
            if !w.is_finite() || w < 0.0 {
                return Err(ModelError::InvalidProbability { index, value: w });
            }
        }
        let total: f64 = weights.iter().sum();
        if total <= 0.0 {
            return Err(ModelError::DegenerateWeights);
        }
        self.rebuild_scaled(weights, total);
        Ok(())
    }

    /// Like [`rebuild`](AliasSampler::rebuild) for a caller that already
    /// knows the weights are valid **and** knows their sum: skips the
    /// validation and summation passes. The resulting table is
    /// **bit-identical** to `rebuild(weights)`'s provided `total` equals
    /// `weights.iter().sum::<f64>()` bit-for-bit — e.g. a sum accumulated
    /// in index order while the weights were being written (the SCD
    /// solver's normalization pass does exactly that). Both contracts are
    /// checked in debug builds.
    pub fn rebuild_with_total(&mut self, weights: &[f64], total: f64) {
        debug_assert!(
            weights.iter().all(|w| w.is_finite() && *w >= 0.0),
            "rebuild_with_total requires validated weights"
        );
        debug_assert_eq!(
            total.to_bits(),
            weights.iter().sum::<f64>().to_bits(),
            "rebuild_with_total requires the exact index-order sum"
        );
        assert!(
            !weights.is_empty() && total > 0.0,
            "rebuild_with_total requires a non-empty, non-degenerate weight vector"
        );
        let n = weights.len();
        // One fused pass: scale to mean 1.0 and classify small/large. The
        // table slots are resized without zeroing — the pairing and
        // leftover loops below write every slot exactly once (each index
        // exits the worklists through exactly one of them).
        let scale = n as f64 / total;
        self.remaining.clear();
        self.small.clear();
        self.large.clear();
        self.keep.resize(n, 0.0);
        self.alias.resize(n, 0);
        for (i, &w) in weights.iter().enumerate() {
            let p = w * scale;
            self.remaining.push(p);
            if p < 1.0 {
                self.small.push(i);
            } else {
                self.large.push(i);
            }
        }
        // Register-held pairing: [`pair_and_finish`] pops the active large
        // column and pushes it back every iteration (it usually survives
        // several pairings); holding it in a local until it drains performs
        // the *identical pairing sequence* — the popped small is always the
        // small stack's top, the active large is always what the large
        // stack's top would have been — so the finished table is
        // bit-identical, at a fraction of the stack traffic. The leftover
        // writes are independent (`keep = 1`, self-alias), so their order
        // does not matter either.
        let mut large_top = self.large.len();
        let mut active: Option<usize> = None;
        while let Some(&s) = self.small.last() {
            let l = match active {
                Some(l) => l,
                None => {
                    if large_top == 0 {
                        break;
                    }
                    large_top -= 1;
                    self.large[large_top]
                }
            };
            self.small.pop();
            self.keep[s] = self.remaining[s];
            self.alias[s] = l;
            self.remaining[l] = (self.remaining[l] + self.remaining[s]) - 1.0;
            if self.remaining[l] < 1.0 {
                active = None;
                self.small.push(l);
            } else {
                active = Some(l);
            }
        }
        if let Some(l) = active {
            self.keep[l] = 1.0;
            self.alias[l] = l;
        }
        for &l in &self.large[..large_top] {
            self.keep[l] = 1.0;
            self.alias[l] = l;
        }
        for &s in self.small.iter() {
            self.keep[s] = 1.0;
            self.alias[s] = s;
        }
    }

    /// The construction body shared by [`rebuild`](AliasSampler::rebuild)
    /// and [`rebuild_with_total`](AliasSampler::rebuild_with_total):
    /// everything after input validation and summation.
    fn rebuild_scaled(&mut self, weights: &[f64], total: f64) {
        let n = weights.len();

        // Scaled probabilities: mean 1.0.
        let scale = n as f64 / total;
        self.remaining.clear();
        self.remaining.extend(weights.iter().map(|w| w * scale));

        self.keep.clear();
        self.keep.resize(n, 0.0);
        self.alias.clear();
        self.alias.resize(n, 0);
        self.small.clear();
        self.large.clear();
        for (i, &p) in self.remaining.iter().enumerate() {
            if p < 1.0 {
                self.small.push(i);
            } else {
                self.large.push(i);
            }
        }
        self.pair_and_finish();
    }

    /// Walker/Vose pairing over the prepared `remaining`/`small`/`large`
    /// state; writes every `keep`/`alias` slot exactly once.
    fn pair_and_finish(&mut self) {
        while let (Some(&s), Some(&l)) = (self.small.last(), self.large.last()) {
            self.small.pop();
            self.large.pop();
            self.keep[s] = self.remaining[s];
            self.alias[s] = l;
            self.remaining[l] = (self.remaining[l] + self.remaining[s]) - 1.0;
            if self.remaining[l] < 1.0 {
                self.small.push(l);
            } else {
                self.large.push(l);
            }
        }
        // Whatever is left (numerically ~1.0) keeps itself with certainty.
        for &l in self.large.iter() {
            self.keep[l] = 1.0;
            self.alias[l] = l;
        }
        for &s in self.small.iter() {
            self.keep[s] = 1.0;
            self.alias[s] = s;
        }
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.keep.len()
    }

    /// True when the sampler has no categories (cannot happen for a
    /// successfully constructed sampler).
    pub fn is_empty(&self) -> bool {
        self.keep.is_empty()
    }

    /// Draws one index in `O(1)` from a **single** 64-bit RNG draw.
    ///
    /// The draw is split into the two quantities the alias method needs: the
    /// high 32 bits pick the column via Lemire's multiply-shift reduction
    /// (`(hi·n) >> 32`, bias ≤ `n/2³²` — immaterial for cluster-sized `n`),
    /// the low 32 bits become the keep/alias toss on `[0, 1)` with `2⁻³²`
    /// resolution. The previous implementation drew twice per job
    /// (`gen_range` + `gen::<f64>()`); destination sampling is the RNG-bound
    /// inner loop of SCD/TWF/WR dispatch, so halving the draws measurably
    /// trims the dispatch phase.
    pub fn sample(&self, rng: &mut dyn RngCore) -> usize {
        let n = self.keep.len() as u64;
        let r = rng.next_u64();
        let column = (((r >> 32) * n) >> 32) as usize;
        let toss = (r & 0xFFFF_FFFF) as f64 * (1.0 / 4_294_967_296.0);
        if toss < self.keep[column] {
            column
        } else {
            self.alias[column]
        }
    }

    /// Draws `count` indices, reusing the table.
    pub fn sample_many(&self, count: usize, rng: &mut dyn RngCore) -> Vec<usize> {
        (0..count).map(|_| self.sample(rng)).collect()
    }
}

/// Inverse-CDF sampler: binary search over the cumulative weights.
///
/// Retained as a baseline for the sampler ablation benchmark; behaviourally
/// equivalent to [`AliasSampler`].
#[derive(Debug, Clone)]
pub struct CdfSampler {
    cumulative: Vec<f64>,
}

impl CdfSampler {
    /// Builds the cumulative table from non-negative weights.
    ///
    /// # Errors
    /// Same error conditions as [`AliasSampler::new`].
    pub fn new(weights: &[f64]) -> Result<Self, ModelError> {
        if weights.is_empty() {
            return Err(ModelError::EmptyCluster);
        }
        for (index, &w) in weights.iter().enumerate() {
            if !w.is_finite() || w < 0.0 {
                return Err(ModelError::InvalidProbability { index, value: w });
            }
        }
        let total: f64 = weights.iter().sum();
        if total <= 0.0 {
            return Err(ModelError::DegenerateWeights);
        }
        let mut cumulative = Vec::with_capacity(weights.len());
        let mut acc = 0.0;
        for &w in weights {
            acc += w / total;
            cumulative.push(acc);
        }
        // Guard against round-off: the last entry must cover u = 1 - ε.
        if let Some(last) = cumulative.last_mut() {
            *last = 1.0;
        }
        Ok(CdfSampler { cumulative })
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// True when the sampler has no categories.
    pub fn is_empty(&self) -> bool {
        self.cumulative.is_empty()
    }

    /// Draws one index in `O(log n)`.
    pub fn sample(&self, rng: &mut dyn RngCore) -> usize {
        let u: f64 = rng.gen::<f64>();
        match self
            .cumulative
            .binary_search_by(|c| c.partial_cmp(&u).expect("cumulative weights are finite"))
        {
            Ok(i) => (i + 1).min(self.cumulative.len() - 1),
            Err(i) => i.min(self.cumulative.len() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn empirical_distribution(
        sampler: &dyn Fn(&mut StdRng) -> usize,
        n: usize,
        draws: usize,
        seed: u64,
    ) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut counts = vec![0usize; n];
        for _ in 0..draws {
            counts[sampler(&mut rng)] += 1;
        }
        counts.iter().map(|&c| c as f64 / draws as f64).collect()
    }

    #[test]
    fn alias_rejects_bad_input() {
        assert!(AliasSampler::new(&[]).is_err());
        assert!(AliasSampler::new(&[0.0, 0.0]).is_err());
        assert!(AliasSampler::new(&[1.0, -2.0]).is_err());
        assert!(AliasSampler::new(&[1.0, f64::NAN]).is_err());
    }

    #[test]
    fn cdf_rejects_bad_input() {
        assert!(CdfSampler::new(&[]).is_err());
        assert!(CdfSampler::new(&[0.0]).is_err());
        assert!(CdfSampler::new(&[-1.0, 2.0]).is_err());
    }

    #[test]
    fn alias_matches_weights_empirically() {
        let weights = [0.5, 0.3, 0.15, 0.05];
        let sampler = AliasSampler::new(&weights).unwrap();
        let freq = empirical_distribution(&|rng| sampler.sample(rng), 4, 200_000, 11);
        for (i, &w) in weights.iter().enumerate() {
            assert!(
                (freq[i] - w).abs() < 0.01,
                "category {i}: expected {w}, observed {}",
                freq[i]
            );
        }
    }

    #[test]
    fn cdf_matches_weights_empirically() {
        let weights = [1.0, 4.0, 5.0];
        let sampler = CdfSampler::new(&weights).unwrap();
        let freq = empirical_distribution(&|rng| sampler.sample(rng), 3, 200_000, 5);
        let expected = [0.1, 0.4, 0.5];
        for i in 0..3 {
            assert!(
                (freq[i] - expected[i]).abs() < 0.01,
                "category {i}: expected {}, observed {}",
                expected[i],
                freq[i]
            );
        }
    }

    #[test]
    fn zero_weight_categories_are_never_drawn() {
        let weights = [0.0, 1.0, 0.0, 2.0];
        let alias = AliasSampler::new(&weights).unwrap();
        let cdf = CdfSampler::new(&weights).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let a = alias.sample(&mut rng);
            assert!(a == 1 || a == 3, "alias drew zero-weight category {a}");
            let c = cdf.sample(&mut rng);
            assert!(c == 1 || c == 3, "cdf drew zero-weight category {c}");
        }
    }

    #[test]
    fn single_category_always_drawn() {
        let alias = AliasSampler::new(&[7.0]).unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..100 {
            assert_eq!(alias.sample(&mut rng), 0);
        }
        assert_eq!(alias.len(), 1);
        assert!(!alias.is_empty());
    }

    #[test]
    fn sample_many_length_and_range() {
        let alias = AliasSampler::new(&[1.0, 1.0, 1.0]).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let draws = alias.sample_many(500, &mut rng);
        assert_eq!(draws.len(), 500);
        assert!(draws.iter().all(|&d| d < 3));
    }

    #[test]
    fn sample_consumes_exactly_one_u64_draw() {
        // Halved RNG traffic is part of the dispatch-phase budget: one alias
        // draw must advance the generator by exactly one 64-bit output.
        let alias = AliasSampler::new(&[0.3, 0.5, 0.2]).unwrap();
        let mut sampling_rng = StdRng::seed_from_u64(5);
        let mut counting_rng = StdRng::seed_from_u64(5);
        for _ in 0..100 {
            let _ = alias.sample(&mut sampling_rng);
            let _ = counting_rng.next_u64();
        }
        assert_eq!(sampling_rng.next_u64(), counting_rng.next_u64());
    }

    #[test]
    fn deterministic_given_seed() {
        let alias = AliasSampler::new(&[0.2, 0.8]).unwrap();
        let a: Vec<usize> = alias.sample_many(50, &mut StdRng::seed_from_u64(4));
        let b: Vec<usize> = alias.sample_many(50, &mut StdRng::seed_from_u64(4));
        assert_eq!(a, b);
    }

    #[test]
    fn rebuild_matches_fresh_construction() {
        let mut sampler = AliasSampler::new(&[1.0, 1.0]).unwrap();
        let weights = [0.5, 0.3, 0.15, 0.05];
        sampler.rebuild(&weights).unwrap();
        let fresh = AliasSampler::new(&weights).unwrap();
        // Identical tables → identical draws for identical RNG streams.
        let a: Vec<usize> = sampler.sample_many(200, &mut StdRng::seed_from_u64(8));
        let b: Vec<usize> = fresh.sample_many(200, &mut StdRng::seed_from_u64(8));
        assert_eq!(a, b);
        assert_eq!(sampler.len(), 4);
        // Errors leave the previous table intact.
        assert!(sampler.rebuild(&[]).is_err());
        assert!(sampler.rebuild(&[0.0, 0.0]).is_err());
        assert!(sampler.rebuild(&[1.0, -1.0]).is_err());
        assert_eq!(sampler.len(), 4);
        let c: Vec<usize> = sampler.sample_many(200, &mut StdRng::seed_from_u64(8));
        assert_eq!(a, c);
    }

    #[test]
    fn rebuild_with_total_matches_rebuild_bit_for_bit() {
        use rand::Rng;
        let mut rng = StdRng::seed_from_u64(0xA11A5);
        let mut fast = AliasSampler::default();
        let mut reference = AliasSampler::default();
        for case in 0..300 {
            let n = rng.gen_range(1..80);
            let weights: Vec<f64> = (0..n)
                .map(|_| {
                    if rng.gen_range(0..4) == 0 {
                        0.0
                    } else {
                        rng.gen_range(0.0..2.0f64)
                    }
                })
                .collect();
            let total: f64 = weights.iter().sum();
            if total <= 0.0 {
                continue;
            }
            reference.rebuild(&weights).unwrap();
            fast.rebuild_with_total(&weights, total);
            // Identical tables → identical draws for identical RNG streams.
            let a = reference.sample_many(64, &mut StdRng::seed_from_u64(case));
            let b = fast.sample_many(64, &mut StdRng::seed_from_u64(case));
            assert_eq!(a, b, "case {case}: tables diverged");
        }
    }

    #[test]
    fn unnormalized_weights_are_accepted() {
        // Weights that sum to 100, not 1.
        let alias = AliasSampler::new(&[30.0, 70.0]).unwrap();
        let freq = empirical_distribution(&|rng| alias.sample(rng), 2, 100_000, 2);
        assert!((freq[1] - 0.7).abs() < 0.01);
    }
}
