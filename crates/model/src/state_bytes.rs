//! Minimal byte (de)serialization helpers for policy checkpoint state.
//!
//! Policies that carry cross-round state (JSQ/SED mirrors, LSQ/LED local
//! estimates, round-robin cursors) serialize it into opaque byte blobs for
//! the engine's checkpoint/resume path
//! ([`DispatchPolicy::save_state`](crate::DispatchPolicy::save_state) /
//! [`DispatchPolicy::restore_state`](crate::DispatchPolicy::restore_state)).
//! The blobs travel inside the simulator's checksummed frame codec, which
//! already guards integrity; these helpers only need a fixed, explicit
//! little-endian layout so restored state is bit-identical to the saved
//! state. No serde: the workspace builds offline, and the handful of
//! primitive shapes below is the entire vocabulary policies need.

/// Little-endian append-only writer for policy state blobs.
#[derive(Debug, Default)]
pub struct StateWriter {
    buf: Vec<u8>,
}

impl StateWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        StateWriter::default()
    }

    /// Consumes the writer, returning the accumulated bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Appends one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` as its little-endian bit pattern (NaN-safe: the
    /// exact bits round-trip).
    pub fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    /// Appends a `usize` as a `u64` (the wire form is
    /// architecture-independent).
    pub fn len(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Appends a length-prefixed `u64` slice.
    pub fn u64s(&mut self, values: &[u64]) {
        self.len(values.len());
        for &v in values {
            self.u64(v);
        }
    }

    /// Appends a length-prefixed `u32` slice.
    pub fn u32s(&mut self, values: &[u32]) {
        self.len(values.len());
        for &v in values {
            self.u32(v);
        }
    }

    /// Appends a length-prefixed `f64` slice (bit patterns).
    pub fn f64s(&mut self, values: &[f64]) {
        self.len(values.len());
        for &v in values {
            self.f64(v);
        }
    }

    /// Appends an `Option<u64>` as a presence byte plus, when present, the
    /// value.
    pub fn opt_u64(&mut self, v: Option<u64>) {
        match v {
            Some(x) => {
                self.u8(1);
                self.u64(x);
            }
            None => self.u8(0),
        }
    }

    /// Appends a length-prefixed bool slice (one byte per flag).
    pub fn bools(&mut self, values: &[bool]) {
        self.len(values.len());
        for &v in values {
            self.u8(u8::from(v));
        }
    }
}

/// Little-endian reader over a policy state blob.
///
/// Every accessor returns `Err(String)` on truncation instead of panicking:
/// a checkpoint blob that fails to parse must surface as a classified
/// restore error, never abort the orchestrator.
#[derive(Debug)]
pub struct StateReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> StateReader<'a> {
    /// Creates a reader over `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        StateReader { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| {
                format!(
                    "policy state blob truncated: needed {n} bytes at offset {}, have {}",
                    self.pos,
                    self.bytes.len()
                )
            })?;
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    /// Reads one byte.
    ///
    /// # Errors
    /// Returns a message on truncation.
    pub fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    ///
    /// # Errors
    /// Returns a message on truncation.
    pub fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    /// Reads a little-endian `u64`.
    ///
    /// # Errors
    /// Returns a message on truncation.
    pub fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    /// Reads an `f64` bit pattern.
    ///
    /// # Errors
    /// Returns a message on truncation.
    pub fn f64(&mut self) -> Result<f64, String> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a `u64`-encoded length, refusing values that cannot fit the
    /// remaining bytes (a lying prefix in a corrupt blob must not trigger a
    /// huge allocation).
    ///
    /// # Errors
    /// Returns a message on truncation or an implausible length.
    pub fn length_prefix(&mut self) -> Result<usize, String> {
        let v = self.u64()?;
        let remaining = (self.bytes.len() - self.pos) as u64;
        if v > remaining {
            return Err(format!(
                "policy state blob declares {v} elements with only {remaining} bytes left"
            ));
        }
        Ok(v as usize)
    }

    /// Reads a length-prefixed `u64` vector.
    ///
    /// # Errors
    /// Returns a message on truncation.
    pub fn u64s(&mut self) -> Result<Vec<u64>, String> {
        let n = self.length_prefix()?;
        (0..n).map(|_| self.u64()).collect()
    }

    /// Reads a length-prefixed `u32` vector.
    ///
    /// # Errors
    /// Returns a message on truncation.
    pub fn u32s(&mut self) -> Result<Vec<u32>, String> {
        let n = self.length_prefix()?;
        (0..n).map(|_| self.u32()).collect()
    }

    /// Reads a length-prefixed `f64` vector (bit patterns).
    ///
    /// # Errors
    /// Returns a message on truncation.
    pub fn f64s(&mut self) -> Result<Vec<f64>, String> {
        let n = self.length_prefix()?;
        (0..n).map(|_| self.f64()).collect()
    }

    /// Reads an `Option<u64>` written by [`StateWriter::opt_u64`].
    ///
    /// # Errors
    /// Returns a message on truncation or an invalid presence byte.
    pub fn opt_u64(&mut self) -> Result<Option<u64>, String> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.u64()?)),
            other => Err(format!(
                "invalid option presence byte {other} in policy state blob"
            )),
        }
    }

    /// Reads a length-prefixed bool vector.
    ///
    /// # Errors
    /// Returns a message on truncation or a flag byte that is neither 0
    /// nor 1.
    pub fn bools(&mut self) -> Result<Vec<bool>, String> {
        let n = self.length_prefix()?;
        (0..n)
            .map(|_| match self.u8()? {
                0 => Ok(false),
                1 => Ok(true),
                other => Err(format!("invalid bool byte {other} in policy state blob")),
            })
            .collect()
    }

    /// Fails unless every byte has been consumed — trailing bytes mean the
    /// blob was written by a different (newer or corrupt) layout.
    ///
    /// # Errors
    /// Returns a message naming the number of unconsumed bytes.
    pub fn finish(self) -> Result<(), String> {
        let extra = self.bytes.len() - self.pos;
        if extra != 0 {
            return Err(format!("policy state blob has {extra} trailing bytes"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut w = StateWriter::new();
        w.u8(7);
        w.u32(0xDEAD_BEEF);
        w.u64(u64::MAX - 3);
        w.f64(f64::NAN);
        w.len(42);
        let bytes = w.into_bytes();
        let mut r = StateReader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX - 3);
        assert!(r.f64().unwrap().is_nan());
        assert_eq!(r.u64().unwrap(), 42);
        r.finish().unwrap();
    }

    #[test]
    fn vectors_round_trip_including_nan_bits() {
        let mut w = StateWriter::new();
        w.u64s(&[1, 2, u64::MAX]);
        w.u32s(&[9, 8]);
        w.f64s(&[0.5, f64::INFINITY, f64::from_bits(0x7FF8_0000_0000_0001)]);
        w.bools(&[true, false, true]);
        let bytes = w.into_bytes();
        let mut r = StateReader::new(&bytes);
        assert_eq!(r.u64s().unwrap(), vec![1, 2, u64::MAX]);
        assert_eq!(r.u32s().unwrap(), vec![9, 8]);
        let floats = r.f64s().unwrap();
        assert_eq!(floats[0], 0.5);
        assert_eq!(floats[1], f64::INFINITY);
        assert_eq!(floats[2].to_bits(), 0x7FF8_0000_0000_0001);
        assert_eq!(r.bools().unwrap(), vec![true, false, true]);
        r.finish().unwrap();
    }

    #[test]
    fn truncation_and_lies_are_errors_not_panics() {
        let mut w = StateWriter::new();
        w.u64(5);
        let bytes = w.into_bytes();
        // Truncated primitive.
        assert!(StateReader::new(&bytes[..3]).u64().is_err());
        // Lying length prefix: declares more elements than bytes remain.
        let mut w = StateWriter::new();
        w.len(1 << 40);
        let bytes = w.into_bytes();
        assert!(StateReader::new(&bytes).u64s().is_err());
        // Bad bool byte.
        let mut w = StateWriter::new();
        w.len(1);
        w.u8(9);
        let bytes = w.into_bytes();
        assert!(StateReader::new(&bytes).bools().is_err());
        // Trailing bytes are refused.
        let mut w = StateWriter::new();
        w.u8(1);
        let bytes = w.into_bytes();
        let mut r = StateReader::new(&bytes);
        let _ = r.u8();
        r.finish().unwrap();
        let r2 = StateReader::new(&bytes);
        assert!(r2.finish().is_err());
    }
}
