//! Seed-stream derivation shared by the round engine and the sharded engine.
//!
//! Every stochastic stream of a run (arrivals, services, one policy stream
//! per dispatcher) is seeded from the master seed and a distinct tag, so the
//! arrival and departure processes are identical across policies while
//! policy-internal randomness stays independent per dispatcher. The sharded
//! engine additionally derives one **sub-master** per shard, from which the
//! shard's own arrival/service/policy streams are derived with the same
//! scheme — a two-level splitmix64 tree whose leaves never collide (audited
//! by the tests below and by `tests/sharded_engine.rs` over the full
//! `(master, shards, shard, dispatcher)` grid).
//!
//! History: the original scheme (`seed ^ TAG ^ (d << 32)`) was a linear
//! function of its inputs — adversarial master seeds could cancel the tag
//! bits and make two streams collide, or leave streams differing in a single
//! bit and therefore correlated for weak generators. Absorbing the tag and
//! index through two rounds of the splitmix64 finalizer makes every derived
//! seed a full-avalanche hash of `(master, tag, index)`, so distinct streams
//! are decorrelated for *every* choice of master seed.
//!
//! The shard audit for this module then caught a second, subtler weakness
//! in that scheme: it absorbed the master by *adding* it to the tag
//! (`mix(master + G + tag)`), which is symmetric — run A with master
//! `ARRIVAL_STREAM_TAG` and run B with master `POLICY_STREAM_TAG` shared
//! whole stream families (`derive(A, B, i) == derive(B, A, i)` for every
//! `i`). The master is now passed through the finalizer once *before* the
//! tag is added, which breaks the commutativity while keeping the bijection
//! on masters. This was a deliberate sample-path change; the golden
//! constants in `tests/engine_golden.rs` were refreshed with it.

/// Tag of the per-run arrival stream (`"ARRIVALS"`).
pub const ARRIVAL_STREAM_TAG: u64 = 0x41_52_52_49_56_41_4C_53;
/// Tag of the per-run service stream (`"SERVICES"`).
pub const SERVICE_STREAM_TAG: u64 = 0x53_45_52_56_49_43_45_53;
/// Tag of the per-dispatcher policy streams (`"POLICY"`).
pub const POLICY_STREAM_TAG: u64 = 0x50_4F_4C_49_43_59_00_00;
/// Tag of the per-shard sub-master seeds (`"SHARDS"`).
pub const SHARD_STREAM_TAG: u64 = 0x53_48_41_52_44_53_00_00;
/// Tag of the scenario fault streams — server crash/repair and dispatcher
/// churn schedules (`"FAULTS"`). Servers use their global id as the
/// derivation index; dispatchers use `(1 << 63) | global_id`, so the two
/// entity families can never share a stream.
pub const FAULT_STREAM_TAG: u64 = 0x46_41_55_4C_54_53_00_00;
/// Tag of the per-dispatcher staleness-depth draw streams (`"STALE"`).
pub const STALENESS_STREAM_TAG: u64 = 0x53_54_41_4C_45_00_00_00;
/// Tag of the per-dispatcher probe-loss streams (`"PROBELOS"`).
pub const PROBE_LOSS_STREAM_TAG: u64 = 0x50_52_4F_42_45_4C_4F_53;
/// Tag of the workload-layer streams — time-varying arrival modulation and
/// per-dispatcher counter-mode arrival draws (`"WORKLOAD"`). Per-dispatcher
/// arrival streams use the dispatcher's global id as the derivation index;
/// the system-wide modulation chains (MMPP phase walk, flash-crowd offsets)
/// use `(1 << 63) | chain`, so the two index families can never share a
/// stream (the same split the fault tag uses for its two entity families).
pub const WORKLOAD_STREAM_TAG: u64 = 0x57_4F_52_4B_4C_4F_41_44;
/// Tag of the process-fabric retry/backoff jitter streams (`"RETRY"`). The
/// orchestrator derives one stream per shard (index = shard) and draws the
/// jitter of retry attempt `a` with [`counter_draw`] at step `a`, so the
/// whole backoff schedule of a run — like every other stochastic schedule in
/// the workspace — is a pure function of the master seed and replays
/// identically across reruns.
pub const FABRIC_RETRY_STREAM_TAG: u64 = 0x52_45_54_52_59_00_00_00;

/// Every stream tag of the workspace, for exhaustive collision audits.
pub const ALL_STREAM_TAGS: [u64; 9] = [
    ARRIVAL_STREAM_TAG,
    SERVICE_STREAM_TAG,
    POLICY_STREAM_TAG,
    SHARD_STREAM_TAG,
    FAULT_STREAM_TAG,
    STALENESS_STREAM_TAG,
    PROBE_LOSS_STREAM_TAG,
    WORKLOAD_STREAM_TAG,
    FABRIC_RETRY_STREAM_TAG,
];

// Compile-time proof that the stream tags are pairwise distinct: a new tag
// that collides with an existing one fails the build, not a test run.
const _: () = {
    let tags = ALL_STREAM_TAGS;
    let mut i = 0;
    while i < tags.len() {
        let mut j = i + 1;
        while j < tags.len() {
            assert!(tags[i] != tags[j], "stream tags must be pairwise distinct");
            j += 1;
        }
        i += 1;
    }
};

/// The splitmix64 output (finalization) function — a full-avalanche 64-bit
/// mixer.
#[inline]
#[must_use]
pub fn splitmix64_mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives the seed of one stochastic stream from a master seed: a
/// full-avalanche hash of `(master, tag, index)` built from splitmix64
/// finalizer rounds. The master is mixed once on its own before the tag is
/// absorbed, so master and tag do not commute (see the module docs for the
/// tag-swap collision this prevents).
#[must_use]
pub fn derive_stream_seed(master: u64, tag: u64, index: u64) -> u64 {
    const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;
    let mut z = splitmix64_mix(
        splitmix64_mix(master)
            .wrapping_add(GOLDEN)
            .wrapping_add(tag),
    );
    z = splitmix64_mix(z.wrapping_add(GOLDEN).wrapping_add(index));
    z
}

/// One draw of a *counter-mode* stream: a full-avalanche hash of
/// `(stream_seed, step)`.
///
/// The scenario layer (fault schedules, staleness depths, probe loss) cannot
/// use stateful generators: a shard must be able to reproduce the draw for
/// round `t` of a *global* entity without having consumed rounds `0..t` of
/// every other entity's stream. Counter mode makes each draw a pure function
/// of the derived stream seed and a step counter, so any layout of the
/// entities over shards replays the identical schedule. The step is offset
/// by one and spread by the splitmix64 golden increment before mixing, so
/// `counter_draw(s, 0) != splitmix64_mix(s)` and nearby steps share no
/// arithmetic structure.
#[inline]
#[must_use]
pub fn counter_draw(stream_seed: u64, step: u64) -> u64 {
    const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;
    splitmix64_mix(stream_seed.wrapping_add(step.wrapping_add(1).wrapping_mul(GOLDEN)))
}

/// Maps a 64-bit draw to a uniform `f64` in `[0, 1)` using the top 53 bits —
/// the standard "53-bit mantissa" construction, exact for every draw.
#[inline]
#[must_use]
pub fn unit_f64(draw: u64) -> f64 {
    (draw >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// The sub-master seed of one shard of a sharded run.
///
/// A single-shard run (`num_shards == 1`) keeps the master seed unchanged,
/// which is what makes the `k = 1` sharded engine **bit-identical** to the
/// unsharded `Simulation::run` path in `scd-sim`:
/// both derive exactly the same arrival/service/policy streams. For
/// `num_shards > 1` each shard gets a full-avalanche sub-master keyed on
/// *both* the shard index and the shard count, so the streams of a `k = 2`
/// run share nothing with those of a `k = 4` run on the same master, and no
/// shard sub-stream can collide with the unsharded run's per-dispatcher
/// streams (they hash different masters).
///
/// # Panics
/// Panics if `shard >= num_shards`, if `num_shards` is zero, or if
/// `num_shards` does not fit in 32 bits (the shard and count are packed into
/// one 64-bit derivation index).
#[must_use]
pub fn shard_master_seed(master: u64, num_shards: usize, shard: usize) -> u64 {
    assert!(num_shards > 0, "a sharded run needs at least one shard");
    assert!(
        shard < num_shards,
        "shard {shard} out of range for {num_shards} shards"
    );
    assert!(
        num_shards <= u32::MAX as usize,
        "shard counts beyond 2^32 are not supported"
    );
    if num_shards == 1 {
        master
    } else {
        derive_stream_seed(
            master,
            SHARD_STREAM_TAG,
            ((num_shards as u64) << 32) | shard as u64,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn stream_seeds_never_collide_even_for_adversarial_masters() {
        // Masters crafted to defeat the old linear `seed ^ TAG ^ (d << 32)`
        // derivation, plus a few ordinary ones.
        let masters = [
            0u64,
            1,
            u64::MAX,
            ARRIVAL_STREAM_TAG,
            SERVICE_STREAM_TAG,
            POLICY_STREAM_TAG,
            SHARD_STREAM_TAG,
            FAULT_STREAM_TAG,
            STALENESS_STREAM_TAG,
            PROBE_LOSS_STREAM_TAG,
            WORKLOAD_STREAM_TAG,
            FABRIC_RETRY_STREAM_TAG,
            ARRIVAL_STREAM_TAG ^ SERVICE_STREAM_TAG,
            ARRIVAL_STREAM_TAG ^ POLICY_STREAM_TAG,
            FAULT_STREAM_TAG ^ STALENESS_STREAM_TAG,
            POLICY_STREAM_TAG ^ (1u64 << 32),
            0xDEAD_BEEF_CAFE_BABE,
        ];
        for &master in &masters {
            let mut seeds = HashSet::new();
            seeds.insert(derive_stream_seed(master, ARRIVAL_STREAM_TAG, 0));
            seeds.insert(derive_stream_seed(master, SERVICE_STREAM_TAG, 0));
            for d in 0..64u64 {
                seeds.insert(derive_stream_seed(master, POLICY_STREAM_TAG, d));
                seeds.insert(derive_stream_seed(master, STALENESS_STREAM_TAG, d));
                seeds.insert(derive_stream_seed(master, PROBE_LOSS_STREAM_TAG, d));
                // The fault tag hosts two entity families: servers at the
                // plain index, dispatchers at `(1 << 63) | index`. The
                // workload tag splits the same way: per-dispatcher arrival
                // streams at the plain index, modulation chains above.
                seeds.insert(derive_stream_seed(master, FAULT_STREAM_TAG, d));
                seeds.insert(derive_stream_seed(
                    master,
                    FAULT_STREAM_TAG,
                    (1u64 << 63) | d,
                ));
                seeds.insert(derive_stream_seed(master, WORKLOAD_STREAM_TAG, d));
                seeds.insert(derive_stream_seed(
                    master,
                    WORKLOAD_STREAM_TAG,
                    (1u64 << 63) | d,
                ));
                seeds.insert(derive_stream_seed(master, FABRIC_RETRY_STREAM_TAG, d));
            }
            assert_eq!(seeds.len(), 2 + 64 * 8, "collision for master {master:#x}");
        }
    }

    #[test]
    fn all_stream_tags_are_listed_and_distinct_at_runtime_too() {
        let unique: HashSet<u64> = ALL_STREAM_TAGS.into_iter().collect();
        assert_eq!(unique.len(), ALL_STREAM_TAGS.len());
    }

    #[test]
    fn counter_draws_never_collide_across_nearby_streams_and_steps() {
        // A grid of scenario streams (fault/staleness/probe-loss over a few
        // entities) stepped through many rounds: every draw distinct.
        let mut draws = HashSet::new();
        let mut count = 0usize;
        for tag in [
            FAULT_STREAM_TAG,
            STALENESS_STREAM_TAG,
            PROBE_LOSS_STREAM_TAG,
        ] {
            for entity in 0..8u64 {
                let seed = derive_stream_seed(2021, tag, entity);
                for step in 0..256u64 {
                    draws.insert(counter_draw(seed, step));
                    count += 1;
                }
            }
        }
        assert_eq!(draws.len(), count, "counter-mode draw collision");
    }

    #[test]
    fn counter_draws_are_pure_functions_of_seed_and_step() {
        let seed = derive_stream_seed(7, FAULT_STREAM_TAG, 3);
        // Replaying a step (out of order) reproduces the draw exactly.
        let forward: Vec<u64> = (0..32).map(|t| counter_draw(seed, t)).collect();
        for t in (0..32u64).rev() {
            assert_eq!(counter_draw(seed, t), forward[t as usize]);
        }
        // Step 0 is not the bare finalizer of the seed.
        assert_ne!(counter_draw(seed, 0), splitmix64_mix(seed));
    }

    #[test]
    fn unit_f64_is_a_half_open_unit_uniform() {
        assert_eq!(unit_f64(0), 0.0);
        assert!(unit_f64(u64::MAX) < 1.0);
        let seed = derive_stream_seed(11, PROBE_LOSS_STREAM_TAG, 0);
        let mut sum = 0.0;
        for step in 0..4_096u64 {
            let u = unit_f64(counter_draw(seed, step));
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / 4_096.0;
        assert!((mean - 0.5).abs() < 0.02, "unit draws are biased: {mean}");
    }

    #[test]
    fn stream_seeds_avalanche_on_master_bit_flips() {
        // Flipping any single master bit must flip roughly half the derived
        // seed bits (the old XOR scheme flipped exactly one).
        let base = derive_stream_seed(42, ARRIVAL_STREAM_TAG, 0);
        for bit in 0..64 {
            let flipped = derive_stream_seed(42 ^ (1u64 << bit), ARRIVAL_STREAM_TAG, 0);
            let differing = (base ^ flipped).count_ones();
            assert!(
                (16..=48).contains(&differing),
                "bit {bit}: only {differing} output bits changed"
            );
        }
    }

    #[test]
    fn master_and_tag_do_not_commute() {
        // Regression: the previous derivation absorbed the master and the
        // tag as a plain sum, so swapping them produced identical stream
        // families — a run whose master happened to equal one tag shared
        // streams with a run whose master was the other tag.
        let tag_pairs = [
            (ARRIVAL_STREAM_TAG, POLICY_STREAM_TAG),
            (ARRIVAL_STREAM_TAG, SERVICE_STREAM_TAG),
            (SERVICE_STREAM_TAG, POLICY_STREAM_TAG),
            (SHARD_STREAM_TAG, ARRIVAL_STREAM_TAG),
            (FAULT_STREAM_TAG, ARRIVAL_STREAM_TAG),
            (STALENESS_STREAM_TAG, POLICY_STREAM_TAG),
            (PROBE_LOSS_STREAM_TAG, FAULT_STREAM_TAG),
            (WORKLOAD_STREAM_TAG, ARRIVAL_STREAM_TAG),
            (WORKLOAD_STREAM_TAG, SHARD_STREAM_TAG),
            (FABRIC_RETRY_STREAM_TAG, SHARD_STREAM_TAG),
            (FABRIC_RETRY_STREAM_TAG, POLICY_STREAM_TAG),
        ];
        for (a, b) in tag_pairs {
            for index in 0..4u64 {
                assert_ne!(
                    derive_stream_seed(a, b, index),
                    derive_stream_seed(b, a, index),
                    "master/tag swap ({a:#x}, {b:#x}) must not collide"
                );
            }
        }
    }

    #[test]
    fn single_shard_sub_master_is_the_master() {
        for master in [0u64, 7, u64::MAX, SHARD_STREAM_TAG] {
            assert_eq!(shard_master_seed(master, 1, 0), master);
        }
    }

    #[test]
    fn shard_sub_masters_depend_on_both_shard_and_count() {
        let master = 2021;
        // Shard 0 of a 2-shard run and shard 0 of a 4-shard run must differ;
        // so must any two shards of the same run.
        let mut seen = HashSet::new();
        seen.insert(master); // the k = 1 sub-master
        for k in 2..=8usize {
            for j in 0..k {
                assert!(
                    seen.insert(shard_master_seed(master, k, j)),
                    "sub-master collision at k={k}, shard={j}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_shard_panics() {
        let _ = shard_master_seed(1, 2, 2);
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_panics() {
        let _ = shard_master_seed(1, 0, 0);
    }
}
