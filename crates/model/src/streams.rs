//! Seed-stream derivation shared by the round engine and the sharded engine.
//!
//! Every stochastic stream of a run (arrivals, services, one policy stream
//! per dispatcher) is seeded from the master seed and a distinct tag, so the
//! arrival and departure processes are identical across policies while
//! policy-internal randomness stays independent per dispatcher. The sharded
//! engine additionally derives one **sub-master** per shard, from which the
//! shard's own arrival/service/policy streams are derived with the same
//! scheme — a two-level splitmix64 tree whose leaves never collide (audited
//! by the tests below and by `tests/sharded_engine.rs` over the full
//! `(master, shards, shard, dispatcher)` grid).
//!
//! History: the original scheme (`seed ^ TAG ^ (d << 32)`) was a linear
//! function of its inputs — adversarial master seeds could cancel the tag
//! bits and make two streams collide, or leave streams differing in a single
//! bit and therefore correlated for weak generators. Absorbing the tag and
//! index through two rounds of the splitmix64 finalizer makes every derived
//! seed a full-avalanche hash of `(master, tag, index)`, so distinct streams
//! are decorrelated for *every* choice of master seed.
//!
//! The shard audit for this module then caught a second, subtler weakness
//! in that scheme: it absorbed the master by *adding* it to the tag
//! (`mix(master + G + tag)`), which is symmetric — run A with master
//! `ARRIVAL_STREAM_TAG` and run B with master `POLICY_STREAM_TAG` shared
//! whole stream families (`derive(A, B, i) == derive(B, A, i)` for every
//! `i`). The master is now passed through the finalizer once *before* the
//! tag is added, which breaks the commutativity while keeping the bijection
//! on masters. This was a deliberate sample-path change; the golden
//! constants in `tests/engine_golden.rs` were refreshed with it.

/// Tag of the per-run arrival stream (`"ARRIVALS"`).
pub const ARRIVAL_STREAM_TAG: u64 = 0x41_52_52_49_56_41_4C_53;
/// Tag of the per-run service stream (`"SERVICES"`).
pub const SERVICE_STREAM_TAG: u64 = 0x53_45_52_56_49_43_45_53;
/// Tag of the per-dispatcher policy streams (`"POLICY"`).
pub const POLICY_STREAM_TAG: u64 = 0x50_4F_4C_49_43_59_00_00;
/// Tag of the per-shard sub-master seeds (`"SHARDS"`).
pub const SHARD_STREAM_TAG: u64 = 0x53_48_41_52_44_53_00_00;

/// The splitmix64 output (finalization) function — a full-avalanche 64-bit
/// mixer.
#[inline]
#[must_use]
pub fn splitmix64_mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives the seed of one stochastic stream from a master seed: a
/// full-avalanche hash of `(master, tag, index)` built from splitmix64
/// finalizer rounds. The master is mixed once on its own before the tag is
/// absorbed, so master and tag do not commute (see the module docs for the
/// tag-swap collision this prevents).
#[must_use]
pub fn derive_stream_seed(master: u64, tag: u64, index: u64) -> u64 {
    const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;
    let mut z = splitmix64_mix(
        splitmix64_mix(master)
            .wrapping_add(GOLDEN)
            .wrapping_add(tag),
    );
    z = splitmix64_mix(z.wrapping_add(GOLDEN).wrapping_add(index));
    z
}

/// The sub-master seed of one shard of a sharded run.
///
/// A single-shard run (`num_shards == 1`) keeps the master seed unchanged,
/// which is what makes the `k = 1` sharded engine **bit-identical** to the
/// unsharded `Simulation::run` path in `scd-sim`:
/// both derive exactly the same arrival/service/policy streams. For
/// `num_shards > 1` each shard gets a full-avalanche sub-master keyed on
/// *both* the shard index and the shard count, so the streams of a `k = 2`
/// run share nothing with those of a `k = 4` run on the same master, and no
/// shard sub-stream can collide with the unsharded run's per-dispatcher
/// streams (they hash different masters).
///
/// # Panics
/// Panics if `shard >= num_shards`, if `num_shards` is zero, or if
/// `num_shards` does not fit in 32 bits (the shard and count are packed into
/// one 64-bit derivation index).
#[must_use]
pub fn shard_master_seed(master: u64, num_shards: usize, shard: usize) -> u64 {
    assert!(num_shards > 0, "a sharded run needs at least one shard");
    assert!(
        shard < num_shards,
        "shard {shard} out of range for {num_shards} shards"
    );
    assert!(
        num_shards <= u32::MAX as usize,
        "shard counts beyond 2^32 are not supported"
    );
    if num_shards == 1 {
        master
    } else {
        derive_stream_seed(
            master,
            SHARD_STREAM_TAG,
            ((num_shards as u64) << 32) | shard as u64,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn stream_seeds_never_collide_even_for_adversarial_masters() {
        // Masters crafted to defeat the old linear `seed ^ TAG ^ (d << 32)`
        // derivation, plus a few ordinary ones.
        let masters = [
            0u64,
            1,
            u64::MAX,
            ARRIVAL_STREAM_TAG,
            SERVICE_STREAM_TAG,
            POLICY_STREAM_TAG,
            SHARD_STREAM_TAG,
            ARRIVAL_STREAM_TAG ^ SERVICE_STREAM_TAG,
            ARRIVAL_STREAM_TAG ^ POLICY_STREAM_TAG,
            POLICY_STREAM_TAG ^ (1u64 << 32),
            0xDEAD_BEEF_CAFE_BABE,
        ];
        for &master in &masters {
            let mut seeds = HashSet::new();
            seeds.insert(derive_stream_seed(master, ARRIVAL_STREAM_TAG, 0));
            seeds.insert(derive_stream_seed(master, SERVICE_STREAM_TAG, 0));
            for d in 0..64u64 {
                seeds.insert(derive_stream_seed(master, POLICY_STREAM_TAG, d));
            }
            assert_eq!(seeds.len(), 66, "collision for master {master:#x}");
        }
    }

    #[test]
    fn stream_seeds_avalanche_on_master_bit_flips() {
        // Flipping any single master bit must flip roughly half the derived
        // seed bits (the old XOR scheme flipped exactly one).
        let base = derive_stream_seed(42, ARRIVAL_STREAM_TAG, 0);
        for bit in 0..64 {
            let flipped = derive_stream_seed(42 ^ (1u64 << bit), ARRIVAL_STREAM_TAG, 0);
            let differing = (base ^ flipped).count_ones();
            assert!(
                (16..=48).contains(&differing),
                "bit {bit}: only {differing} output bits changed"
            );
        }
    }

    #[test]
    fn master_and_tag_do_not_commute() {
        // Regression: the previous derivation absorbed the master and the
        // tag as a plain sum, so swapping them produced identical stream
        // families — a run whose master happened to equal one tag shared
        // streams with a run whose master was the other tag.
        let tag_pairs = [
            (ARRIVAL_STREAM_TAG, POLICY_STREAM_TAG),
            (ARRIVAL_STREAM_TAG, SERVICE_STREAM_TAG),
            (SERVICE_STREAM_TAG, POLICY_STREAM_TAG),
            (SHARD_STREAM_TAG, ARRIVAL_STREAM_TAG),
        ];
        for (a, b) in tag_pairs {
            for index in 0..4u64 {
                assert_ne!(
                    derive_stream_seed(a, b, index),
                    derive_stream_seed(b, a, index),
                    "master/tag swap ({a:#x}, {b:#x}) must not collide"
                );
            }
        }
    }

    #[test]
    fn single_shard_sub_master_is_the_master() {
        for master in [0u64, 7, u64::MAX, SHARD_STREAM_TAG] {
            assert_eq!(shard_master_seed(master, 1, 0), master);
        }
    }

    #[test]
    fn shard_sub_masters_depend_on_both_shard_and_count() {
        let master = 2021;
        // Shard 0 of a 2-shard run and shard 0 of a 4-shard run must differ;
        // so must any two shards of the same run.
        let mut seen = HashSet::new();
        seen.insert(master); // the k = 1 sub-master
        for k in 2..=8usize {
            for j in 0..k {
                assert!(
                    seen.insert(shard_master_seed(master, k, j)),
                    "sub-master collision at k={k}, shard={j}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_shard_panics() {
        let _ = shard_master_seed(1, 2, 2);
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_panics() {
        let _ = shard_master_seed(1, 0, 0);
    }
}
