//! The dispatching-policy abstraction.
//!
//! A *policy* is the per-dispatcher decision procedure of the paper's model:
//! given the round's [`DispatchContext`] and the number of jobs that arrived
//! at this dispatcher, it must immediately and independently pick a
//! destination server for each job. Policies are stateful objects (LSQ keeps
//! a local queue-length array, JIQ variants may cache idle sets, SCD caches
//! sorted orders), so the simulator instantiates **one policy object per
//! dispatcher** through a [`PolicyFactory`].

use crate::error::ModelError;
use crate::ids::{DispatcherId, ServerId};
use crate::snapshot::DispatchContext;
use crate::spec::ClusterSpec;
use rand::RngCore;

/// A boxed, heap-allocated policy object as handed out by a factory.
pub type BoxedPolicy = Box<dyn DispatchPolicy>;

/// A per-dispatcher dispatching policy.
///
/// # Determinism contract
///
/// Implementations must be deterministic given the RNG passed in: all
/// randomness must flow through `rng` so that simulations are reproducible
/// from a single seed. Two consequences the engine and runners rely on:
///
/// * **No hidden entropy or wall-clock dependence.** Identical `(ctx, batch,
///   RNG state)` must produce identical destinations *and* leave the RNG in
///   an identical state, or parallel runs would diverge from sequential ones
///   (the parallel runners promise bit-identical reports).
/// * **Accelerators must be invisible.** When a policy exploits the optional
///   shared [`RoundCache`](crate::RoundCache) on the context, or an internal
///   index structure (e.g. the tournament-tree queue views of the argmin
///   policies), decisions must be bit-identical to the plain implementation
///   — caches and indexes may change *costs*, never *choices*.
///
/// The simulator drives a policy as follows in every round `t`:
///
/// 1. [`observe_round`](DispatchPolicy::observe_round) is called exactly once
///    with the round's context, *before* any jobs are dispatched. Policies
///    that maintain local state across rounds (LSQ's local array, JIQ's idle
///    cache) refresh it here.
/// 2. If the dispatcher received `a(d) > 0` jobs,
///    [`dispatch_into`](DispatchPolicy::dispatch_into) (or its allocating
///    equivalent [`dispatch_batch`](DispatchPolicy::dispatch_batch)) is
///    called once with the batch size and must produce one destination per
///    job. A dispatcher with an empty batch gets no dispatch call at all, so
///    policies must not rely on being invoked every round.
///
/// # Example
///
/// ```
/// use scd_model::{DispatchContext, DispatchPolicy, ServerId};
///
/// /// Round-robin over servers, ignoring all state.
/// struct RoundRobin { next: usize }
///
/// impl DispatchPolicy for RoundRobin {
///     fn policy_name(&self) -> &str { "round-robin" }
///     fn dispatch_batch(
///         &mut self,
///         ctx: &DispatchContext<'_>,
///         batch: usize,
///         _rng: &mut dyn rand::RngCore,
///     ) -> Vec<ServerId> {
///         (0..batch)
///             .map(|_| {
///                 let s = ServerId::new(self.next % ctx.num_servers());
///                 self.next += 1;
///                 s
///             })
///             .collect()
///     }
/// }
/// ```
pub trait DispatchPolicy: Send {
    /// Human-readable name of the policy ("SCD", "JSQ", "hLSQ", ...). Used in
    /// experiment output and legends.
    fn policy_name(&self) -> &str;

    /// Called once at the start of every round with the fresh queue-length
    /// snapshot, before any dispatching happens.
    ///
    /// The default implementation does nothing; policies without cross-round
    /// state do not need to override it.
    fn observe_round(&mut self, ctx: &DispatchContext<'_>, rng: &mut dyn RngCore) {
        let _ = (ctx, rng);
    }

    /// How much of the shared per-round [`RoundCache`](crate::RoundCache)
    /// this policy reads from the context. The engine refreshes only what
    /// the most demanding policy of the run declares: policies that never
    /// touch the cache cost nothing, reciprocal-only consumers (SED) skip
    /// the per-round solver-table fills, and only solver consumers (SCD)
    /// pay for the full tables.
    ///
    /// The declaration must not change decisions — the cache is a pure
    /// accelerator (see the determinism contract above). Reading a table
    /// beyond the declared demand yields an empty slice, which the
    /// consumers reject loudly. The default is
    /// [`CacheDemand::None`](crate::CacheDemand::None).
    fn round_cache_demand(&self) -> crate::CacheDemand {
        crate::CacheDemand::None
    }

    /// Chooses a destination server for each of the `batch` jobs that arrived
    /// at this dispatcher in the current round.
    ///
    /// Must return exactly `batch` destinations; the engine validates this
    /// via [`validate_assignment`].
    fn dispatch_batch(
        &mut self,
        ctx: &DispatchContext<'_>,
        batch: usize,
        rng: &mut dyn RngCore,
    ) -> Vec<ServerId>;

    /// Allocation-free variant of
    /// [`dispatch_batch`](DispatchPolicy::dispatch_batch): appends exactly
    /// `batch` destinations to `out` instead of returning a fresh vector.
    ///
    /// # Buffer-reuse rules
    ///
    /// The simulation engine calls this method in its hot loop with **one**
    /// scratch buffer that it clears (`out.clear()`) before every call and
    /// reuses across rounds and dispatchers, so policies that override it
    /// (all built-in policies do) keep the steady-state round loop free of
    /// heap allocations. Implementations must therefore:
    ///
    /// * only **append** to `out` — never read, assume, or clear existing
    ///   contents (the engine owns the clearing);
    /// * keep their own scratch state (local queue copies, priority buffers,
    ///   tree nodes, probability vectors) inside `self`, sized lazily and
    ///   reused, so repeated calls allocate nothing in steady state;
    /// * never let scratch contents from a previous round influence
    ///   decisions, unless carrying state across rounds is the policy's
    ///   documented semantics (LSQ/LED local estimates).
    ///
    /// # Contract
    ///
    /// For any `(ctx, batch)` and identical RNG state, this method must
    /// append the same destinations `dispatch_batch` would return **and**
    /// leave the RNG in the same state — the engine treats the two entry
    /// points as interchangeable, and the policy contract tests assert it
    /// for every registered policy. The default implementation trivially
    /// satisfies this by delegating to `dispatch_batch`.
    fn dispatch_into(
        &mut self,
        ctx: &DispatchContext<'_>,
        batch: usize,
        out: &mut Vec<ServerId>,
        rng: &mut dyn RngCore,
    ) {
        let assignment = self.dispatch_batch(ctx, batch, rng);
        out.extend_from_slice(&assignment);
    }

    /// Serializes the policy's cross-round state into `out` for an engine
    /// checkpoint taken at a round boundary.
    ///
    /// The resulting blob is opaque to the engine; it is handed back
    /// verbatim to [`restore_state`](DispatchPolicy::restore_state) on a
    /// policy object freshly built by the same factory. Together the pair
    /// must uphold the checkpoint contract: after restore, the policy's
    /// future decisions *and RNG consumption* are bit-identical to the
    /// original object continuing uninterrupted. State that is rebuilt from
    /// the context every round (scratch buffers, derived tables) need not be
    /// saved — only state whose loss would change a decision or an RNG draw
    /// (local queue mirrors, warm priority epochs, round-robin cursors).
    ///
    /// The default implementation writes nothing, which is correct for
    /// stateless policies and for policies whose state is recomputed from
    /// the first restored round's context before any decision.
    fn save_state(&self, out: &mut Vec<u8>) {
        let _ = out;
    }

    /// Restores cross-round state captured by
    /// [`save_state`](DispatchPolicy::save_state) into a freshly built
    /// policy object.
    ///
    /// Called exactly once, immediately after the factory builds the object
    /// and before the first [`observe_round`](DispatchPolicy::observe_round)
    /// of the resumed run.
    ///
    /// # Errors
    /// Returns a message when the blob does not parse (truncated, trailing
    /// bytes, or dimensions that contradict the policy's configuration); the
    /// engine classifies this as an invalid checkpoint rather than
    /// panicking. The default implementation accepts only the empty blob the
    /// default `save_state` writes.
    fn restore_state(&mut self, bytes: &[u8]) -> Result<(), String> {
        if bytes.is_empty() {
            Ok(())
        } else {
            Err(format!(
                "policy {:?} is stateless but its checkpoint blob has {} bytes",
                self.policy_name(),
                bytes.len()
            ))
        }
    }
}

/// Validates an assignment returned by a policy against the batch size and
/// cluster size.
///
/// # Errors
/// Returns [`ModelError::AssignmentArity`] when the number of destinations
/// does not equal the batch size and [`ModelError::UnknownServer`] when any
/// destination is out of range.
pub fn validate_assignment(
    assignment: &[ServerId],
    batch: usize,
    num_servers: usize,
) -> Result<(), ModelError> {
    if assignment.len() != batch {
        return Err(ModelError::AssignmentArity {
            got: assignment.len(),
            expected: batch,
        });
    }
    for dest in assignment {
        if dest.index() >= num_servers {
            return Err(ModelError::UnknownServer {
                server: dest.index(),
                num_servers,
            });
        }
    }
    Ok(())
}

/// Creates one [`DispatchPolicy`] instance per dispatcher.
///
/// Factories are what experiment configurations name: "run this system with
/// SCD", "with hLSQ", etc. The factory sees the cluster specification so it
/// can pre-compute static data (e.g. the weighted-random sampler of WR, the
/// rate-proportional probe distribution of the `h*` policies).
pub trait PolicyFactory: Send + Sync {
    /// Name of the policy family produced by this factory.
    fn name(&self) -> &str;

    /// Builds the policy instance used by dispatcher `dispatcher`.
    fn build(&self, dispatcher: DispatcherId, spec: &ClusterSpec) -> BoxedPolicy;
}

impl<F> PolicyFactory for F
where
    F: Fn(DispatcherId, &ClusterSpec) -> BoxedPolicy + Send + Sync,
{
    fn name(&self) -> &str {
        "closure-policy"
    }

    fn build(&self, dispatcher: DispatcherId, spec: &ClusterSpec) -> BoxedPolicy {
        self(dispatcher, spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    struct ToFirst;

    impl DispatchPolicy for ToFirst {
        fn policy_name(&self) -> &str {
            "to-first"
        }

        fn dispatch_batch(
            &mut self,
            _ctx: &DispatchContext<'_>,
            batch: usize,
            _rng: &mut dyn RngCore,
        ) -> Vec<ServerId> {
            vec![ServerId::new(0); batch]
        }
    }

    #[test]
    fn default_observe_round_is_a_no_op() {
        let queues = vec![0u64, 0];
        let rates = vec![1.0, 1.0];
        let ctx = DispatchContext::new(&queues, &rates, 1, 0);
        let mut rng = StdRng::seed_from_u64(0);
        let mut p = ToFirst;
        p.observe_round(&ctx, &mut rng);
        let out = p.dispatch_batch(&ctx, 5, &mut rng);
        assert_eq!(out.len(), 5);
        assert!(out.iter().all(|s| s.index() == 0));
    }

    #[test]
    fn validate_assignment_accepts_correct_output() {
        let out = vec![ServerId::new(0), ServerId::new(1)];
        assert!(validate_assignment(&out, 2, 2).is_ok());
    }

    #[test]
    fn validate_assignment_rejects_wrong_arity() {
        let out = vec![ServerId::new(0)];
        assert_eq!(
            validate_assignment(&out, 2, 4),
            Err(ModelError::AssignmentArity {
                got: 1,
                expected: 2
            })
        );
    }

    #[test]
    fn validate_assignment_rejects_out_of_range_server() {
        let out = vec![ServerId::new(7)];
        assert_eq!(
            validate_assignment(&out, 1, 4),
            Err(ModelError::UnknownServer {
                server: 7,
                num_servers: 4
            })
        );
    }

    #[test]
    fn default_state_hooks_round_trip_the_empty_blob_only() {
        let mut p = ToFirst;
        let mut blob = Vec::new();
        p.save_state(&mut blob);
        assert!(blob.is_empty());
        assert!(p.restore_state(&blob).is_ok());
        assert!(p.restore_state(&[1, 2, 3]).is_err());
    }

    #[test]
    fn closures_act_as_factories() {
        let factory = |_d: DispatcherId, _spec: &ClusterSpec| -> BoxedPolicy { Box::new(ToFirst) };
        let spec = ClusterSpec::homogeneous(2, 1.0).unwrap();
        let policy = factory.build(DispatcherId::new(0), &spec);
        assert_eq!(policy.policy_name(), "to-first");
        assert_eq!(PolicyFactory::name(&factory), "closure-policy");
    }
}
