//! Randomized property tests for the model crate's probability utilities.
//!
//! Cases are generated from a seeded [`StdRng`] (the build environment is
//! offline, so no proptest); every failure message includes the case index so
//! a failing instance can be reproduced deterministically.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use scd_model::{AliasSampler, CdfSampler, ClusterSpec, ProbabilityVector, RateProfile};

const CASES: usize = 96;

/// A random vector of non-negative weights with at least one strictly
/// positive entry.
fn random_weights(rng: &mut StdRng) -> Vec<f64> {
    loop {
        let n = rng.gen_range(1..40usize);
        let weights: Vec<f64> = (0..n)
            .map(|_| {
                if rng.gen_bool(0.25) {
                    0.0
                } else {
                    rng.gen_range(0.0..10.0)
                }
            })
            .collect();
        if weights.iter().any(|&w| w > 1e-9) {
            return weights;
        }
    }
}

#[test]
fn probability_vector_from_weights_is_normalized() {
    let mut rng = StdRng::seed_from_u64(0xA11A5);
    for case in 0..CASES {
        let weights = random_weights(&mut rng);
        let p = ProbabilityVector::from_weights(&weights).unwrap();
        let total: f64 = p.iter().sum();
        assert!((total - 1.0).abs() < 1e-9, "case {case}: total {total}");
        assert!(
            p.iter().all(|x| (0.0..=1.0 + 1e-12).contains(&x)),
            "case {case}: out-of-range probability"
        );
        assert_eq!(p.len(), weights.len(), "case {case}");
    }
}

#[test]
fn support_matches_positive_weights() {
    let mut rng = StdRng::seed_from_u64(0x5EED);
    for case in 0..CASES {
        let weights = random_weights(&mut rng);
        let p = ProbabilityVector::from_weights(&weights).unwrap();
        let support: Vec<usize> = p.support().into_iter().map(|s| s.index()).collect();
        let expected: Vec<usize> = weights
            .iter()
            .enumerate()
            .filter(|(_, &w)| w > 0.0)
            .map(|(i, _)| i)
            .collect();
        assert_eq!(support, expected, "case {case}: weights {weights:?}");
    }
}

#[test]
fn alias_sampler_only_draws_positive_weight_categories() {
    let mut rng = StdRng::seed_from_u64(0xB0B);
    for case in 0..CASES {
        let weights = random_weights(&mut rng);
        let sampler = AliasSampler::new(&weights).unwrap();
        for _ in 0..256 {
            let draw = sampler.sample(&mut rng);
            assert!(draw < weights.len(), "case {case}");
            assert!(
                weights[draw] > 0.0,
                "case {case}: alias sampler drew zero-weight category {draw} from {weights:?}"
            );
        }
    }
}

#[test]
fn cdf_sampler_only_draws_positive_weight_categories() {
    let mut rng = StdRng::seed_from_u64(0xCDF);
    for case in 0..CASES {
        let weights = random_weights(&mut rng);
        let sampler = CdfSampler::new(&weights).unwrap();
        for _ in 0..256 {
            let draw = sampler.sample(&mut rng);
            assert!(draw < weights.len(), "case {case}");
            assert!(
                weights[draw] > 0.0,
                "case {case}: cdf sampler drew zero-weight category {draw} from {weights:?}"
            );
        }
    }
}

#[test]
fn cluster_spec_aggregates_are_consistent() {
    let mut rng = StdRng::seed_from_u64(0xC1);
    for case in 0..CASES {
        let n = rng.gen_range(1..64usize);
        let rates: Vec<f64> = (0..n).map(|_| rng.gen_range(0.01..100.0)).collect();
        let spec = ClusterSpec::from_rates(rates.clone()).unwrap();
        assert_eq!(spec.num_servers(), rates.len(), "case {case}");
        let total: f64 = rates.iter().sum();
        assert!((spec.total_rate() - total).abs() < 1e-9, "case {case}");
        assert!(spec.min_rate() <= spec.max_rate(), "case {case}");
        assert!(spec.heterogeneity_ratio() >= 1.0 - 1e-12, "case {case}");
    }
}

#[test]
fn uniform_profile_materializes_within_bounds() {
    let mut rng = StdRng::seed_from_u64(0xFACADE);
    for case in 0..CASES {
        let n = rng.gen_range(1..128usize);
        let low = rng.gen_range(0.5..2.0);
        let high = low + rng.gen_range(0.1..50.0);
        let seed = rng.gen::<u64>();
        let mut cluster_rng = StdRng::seed_from_u64(seed);
        let spec = RateProfile::Uniform { low, high }
            .materialize(n, &mut cluster_rng)
            .unwrap();
        assert_eq!(spec.num_servers(), n, "case {case}");
        for (_, rate) in spec.iter() {
            assert!(
                rate >= low && rate <= high,
                "case {case}: rate {rate} outside [{low}, {high}]"
            );
        }
    }
}
