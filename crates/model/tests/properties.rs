//! Property-based tests for the model crate's probability utilities.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use scd_model::{AliasSampler, CdfSampler, ClusterSpec, ProbabilityVector, RateProfile};

/// A strategy producing small vectors of non-negative weights with at least
/// one strictly positive entry.
fn weights_strategy() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.0f64..10.0, 1..40).prop_filter(
        "at least one strictly positive weight",
        |w| w.iter().any(|&x| x > 1e-9),
    )
}

proptest! {
    #[test]
    fn probability_vector_from_weights_is_normalized(weights in weights_strategy()) {
        let p = ProbabilityVector::from_weights(&weights).unwrap();
        let total: f64 = p.iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
        prop_assert!(p.iter().all(|x| (0.0..=1.0 + 1e-12).contains(&x)));
        prop_assert_eq!(p.len(), weights.len());
    }

    #[test]
    fn support_matches_positive_weights(weights in weights_strategy()) {
        let p = ProbabilityVector::from_weights(&weights).unwrap();
        let support: Vec<usize> = p.support().into_iter().map(|s| s.index()).collect();
        let expected: Vec<usize> = weights
            .iter()
            .enumerate()
            .filter(|(_, &w)| w > 0.0)
            .map(|(i, _)| i)
            .collect();
        prop_assert_eq!(support, expected);
    }

    #[test]
    fn alias_sampler_only_draws_positive_weight_categories(
        weights in weights_strategy(),
        seed in 0u64..u64::MAX,
    ) {
        let sampler = AliasSampler::new(&weights).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..256 {
            let draw = sampler.sample(&mut rng);
            prop_assert!(draw < weights.len());
            prop_assert!(
                weights[draw] > 0.0,
                "alias sampler drew zero-weight category {} from {:?}",
                draw,
                weights
            );
        }
    }

    #[test]
    fn cdf_sampler_only_draws_positive_weight_categories(
        weights in weights_strategy(),
        seed in 0u64..u64::MAX,
    ) {
        let sampler = CdfSampler::new(&weights).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..256 {
            let draw = sampler.sample(&mut rng);
            prop_assert!(draw < weights.len());
            prop_assert!(weights[draw] > 0.0);
        }
    }

    #[test]
    fn cluster_spec_aggregates_are_consistent(
        rates in prop::collection::vec(0.01f64..100.0, 1..64),
    ) {
        let spec = ClusterSpec::from_rates(rates.clone()).unwrap();
        prop_assert_eq!(spec.num_servers(), rates.len());
        let total: f64 = rates.iter().sum();
        prop_assert!((spec.total_rate() - total).abs() < 1e-9);
        prop_assert!(spec.min_rate() <= spec.max_rate());
        prop_assert!(spec.heterogeneity_ratio() >= 1.0 - 1e-12);
    }

    #[test]
    fn uniform_profile_materializes_within_bounds(
        n in 1usize..128,
        seed in 0u64..u64::MAX,
        low in 0.5f64..2.0,
        span in 0.1f64..50.0,
    ) {
        let high = low + span;
        let mut rng = StdRng::seed_from_u64(seed);
        let spec = RateProfile::Uniform { low, high }.materialize(n, &mut rng).unwrap();
        prop_assert_eq!(spec.num_servers(), n);
        for (_, rate) in spec.iter() {
            prop_assert!(rate >= low && rate <= high);
        }
    }
}
