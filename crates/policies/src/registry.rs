//! Name-based registry of every dispatching policy in the workspace.
//!
//! The experiment harness selects policies by the names used in the paper's
//! figure legends ("SCD", "hLSQ", "JSQ(2)", ...). This module is the single
//! source of truth for that mapping.

use crate::common::NamedFactory;
use crate::jiq::JiqFactory;
use crate::jsq::{JsqFactory, JsqPolicy};
use crate::led::LedFactory;
use crate::lsq::LsqFactory;
use crate::power_of_d::PowerOfDFactory;
use crate::random::{RoundRobinFactory, UniformRandomFactory, WeightedRandomFactory};
use crate::sed::{SedFactory, SedPolicy};
use crate::twf::TwfFactory;
use scd_core::estimator::ArrivalEstimator;
use scd_core::policy::ScdFactory;
use scd_core::solver::SolverKind;
use scd_model::PolicyFactory;

/// The names of all registered policies, in a stable presentation order
/// (SCD and the paper's six most competitive baselines first).
pub fn standard_policy_names() -> Vec<&'static str> {
    vec![
        "SCD",
        "SCD(alg1)",
        "TWF",
        "JSQ",
        "SED",
        "JSQ(2)",
        "hJSQ(2)",
        "JIQ",
        "hJIQ",
        "LSQ",
        "hLSQ",
        "WR",
        "LED",
        "hLED",
        "Random",
        "RoundRobin",
    ]
}

/// Builds the factory registered under `name`, or `None` for an unknown name.
///
/// # Example
/// ```
/// use scd_policies::factory_by_name;
/// let f = factory_by_name("hLSQ").expect("registered policy");
/// assert_eq!(f.name(), "hLSQ");
/// assert!(factory_by_name("no-such-policy").is_none());
/// ```
pub fn factory_by_name(name: &str) -> Option<Box<dyn PolicyFactory>> {
    let factory: Box<dyn PolicyFactory> = match name {
        "SCD" => Box::new(ScdFactory::new()),
        "SCD(alg1)" => Box::new(ScdFactory::with_options(
            ArrivalEstimator::ScaledByDispatchers,
            SolverKind::Quadratic,
        )),
        "TWF" => Box::new(TwfFactory::new()),
        "JSQ" => Box::new(JsqFactory::new()),
        "SED" => Box::new(SedFactory::new()),
        // Scan-mode references: same decisions as JSQ/SED for equal seeds,
        // O(n) per job instead of O(log n) — kept for equivalence runs.
        "JSQ(scan)" => Box::new(NamedFactory::new("JSQ(scan)", |_d, _spec| {
            Box::new(JsqPolicy::scan())
        })),
        "SED(scan)" => Box::new(NamedFactory::new("SED(scan)", |_d, _spec| {
            Box::new(SedPolicy::scan())
        })),
        "JSQ(2)" => Box::new(PowerOfDFactory::uniform(2)),
        "JSQ(3)" => Box::new(PowerOfDFactory::uniform(3)),
        "hJSQ(2)" => Box::new(PowerOfDFactory::heterogeneous(2)),
        "hJSQ(3)" => Box::new(PowerOfDFactory::heterogeneous(3)),
        "JIQ" => Box::new(JiqFactory::new()),
        "hJIQ" => Box::new(JiqFactory::heterogeneous()),
        "LSQ" => Box::new(LsqFactory::new()),
        "hLSQ" => Box::new(LsqFactory::heterogeneous()),
        "WR" => Box::new(WeightedRandomFactory::new()),
        "LED" => Box::new(LedFactory::new()),
        "hLED" => Box::new(LedFactory::heterogeneous()),
        "Random" => Box::new(UniformRandomFactory::new()),
        "RoundRobin" => Box::new(RoundRobinFactory::new()),
        _ => return None,
    };
    Some(factory)
}

/// Factories for every registered policy, in presentation order.
pub fn all_standard_factories() -> Vec<Box<dyn PolicyFactory>> {
    standard_policy_names()
        .into_iter()
        .map(|name| factory_by_name(name).expect("every standard name is registered"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use scd_model::{ClusterSpec, DispatchContext, DispatcherId};

    #[test]
    fn every_standard_name_resolves() {
        for name in standard_policy_names() {
            let factory =
                factory_by_name(name).unwrap_or_else(|| panic!("policy {name} is not registered"));
            assert_eq!(factory.name(), name);
        }
        assert!(factory_by_name("bogus").is_none());
    }

    #[test]
    fn paper_figure_policies_are_all_available() {
        // The six competitive baselines of Figures 3–4 plus the four of
        // Figures 6–7 and the SCD variants of Figures 5/8.
        for name in [
            "SCD",
            "SCD(alg1)",
            "TWF",
            "JSQ",
            "SED",
            "hJSQ(2)",
            "hJIQ",
            "hLSQ",
            "JSQ(2)",
            "JIQ",
            "LSQ",
            "WR",
        ] {
            assert!(
                factory_by_name(name).is_some(),
                "{name} missing from registry"
            );
        }
    }

    #[test]
    fn all_factories_produce_working_policies() {
        let spec = ClusterSpec::from_rates(vec![4.0, 2.0, 1.0, 0.5]).unwrap();
        let queues = vec![3u64, 0, 5, 1];
        let ctx = DispatchContext::new(&queues, spec.rates(), 3, 0);
        let mut rng = StdRng::seed_from_u64(1234);
        for factory in all_standard_factories() {
            let mut policy = factory.build(DispatcherId::new(0), &spec);
            policy.observe_round(&ctx, &mut rng);
            let out = policy.dispatch_batch(&ctx, 9, &mut rng);
            assert_eq!(
                out.len(),
                9,
                "policy {} returned a wrong batch",
                factory.name()
            );
            assert!(
                out.iter().all(|s| s.index() < 4),
                "policy {} produced an out-of-range destination",
                factory.name()
            );
        }
    }

    #[test]
    fn factories_are_independent_per_dispatcher() {
        // Stateful policies (LSQ) must not share state across dispatchers.
        let spec = ClusterSpec::from_rates(vec![1.0, 1.0]).unwrap();
        let factory = factory_by_name("LSQ").unwrap();
        let queues = vec![0u64, 0];
        let ctx = DispatchContext::new(&queues, spec.rates(), 2, 0);
        let mut rng = StdRng::seed_from_u64(9);
        let mut d0 = factory.build(DispatcherId::new(0), &spec);
        let mut d1 = factory.build(DispatcherId::new(1), &spec);
        let _ = d0.dispatch_batch(&ctx, 4, &mut rng);
        // d1's local array must still be pristine: its next dispatch with an
        // all-zero local view splits across both servers.
        let out = d1.dispatch_batch(&ctx, 2, &mut rng);
        let mut targets: Vec<usize> = out.iter().map(|s| s.index()).collect();
        targets.sort_unstable();
        assert_eq!(targets, vec![0, 1]);
    }
}
