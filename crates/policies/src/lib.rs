//! Baseline dispatching policies for the SCD reproduction.
//!
//! The paper's evaluation (Section 6.1) compares SCD against ten other
//! dispatching techniques; this crate implements all of them plus a few
//! extras used in ablations and examples:
//!
//! | Paper name | Type | Heterogeneity aware? |
//! |---|---|---|
//! | `JSQ` | [`jsq::JsqFactory`] | no |
//! | `SED` | [`sed::SedFactory`] | yes (ranks by `q/µ`) |
//! | `JSQ(d)` | [`power_of_d::PowerOfDFactory`] | no |
//! | `hJSQ(d)` | [`power_of_d::PowerOfDFactory::heterogeneous`] | yes |
//! | `JIQ` | [`jiq::JiqFactory`] | no |
//! | `hJIQ` | [`jiq::JiqFactory::heterogeneous`] | yes |
//! | `LSQ` | [`lsq::LsqFactory`] | no |
//! | `hLSQ` | [`lsq::LsqFactory::heterogeneous`] | yes |
//! | `WR` (weighted random) | [`random::WeightedRandomFactory`] | yes |
//! | `TWF` | [`twf::TwfFactory`] | no (by design — it is the rate-oblivious stochastic-coordination policy of \[22\]) |
//!
//! Extras: uniform random, round robin ([`random`]) and a local-estimation
//! driven policy ([`led`]) in the spirit of LED \[60\].
//!
//! All heterogeneity-aware (`h*`) variants follow footnote 6 of the paper:
//! servers are *ranked* by their expected delay `q_s/µ_s` instead of their
//! queue length, and random *sampling* of servers is proportional to `µ_s`
//! instead of uniform.
//!
//! The [`registry`] module maps policy names (as used in the paper's figures)
//! to factories, which is how the experiment harness selects policies.
//!
//! The argmin-family policies (JSQ, SED, LSQ, LED and variants) answer
//! their per-job "best server" queries through the [`BatchArgmin`] indexed
//! queue view ([`common`]) — a tournament tree with `O(log n)` incremental
//! updates; a scan mode picking bit-identical servers for equal seeds is
//! retained for equivalence testing (`"JSQ(scan)"` / `"SED(scan)"` in the
//! registry).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod common;
pub mod jiq;
pub mod jsq;
pub mod led;
pub mod lsq;
pub mod power_of_d;
pub mod random;
pub mod registry;
pub mod sed;
pub mod twf;

pub use common::{ArgminMode, BatchArgmin, NamedFactory, PRIORITY_EPOCH_BATCHES};
pub use jiq::JiqFactory;
pub use jsq::JsqFactory;
pub use led::LedFactory;
pub use lsq::LsqFactory;
pub use power_of_d::PowerOfDFactory;
pub use random::{RoundRobinFactory, UniformRandomFactory, WeightedRandomFactory};
pub use registry::{all_standard_factories, factory_by_name, standard_policy_names};
pub use sed::SedFactory;
pub use twf::TwfFactory;
