//! Tidal-Water-Filling (TWF) — the stochastic-coordination policy of the
//! companion paper \[22\], which assumes a homogeneous cluster.
//!
//! TWF runs the very same pipeline as SCD (estimate the total arrivals,
//! compute the water level, solve the coordination problem, sample i.i.d.
//! destinations) but is *oblivious to service rates*: it balances the number
//! of jobs per server rather than the expected work. In a homogeneous system
//! the two coincide; under heterogeneity TWF keeps fast servers underutilized
//! and overloads slow ones, which is exactly the degradation the paper's
//! Figures 3–4 display. We implement it by feeding the SCD solver a cluster
//! whose rates are all 1.

use crate::common::NamedFactory;
use rand::RngCore;
use scd_core::estimator::ArrivalEstimator;
use scd_core::solver::{solve_round_into, ScdScratch, SolverKind};
use scd_model::{
    AliasSampler, BoxedPolicy, ClusterSpec, DispatchContext, DispatchPolicy, DispatcherId,
    PolicyFactory, ServerId,
};

/// The TWF policy (rate-oblivious stochastic coordination).
#[derive(Debug, Clone)]
pub struct TwfPolicy {
    estimator: ArrivalEstimator,
    /// Scratch vector of all-ones "rates" (resized lazily to the cluster).
    unit_rates: Vec<f64>,
    /// Reusable solver buffers (same pipeline as SCD, unit rates).
    scratch: ScdScratch,
    probabilities: Vec<f64>,
    sampler: AliasSampler,
    /// Reusable compacted queue buffer for availability-masked rounds (down
    /// servers are removed before the solve; the unit-rate prefix of
    /// `unit_rates` serves as the reduced rate vector).
    masked_queues: Vec<u64>,
}

impl TwfPolicy {
    /// TWF with the paper's arrival estimator `a_est = m·a(d)`.
    pub fn new() -> Self {
        Self::with_estimator(ArrivalEstimator::ScaledByDispatchers)
    }

    /// TWF with an explicit arrival estimator.
    pub fn with_estimator(estimator: ArrivalEstimator) -> Self {
        TwfPolicy {
            estimator,
            unit_rates: Vec::new(),
            scratch: ScdScratch::default(),
            probabilities: Vec::new(),
            sampler: AliasSampler::default(),
            masked_queues: Vec::new(),
        }
    }

    /// Computes this round's (rate-oblivious) dispatching distribution
    /// without sampling — exposed for tests and examples.
    ///
    /// Runs the same solver pipeline as
    /// [`dispatch_into`](DispatchPolicy::dispatch_into), so the returned
    /// vector is exactly the distribution a dispatch would sample from.
    pub fn distribution(&mut self, ctx: &DispatchContext<'_>, batch: usize) -> Vec<f64> {
        let n = ctx.num_servers();
        if self.unit_rates.len() != n {
            self.unit_rates = vec![1.0; n];
        }
        let a_est = self.estimator.estimate(batch as u64, ctx.num_dispatchers());
        let mut probabilities = Vec::new();
        solve_round_into(
            ctx.queue_lengths(),
            &self.unit_rates,
            a_est,
            SolverKind::Fast,
            // Warm starting is a verified, bit-identical accelerator (see
            // `solve_round_into`); TWF's queue states drift exactly like
            // SCD's, so the same seeds apply.
            true,
            &mut self.scratch,
            &mut probabilities,
        )
        .expect("unit-rate cluster state is always valid");
        probabilities
    }
}

impl Default for TwfPolicy {
    fn default() -> Self {
        TwfPolicy::new()
    }
}

impl DispatchPolicy for TwfPolicy {
    fn policy_name(&self) -> &str {
        "TWF"
    }

    fn dispatch_batch(
        &mut self,
        ctx: &DispatchContext<'_>,
        batch: usize,
        rng: &mut dyn RngCore,
    ) -> Vec<ServerId> {
        let mut out = Vec::with_capacity(batch);
        self.dispatch_into(ctx, batch, &mut out, rng);
        out
    }

    fn dispatch_into(
        &mut self,
        ctx: &DispatchContext<'_>,
        batch: usize,
        out: &mut Vec<ServerId>,
        rng: &mut dyn RngCore,
    ) {
        if batch == 0 {
            return;
        }
        let n = ctx.num_servers();
        if self.unit_rates.len() != n {
            self.unit_rates = vec![1.0; n];
        }
        let a_est = self.estimator.estimate(batch as u64, ctx.num_dispatchers());
        if let Some(avail) = ctx.active_mask() {
            // Availability-masked round: compact the up servers' queues,
            // solve the reduced unit-rate problem, and map sampled positions
            // back through the up list (mirrors SCD's masked dispatch path).
            let queues = ctx.queue_lengths();
            self.masked_queues.clear();
            self.masked_queues
                .extend(avail.up_list().iter().map(|&s| queues[s as usize]));
            solve_round_into(
                &self.masked_queues,
                &self.unit_rates[..avail.num_up()],
                a_est,
                SolverKind::Fast,
                true,
                &mut self.scratch,
                &mut self.probabilities,
            )
            .expect("unit-rate cluster state is always valid");
            self.sampler
                .rebuild(&self.probabilities)
                .expect("solver output is a valid probability vector");
            out.extend(
                (0..batch)
                    .map(|_| ServerId::new(avail.up_list()[self.sampler.sample(rng)] as usize)),
            );
            return;
        }
        solve_round_into(
            ctx.queue_lengths(),
            &self.unit_rates,
            a_est,
            SolverKind::Fast,
            // Warm starting is a verified, bit-identical accelerator (see
            // `solve_round_into`); TWF's queue states drift exactly like
            // SCD's, so the same seeds apply.
            true,
            &mut self.scratch,
            &mut self.probabilities,
        )
        .expect("unit-rate cluster state is always valid");
        self.sampler
            .rebuild(&self.probabilities)
            .expect("solver output is a valid probability vector");
        out.extend((0..batch).map(|_| ServerId::new(self.sampler.sample(rng))));
    }
}

/// Factory for [`TwfPolicy`].
#[derive(Debug, Clone, Default)]
pub struct TwfFactory;

impl TwfFactory {
    /// Creates the factory.
    pub fn new() -> Self {
        TwfFactory
    }

    /// The same policy wrapped in a [`NamedFactory`].
    pub fn named() -> NamedFactory {
        NamedFactory::new("TWF", |_d, _spec| Box::new(TwfPolicy::new()))
    }
}

impl PolicyFactory for TwfFactory {
    fn name(&self) -> &str {
        "TWF"
    }

    fn build(&self, _dispatcher: DispatcherId, _spec: &ClusterSpec) -> BoxedPolicy {
        Box::new(TwfPolicy::new())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use scd_core::policy::ScdPolicy;

    #[test]
    fn matches_scd_on_homogeneous_clusters() {
        // With all rates equal to 1 the two policies solve the same problem.
        let queues = vec![4u64, 0, 2, 7, 1];
        let rates = vec![1.0; 5];
        let ctx = DispatchContext::new(&queues, &rates, 3, 0);
        let mut twf = TwfPolicy::new();
        let scd = ScdPolicy::new();
        let p_twf = twf.distribution(&ctx, 4);
        let p_scd = scd.distribution(&ctx, 4);
        for (a, b) in p_twf.iter().zip(&p_scd) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn ignores_rates_in_heterogeneous_clusters() {
        // Two servers, same queue length, wildly different rates: TWF splits
        // evenly, SCD sends (almost) everything to the fast server.
        let queues = vec![0u64, 0];
        let rates = vec![100.0, 1.0];
        let ctx = DispatchContext::new(&queues, &rates, 1, 0);
        let mut twf = TwfPolicy::new();
        let scd = ScdPolicy::new();
        let p_twf = twf.distribution(&ctx, 10);
        let p_scd = scd.distribution(&ctx, 10);
        assert!((p_twf[0] - 0.5).abs() < 1e-9, "TWF is rate-oblivious");
        assert!(p_scd[0] > 0.9, "SCD routes to the fast server");
    }

    #[test]
    fn dispatches_valid_destinations() {
        let queues = vec![3u64, 1, 0];
        let rates = vec![2.0, 1.0, 4.0];
        let ctx = DispatchContext::new(&queues, &rates, 2, 0);
        let mut rng = StdRng::seed_from_u64(1);
        let mut twf = TwfPolicy::with_estimator(ArrivalEstimator::OwnOnly);
        let out = twf.dispatch_batch(&ctx, 25, &mut rng);
        assert_eq!(out.len(), 25);
        assert!(out.iter().all(|s| s.index() < 3));
        assert!(twf.dispatch_batch(&ctx, 0, &mut rng).is_empty());
    }

    #[test]
    fn factory_builds_twf() {
        let spec = ClusterSpec::from_rates(vec![1.0, 5.0]).unwrap();
        let factory = TwfFactory::new();
        assert_eq!(factory.name(), "TWF");
        assert_eq!(
            factory.build(DispatcherId::new(0), &spec).policy_name(),
            "TWF"
        );
        assert_eq!(TwfFactory::named().name(), "TWF");
    }
}
