//! Join-the-Shortest-Queue (JSQ) with full queue-length information.
//!
//! Each dispatcher sees the true queue lengths at the start of the round and
//! greedily sends every job in its batch to the currently shortest queue,
//! updating only its *local copy* of the queue lengths as it goes (it cannot
//! see the concurrent decisions of the other dispatchers). With a single
//! dispatcher this is the classic optimal JSQ; with many dispatchers all of
//! them pile onto the same few short queues — the *herding* phenomenon that
//! motivates the paper.
//!
//! The repeated shortest-queue queries run over a [`BatchArgmin`] indexed
//! queue view (tournament tree); since the keys are the *true* queue
//! lengths, the engine's round-to-round dirty set
//! ([`DispatchContext::dirty_servers`]) is authoritative for them: the
//! default configuration keeps one **warm** tree per dispatcher across
//! rounds and repairs exactly the engine-reported changes plus the slots it
//! placed jobs on itself (the dirty set is the *exact* snapshot diff, so a
//! server that completed as many jobs as it received is not listed even
//! though this dispatcher's mirror inflated it — the policy records its own
//! placements and re-checks them), instead of rebuilding all `n` keys every
//! batch.
//! The `O(b·n)` scan mode ([`JsqPolicy::scan`]) follows the identical warm
//! priority lifecycle and picks exactly the same servers for equal seeds;
//! [`JsqPolicy::per_batch_rebuild`] retains the per-batch-rebuild reference
//! path (the PR 4 configuration, kept as the bench baseline — it consumes
//! the RNG differently, so its trajectories differ from the warm default).

use crate::common::{
    mark_availability_flips, sync_snapshot_mirror, ArgminMode, BatchArgmin, NamedFactory,
    SnapshotSync,
};
use rand::RngCore;
use scd_model::{
    DispatchContext, DispatchPolicy, PolicyFactory, ServerId, StateReader, StateWriter,
};

/// The JSQ policy (heterogeneity-oblivious, full information).
#[derive(Debug, Clone, Default)]
pub struct JsqPolicy {
    /// This dispatcher's local view of the queues: the engine snapshot plus
    /// the placements of the current batch. In the warm configuration it
    /// persists across rounds and is re-synced from the engine's dirty set.
    local: Vec<u64>,
    /// The argmin engine (indexed or scan, warm or per-batch).
    picker: BatchArgmin,
    /// Tracks which round's snapshot `local` mirrors (warm path only).
    sync: SnapshotSync,
    /// Slots this dispatcher placed jobs on in its last batch — re-checked
    /// at the next sync alongside the engine's dirty set.
    touched: Vec<u32>,
    /// False only for the per-batch-rebuild reference configuration.
    warm: bool,
}

impl JsqPolicy {
    /// Creates a JSQ policy instance (warm indexed argmin).
    pub fn new() -> Self {
        Self::with_mode(ArgminMode::Indexed)
    }

    /// JSQ with the reference `O(n)`-per-job scan — bit-identical decisions
    /// to [`JsqPolicy::new`] for equal seeds (the scan follows the same warm
    /// priority lifecycle), kept for equivalence tests and baselines.
    pub fn scan() -> Self {
        Self::with_mode(ArgminMode::Scan)
    }

    /// JSQ with an explicit argmin mode.
    pub fn with_mode(mode: ArgminMode) -> Self {
        JsqPolicy {
            local: Vec::new(),
            picker: BatchArgmin::new(mode),
            sync: SnapshotSync::default(),
            touched: Vec::new(),
            warm: true,
        }
    }

    /// Reverts to the per-batch tree rebuild (fresh priorities and an `O(n)`
    /// rebuild every batch) — the pre-dirty-set reference configuration kept
    /// for the engine-throughput baseline. Note: per-batch and warm
    /// configurations consume the RNG differently, so their simulation
    /// trajectories differ (each is internally bit-identical across its own
    /// indexed/scan modes).
    pub fn per_batch_rebuild(mut self) -> Self {
        self.warm = false;
        self
    }
}

impl DispatchPolicy for JsqPolicy {
    fn policy_name(&self) -> &str {
        "JSQ"
    }

    fn observe_round(&mut self, ctx: &DispatchContext<'_>, _rng: &mut dyn RngCore) {
        if self.warm {
            // Repair the persistent mirror (and mark the tree) from the
            // engine's dirty set — including dispatchers whose batch is
            // empty this round, which keeps the round chain unbroken.
            sync_snapshot_mirror(
                &mut self.local,
                &mut self.picker,
                &mut self.sync,
                ctx,
                &mut self.touched,
            );
            mark_availability_flips(&mut self.picker, ctx);
        }
    }

    fn dispatch_batch(
        &mut self,
        ctx: &DispatchContext<'_>,
        batch: usize,
        rng: &mut dyn RngCore,
    ) -> Vec<ServerId> {
        let mut out = Vec::with_capacity(batch);
        self.dispatch_into(ctx, batch, &mut out, rng);
        out
    }

    fn dispatch_into(
        &mut self,
        ctx: &DispatchContext<'_>,
        batch: usize,
        out: &mut Vec<ServerId>,
        rng: &mut dyn RngCore,
    ) {
        if batch == 0 {
            return;
        }
        let n = ctx.num_servers();
        // Down servers are not candidates: their keys saturate to +∞ under
        // an active availability mask (`None` on the fair-weather path, so
        // the closure below is then the plain queue-length key).
        let mask = ctx.active_mask();
        let masked = move |i: usize, q: u64| match mask {
            Some(avail) if !avail.is_up(i) => f64::INFINITY,
            _ => q as f64,
        };
        if self.warm {
            // No-op when observe_round already synced this round; direct
            // invocations (tests, examples) resync here.
            sync_snapshot_mirror(
                &mut self.local,
                &mut self.picker,
                &mut self.sync,
                ctx,
                &mut self.touched,
            );
            mark_availability_flips(&mut self.picker, ctx);
            let local = &self.local;
            self.picker.begin_warm(n, |i| masked(i, local[i]), rng);
        } else {
            self.local.clear();
            self.local.extend_from_slice(ctx.queue_lengths());
            let local = &self.local;
            self.picker.begin(n, |i| masked(i, local[i]), rng);
        }
        let local = &mut self.local;
        for _ in 0..batch {
            let target = self.picker.pick(|i| masked(i, local[i]));
            local[target] += 1;
            self.picker.update(target, masked(target, local[target]));
            if self.warm {
                self.touched.push(target as u32);
            }
            out.push(ServerId::new(target));
        }
    }

    fn save_state(&self, out: &mut Vec<u8>) {
        let mut w = StateWriter::new();
        w.u8(u8::from(self.warm));
        if self.warm {
            // The persistent mirror, its sync point, the unreconciled own
            // placements, and the warm priority epoch — losing any of these
            // would change RNG consumption or the mirror overlay after a
            // resume. (The per-batch configuration rebuilds everything from
            // the snapshot each batch and needs none of them.)
            w.u64s(&self.local);
            w.opt_u64(self.sync.synced_round());
            w.u32s(&self.touched);
            self.picker.save_warm_state(&mut w);
        }
        out.extend_from_slice(&w.into_bytes());
    }

    fn restore_state(&mut self, bytes: &[u8]) -> Result<(), String> {
        let mut r = StateReader::new(bytes);
        let warm = match r.u8()? {
            0 => false,
            1 => true,
            other => return Err(format!("JSQ checkpoint: invalid warm flag byte {other}")),
        };
        if warm != self.warm {
            return Err(
                "JSQ checkpoint warm-mode flag does not match this configuration".to_string(),
            );
        }
        if warm {
            self.local = r.u64s()?;
            self.sync.set_synced_round(r.opt_u64()?);
            self.touched = r.u32s()?;
            self.picker.restore_warm_state(&mut r)?;
        }
        r.finish()
    }
}

/// Factory producing one [`JsqPolicy`] per dispatcher.
#[derive(Debug, Clone)]
pub struct JsqFactory {
    mode: ArgminMode,
    warm: bool,
}

impl JsqFactory {
    /// Creates the factory (warm indexed argmin).
    pub fn new() -> Self {
        JsqFactory {
            mode: ArgminMode::Indexed,
            warm: true,
        }
    }

    /// Factory for the scan-mode reference (same decisions, `O(n)` per job).
    /// Reports carry the same "JSQ" name so they compare equal to indexed
    /// runs of the same seed.
    pub fn scan() -> Self {
        JsqFactory {
            mode: ArgminMode::Scan,
            warm: true,
        }
    }

    /// Factory for the pre-dirty-set reference: fresh priorities and an
    /// `O(n)` tree rebuild every batch (the PR 4 dispatch path, kept as the
    /// engine-throughput baseline).
    pub fn per_batch_rebuild(mut self) -> Self {
        self.warm = false;
        self
    }

    /// The same policy wrapped in a [`NamedFactory`] (convenience for the
    /// registry).
    pub fn named() -> NamedFactory {
        NamedFactory::new("JSQ", |_d, _spec| Box::new(JsqPolicy::new()))
    }
}

impl Default for JsqFactory {
    fn default() -> Self {
        JsqFactory::new()
    }
}

impl PolicyFactory for JsqFactory {
    fn name(&self) -> &str {
        "JSQ"
    }

    fn build(
        &self,
        _dispatcher: scd_model::DispatcherId,
        _spec: &scd_model::ClusterSpec,
    ) -> scd_model::BoxedPolicy {
        let policy = JsqPolicy::with_mode(self.mode);
        Box::new(if self.warm {
            policy
        } else {
            policy.per_batch_rebuild()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use scd_model::{ClusterSpec, DispatcherId};

    #[test]
    fn sends_every_job_to_the_shortest_queue() {
        let queues = vec![3u64, 0, 5];
        let rates = vec![1.0, 1.0, 1.0];
        let ctx = DispatchContext::new(&queues, &rates, 1, 0);
        let mut rng = StdRng::seed_from_u64(1);
        let mut policy = JsqPolicy::new();
        let out = policy.dispatch_batch(&ctx, 1, &mut rng);
        assert_eq!(out, vec![ServerId::new(1)]);
    }

    #[test]
    fn local_updates_spread_a_large_batch() {
        // 2 servers with queues [0, 0]; a batch of 4 must be split 2/2
        // because the local copy is incremented after every job.
        let queues = vec![0u64, 0];
        let rates = vec![1.0, 1.0];
        let ctx = DispatchContext::new(&queues, &rates, 1, 0);
        let mut rng = StdRng::seed_from_u64(5);
        let mut policy = JsqPolicy::new();
        let out = policy.dispatch_batch(&ctx, 4, &mut rng);
        let to_first = out.iter().filter(|s| s.index() == 0).count();
        assert_eq!(to_first, 2);
    }

    #[test]
    fn ignores_rates_entirely() {
        // A fast server with a slightly longer queue is ignored — this is
        // exactly the heterogeneity blindness the paper criticises.
        let queues = vec![2u64, 1];
        let rates = vec![100.0, 1.0];
        let ctx = DispatchContext::new(&queues, &rates, 1, 0);
        let mut rng = StdRng::seed_from_u64(2);
        let mut policy = JsqPolicy::new();
        let out = policy.dispatch_batch(&ctx, 1, &mut rng);
        assert_eq!(
            out[0].index(),
            1,
            "JSQ picks the shorter queue even if it is slow"
        );
    }

    #[test]
    fn consecutive_rounds_restart_from_the_snapshot() {
        let rates = vec![1.0, 1.0];
        for policy in [JsqPolicy::new(), JsqPolicy::new().per_batch_rebuild()] {
            let mut policy = policy;
            let mut rng = StdRng::seed_from_u64(9);

            let queues1 = vec![0u64, 10];
            let ctx1 = DispatchContext::new(&queues1, &rates, 1, 0);
            let out1 = policy.dispatch_batch(&ctx1, 3, &mut rng);
            assert!(out1.iter().all(|s| s.index() == 0));

            // New round, new snapshot: the stale local view must not leak.
            let queues2 = vec![10u64, 0];
            let ctx2 = DispatchContext::new(&queues2, &rates, 1, 1);
            let out2 = policy.dispatch_batch(&ctx2, 3, &mut rng);
            assert!(out2.iter().all(|s| s.index() == 1));
        }
    }

    #[test]
    fn warm_mirror_follows_engine_style_dirty_sets() {
        // Simulate the engine's contract across rounds: the dirty set lists
        // every server whose length changed since the previous snapshot
        // (including this dispatcher's own placements).
        let rates = vec![1.0; 4];
        let mut policy = JsqPolicy::new();
        let mut rng = StdRng::seed_from_u64(3);

        let queues0 = vec![2u64, 2, 2, 2];
        let ctx0 = DispatchContext::new(&queues0, &rates, 1, 0);
        policy.observe_round(&ctx0, &mut rng);
        let out0 = policy.dispatch_batch(&ctx0, 1, &mut rng);
        let placed = out0[0].index();

        // Next round: the placed server kept its job (+1), server 3 drained.
        let mut queues1 = queues0.clone();
        queues1[placed] += 1;
        queues1[3] = 0;
        let dirty: Vec<u32> = vec![placed as u32, 3];
        let ctx1 = DispatchContext::new(&queues1, &rates, 1, 1).with_dirty(&dirty);
        policy.observe_round(&ctx1, &mut rng);
        let out1 = policy.dispatch_batch(&ctx1, 1, &mut rng);
        assert_eq!(out1[0].index(), 3, "the drained server is now shortest");
    }

    #[test]
    fn factory_builds_jsq() {
        let spec = ClusterSpec::homogeneous(2, 1.0).unwrap();
        let factory = JsqFactory::new();
        assert_eq!(factory.name(), "JSQ");
        let p = factory.build(DispatcherId::new(0), &spec);
        assert_eq!(p.policy_name(), "JSQ");
        let named = JsqFactory::named();
        assert_eq!(named.name(), "JSQ");
        let baseline = JsqFactory::new()
            .per_batch_rebuild()
            .build(DispatcherId::new(0), &spec);
        assert_eq!(baseline.policy_name(), "JSQ");
    }
}
