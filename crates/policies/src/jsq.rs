//! Join-the-Shortest-Queue (JSQ) with full queue-length information.
//!
//! Each dispatcher sees the true queue lengths at the start of the round and
//! greedily sends every job in its batch to the currently shortest queue,
//! updating only its *local copy* of the queue lengths as it goes (it cannot
//! see the concurrent decisions of the other dispatchers). With a single
//! dispatcher this is the classic optimal JSQ; with many dispatchers all of
//! them pile onto the same few short queues — the *herding* phenomenon that
//! motivates the paper.
//!
//! The repeated shortest-queue queries run over a [`BatchArgmin`] indexed
//! queue view (tournament tree, `O(n + b·log n)` per batch of `b` jobs); the
//! `O(b·n)` scan mode is retained via [`JsqPolicy::scan`] and picks exactly
//! the same servers for equal seeds.

use crate::common::{ArgminMode, BatchArgmin, NamedFactory};
use rand::RngCore;
use scd_model::{DispatchContext, DispatchPolicy, PolicyFactory, ServerId};

/// The JSQ policy (heterogeneity-oblivious, full information).
#[derive(Debug, Clone, Default)]
pub struct JsqPolicy {
    /// Scratch buffer holding this dispatcher's local view of the queues
    /// while it places its batch.
    local: Vec<u64>,
    /// The per-batch argmin engine (indexed or scan).
    picker: BatchArgmin,
}

impl JsqPolicy {
    /// Creates a JSQ policy instance (indexed argmin).
    pub fn new() -> Self {
        Self::with_mode(ArgminMode::Indexed)
    }

    /// JSQ with the reference `O(n)`-per-job scan — bit-identical decisions
    /// to [`JsqPolicy::new`] for equal seeds, kept for equivalence tests and
    /// baselines.
    pub fn scan() -> Self {
        Self::with_mode(ArgminMode::Scan)
    }

    /// JSQ with an explicit argmin mode.
    pub fn with_mode(mode: ArgminMode) -> Self {
        JsqPolicy {
            local: Vec::new(),
            picker: BatchArgmin::new(mode),
        }
    }
}

impl DispatchPolicy for JsqPolicy {
    fn policy_name(&self) -> &str {
        "JSQ"
    }

    fn dispatch_batch(
        &mut self,
        ctx: &DispatchContext<'_>,
        batch: usize,
        rng: &mut dyn RngCore,
    ) -> Vec<ServerId> {
        let mut out = Vec::with_capacity(batch);
        self.dispatch_into(ctx, batch, &mut out, rng);
        out
    }

    fn dispatch_into(
        &mut self,
        ctx: &DispatchContext<'_>,
        batch: usize,
        out: &mut Vec<ServerId>,
        rng: &mut dyn RngCore,
    ) {
        if batch == 0 {
            return;
        }
        self.local.clear();
        self.local.extend_from_slice(ctx.queue_lengths());
        let local = &mut self.local;
        let n = local.len();
        self.picker.begin(n, |i| local[i] as f64, rng);
        for _ in 0..batch {
            let target = self.picker.pick(|i| local[i] as f64);
            local[target] += 1;
            self.picker.update(target, local[target] as f64);
            out.push(ServerId::new(target));
        }
    }
}

/// Factory producing one [`JsqPolicy`] per dispatcher.
#[derive(Debug, Clone, Default)]
pub struct JsqFactory {
    mode: ArgminMode,
}

impl JsqFactory {
    /// Creates the factory (indexed argmin).
    pub fn new() -> Self {
        JsqFactory::default()
    }

    /// Factory for the scan-mode reference (same decisions, `O(n)` per job).
    /// Reports carry the same "JSQ" name so they compare equal to indexed
    /// runs of the same seed.
    pub fn scan() -> Self {
        JsqFactory {
            mode: ArgminMode::Scan,
        }
    }

    /// The same policy wrapped in a [`NamedFactory`] (convenience for the
    /// registry).
    pub fn named() -> NamedFactory {
        NamedFactory::new("JSQ", |_d, _spec| Box::new(JsqPolicy::new()))
    }
}

impl PolicyFactory for JsqFactory {
    fn name(&self) -> &str {
        "JSQ"
    }

    fn build(
        &self,
        _dispatcher: scd_model::DispatcherId,
        _spec: &scd_model::ClusterSpec,
    ) -> scd_model::BoxedPolicy {
        Box::new(JsqPolicy::with_mode(self.mode))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use scd_model::{ClusterSpec, DispatcherId};

    #[test]
    fn sends_every_job_to_the_shortest_queue() {
        let queues = vec![3u64, 0, 5];
        let rates = vec![1.0, 1.0, 1.0];
        let ctx = DispatchContext::new(&queues, &rates, 1, 0);
        let mut rng = StdRng::seed_from_u64(1);
        let mut policy = JsqPolicy::new();
        let out = policy.dispatch_batch(&ctx, 1, &mut rng);
        assert_eq!(out, vec![ServerId::new(1)]);
    }

    #[test]
    fn local_updates_spread_a_large_batch() {
        // 2 servers with queues [0, 0]; a batch of 4 must be split 2/2
        // because the local copy is incremented after every job.
        let queues = vec![0u64, 0];
        let rates = vec![1.0, 1.0];
        let ctx = DispatchContext::new(&queues, &rates, 1, 0);
        let mut rng = StdRng::seed_from_u64(5);
        let mut policy = JsqPolicy::new();
        let out = policy.dispatch_batch(&ctx, 4, &mut rng);
        let to_first = out.iter().filter(|s| s.index() == 0).count();
        assert_eq!(to_first, 2);
    }

    #[test]
    fn ignores_rates_entirely() {
        // A fast server with a slightly longer queue is ignored — this is
        // exactly the heterogeneity blindness the paper criticises.
        let queues = vec![2u64, 1];
        let rates = vec![100.0, 1.0];
        let ctx = DispatchContext::new(&queues, &rates, 1, 0);
        let mut rng = StdRng::seed_from_u64(2);
        let mut policy = JsqPolicy::new();
        let out = policy.dispatch_batch(&ctx, 1, &mut rng);
        assert_eq!(
            out[0].index(),
            1,
            "JSQ picks the shorter queue even if it is slow"
        );
    }

    #[test]
    fn consecutive_rounds_restart_from_the_snapshot() {
        let rates = vec![1.0, 1.0];
        let mut policy = JsqPolicy::new();
        let mut rng = StdRng::seed_from_u64(9);

        let queues1 = vec![0u64, 10];
        let ctx1 = DispatchContext::new(&queues1, &rates, 1, 0);
        let out1 = policy.dispatch_batch(&ctx1, 3, &mut rng);
        assert!(out1.iter().all(|s| s.index() == 0));

        // New round, new snapshot: the stale local view must not leak.
        let queues2 = vec![10u64, 0];
        let ctx2 = DispatchContext::new(&queues2, &rates, 1, 1);
        let out2 = policy.dispatch_batch(&ctx2, 3, &mut rng);
        assert!(out2.iter().all(|s| s.index() == 1));
    }

    #[test]
    fn factory_builds_jsq() {
        let spec = ClusterSpec::homogeneous(2, 1.0).unwrap();
        let factory = JsqFactory::new();
        assert_eq!(factory.name(), "JSQ");
        let p = factory.build(DispatcherId::new(0), &spec);
        assert_eq!(p.policy_name(), "JSQ");
        let named = JsqFactory::named();
        assert_eq!(named.name(), "JSQ");
    }
}
