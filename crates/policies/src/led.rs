//! A Local-Estimation-Driven (LED) policy in the spirit of Zhou et al. \[60\].
//!
//! LED, like LSQ, gives every dispatcher a persistent local *estimate* of
//! each server's backlog. Unlike LSQ it also *evolves* the estimate between
//! probes using the known service rates: every round the estimate is reduced
//! by the server's expected departures (`µ_s`) and increased by the jobs this
//! dispatcher sent. Occasional probes re-anchor the estimate to the truth.
//!
//! The paper lists LED among the recent state-of-the-art techniques in its
//! related-work section but does not plot it in the main figures; we include
//! it as an extension baseline for completeness and for the ablation
//! experiments.

use crate::common::{mark_availability_flips, ArgminMode, BatchArgmin, NamedFactory};
use rand::Rng;
use rand::RngCore;
use scd_model::{
    AliasSampler, BoxedPolicy, ClusterSpec, DispatchContext, DispatchPolicy, DispatcherId,
    PolicyFactory, ServerId, StateReader, StateWriter,
};

/// Probing / ranking flavour for LED.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LedVariant {
    /// Uniform probing, estimated-queue-length ranking.
    Uniform,
    /// Rate-proportional probing, estimated-expected-delay ranking.
    Heterogeneous,
}

/// The LED policy.
#[derive(Debug, Clone)]
pub struct LedPolicy {
    variant: LedVariant,
    name: &'static str,
    probes_per_round: usize,
    /// Local backlog estimates (fractional because of the rate decay).
    estimates: Vec<f64>,
    rates: Vec<f64>,
    /// Reciprocal rates for the expected-delay ranking.
    inv_rates: Vec<f64>,
    rate_sampler: Option<AliasSampler>,
    /// Warm argmin engine over the estimates: the tournament tree lives
    /// across rounds; decayed/probed estimates are repaired as dirty keys.
    picker: BatchArgmin,
    /// False only for the per-batch-rebuild reference configuration
    /// ([`LedFactory::per_batch_rebuild`], the bench baseline).
    warm: bool,
}

impl LedPolicy {
    /// Uniform-probing LED.
    pub fn uniform(num_servers: usize, probes_per_round: usize) -> Self {
        LedPolicy {
            variant: LedVariant::Uniform,
            name: "LED",
            probes_per_round,
            estimates: vec![0.0; num_servers],
            rates: vec![1.0; num_servers],
            inv_rates: vec![1.0; num_servers],
            rate_sampler: None,
            picker: BatchArgmin::new(ArgminMode::Indexed),
            warm: true,
        }
    }

    /// Heterogeneity-aware LED.
    pub fn heterogeneous(spec: &ClusterSpec, probes_per_round: usize) -> Self {
        let sampler = AliasSampler::new(spec.rates()).expect("cluster rates are strictly positive");
        LedPolicy {
            variant: LedVariant::Heterogeneous,
            name: "hLED",
            probes_per_round,
            estimates: vec![0.0; spec.num_servers()],
            rates: spec.rates().to_vec(),
            inv_rates: scd_model::reciprocal_rates(spec.rates()),
            rate_sampler: Some(sampler),
            picker: BatchArgmin::new(ArgminMode::Indexed),
            warm: true,
        }
    }

    /// Switches the argmin engine mode. [`ArgminMode::Scan`] is the
    /// bit-identical oracle: it follows the same warm priority lifecycle, so
    /// it picks exactly the servers the warm tree picks for equal seeds.
    pub fn with_mode(mut self, mode: ArgminMode) -> Self {
        self.picker = BatchArgmin::new(mode);
        self
    }

    /// Reverts to the per-batch tree rebuild (fresh priorities and an `O(n)`
    /// rebuild every batch) — the pre-warm-path reference configuration kept
    /// for the engine-throughput baseline.
    pub fn per_batch_rebuild(mut self) -> Self {
        self.warm = false;
        self
    }

    /// The current local estimates (exposed for tests).
    pub fn estimates(&self) -> &[f64] {
        &self.estimates
    }

    /// Lazy per-cluster (re)initialization, keyed on the cluster *size*
    /// only: rates are static for a policy's lifetime (one run — the
    /// `ClusterSpec` contract), so the warm path pays no per-round `O(n)`
    /// change detection. A size change invalidates the warm tree.
    fn sync_dimensions(&mut self, ctx: &DispatchContext<'_>) {
        let n = ctx.num_servers();
        if self.estimates.len() != n {
            self.estimates = vec![0.0; n];
            self.rates = ctx.rates().to_vec();
            self.inv_rates = scd_model::reciprocal_rates(ctx.rates());
            self.picker.invalidate();
        }
    }

    fn probe_target(&self, n: usize, rng: &mut dyn RngCore) -> usize {
        match self.variant {
            LedVariant::Uniform => rng.gen_range(0..n),
            LedVariant::Heterogeneous => self
                .rate_sampler
                .as_ref()
                .expect("heterogeneous variant carries a sampler")
                .sample(rng),
        }
    }
}

impl DispatchPolicy for LedPolicy {
    fn policy_name(&self) -> &str {
        self.name
    }

    fn observe_round(&mut self, ctx: &DispatchContext<'_>, rng: &mut dyn RngCore) {
        self.sync_dimensions(ctx);
        let rates = ctx.rates();
        // Evolve the estimates by the expected departures of one round. Only
        // positive estimates actually change (zero stays zero), so only those
        // dirty the warm tree — in a lightly loaded view most slots stay
        // clean. (A mostly-positive view dirties ~n slots; `apply_updates`
        // then falls back to its O(n) internal rebuild, no worse than the
        // per-batch path.)
        for (i, (est, &mu)) in self.estimates.iter_mut().zip(rates).enumerate() {
            if *est > 0.0 {
                *est = (*est - mu).max(0.0);
                self.picker.mark_dirty(i);
            }
        }
        // Re-anchor a few entries with the ground truth. Like LSQ, only
        // probes that actually move the estimate dirty the warm tree (LED's
        // keys live on per-dispatcher estimates the engine cannot see, so
        // the marks are policy-derived, not taken from the context's dirty
        // set — that set describes the true queues, not this replica).
        let n = ctx.num_servers();
        for probe in 0..self.probes_per_round {
            let target = self.probe_target(n, rng);
            // The target is always *drawn* (the policy stream must not
            // depend on the scenario); a probe the scenario loses — or one
            // sent to a down server — simply fails to re-anchor.
            if !ctx.probe_delivered(probe as u64, ServerId::new(target)) {
                continue;
            }
            let truth = ctx.queue_len(ServerId::new(target)) as f64;
            if self.estimates[target] != truth {
                self.estimates[target] = truth;
                self.picker.mark_dirty(target);
            }
        }
        mark_availability_flips(&mut self.picker, ctx);
    }

    fn dispatch_batch(
        &mut self,
        ctx: &DispatchContext<'_>,
        batch: usize,
        rng: &mut dyn RngCore,
    ) -> Vec<ServerId> {
        let mut out = Vec::with_capacity(batch);
        self.dispatch_into(ctx, batch, &mut out, rng);
        out
    }

    fn dispatch_into(
        &mut self,
        ctx: &DispatchContext<'_>,
        batch: usize,
        out: &mut Vec<ServerId>,
        rng: &mut dyn RngCore,
    ) {
        if batch == 0 {
            return;
        }
        self.sync_dimensions(ctx);
        mark_availability_flips(&mut self.picker, ctx);
        let n = ctx.num_servers();
        let estimates = &mut self.estimates;
        let inv = &self.inv_rates;
        let variant = self.variant;
        // Down servers are not candidates under an active availability mask.
        let mask = ctx.active_mask();
        let key = move |i: usize, est: f64| match mask {
            Some(avail) if !avail.is_up(i) => f64::INFINITY,
            _ => match variant {
                LedVariant::Uniform => est,
                LedVariant::Heterogeneous => (est + 1.0) * inv[i],
            },
        };
        if self.warm {
            self.picker.begin_warm(n, |i| key(i, estimates[i]), rng);
        } else {
            self.picker.begin(n, |i| key(i, estimates[i]), rng);
        }
        for _ in 0..batch {
            let target = self.picker.pick(|i| key(i, estimates[i]));
            estimates[target] += 1.0;
            self.picker.update(target, key(target, estimates[target]));
            out.push(ServerId::new(target));
        }
    }

    fn save_state(&self, out: &mut Vec<u8>) {
        let mut w = StateWriter::new();
        w.u8(u8::from(self.warm));
        // The evolving backlog estimates (fractional, so exact bit patterns)
        // plus the warm priority epoch. Rates and the probe sampler are
        // static per run and come back from the factory.
        w.f64s(&self.estimates);
        if self.warm {
            self.picker.save_warm_state(&mut w);
        }
        out.extend_from_slice(&w.into_bytes());
    }

    fn restore_state(&mut self, bytes: &[u8]) -> Result<(), String> {
        let mut r = StateReader::new(bytes);
        let warm = match r.u8()? {
            0 => false,
            1 => true,
            other => {
                return Err(format!(
                    "{} checkpoint: invalid warm flag byte {other}",
                    self.name
                ))
            }
        };
        if warm != self.warm {
            return Err(format!(
                "{} checkpoint warm-mode flag does not match this configuration",
                self.name
            ));
        }
        let estimates = r.f64s()?;
        if estimates.len() != self.estimates.len() {
            return Err(format!(
                "{} checkpoint covers {} servers, this cluster has {}",
                self.name,
                estimates.len(),
                self.estimates.len()
            ));
        }
        self.estimates = estimates;
        if warm {
            self.picker.restore_warm_state(&mut r)?;
        }
        r.finish()
    }
}

/// Factory for [`LedPolicy`].
#[derive(Debug, Clone)]
pub struct LedFactory {
    variant: LedVariant,
    probes_per_round: usize,
    mode: ArgminMode,
    warm: bool,
}

impl LedFactory {
    /// Uniform-probing LED with one probe per round.
    pub fn new() -> Self {
        LedFactory {
            variant: LedVariant::Uniform,
            probes_per_round: 1,
            mode: ArgminMode::Indexed,
            warm: true,
        }
    }

    /// Heterogeneity-aware LED with one probe per round.
    pub fn heterogeneous() -> Self {
        LedFactory {
            variant: LedVariant::Heterogeneous,
            ..LedFactory::new()
        }
    }

    /// Overrides the number of probes per round.
    pub fn with_probes(mut self, probes_per_round: usize) -> Self {
        self.probes_per_round = probes_per_round;
        self
    }

    /// Factory for the scan-mode reference — bit-identical decisions to the
    /// warm-tree default for equal seeds (same warm priority lifecycle).
    pub fn scan(mut self) -> Self {
        self.mode = ArgminMode::Scan;
        self
    }

    /// Factory for the pre-warm-path reference: fresh priorities and an
    /// `O(n)` tree rebuild every batch (the PR 2 dispatch path, kept as the
    /// engine-throughput baseline).
    pub fn per_batch_rebuild(mut self) -> Self {
        self.warm = false;
        self
    }

    /// The same configuration wrapped in a [`NamedFactory`].
    pub fn named(self) -> NamedFactory {
        let name = PolicyFactory::name(&self).to_string();
        NamedFactory::new(name, move |d, spec| self.build(d, spec))
    }
}

impl Default for LedFactory {
    fn default() -> Self {
        LedFactory::new()
    }
}

impl PolicyFactory for LedFactory {
    fn name(&self) -> &str {
        match self.variant {
            LedVariant::Uniform => "LED",
            LedVariant::Heterogeneous => "hLED",
        }
    }

    fn build(&self, _dispatcher: DispatcherId, spec: &ClusterSpec) -> BoxedPolicy {
        let policy = match self.variant {
            LedVariant::Uniform => LedPolicy::uniform(spec.num_servers(), self.probes_per_round),
            LedVariant::Heterogeneous => LedPolicy::heterogeneous(spec, self.probes_per_round),
        };
        let policy = policy.with_mode(self.mode);
        Box::new(if self.warm {
            policy
        } else {
            policy.per_batch_rebuild()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn estimates_decay_by_the_service_rate() {
        let queues = vec![0u64, 0];
        let rates = vec![2.0, 1.0];
        let ctx = DispatchContext::new(&queues, &rates, 1, 0);
        let mut rng = StdRng::seed_from_u64(1);
        let mut policy = LedPolicy::uniform(2, 0);
        // Seed some backlog estimate by dispatching.
        let _ = policy.dispatch_batch(&ctx, 6, &mut rng);
        let before: f64 = policy.estimates().iter().sum();
        assert!((before - 6.0).abs() < 1e-12);
        policy.observe_round(&ctx, &mut rng);
        let after: f64 = policy.estimates().iter().sum();
        assert!(after < before, "estimates must decay between rounds");
        assert!(policy.estimates().iter().all(|&e| e >= 0.0));
    }

    #[test]
    fn probes_reanchor_to_truth() {
        let queues = vec![50u64, 0];
        let rates = vec![1.0, 1.0];
        let ctx = DispatchContext::new(&queues, &rates, 1, 0);
        let mut rng = StdRng::seed_from_u64(2);
        let mut policy = LedPolicy::uniform(2, 10);
        policy.observe_round(&ctx, &mut rng);
        assert!((policy.estimates()[0] - 50.0).abs() < 1e-12);
        let out = policy.dispatch_batch(&ctx, 1, &mut rng);
        assert_eq!(out[0].index(), 1);
    }

    #[test]
    fn heterogeneous_variant_prefers_fast_servers() {
        let queues = vec![0u64, 0];
        let rates = vec![10.0, 1.0];
        let spec = ClusterSpec::from_rates(rates.clone()).unwrap();
        let ctx = DispatchContext::new(&queues, &rates, 1, 0);
        let mut rng = StdRng::seed_from_u64(3);
        let mut policy = LedPolicy::heterogeneous(&spec, 2);
        assert_eq!(policy.policy_name(), "hLED");
        policy.observe_round(&ctx, &mut rng);
        let out = policy.dispatch_batch(&ctx, 10, &mut rng);
        let to_fast = out.iter().filter(|s| s.index() == 0).count();
        assert!(to_fast >= 8, "fast server received only {to_fast} of 10");
    }

    #[test]
    fn factories_build_the_right_variant() {
        let spec = ClusterSpec::from_rates(vec![1.0, 2.0]).unwrap();
        let f = LedFactory::new();
        assert_eq!(f.name(), "LED");
        assert_eq!(f.build(DispatcherId::new(0), &spec).policy_name(), "LED");
        let h = LedFactory::heterogeneous().with_probes(4);
        assert_eq!(h.name(), "hLED");
        assert_eq!(h.build(DispatcherId::new(0), &spec).policy_name(), "hLED");
        assert_eq!(LedFactory::new().named().name(), "LED");
    }
}
