//! Local-Shortest-Queue (LSQ) and its heterogeneity-aware variant `hLSQ`.
//!
//! LSQ (\[54\] in the paper) equips every dispatcher with a *persistent local
//! array* of queue-length estimates. The array is refreshed lazily: each
//! round the dispatcher probes a small number of randomly chosen servers and
//! overwrites their entries with the true queue length; every job it
//! dispatches increments the corresponding local entry. Because different
//! dispatchers probe different servers, their views decorrelate and herding
//! is reduced — but only as long as the views stay weakly correlated
//! (Section 1.1).
//!
//! `hLSQ` (footnote 6) probes servers proportionally to their service rate
//! and ranks local entries by expected delay `(q̂ + 1)/µ`.

use crate::common::{mark_availability_flips, ArgminMode, BatchArgmin, NamedFactory};
use rand::Rng;
use rand::RngCore;
use scd_model::{
    AliasSampler, BoxedPolicy, ClusterSpec, DispatchContext, DispatchPolicy, DispatcherId,
    PolicyFactory, ServerId, StateReader, StateWriter,
};

/// Probing / ranking flavour for LSQ.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LsqVariant {
    /// Uniform probing, queue-length ranking.
    Uniform,
    /// Rate-proportional probing, expected-delay ranking.
    Heterogeneous,
}

/// The LSQ policy (one instance per dispatcher; the local array is the whole
/// point).
#[derive(Debug, Clone)]
pub struct LsqPolicy {
    variant: LsqVariant,
    name: &'static str,
    /// Number of servers probed (refreshed with their true queue length) at
    /// the start of every round.
    probes_per_round: usize,
    /// The persistent local estimate of every server's queue length.
    local: Vec<u64>,
    /// Rate-proportional probe sampler for the heterogeneous variant.
    rate_sampler: Option<AliasSampler>,
    rates: Vec<f64>,
    /// Reciprocal rates for the expected-delay ranking (multiplying beats
    /// dividing in the per-job key evaluations).
    inv_rates: Vec<f64>,
    /// Warm argmin engine over the local estimates: the tournament tree
    /// lives across rounds and only probe/placement keys are repaired.
    picker: BatchArgmin,
    /// False only for the per-batch-rebuild reference configuration
    /// ([`LsqFactory::per_batch_rebuild`], the bench baseline).
    warm: bool,
}

impl LsqPolicy {
    /// Classic LSQ with the given number of probes per round (the paper and
    /// \[54\] use one probe per time slot).
    pub fn uniform(num_servers: usize, probes_per_round: usize) -> Self {
        LsqPolicy {
            variant: LsqVariant::Uniform,
            name: "LSQ",
            probes_per_round,
            local: vec![0; num_servers],
            rate_sampler: None,
            rates: vec![1.0; num_servers],
            inv_rates: vec![1.0; num_servers],
            picker: BatchArgmin::new(ArgminMode::Indexed),
            warm: true,
        }
    }

    /// Heterogeneity-aware LSQ.
    pub fn heterogeneous(spec: &ClusterSpec, probes_per_round: usize) -> Self {
        let sampler = AliasSampler::new(spec.rates()).expect("cluster rates are strictly positive");
        LsqPolicy {
            variant: LsqVariant::Heterogeneous,
            name: "hLSQ",
            probes_per_round,
            local: vec![0; spec.num_servers()],
            rate_sampler: Some(sampler),
            rates: spec.rates().to_vec(),
            inv_rates: scd_model::reciprocal_rates(spec.rates()),
            picker: BatchArgmin::new(ArgminMode::Indexed),
            warm: true,
        }
    }

    /// Switches the argmin engine mode. [`ArgminMode::Scan`] is the
    /// bit-identical oracle: it follows the same warm priority lifecycle, so
    /// it picks exactly the servers the warm tree picks for equal seeds.
    pub fn with_mode(mut self, mode: ArgminMode) -> Self {
        self.picker = BatchArgmin::new(mode);
        self
    }

    /// Reverts to the per-batch tree rebuild (fresh priorities and an `O(n)`
    /// rebuild every batch) — the pre-warm-path reference configuration kept
    /// for the engine-throughput baseline. Note: per-batch and warm
    /// configurations consume the RNG differently, so their simulation
    /// trajectories differ (each is internally bit-identical across its own
    /// indexed/scan modes).
    pub fn per_batch_rebuild(mut self) -> Self {
        self.warm = false;
        self
    }

    /// The probing/ranking variant.
    pub fn variant(&self) -> LsqVariant {
        self.variant
    }

    /// The dispatcher's current local estimates (exposed for tests and the
    /// herding example).
    pub fn local_estimates(&self) -> &[u64] {
        &self.local
    }

    fn probe_target(&self, n: usize, rng: &mut dyn RngCore) -> usize {
        match self.variant {
            LsqVariant::Uniform => rng.gen_range(0..n),
            LsqVariant::Heterogeneous => self
                .rate_sampler
                .as_ref()
                .expect("heterogeneous variant carries a sampler")
                .sample(rng),
        }
    }

    /// (Re)initializes the per-cluster state when the policy was built
    /// without knowing the cluster size (uniform constructor via registry)
    /// or the cluster size changed under it. A change also invalidates the
    /// warm tree — its keys would describe the old cluster. Rates are static
    /// for a policy's lifetime (one run — the `ClusterSpec` contract), so
    /// only the length is checked; this keeps the warm path's steady state
    /// free of `O(n)` change detection.
    fn sync_dimensions(&mut self, ctx: &DispatchContext<'_>) {
        let n = ctx.num_servers();
        if self.local.len() != n {
            self.local = vec![0; n];
            self.rates = ctx.rates().to_vec();
            self.inv_rates = scd_model::reciprocal_rates(ctx.rates());
            self.picker.invalidate();
        }
    }
}

impl DispatchPolicy for LsqPolicy {
    fn policy_name(&self) -> &str {
        self.name
    }

    fn observe_round(&mut self, ctx: &DispatchContext<'_>, rng: &mut dyn RngCore) {
        self.sync_dimensions(ctx);
        mark_availability_flips(&mut self.picker, ctx);
        let n = ctx.num_servers();
        for probe in 0..self.probes_per_round {
            let target = self.probe_target(n, rng);
            // The target is always *drawn* (the policy stream must not
            // depend on the scenario); a probe the scenario loses — or one
            // sent to a down server — simply fails to refresh the estimate.
            if !ctx.probe_delivered(probe as u64, ServerId::new(target)) {
                continue;
            }
            let truth = ctx.queue_len(ServerId::new(target));
            // Mark only probes that actually moved the estimate: a confirmed
            // entry leaves the warm tree's key valid, so repairing it would
            // be redundant work (near stationarity most probes confirm).
            // LSQ's keys live on the *local* estimates — per-dispatcher
            // state the engine cannot see — so the policy derives its own
            // marks rather than consuming `ctx.dirty_servers()` (the dirty
            // set speaks about the true queues, not about this replica).
            if self.local[target] != truth {
                self.local[target] = truth;
                self.picker.mark_dirty(target);
            }
        }
    }

    fn dispatch_batch(
        &mut self,
        ctx: &DispatchContext<'_>,
        batch: usize,
        rng: &mut dyn RngCore,
    ) -> Vec<ServerId> {
        let mut out = Vec::with_capacity(batch);
        self.dispatch_into(ctx, batch, &mut out, rng);
        out
    }

    fn dispatch_into(
        &mut self,
        ctx: &DispatchContext<'_>,
        batch: usize,
        out: &mut Vec<ServerId>,
        rng: &mut dyn RngCore,
    ) {
        if batch == 0 {
            return;
        }
        self.sync_dimensions(ctx);
        mark_availability_flips(&mut self.picker, ctx);
        let n = ctx.num_servers();
        let local = &mut self.local;
        let inv = &self.inv_rates;
        let variant = self.variant;
        // Down servers are not candidates under an active availability mask
        // (`None` on the fair-weather path — the closure is then the plain
        // LSQ/hLSQ key).
        let mask = ctx.active_mask();
        let key = move |i: usize, q: u64| match mask {
            Some(avail) if !avail.is_up(i) => f64::INFINITY,
            _ => match variant {
                LsqVariant::Uniform => q as f64,
                LsqVariant::Heterogeneous => (q as f64 + 1.0) * inv[i],
            },
        };
        if self.warm {
            self.picker.begin_warm(n, |i| key(i, local[i]), rng);
        } else {
            self.picker.begin(n, |i| key(i, local[i]), rng);
        }
        for _ in 0..batch {
            let target = self.picker.pick(|i| key(i, local[i]));
            local[target] += 1;
            self.picker.update(target, key(target, local[target]));
            out.push(ServerId::new(target));
        }
    }

    fn save_state(&self, out: &mut Vec<u8>) {
        let mut w = StateWriter::new();
        w.u8(u8::from(self.warm));
        // The persistent local estimates are the whole point of LSQ; the
        // warm priority epoch must survive too or the first resumed batch
        // would redraw priorities the uninterrupted run never drew. Rates,
        // reciprocal rates, and the probe sampler are static per run and
        // come back from the factory.
        w.u64s(&self.local);
        if self.warm {
            self.picker.save_warm_state(&mut w);
        }
        out.extend_from_slice(&w.into_bytes());
    }

    fn restore_state(&mut self, bytes: &[u8]) -> Result<(), String> {
        let mut r = StateReader::new(bytes);
        let warm = match r.u8()? {
            0 => false,
            1 => true,
            other => {
                return Err(format!(
                    "{} checkpoint: invalid warm flag byte {other}",
                    self.name
                ))
            }
        };
        if warm != self.warm {
            return Err(format!(
                "{} checkpoint warm-mode flag does not match this configuration",
                self.name
            ));
        }
        let local = r.u64s()?;
        if local.len() != self.local.len() {
            return Err(format!(
                "{} checkpoint covers {} servers, this cluster has {}",
                self.name,
                local.len(),
                self.local.len()
            ));
        }
        self.local = local;
        if warm {
            self.picker.restore_warm_state(&mut r)?;
        }
        r.finish()
    }
}

/// Factory for [`LsqPolicy`].
#[derive(Debug, Clone)]
pub struct LsqFactory {
    variant: LsqVariant,
    probes_per_round: usize,
    mode: ArgminMode,
    warm: bool,
}

impl LsqFactory {
    /// Classic LSQ with one probe per round.
    pub fn new() -> Self {
        LsqFactory {
            variant: LsqVariant::Uniform,
            probes_per_round: 1,
            mode: ArgminMode::Indexed,
            warm: true,
        }
    }

    /// Heterogeneity-aware LSQ with one probe per round.
    pub fn heterogeneous() -> Self {
        LsqFactory {
            variant: LsqVariant::Heterogeneous,
            ..LsqFactory::new()
        }
    }

    /// Overrides the number of probes per round.
    pub fn with_probes(mut self, probes_per_round: usize) -> Self {
        self.probes_per_round = probes_per_round;
        self
    }

    /// Factory for the scan-mode reference — bit-identical decisions to the
    /// warm-tree default for equal seeds (same warm priority lifecycle).
    pub fn scan(mut self) -> Self {
        self.mode = ArgminMode::Scan;
        self
    }

    /// Factory for the pre-warm-path reference: fresh priorities and an
    /// `O(n)` tree rebuild every batch (the PR 2 dispatch path, kept as the
    /// engine-throughput baseline).
    pub fn per_batch_rebuild(mut self) -> Self {
        self.warm = false;
        self
    }

    /// The same configuration wrapped in a [`NamedFactory`].
    pub fn named(self) -> NamedFactory {
        let name = PolicyFactory::name(&self).to_string();
        NamedFactory::new(name, move |d, spec| self.build(d, spec))
    }
}

impl Default for LsqFactory {
    fn default() -> Self {
        LsqFactory::new()
    }
}

impl PolicyFactory for LsqFactory {
    fn name(&self) -> &str {
        match self.variant {
            LsqVariant::Uniform => "LSQ",
            LsqVariant::Heterogeneous => "hLSQ",
        }
    }

    fn build(&self, _dispatcher: DispatcherId, spec: &ClusterSpec) -> BoxedPolicy {
        let policy = match self.variant {
            LsqVariant::Uniform => LsqPolicy::uniform(spec.num_servers(), self.probes_per_round),
            LsqVariant::Heterogeneous => LsqPolicy::heterogeneous(spec, self.probes_per_round),
        };
        let policy = policy.with_mode(self.mode);
        Box::new(if self.warm {
            policy
        } else {
            policy.per_batch_rebuild()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn dispatches_by_local_view_not_true_queues() {
        // Local view starts at all-zero; without probes the policy ignores
        // the true (heavily imbalanced) queues.
        let queues = vec![100u64, 0];
        let rates = vec![1.0, 1.0];
        let ctx = DispatchContext::new(&queues, &rates, 1, 0);
        let mut rng = StdRng::seed_from_u64(1);
        let mut policy = LsqPolicy::uniform(2, 0);
        let out = policy.dispatch_batch(&ctx, 2, &mut rng);
        // With an all-zero local view the two jobs are spread one per server.
        let mut targets: Vec<usize> = out.iter().map(|s| s.index()).collect();
        targets.sort_unstable();
        assert_eq!(targets, vec![0, 1]);
    }

    #[test]
    fn probes_refresh_the_local_view() {
        let queues = vec![100u64, 0];
        let rates = vec![1.0, 1.0];
        let ctx = DispatchContext::new(&queues, &rates, 1, 0);
        let mut rng = StdRng::seed_from_u64(2);
        // Probing every server every round → the local view converges to the
        // truth and jobs go to the genuinely idle server.
        let mut policy = LsqPolicy::uniform(2, 16);
        policy.observe_round(&ctx, &mut rng);
        assert_eq!(policy.local_estimates(), &[100, 0]);
        let out = policy.dispatch_batch(&ctx, 1, &mut rng);
        assert_eq!(out[0].index(), 1);
    }

    #[test]
    fn local_state_persists_across_rounds() {
        let rates = vec![1.0, 1.0];
        let mut policy = LsqPolicy::uniform(2, 0);
        let mut rng = StdRng::seed_from_u64(3);

        let queues1 = vec![0u64, 0];
        let ctx1 = DispatchContext::new(&queues1, &rates, 1, 0);
        policy.observe_round(&ctx1, &mut rng);
        let _ = policy.dispatch_batch(&ctx1, 4, &mut rng);
        // Two jobs per server recorded locally.
        assert_eq!(policy.local_estimates().iter().sum::<u64>(), 4);

        // Next round: no probes, so the inflated estimates persist even
        // though the true queues are empty again.
        let queues2 = vec![0u64, 0];
        let ctx2 = DispatchContext::new(&queues2, &rates, 1, 1);
        policy.observe_round(&ctx2, &mut rng);
        assert_eq!(policy.local_estimates().iter().sum::<u64>(), 4);
    }

    #[test]
    fn heterogeneous_variant_ranks_by_expected_delay() {
        let queues = vec![0u64, 0];
        let rates = vec![10.0, 1.0];
        let spec = ClusterSpec::from_rates(rates.clone()).unwrap();
        let ctx = DispatchContext::new(&queues, &rates, 1, 0);
        let mut rng = StdRng::seed_from_u64(4);
        let mut policy = LsqPolicy::heterogeneous(&spec, 2);
        assert_eq!(policy.policy_name(), "hLSQ");
        assert_eq!(policy.variant(), LsqVariant::Heterogeneous);
        policy.observe_round(&ctx, &mut rng);
        let out = policy.dispatch_batch(&ctx, 8, &mut rng);
        let to_fast = out.iter().filter(|s| s.index() == 0).count();
        // Expected-delay ranking sends most of the batch to the 10× server.
        assert!(to_fast >= 6, "fast server received only {to_fast} of 8");
    }

    #[test]
    fn lazily_initializes_when_built_without_spec() {
        let queues = vec![1u64, 2, 3];
        let rates = vec![1.0; 3];
        let ctx = DispatchContext::new(&queues, &rates, 1, 0);
        let mut rng = StdRng::seed_from_u64(5);
        // Built for 0 servers; must adapt to the context.
        let mut policy = LsqPolicy::uniform(0, 1);
        policy.observe_round(&ctx, &mut rng);
        let out = policy.dispatch_batch(&ctx, 2, &mut rng);
        assert_eq!(out.len(), 2);
        assert!(out.iter().all(|s| s.index() < 3));
    }

    #[test]
    fn factories_build_the_right_variant() {
        let spec = ClusterSpec::from_rates(vec![1.0, 2.0]).unwrap();
        let f = LsqFactory::new();
        assert_eq!(f.name(), "LSQ");
        assert_eq!(f.build(DispatcherId::new(0), &spec).policy_name(), "LSQ");
        let h = LsqFactory::heterogeneous().with_probes(3);
        assert_eq!(h.name(), "hLSQ");
        assert_eq!(h.build(DispatcherId::new(0), &spec).policy_name(), "hLSQ");
        assert_eq!(LsqFactory::new().named().name(), "LSQ");
    }
}
