//! Join-the-Idle-Queue (JIQ) and its heterogeneity-aware variant `hJIQ`.
//!
//! JIQ sends every job to an idle server (empty queue) when one exists, and
//! to a random server otherwise. It excels at low load (there is almost
//! always an idle server) and degrades towards random dispatching — possibly
//! becoming unstable — at high load (Section 1.1). The `hJIQ` variant samples
//! both the idle server and the fallback server proportionally to the service
//! rates (footnote 6).

use crate::common::NamedFactory;
use rand::Rng;
use rand::RngCore;
use scd_model::{
    AliasSampler, Availability, BoxedPolicy, ClusterSpec, DispatchContext, DispatchPolicy,
    DispatcherId, PolicyFactory, ServerId,
};

/// Sampling flavour for JIQ.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JiqVariant {
    /// Uniform sampling of idle servers and of the random fallback.
    Uniform,
    /// Rate-proportional sampling of idle servers and of the fallback.
    Heterogeneous,
}

/// The JIQ policy.
#[derive(Debug, Clone)]
pub struct JiqPolicy {
    variant: JiqVariant,
    name: &'static str,
    rates: Vec<f64>,
    /// Local queue view for intra-batch updates (a server stops being idle
    /// once this dispatcher sends it a job in the current round).
    local: Vec<u64>,
    /// Reusable per-job idle-set buffer.
    idle: Vec<usize>,
    /// Reusable idle-weight buffer and alias table (heterogeneous variant).
    idle_weights: Vec<f64>,
    idle_sampler: AliasSampler,
    /// Cached rate-proportional fallback sampler (heterogeneous variant; the
    /// rates are static per run, so this is built at most once).
    fallback_sampler: Option<AliasSampler>,
}

impl JiqPolicy {
    /// Classic JIQ (uniform sampling).
    pub fn uniform() -> Self {
        JiqPolicy {
            variant: JiqVariant::Uniform,
            name: "JIQ",
            rates: Vec::new(),
            local: Vec::new(),
            idle: Vec::new(),
            idle_weights: Vec::new(),
            idle_sampler: AliasSampler::default(),
            fallback_sampler: None,
        }
    }

    /// Heterogeneity-aware JIQ (rate-proportional sampling).
    pub fn heterogeneous(spec: &ClusterSpec) -> Self {
        JiqPolicy {
            variant: JiqVariant::Heterogeneous,
            name: "hJIQ",
            rates: spec.rates().to_vec(),
            local: Vec::new(),
            idle: Vec::new(),
            idle_weights: Vec::new(),
            idle_sampler: AliasSampler::default(),
            fallback_sampler: None,
        }
    }

    /// The sampling variant.
    pub fn variant(&self) -> JiqVariant {
        self.variant
    }

    fn pick_idle(&mut self, rng: &mut dyn RngCore) -> usize {
        match self.variant {
            JiqVariant::Uniform => self.idle[rng.gen_range(0..self.idle.len())],
            JiqVariant::Heterogeneous => {
                self.idle_weights.clear();
                self.idle_weights
                    .extend(self.idle.iter().map(|&s| self.rates[s]));
                self.idle_sampler
                    .rebuild(&self.idle_weights)
                    .expect("idle set is non-empty with positive rates");
                self.idle[self.idle_sampler.sample(rng)]
            }
        }
    }

    fn pick_fallback(
        &mut self,
        n: usize,
        mask: Option<&Availability>,
        rng: &mut dyn RngCore,
    ) -> usize {
        match self.variant {
            JiqVariant::Uniform => match mask {
                Some(avail) => avail.up_list()[rng.gen_range(0..avail.num_up())] as usize,
                None => rng.gen_range(0..n),
            },
            JiqVariant::Heterogeneous => {
                let rates = &self.rates;
                let sampler = self.fallback_sampler.get_or_insert_with(|| {
                    AliasSampler::new(rates).expect("rates are strictly positive")
                });
                match mask {
                    // Rejection sampling keeps the fallback ∝ µ over the up
                    // set; rates are strictly positive, so this terminates.
                    Some(avail) => loop {
                        let s = sampler.sample(rng);
                        if avail.is_up(s) {
                            break s;
                        }
                    },
                    None => sampler.sample(rng),
                }
            }
        }
    }
}

impl DispatchPolicy for JiqPolicy {
    fn policy_name(&self) -> &str {
        self.name
    }

    fn dispatch_batch(
        &mut self,
        ctx: &DispatchContext<'_>,
        batch: usize,
        rng: &mut dyn RngCore,
    ) -> Vec<ServerId> {
        let mut out = Vec::with_capacity(batch);
        self.dispatch_into(ctx, batch, &mut out, rng);
        out
    }

    fn dispatch_into(
        &mut self,
        ctx: &DispatchContext<'_>,
        batch: usize,
        out: &mut Vec<ServerId>,
        rng: &mut dyn RngCore,
    ) {
        self.local.clear();
        self.local.extend_from_slice(ctx.queue_lengths());
        if self.variant == JiqVariant::Heterogeneous && self.rates.len() != ctx.num_servers() {
            // Defensive refresh in case the factory was bypassed.
            self.rates = ctx.rates().to_vec();
            self.fallback_sampler = None;
        }
        let n = self.local.len();
        // Down servers are neither idle candidates nor fallback targets when
        // an availability mask is active.
        let mask = ctx.active_mask();
        for _ in 0..batch {
            self.idle.clear();
            match mask {
                Some(avail) => {
                    for &s in avail.up_list() {
                        if self.local[s as usize] == 0 {
                            self.idle.push(s as usize);
                        }
                    }
                }
                None => {
                    for s in 0..n {
                        if self.local[s] == 0 {
                            self.idle.push(s);
                        }
                    }
                }
            }
            let target = if self.idle.is_empty() {
                self.pick_fallback(n, mask, rng)
            } else {
                self.pick_idle(rng)
            };
            self.local[target] += 1;
            out.push(ServerId::new(target));
        }
    }
}

/// Factory for [`JiqPolicy`].
#[derive(Debug, Clone)]
pub struct JiqFactory {
    variant: JiqVariant,
}

impl JiqFactory {
    /// Classic JIQ.
    pub fn new() -> Self {
        JiqFactory {
            variant: JiqVariant::Uniform,
        }
    }

    /// Heterogeneity-aware JIQ.
    pub fn heterogeneous() -> Self {
        JiqFactory {
            variant: JiqVariant::Heterogeneous,
        }
    }

    /// The same configuration wrapped in a [`NamedFactory`].
    pub fn named(self) -> NamedFactory {
        let name = PolicyFactory::name(&self).to_string();
        NamedFactory::new(name, move |d, spec| self.build(d, spec))
    }
}

impl Default for JiqFactory {
    fn default() -> Self {
        JiqFactory::new()
    }
}

impl PolicyFactory for JiqFactory {
    fn name(&self) -> &str {
        match self.variant {
            JiqVariant::Uniform => "JIQ",
            JiqVariant::Heterogeneous => "hJIQ",
        }
    }

    fn build(&self, _dispatcher: DispatcherId, spec: &ClusterSpec) -> BoxedPolicy {
        match self.variant {
            JiqVariant::Uniform => Box::new(JiqPolicy::uniform()),
            JiqVariant::Heterogeneous => Box::new(JiqPolicy::heterogeneous(spec)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn prefers_idle_servers() {
        let queues = vec![4u64, 0, 7, 0];
        let rates = vec![1.0; 4];
        let ctx = DispatchContext::new(&queues, &rates, 1, 0);
        let mut rng = StdRng::seed_from_u64(1);
        let mut policy = JiqPolicy::uniform();
        for _ in 0..100 {
            let out = policy.dispatch_batch(&ctx, 1, &mut rng);
            let s = out[0].index();
            assert!(s == 1 || s == 3, "JIQ must pick an idle server, got {s}");
        }
    }

    #[test]
    fn batch_exhausts_idle_servers_before_falling_back() {
        let queues = vec![3u64, 0, 0];
        let rates = vec![1.0; 3];
        let ctx = DispatchContext::new(&queues, &rates, 1, 0);
        let mut rng = StdRng::seed_from_u64(2);
        let mut policy = JiqPolicy::uniform();
        let out = policy.dispatch_batch(&ctx, 2, &mut rng);
        let mut targets: Vec<usize> = out.iter().map(|s| s.index()).collect();
        targets.sort_unstable();
        assert_eq!(
            targets,
            vec![1, 2],
            "both idle servers get exactly one job first"
        );
    }

    #[test]
    fn falls_back_to_random_when_no_server_is_idle() {
        let queues = vec![5u64, 9];
        let rates = vec![1.0, 1.0];
        let ctx = DispatchContext::new(&queues, &rates, 1, 0);
        let mut rng = StdRng::seed_from_u64(3);
        let mut policy = JiqPolicy::uniform();
        let picks = policy.dispatch_batch(&ctx, 5_000, &mut rng);
        let to_zero = picks.iter().filter(|s| s.index() == 0).count() as f64 / 5_000.0;
        assert!(
            (to_zero - 0.5).abs() < 0.05,
            "fallback is uniform, got {to_zero}"
        );
    }

    #[test]
    fn heterogeneous_fallback_is_rate_proportional() {
        let queues = vec![5u64, 9];
        let rates = vec![4.0, 1.0];
        let spec = ClusterSpec::from_rates(rates.clone()).unwrap();
        let ctx = DispatchContext::new(&queues, &rates, 1, 0);
        let mut rng = StdRng::seed_from_u64(4);
        let mut policy = JiqPolicy::heterogeneous(&spec);
        assert_eq!(policy.policy_name(), "hJIQ");
        assert_eq!(policy.variant(), JiqVariant::Heterogeneous);
        let picks = policy.dispatch_batch(&ctx, 5_000, &mut rng);
        let to_fast = picks.iter().filter(|s| s.index() == 0).count() as f64 / 5_000.0;
        assert!(
            (to_fast - 0.8).abs() < 0.05,
            "fallback should be ∝ µ, got {to_fast}"
        );
    }

    #[test]
    fn heterogeneous_idle_choice_is_rate_proportional() {
        let queues = vec![0u64, 0, 10];
        let rates = vec![9.0, 1.0, 1.0];
        let spec = ClusterSpec::from_rates(rates.clone()).unwrap();
        let ctx = DispatchContext::new(&queues, &rates, 1, 0);
        let mut rng = StdRng::seed_from_u64(5);
        let mut policy = JiqPolicy::heterogeneous(&spec);
        let mut to_fast = 0usize;
        let trials = 5_000;
        for _ in 0..trials {
            let out = policy.dispatch_batch(&ctx, 1, &mut rng);
            if out[0].index() == 0 {
                to_fast += 1;
            }
        }
        let share = to_fast as f64 / trials as f64;
        assert!(
            (share - 0.9).abs() < 0.03,
            "idle choice should be ∝ µ, got {share}"
        );
    }

    #[test]
    fn factories_build_the_right_variant() {
        let spec = ClusterSpec::from_rates(vec![1.0, 2.0]).unwrap();
        let f = JiqFactory::new();
        assert_eq!(f.name(), "JIQ");
        assert_eq!(f.build(DispatcherId::new(0), &spec).policy_name(), "JIQ");
        let h = JiqFactory::heterogeneous();
        assert_eq!(h.name(), "hJIQ");
        assert_eq!(h.build(DispatcherId::new(0), &spec).policy_name(), "hJIQ");
        assert_eq!(JiqFactory::heterogeneous().named().name(), "hJIQ");
    }
}
