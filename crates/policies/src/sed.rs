//! Shortest-Expected-Delay (SED) dispatching.
//!
//! SED is the heterogeneity-aware analogue of JSQ: instead of ranking servers
//! by queue length, it ranks them by the expected delay a new job would see,
//! `(q_s + 1)/µ_s`, and greedily sends each job to the minimizer while
//! updating a local copy of the queues. In a single-dispatcher system SED is
//! excellent; with many dispatchers it herds exactly like JSQ (Section 1.1).
//!
//! Like JSQ, the per-job argmin runs over a [`BatchArgmin`] indexed queue
//! view keyed on the *true* snapshot, so the engine's round-to-round dirty
//! set ([`DispatchContext::dirty_servers`]) is authoritative for the keys:
//! the default configuration keeps one **warm** tree per dispatcher across
//! rounds and repairs exactly the engine-reported changes instead of
//! rebuilding all `n` keys every batch (the mirror-sync contract lives in
//! [`crate::common::sync_snapshot_mirror`]). [`SedPolicy::scan`] retains the
//! `O(n)`-per-job reference, which picks exactly the same servers for equal
//! seeds; [`SedPolicy::per_batch_rebuild`] retains the per-batch-rebuild
//! PR 4 path as the bench baseline. The expected-delay keys multiply by
//! cached reciprocal rates (shared per-round via the engine's
//! [`scd_model::RoundCache`] when available) instead of dividing per query.

use crate::common::{
    mark_availability_flips, sync_snapshot_mirror, ArgminMode, BatchArgmin, NamedFactory,
    SnapshotSync,
};
use rand::RngCore;
use scd_model::{
    DispatchContext, DispatchPolicy, PolicyFactory, ServerId, StateReader, StateWriter,
};

/// The SED policy (heterogeneity-aware ranking, full information).
#[derive(Debug, Clone, Default)]
pub struct SedPolicy {
    local: Vec<u64>,
    picker: BatchArgmin,
    /// Reciprocal rates used when the round context carries no shared cache
    /// (rates are static per run, so this is filled once).
    inv_rates: Vec<f64>,
    rates_snapshot: Vec<f64>,
    /// Tracks which round's snapshot `local` mirrors (warm path only).
    sync: SnapshotSync,
    /// Slots this dispatcher placed jobs on in its last batch — re-checked
    /// at the next sync alongside the engine's dirty set.
    touched: Vec<u32>,
    /// False only for the per-batch-rebuild reference configuration.
    warm: bool,
}

impl SedPolicy {
    /// Creates a SED policy instance (indexed argmin).
    pub fn new() -> Self {
        Self::with_mode(ArgminMode::Indexed)
    }

    /// SED with the reference `O(n)`-per-job scan — bit-identical decisions
    /// to [`SedPolicy::new`] for equal seeds.
    pub fn scan() -> Self {
        Self::with_mode(ArgminMode::Scan)
    }

    /// SED with an explicit argmin mode.
    pub fn with_mode(mode: ArgminMode) -> Self {
        SedPolicy {
            local: Vec::new(),
            picker: BatchArgmin::new(mode),
            inv_rates: Vec::new(),
            rates_snapshot: Vec::new(),
            sync: SnapshotSync::default(),
            touched: Vec::new(),
            warm: true,
        }
    }

    /// Reverts to the per-batch tree rebuild (fresh priorities and an `O(n)`
    /// rebuild every batch) — the pre-dirty-set reference configuration kept
    /// for the engine-throughput baseline. Per-batch and warm configurations
    /// consume the RNG differently, so their trajectories differ.
    pub fn per_batch_rebuild(mut self) -> Self {
        self.warm = false;
        self
    }

    /// Refreshes the private reciprocal-rate table if the rates changed
    /// (engine runs provide the shared cache instead, so this only triggers
    /// on direct policy invocations).
    fn refresh_inv_rates(&mut self, rates: &[f64]) {
        scd_model::refresh_reciprocal_rates(&mut self.rates_snapshot, &mut self.inv_rates, rates);
    }
}

impl DispatchPolicy for SedPolicy {
    fn policy_name(&self) -> &str {
        "SED"
    }

    fn round_cache_demand(&self) -> scd_model::CacheDemand {
        // The expected-delay keys multiply by the shared reciprocal rates;
        // the per-round solver tables are not needed.
        scd_model::CacheDemand::ReciprocalRates
    }

    fn observe_round(&mut self, ctx: &DispatchContext<'_>, _rng: &mut dyn RngCore) {
        if self.warm {
            sync_snapshot_mirror(
                &mut self.local,
                &mut self.picker,
                &mut self.sync,
                ctx,
                &mut self.touched,
            );
            mark_availability_flips(&mut self.picker, ctx);
        }
    }

    fn dispatch_batch(
        &mut self,
        ctx: &DispatchContext<'_>,
        batch: usize,
        rng: &mut dyn RngCore,
    ) -> Vec<ServerId> {
        let mut out = Vec::with_capacity(batch);
        self.dispatch_into(ctx, batch, &mut out, rng);
        out
    }

    fn dispatch_into(
        &mut self,
        ctx: &DispatchContext<'_>,
        batch: usize,
        out: &mut Vec<ServerId>,
        rng: &mut dyn RngCore,
    ) {
        if batch == 0 {
            return;
        }
        if self.warm {
            // No-op when observe_round already synced this round; direct
            // invocations (tests, examples) resync here.
            sync_snapshot_mirror(
                &mut self.local,
                &mut self.picker,
                &mut self.sync,
                ctx,
                &mut self.touched,
            );
            mark_availability_flips(&mut self.picker, ctx);
        } else {
            self.local.clear();
            self.local.extend_from_slice(ctx.queue_lengths());
        }
        if ctx.cache().is_none() {
            self.refresh_inv_rates(ctx.rates());
        }
        // Identical arithmetic on both branches ((q+1)·(1/µ), the reciprocal
        // computed as 1.0/µ), so cached and cache-less dispatch decisions are
        // bit-identical.
        let inv: &[f64] = match ctx.cache() {
            Some(cache) => cache.inv_rates(),
            None => &self.inv_rates,
        };
        // Down servers are not candidates under an active availability mask.
        let mask = ctx.active_mask();
        let masked = move |i: usize, q: u64| match mask {
            Some(avail) if !avail.is_up(i) => f64::INFINITY,
            _ => (q as f64 + 1.0) * inv[i],
        };
        let local = &mut self.local;
        let n = local.len();
        if self.warm {
            self.picker.begin_warm(n, |i| masked(i, local[i]), rng);
        } else {
            self.picker.begin(n, |i| masked(i, local[i]), rng);
        }
        for _ in 0..batch {
            let target = self.picker.pick(|i| masked(i, local[i]));
            local[target] += 1;
            self.picker.update(target, masked(target, local[target]));
            if self.warm {
                self.touched.push(target as u32);
            }
            out.push(ServerId::new(target));
        }
    }

    fn save_state(&self, out: &mut Vec<u8>) {
        let mut w = StateWriter::new();
        w.u8(u8::from(self.warm));
        if self.warm {
            // Mirror + sync point + own placements + warm priority epoch.
            // The reciprocal-rate tables are derived from static rates and
            // refresh deterministically, so they are not checkpointed.
            w.u64s(&self.local);
            w.opt_u64(self.sync.synced_round());
            w.u32s(&self.touched);
            self.picker.save_warm_state(&mut w);
        }
        out.extend_from_slice(&w.into_bytes());
    }

    fn restore_state(&mut self, bytes: &[u8]) -> Result<(), String> {
        let mut r = StateReader::new(bytes);
        let warm = match r.u8()? {
            0 => false,
            1 => true,
            other => return Err(format!("SED checkpoint: invalid warm flag byte {other}")),
        };
        if warm != self.warm {
            return Err(
                "SED checkpoint warm-mode flag does not match this configuration".to_string(),
            );
        }
        if warm {
            self.local = r.u64s()?;
            self.sync.set_synced_round(r.opt_u64()?);
            self.touched = r.u32s()?;
            self.picker.restore_warm_state(&mut r)?;
        }
        r.finish()
    }
}

/// Factory producing one [`SedPolicy`] per dispatcher.
#[derive(Debug, Clone)]
pub struct SedFactory {
    mode: ArgminMode,
    warm: bool,
}

impl SedFactory {
    /// Creates the factory (warm indexed argmin).
    pub fn new() -> Self {
        SedFactory {
            mode: ArgminMode::Indexed,
            warm: true,
        }
    }

    /// Factory for the scan-mode reference (same decisions, `O(n)` per job).
    pub fn scan() -> Self {
        SedFactory {
            mode: ArgminMode::Scan,
            warm: true,
        }
    }

    /// Factory for the pre-dirty-set reference: fresh priorities and an
    /// `O(n)` tree rebuild every batch (the PR 4 dispatch path, kept as the
    /// engine-throughput baseline).
    pub fn per_batch_rebuild(mut self) -> Self {
        self.warm = false;
        self
    }

    /// The same policy wrapped in a [`NamedFactory`].
    pub fn named() -> NamedFactory {
        NamedFactory::new("SED", |_d, _spec| Box::new(SedPolicy::new()))
    }
}

impl Default for SedFactory {
    fn default() -> Self {
        SedFactory::new()
    }
}

impl PolicyFactory for SedFactory {
    fn name(&self) -> &str {
        "SED"
    }

    fn build(
        &self,
        _dispatcher: scd_model::DispatcherId,
        _spec: &scd_model::ClusterSpec,
    ) -> scd_model::BoxedPolicy {
        let policy = SedPolicy::with_mode(self.mode);
        Box::new(if self.warm {
            policy
        } else {
            policy.per_batch_rebuild()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use scd_model::{ClusterSpec, DispatcherId};

    #[test]
    fn prefers_fast_server_despite_longer_queue() {
        // Expected delays: (2+1)/100 = 0.03 vs (1+1)/1 = 2.0.
        let queues = vec![2u64, 1];
        let rates = vec![100.0, 1.0];
        let ctx = DispatchContext::new(&queues, &rates, 1, 0);
        let mut rng = StdRng::seed_from_u64(1);
        let mut policy = SedPolicy::new();
        let out = policy.dispatch_batch(&ctx, 1, &mut rng);
        assert_eq!(out[0].index(), 0);
    }

    #[test]
    fn splits_batches_proportionally_to_rates() {
        // Empty queues, rates 3:1 → a batch of 8 should go roughly 6:2
        // (exactly: greedy fills the fast server until its expected delay
        // exceeds the slow one).
        let queues = vec![0u64, 0];
        let rates = vec![3.0, 1.0];
        let ctx = DispatchContext::new(&queues, &rates, 1, 0);
        let mut rng = StdRng::seed_from_u64(4);
        let mut policy = SedPolicy::new();
        let out = policy.dispatch_batch(&ctx, 8, &mut rng);
        let to_fast = out.iter().filter(|s| s.index() == 0).count();
        assert!((5..=7).contains(&to_fast), "fast server got {to_fast} of 8");
    }

    #[test]
    fn reduces_to_jsq_in_homogeneous_clusters() {
        use crate::jsq::JsqPolicy;
        let queues = vec![4u64, 1, 2, 1];
        let rates = vec![2.0; 4];
        let ctx = DispatchContext::new(&queues, &rates, 1, 0);
        let mut sed = SedPolicy::new();
        let mut jsq = JsqPolicy::new();
        // Same seed → identical tie-breaking decisions → identical output.
        let a = sed.dispatch_batch(&ctx, 6, &mut StdRng::seed_from_u64(8));
        let b = jsq.dispatch_batch(&ctx, 6, &mut StdRng::seed_from_u64(8));
        assert_eq!(a, b);
    }

    #[test]
    fn factory_builds_sed() {
        let spec = ClusterSpec::homogeneous(2, 1.0).unwrap();
        let factory = SedFactory::new();
        assert_eq!(factory.name(), "SED");
        assert_eq!(
            factory.build(DispatcherId::new(0), &spec).policy_name(),
            "SED"
        );
        assert_eq!(SedFactory::named().name(), "SED");
    }
}
