//! Shared helpers for the baseline policies.

use rand::Rng;
use rand::RngCore;
use scd_core::index::{scan_argmin, TournamentTree};
use scd_model::{
    BoxedPolicy, ClusterSpec, DispatchContext, DispatcherId, PolicyFactory, StateReader,
    StateWriter,
};
use std::sync::Arc;

/// The boxed builder closure a [`NamedFactory`] wraps.
type BoxedBuilder = Arc<dyn Fn(DispatcherId, &ClusterSpec) -> BoxedPolicy + Send + Sync>;

/// A [`PolicyFactory`] defined by a name and a boxed closure — removes the
/// boilerplate of writing a dedicated factory struct for every policy
/// variant.
///
/// # Example
/// ```
/// use scd_policies::NamedFactory;
/// use scd_policies::jsq::JsqPolicy;
/// use scd_model::PolicyFactory;
///
/// let factory = NamedFactory::new("my-jsq", |_d, _spec| Box::new(JsqPolicy::new()));
/// assert_eq!(factory.name(), "my-jsq");
/// ```
#[derive(Clone)]
pub struct NamedFactory {
    name: String,
    builder: BoxedBuilder,
}

impl NamedFactory {
    /// Creates a factory from a display name and a builder closure.
    pub fn new<F>(name: impl Into<String>, builder: F) -> Self
    where
        F: Fn(DispatcherId, &ClusterSpec) -> BoxedPolicy + Send + Sync + 'static,
    {
        NamedFactory {
            name: name.into(),
            builder: Arc::new(builder),
        }
    }
}

impl std::fmt::Debug for NamedFactory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NamedFactory")
            .field("name", &self.name)
            .finish()
    }
}

impl PolicyFactory for NamedFactory {
    fn name(&self) -> &str {
        &self.name
    }

    fn build(&self, dispatcher: DispatcherId, spec: &ClusterSpec) -> BoxedPolicy {
        (self.builder)(dispatcher, spec)
    }
}

/// How an argmin-family policy (JSQ, SED, LSQ, LED, …) answers its repeated
/// "currently best server" queries while placing a batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ArgminMode {
    /// Tournament-tree indexed queue view: `O(n)` rebuild per batch, then
    /// `O(log n)` per placed job. The default.
    #[default]
    Indexed,
    /// Reference `O(n)`-per-job scan over the same `(key, priority, index)`
    /// order. Kept for equivalence testing and as the
    /// `BENCH_engine.json` apples-to-apples baseline.
    Scan,
}

/// Number of batches a warm [`BatchArgmin`] keeps one set of tie-breaking
/// priorities before redrawing them (the *priority epoch*).
///
/// Warm pickers draw their per-server priorities once per epoch instead of
/// once per batch: the point of random priorities is to decorrelate the
/// tie-breaking orders of *different dispatchers* (each has its own RNG
/// stream, hence its own priority permutation), and that holds whether the
/// permutation is redrawn every batch or every 64. Redrawing periodically
/// still guarantees that, *within* one dispatcher, no server is favored among
/// equal keys forever. Both warm modes (indexed and scan) apply the identical
/// refresh rule, so RNG consumption — and therefore every pick — stays
/// bit-identical between them.
pub const PRIORITY_EPOCH_BATCHES: u32 = 64;

/// The batch argmin engine shared by the argmin-family policies.
///
/// At the start of every batch, [`begin`](BatchArgmin::begin) draws one
/// random `u64` priority per server from the dispatcher's RNG — a uniformly
/// random tie-breaking order among equal keys, which plays the role
/// [`argmin_random_ties`] played in the scan-only implementation (random
/// tie-breaking prevents many dispatchers sharing one snapshot from
/// systematically piling onto low-index servers). Both modes then minimize
/// the identical composite key `(key, priority, index)` and consume the RNG
/// identically, so **indexed and scan dispatch pick the same servers for
/// equal seeds** — the engine-level reports are bit-identical.
///
/// # Warm batches
///
/// Policies whose keys change at only `O(probes + batch)` positions between
/// rounds (LSQ, LED) use [`begin_warm`](BatchArgmin::begin_warm) instead:
/// the tournament tree survives across batches, priorities are per *instance*
/// (redrawn every [`PRIORITY_EPOCH_BATCHES`] batches), and only the keys the
/// policy [marked dirty](BatchArgmin::mark_dirty) since the previous batch
/// are repaired — `O(dirty · log n)` instead of the `O(n)` per-batch rebuild.
/// The scan mode follows the same priority lifecycle, so it remains the
/// bit-identical oracle for the warm path too.
#[derive(Debug, Clone, Default)]
pub struct BatchArgmin {
    mode: ArgminMode,
    n: usize,
    prios: Vec<u64>,
    tree: TournamentTree,
    /// True when the warm state (priorities + tree) describes the current
    /// cluster; cleared by [`invalidate`](BatchArgmin::invalidate) and by any
    /// per-batch [`begin`](BatchArgmin::begin).
    warm_ready: bool,
    /// Batches since the warm priorities were last drawn.
    batches_in_epoch: u32,
    /// Slots whose keys changed since the last warm batch (deduplicated via
    /// `dirty_flags`).
    dirty: Vec<u32>,
    dirty_flags: Vec<bool>,
}

impl BatchArgmin {
    /// Creates the engine in the given mode.
    pub fn new(mode: ArgminMode) -> Self {
        BatchArgmin {
            mode,
            ..BatchArgmin::default()
        }
    }

    /// The active mode.
    pub fn mode(&self) -> ArgminMode {
        self.mode
    }

    /// Starts a batch over `n` servers: draws one priority per server (both
    /// modes, so RNG consumption is identical) and, in indexed mode, rebuilds
    /// the tournament from `key`.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn begin<K>(&mut self, n: usize, key: K, rng: &mut dyn RngCore)
    where
        K: FnMut(usize) -> f64,
    {
        assert!(n > 0, "argmin over an empty cluster");
        self.n = n;
        self.warm_ready = false;
        self.dirty.clear();
        self.prios.clear();
        self.prios.extend((0..n).map(|_| rng.next_u64()));
        if self.mode == ArgminMode::Indexed {
            let prios = &self.prios;
            self.tree.rebuild(n, key, |i| prios[i]);
        }
    }

    /// Starts a *warm* batch over `n` servers.
    ///
    /// On the first call (or after [`invalidate`](BatchArgmin::invalidate), a
    /// cluster-size change, or a completed priority epoch) this draws fresh
    /// per-server priorities and, in indexed mode, rebuilds the tournament —
    /// exactly like [`begin`](BatchArgmin::begin). On every other call it
    /// consumes **no randomness** and repairs only the keys marked dirty
    /// since the previous batch. The refresh decision depends only on
    /// mode-independent state, so indexed and scan warm pickers consume the
    /// RNG identically and pick identical servers for equal seeds.
    ///
    /// `key` must reflect the policy's *current* keys; between warm batches
    /// the policy must [`mark_dirty`](BatchArgmin::mark_dirty) every slot
    /// whose key it changed outside [`update`](BatchArgmin::update).
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn begin_warm<K>(&mut self, n: usize, key: K, rng: &mut dyn RngCore)
    where
        K: FnMut(usize) -> f64,
    {
        assert!(n > 0, "argmin over an empty cluster");
        let refresh =
            !self.warm_ready || self.n != n || self.batches_in_epoch >= PRIORITY_EPOCH_BATCHES;
        if refresh {
            self.n = n;
            self.prios.clear();
            self.prios.extend((0..n).map(|_| rng.next_u64()));
            self.batches_in_epoch = 0;
            self.warm_ready = true;
            self.dirty.clear();
            self.dirty_flags.clear();
            self.dirty_flags.resize(n, false);
            if self.mode == ArgminMode::Indexed {
                let prios = &self.prios;
                self.tree.rebuild(n, key, |i| prios[i]);
            }
        } else {
            if self.mode == ArgminMode::Indexed {
                self.tree.apply_updates(&self.dirty, key);
            }
            for &slot in &self.dirty {
                self.dirty_flags[slot as usize] = false;
            }
            self.dirty.clear();
        }
        self.batches_in_epoch += 1;
    }

    /// Records that `slot`'s key changed *between* warm batches (a probe
    /// overwrote a local estimate, an estimate decayed, ...). The repair is
    /// deferred to the next [`begin_warm`](BatchArgmin::begin_warm); marks
    /// are deduplicated, so marking is `O(1)` and idempotent. A no-op before
    /// the first warm batch or after an invalidation (the next warm batch
    /// rebuilds everything anyway).
    pub fn mark_dirty(&mut self, slot: usize) {
        if !self.warm_ready || slot >= self.dirty_flags.len() {
            return;
        }
        if !self.dirty_flags[slot] {
            self.dirty_flags[slot] = true;
            self.dirty.push(slot as u32);
        }
    }

    /// Discards all warm state; the next
    /// [`begin_warm`](BatchArgmin::begin_warm) redraws priorities and
    /// rebuilds from scratch. Policies call this when the cluster (rates or
    /// size) changes under them.
    pub fn invalidate(&mut self) {
        self.warm_ready = false;
        self.dirty.clear();
    }

    /// The server currently minimizing `(key, priority, index)`. The `key`
    /// closure is consulted only in scan mode (the tree already holds the
    /// keys); it must agree with the keys passed to
    /// [`begin`](BatchArgmin::begin) / [`update`](BatchArgmin::update).
    pub fn pick<K>(&self, key: K) -> usize
    where
        K: FnMut(usize) -> f64,
    {
        match self.mode {
            ArgminMode::Indexed => self.tree.argmin(),
            ArgminMode::Scan => scan_argmin(self.n, key, |i| self.prios[i]),
        }
    }

    /// Records that `slot`'s key changed (after the caller placed a job on
    /// it). `O(log n)` in indexed mode, free in scan mode.
    pub fn update(&mut self, slot: usize, key: f64) {
        if self.mode == ArgminMode::Indexed {
            self.tree.update_key(slot, key);
        }
    }

    /// Serializes the warm-epoch state (priorities + epoch counter) into an
    /// engine-checkpoint blob.
    ///
    /// The RNG-bearing warm state is exactly the per-instance priorities and
    /// the position within the priority epoch: losing them across a resume
    /// would force the next [`begin_warm`](BatchArgmin::begin_warm) onto the
    /// refresh branch, consuming `n` extra RNG draws the uninterrupted run
    /// never made. The tournament tree and dirty set are *not* written —
    /// [`restore_warm_state`](BatchArgmin::restore_warm_state) marks every
    /// slot dirty, so the first warm batch after a resume repairs the whole
    /// tree from the policy's live keys without touching the RNG.
    pub fn save_warm_state(&self, w: &mut StateWriter) {
        w.u8(u8::from(self.warm_ready));
        if self.warm_ready {
            w.u32(self.batches_in_epoch);
            w.u64s(&self.prios);
        }
    }

    /// Restores warm-epoch state captured by
    /// [`save_warm_state`](BatchArgmin::save_warm_state).
    ///
    /// After this call the next [`begin_warm`](BatchArgmin::begin_warm) with
    /// the same cluster size takes the non-refresh branch (consuming no
    /// randomness, exactly like the uninterrupted run) and repairs all keys
    /// from the live key closure, because every slot is marked dirty here.
    ///
    /// # Errors
    /// Returns a message when the blob is truncated or malformed.
    pub fn restore_warm_state(&mut self, r: &mut StateReader<'_>) -> Result<(), String> {
        match r.u8()? {
            0 => {
                self.invalidate();
                Ok(())
            }
            1 => {
                let batches_in_epoch = r.u32()?;
                let prios = r.u64s()?;
                if prios.is_empty() {
                    return Err("warm picker state covers zero servers".to_string());
                }
                let n = prios.len();
                self.n = n;
                self.prios = prios;
                self.batches_in_epoch = batches_in_epoch;
                self.warm_ready = true;
                if self.mode == ArgminMode::Indexed {
                    // Placeholder keys: every slot is marked dirty below, so
                    // the next begin_warm overwrites them from live keys.
                    let prios = &self.prios;
                    self.tree.rebuild(n, |_| 0.0, |i| prios[i]);
                }
                self.dirty = (0..n as u32).collect();
                self.dirty_flags = vec![true; n];
                Ok(())
            }
            other => Err(format!("invalid warm-ready flag byte {other}")),
        }
    }
}

/// Round tracker for a policy's persistent mirror of the engine's queue
/// snapshot (see [`sync_snapshot_mirror`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct SnapshotSync {
    /// The round whose snapshot the mirror was last synced to.
    synced_round: Option<u64>,
}

impl SnapshotSync {
    /// The round the mirror was last synced to, if any. Checkpointed so a
    /// resumed policy keeps its delta chain: without it the first resumed
    /// round would take the full compare-and-mark path, which is decision-
    /// identical but would break the mirror's `touched` overlay accounting.
    pub fn synced_round(&self) -> Option<u64> {
        self.synced_round
    }

    /// Restores the sync point captured by
    /// [`synced_round`](SnapshotSync::synced_round).
    pub fn set_synced_round(&mut self, round: Option<u64>) {
        self.synced_round = round;
    }
}

/// Repairs a policy's persistent local mirror of the true queue lengths from
/// the engine's round-to-round dirty set, marking every changed slot dirty
/// on the warm `picker`.
///
/// The mirror invariant this maintains: after syncing at round `t`, `local`
/// equals the round-`t` snapshot. The policy may then overlay its own
/// in-batch placements, **recording each touched slot in `touched`**: the
/// engine's dirty set is the exact snapshot diff, so a slot the policy
/// inflated whose true length did not change (the server completed as many
/// jobs as it received) appears in `touched` but not in the dirty set — the
/// sync re-checks both. The delta path applies only when the context
/// carries a dirty set *and* the mirror was synced at round `t − 1` (an
/// unbroken chain); otherwise — first round, direct invocations, delta
/// tracking disabled, or a skipped round — a full compare-and-mark pass
/// runs. `touched` is drained either way.
///
/// **Dirty availability is invisible to decisions**: both paths mark exactly
/// the slots whose mirrored value changed (the delta path can do so because
/// unlisted servers are guaranteed unchanged), neither consumes randomness,
/// and the warm picker's priority epochs advance identically. Runs with and
/// without engine delta tracking are therefore bit-identical — the engine
/// equivalence tests pin this down.
///
/// A cluster-size change resets the mirror and invalidates the picker.
/// Syncing twice in one round (observe + dispatch) is a no-op.
pub fn sync_snapshot_mirror(
    local: &mut Vec<u64>,
    picker: &mut BatchArgmin,
    sync: &mut SnapshotSync,
    ctx: &DispatchContext<'_>,
    touched: &mut Vec<u32>,
) {
    let queues = ctx.queue_lengths();
    let round = ctx.round();
    if local.len() != queues.len() {
        local.clear();
        local.extend_from_slice(queues);
        picker.invalidate();
        touched.clear();
        sync.synced_round = Some(round);
        return;
    }
    if sync.synced_round == Some(round) {
        return;
    }
    let chained = sync
        .synced_round
        .is_some_and(|r| round == r.wrapping_add(1));
    match ctx.dirty_servers() {
        Some(dirty) if chained => {
            for &s in touched.iter().chain(dirty) {
                let s = s as usize;
                if local[s] != queues[s] {
                    local[s] = queues[s];
                    picker.mark_dirty(s);
                }
            }
            debug_assert_eq!(
                local.as_slice(),
                queues,
                "dirty set + own touched slots missed a change — \
                 the engine's delta contract is broken"
            );
        }
        _ => {
            for (s, (mine, &truth)) in local.iter_mut().zip(queues).enumerate() {
                if *mine != truth {
                    *mine = truth;
                    picker.mark_dirty(s);
                }
            }
        }
    }
    touched.clear();
    sync.synced_round = Some(round);
}

/// Propagates this round's availability flips into a warm picker's dirty
/// set: a server that crashed or repaired changes its effective key (to or
/// from `+∞`) without a queue-length change, which the snapshot-diff sync of
/// [`sync_snapshot_mirror`] cannot see. Reads the **raw** availability mask
/// (not [`DispatchContext::active_mask`]) on purpose — when the last down
/// server repairs, the active mask disappears but the repaired slot still
/// needs re-keying. A no-op on the fair-weather path (no mask attached) and
/// before the first warm batch.
pub fn mark_availability_flips(picker: &mut BatchArgmin, ctx: &DispatchContext<'_>) {
    if let Some(avail) = ctx.availability() {
        for &s in avail.changed() {
            picker.mark_dirty(s as usize);
        }
    }
}

/// Returns the index minimizing `score`, breaking ties uniformly at random.
///
/// Random tie-breaking matters: with many dispatchers sharing the same
/// queue-length view, deterministic tie-breaking (e.g. lowest index) would
/// systematically overload low-index servers.
///
/// # Panics
/// Panics if `n == 0`.
pub fn argmin_random_ties<F>(n: usize, score: F, rng: &mut dyn RngCore) -> usize
where
    F: Fn(usize) -> f64,
{
    assert!(n > 0, "argmin over an empty range");
    let mut best = 0usize;
    let mut best_score = score(0);
    let mut ties = 1u32;
    for i in 1..n {
        let s = score(i);
        if s < best_score {
            best = i;
            best_score = s;
            ties = 1;
        } else if s == best_score {
            // Reservoir sampling over the tied set: replace with prob 1/ties.
            ties += 1;
            if rng.gen_range(0..ties) == 0 {
                best = i;
            }
        }
    }
    best
}

/// Samples `count` *distinct* indices uniformly from `0..n` (partial
/// Fisher-Yates). When `count >= n` every index is returned.
///
/// # Panics
/// Panics if `n == 0`.
pub fn sample_distinct(n: usize, count: usize, rng: &mut dyn RngCore) -> Vec<usize> {
    let mut pool = Vec::new();
    sample_distinct_into(n, count, &mut pool, rng);
    pool
}

/// Buffer-reusing variant of [`sample_distinct`]: fills `pool` with the
/// sampled indices, reusing its allocation. Consumes the RNG identically to
/// [`sample_distinct`].
///
/// # Panics
/// Panics if `n == 0`.
pub fn sample_distinct_into(n: usize, count: usize, pool: &mut Vec<usize>, rng: &mut dyn RngCore) {
    assert!(n > 0, "cannot sample from an empty range");
    pool.clear();
    pool.extend(0..n);
    if count >= n {
        return;
    }
    for i in 0..count {
        let j = rng.gen_range(i..n);
        pool.swap(i, j);
    }
    pool.truncate(count);
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn argmin_finds_unique_minimum() {
        let scores = [5.0, 2.0, 7.0, 2.5];
        let mut rng = StdRng::seed_from_u64(0);
        let idx = argmin_random_ties(4, |i| scores[i], &mut rng);
        assert_eq!(idx, 1);
    }

    #[test]
    fn argmin_breaks_ties_roughly_uniformly() {
        let scores = [1.0, 3.0, 1.0, 1.0];
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = [0usize; 4];
        for _ in 0..30_000 {
            counts[argmin_random_ties(4, |i| scores[i], &mut rng)] += 1;
        }
        assert_eq!(counts[1], 0);
        for &i in &[0usize, 2, 3] {
            let freq = counts[i] as f64 / 30_000.0;
            assert!((freq - 1.0 / 3.0).abs() < 0.02, "index {i}: {freq}");
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn argmin_on_empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        argmin_random_ties(0, |_| 0.0, &mut rng);
    }

    #[test]
    fn sample_distinct_returns_unique_indices() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..200 {
            let picks = sample_distinct(10, 4, &mut rng);
            assert_eq!(picks.len(), 4);
            let mut sorted = picks.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 4, "duplicates in {picks:?}");
            assert!(picks.iter().all(|&p| p < 10));
        }
    }

    #[test]
    fn sample_distinct_saturates_at_population_size() {
        let mut rng = StdRng::seed_from_u64(3);
        let picks = sample_distinct(3, 10, &mut rng);
        assert_eq!(picks, vec![0, 1, 2]);
    }

    #[test]
    fn sample_distinct_covers_all_indices_over_time() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 6];
        for _ in 0..500 {
            for p in sample_distinct(6, 2, &mut rng) {
                seen[p] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn batch_argmin_modes_agree_and_consume_rng_identically() {
        let mut keys = vec![3.0f64, 1.0, 1.0, 4.0, 1.0, 2.0];
        let mut keys2 = keys.clone();
        let mut indexed = BatchArgmin::new(ArgminMode::Indexed);
        let mut scan = BatchArgmin::new(ArgminMode::Scan);
        assert_eq!(indexed.mode(), ArgminMode::Indexed);
        let mut rng_a = StdRng::seed_from_u64(42);
        let mut rng_b = StdRng::seed_from_u64(42);
        for _round in 0..50 {
            indexed.begin(keys.len(), |i| keys[i], &mut rng_a);
            scan.begin(keys2.len(), |i| keys2[i], &mut rng_b);
            for _job in 0..8 {
                let a = indexed.pick(|i| keys[i]);
                let b = scan.pick(|i| keys2[i]);
                assert_eq!(a, b, "indexed and scan picks diverged");
                keys[a] += 1.0;
                keys2[b] += 1.0;
                indexed.update(a, keys[a]);
                scan.update(b, keys2[b]);
            }
            // Both modes must have consumed the RNG identically.
            assert_eq!(rng_a.gen::<u64>(), rng_b.gen::<u64>());
        }
    }

    #[test]
    fn batch_argmin_ties_spread_over_batches() {
        // With all-equal keys the per-batch priorities act as a random
        // permutation: over many batches every server must win sometimes.
        let keys = [1.0f64; 5];
        let mut picker = BatchArgmin::new(ArgminMode::Indexed);
        let mut rng = StdRng::seed_from_u64(3);
        let mut wins = [0usize; 5];
        for _ in 0..2_000 {
            picker.begin(5, |i| keys[i], &mut rng);
            wins[picker.pick(|i| keys[i])] += 1;
        }
        for (i, &w) in wins.iter().enumerate() {
            let freq = w as f64 / 2_000.0;
            assert!((freq - 0.2).abs() < 0.04, "server {i} won {freq}");
        }
    }

    #[test]
    #[should_panic(expected = "empty cluster")]
    fn batch_argmin_rejects_empty_clusters() {
        let mut picker = BatchArgmin::new(ArgminMode::Indexed);
        let mut rng = StdRng::seed_from_u64(0);
        picker.begin(0, |_| 0.0, &mut rng);
    }

    /// The warm path's core guarantee: warm-indexed and warm-scan pickers
    /// driven through many batches — with out-of-batch key mutations marked
    /// dirty, crossing several priority epochs — pick identical servers and
    /// consume the RNG identically.
    #[test]
    fn warm_indexed_and_warm_scan_agree_across_epochs() {
        let mut case_rng = StdRng::seed_from_u64(0x77A2);
        for case in 0..20 {
            let n = case_rng.gen_range(1..30usize);
            let mut keys_a: Vec<f64> = (0..n).map(|_| case_rng.gen_range(0..6) as f64).collect();
            let mut keys_b = keys_a.clone();
            let seed = case_rng.gen::<u64>();
            let mut indexed = BatchArgmin::new(ArgminMode::Indexed);
            let mut scan = BatchArgmin::new(ArgminMode::Scan);
            let mut rng_a = StdRng::seed_from_u64(seed);
            let mut rng_b = StdRng::seed_from_u64(seed);
            let mut mut_rng = StdRng::seed_from_u64(seed ^ 0xABCD);
            // 3 * PRIORITY_EPOCH_BATCHES batches → at least two refreshes.
            for batch in 0..(3 * PRIORITY_EPOCH_BATCHES) {
                // Out-of-batch mutations (probes / decay), marked dirty.
                for _ in 0..mut_rng.gen_range(0..4usize) {
                    let slot = mut_rng.gen_range(0..n);
                    let value = mut_rng.gen_range(0..6) as f64;
                    keys_a[slot] = value;
                    keys_b[slot] = value;
                    indexed.mark_dirty(slot);
                    scan.mark_dirty(slot);
                }
                indexed.begin_warm(n, |i| keys_a[i], &mut rng_a);
                scan.begin_warm(n, |i| keys_b[i], &mut rng_b);
                for job in 0..mut_rng.gen_range(1..6usize) {
                    let a = indexed.pick(|i| keys_a[i]);
                    let b = scan.pick(|i| keys_b[i]);
                    assert_eq!(a, b, "case {case} batch {batch} job {job}");
                    keys_a[a] += 1.0;
                    keys_b[b] += 1.0;
                    indexed.update(a, keys_a[a]);
                    scan.update(b, keys_b[b]);
                }
                assert_eq!(
                    rng_a.gen::<u64>(),
                    rng_b.gen::<u64>(),
                    "case {case} batch {batch}: warm modes consumed the RNG differently"
                );
            }
        }
    }

    /// Warm batches consume randomness only at epoch boundaries; every other
    /// batch must leave the RNG untouched.
    #[test]
    fn warm_batches_draw_priorities_only_at_epoch_refresh() {
        let keys = [2.0f64, 1.0, 3.0];
        let mut picker = BatchArgmin::new(ArgminMode::Indexed);
        let mut rng = StdRng::seed_from_u64(9);
        picker.begin_warm(3, |i| keys[i], &mut rng);
        let mut probe = rng.clone();
        let expected = probe.gen::<u64>();
        for batch in 1..PRIORITY_EPOCH_BATCHES {
            picker.begin_warm(3, |i| keys[i], &mut rng);
            let mut check = rng.clone();
            assert_eq!(
                check.gen::<u64>(),
                expected,
                "batch {batch} consumed randomness mid-epoch"
            );
        }
        // The epoch is exhausted: the next warm batch redraws 3 priorities.
        picker.begin_warm(3, |i| keys[i], &mut rng);
        let mut check = rng.clone();
        assert_ne!(check.gen::<u64>(), expected);
    }

    /// A cluster-size change or an explicit invalidation forces a refresh on
    /// the next warm batch; dirty marks for the old cluster are discarded.
    #[test]
    fn warm_state_invalidation_forces_a_rebuild() {
        let keys4 = [4.0f64, 3.0, 2.0, 1.0];
        let keys2 = [5.0f64, 0.5];
        let mut picker = BatchArgmin::new(ArgminMode::Indexed);
        let mut rng = StdRng::seed_from_u64(11);
        picker.begin_warm(4, |i| keys4[i], &mut rng);
        assert_eq!(picker.pick(|i| keys4[i]), 3);
        picker.mark_dirty(2);
        // Shrink: the stale tree and the dirty mark must both be dropped.
        picker.begin_warm(2, |i| keys2[i], &mut rng);
        assert_eq!(picker.pick(|i| keys2[i]), 1);
        picker.invalidate();
        // mark_dirty after invalidation is a harmless no-op.
        picker.mark_dirty(0);
        picker.begin_warm(2, |i| keys2[i], &mut rng);
        assert_eq!(picker.pick(|i| keys2[i]), 1);
    }

    /// Checkpoint contract of the warm picker: a picker restored mid-epoch
    /// from saved warm state must pick the same servers *and* consume the
    /// RNG identically to the original continuing uninterrupted — including
    /// across the next epoch refresh.
    #[test]
    fn warm_state_save_restore_continues_bit_identically() {
        let mut keys_a = vec![3.0f64, 1.0, 4.0, 1.0, 5.0];
        let mut keys_b;
        let mut original = BatchArgmin::new(ArgminMode::Indexed);
        let mut rng = StdRng::seed_from_u64(0xC0FFEE);
        // Advance partway into an epoch, leaving the tree warm.
        for _ in 0..10 {
            original.begin_warm(5, |i| keys_a[i], &mut rng);
            let p = original.pick(|i| keys_a[i]);
            keys_a[p] += 1.0;
            original.update(p, keys_a[p]);
        }
        // Checkpoint: warm state + RNG state.
        let mut w = StateWriter::new();
        original.save_warm_state(&mut w);
        let blob = w.into_bytes();
        keys_b = keys_a.clone();
        let mut rng_b = StdRng::from_state(rng.state());
        let mut restored = BatchArgmin::new(ArgminMode::Indexed);
        let mut r = StateReader::new(&blob);
        restored.restore_warm_state(&mut r).unwrap();
        r.finish().unwrap();
        // Mutate a key out-of-batch on both sides (probe-style), then run
        // far enough to cross the next epoch refresh.
        keys_a[2] = 0.5;
        keys_b[2] = 0.5;
        original.mark_dirty(2);
        restored.mark_dirty(2);
        for batch in 0..(2 * PRIORITY_EPOCH_BATCHES) {
            original.begin_warm(5, |i| keys_a[i], &mut rng);
            restored.begin_warm(5, |i| keys_b[i], &mut rng_b);
            for job in 0..3 {
                let a = original.pick(|i| keys_a[i]);
                let b = restored.pick(|i| keys_b[i]);
                assert_eq!(a, b, "batch {batch} job {job}: restored pick diverged");
                keys_a[a] += 1.0;
                keys_b[b] += 1.0;
                original.update(a, keys_a[a]);
                restored.update(b, keys_b[b]);
            }
            assert_eq!(rng.gen::<u64>(), rng_b.gen::<u64>(), "batch {batch}");
        }
    }

    /// A cold picker round-trips as "not warm"; corrupt blobs are refused.
    #[test]
    fn warm_state_restore_rejects_corrupt_blobs() {
        let cold = BatchArgmin::new(ArgminMode::Indexed);
        let mut w = StateWriter::new();
        cold.save_warm_state(&mut w);
        let blob = w.into_bytes();
        let mut fresh = BatchArgmin::new(ArgminMode::Indexed);
        let mut r = StateReader::new(&blob);
        fresh.restore_warm_state(&mut r).unwrap();
        r.finish().unwrap();
        // Bad flag byte.
        let mut r = StateReader::new(&[9]);
        assert!(fresh.restore_warm_state(&mut r).is_err());
        // Warm flag with truncated body.
        let mut r = StateReader::new(&[1, 0, 0]);
        assert!(fresh.restore_warm_state(&mut r).is_err());
    }

    #[test]
    fn named_factory_builds_and_reports_name() {
        let factory = NamedFactory::new("test-jsq", |_d, _s| {
            Box::new(crate::jsq::JsqPolicy::new()) as BoxedPolicy
        });
        assert_eq!(factory.name(), "test-jsq");
        let spec = ClusterSpec::homogeneous(3, 1.0).unwrap();
        let policy = factory.build(DispatcherId::new(0), &spec);
        assert_eq!(policy.policy_name(), "JSQ");
        assert!(format!("{factory:?}").contains("test-jsq"));
    }
}
