//! Shared helpers for the baseline policies.

use rand::Rng;
use rand::RngCore;
use scd_core::index::{scan_argmin, TournamentTree};
use scd_model::{BoxedPolicy, ClusterSpec, DispatcherId, PolicyFactory};
use std::sync::Arc;

/// The boxed builder closure a [`NamedFactory`] wraps.
type BoxedBuilder = Arc<dyn Fn(DispatcherId, &ClusterSpec) -> BoxedPolicy + Send + Sync>;

/// A [`PolicyFactory`] defined by a name and a boxed closure — removes the
/// boilerplate of writing a dedicated factory struct for every policy
/// variant.
///
/// # Example
/// ```
/// use scd_policies::NamedFactory;
/// use scd_policies::jsq::JsqPolicy;
/// use scd_model::PolicyFactory;
///
/// let factory = NamedFactory::new("my-jsq", |_d, _spec| Box::new(JsqPolicy::new()));
/// assert_eq!(factory.name(), "my-jsq");
/// ```
#[derive(Clone)]
pub struct NamedFactory {
    name: String,
    builder: BoxedBuilder,
}

impl NamedFactory {
    /// Creates a factory from a display name and a builder closure.
    pub fn new<F>(name: impl Into<String>, builder: F) -> Self
    where
        F: Fn(DispatcherId, &ClusterSpec) -> BoxedPolicy + Send + Sync + 'static,
    {
        NamedFactory {
            name: name.into(),
            builder: Arc::new(builder),
        }
    }
}

impl std::fmt::Debug for NamedFactory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NamedFactory")
            .field("name", &self.name)
            .finish()
    }
}

impl PolicyFactory for NamedFactory {
    fn name(&self) -> &str {
        &self.name
    }

    fn build(&self, dispatcher: DispatcherId, spec: &ClusterSpec) -> BoxedPolicy {
        (self.builder)(dispatcher, spec)
    }
}

/// How an argmin-family policy (JSQ, SED, LSQ, LED, …) answers its repeated
/// "currently best server" queries while placing a batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ArgminMode {
    /// Tournament-tree indexed queue view: `O(n)` rebuild per batch, then
    /// `O(log n)` per placed job. The default.
    #[default]
    Indexed,
    /// Reference `O(n)`-per-job scan over the same `(key, priority, index)`
    /// order. Kept for equivalence testing and as the
    /// `BENCH_engine.json` apples-to-apples baseline.
    Scan,
}

/// The per-batch argmin engine shared by the argmin-family policies.
///
/// At the start of every batch, [`begin`](BatchArgmin::begin) draws one
/// random `u64` priority per server from the dispatcher's RNG — a uniformly
/// random tie-breaking order among equal keys, which plays the role
/// [`argmin_random_ties`] played in the scan-only implementation (random
/// tie-breaking prevents many dispatchers sharing one snapshot from
/// systematically piling onto low-index servers). Both modes then minimize
/// the identical composite key `(key, priority, index)` and consume the RNG
/// identically, so **indexed and scan dispatch pick the same servers for
/// equal seeds** — the engine-level reports are bit-identical.
#[derive(Debug, Clone, Default)]
pub struct BatchArgmin {
    mode: ArgminMode,
    n: usize,
    prios: Vec<u64>,
    tree: TournamentTree,
}

impl BatchArgmin {
    /// Creates the engine in the given mode.
    pub fn new(mode: ArgminMode) -> Self {
        BatchArgmin {
            mode,
            ..BatchArgmin::default()
        }
    }

    /// The active mode.
    pub fn mode(&self) -> ArgminMode {
        self.mode
    }

    /// Starts a batch over `n` servers: draws one priority per server (both
    /// modes, so RNG consumption is identical) and, in indexed mode, rebuilds
    /// the tournament from `key`.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn begin<K>(&mut self, n: usize, key: K, rng: &mut dyn RngCore)
    where
        K: FnMut(usize) -> f64,
    {
        assert!(n > 0, "argmin over an empty cluster");
        self.n = n;
        self.prios.clear();
        self.prios.extend((0..n).map(|_| rng.next_u64()));
        if self.mode == ArgminMode::Indexed {
            let prios = &self.prios;
            self.tree.rebuild(n, key, |i| prios[i]);
        }
    }

    /// The server currently minimizing `(key, priority, index)`. The `key`
    /// closure is consulted only in scan mode (the tree already holds the
    /// keys); it must agree with the keys passed to
    /// [`begin`](BatchArgmin::begin) / [`update`](BatchArgmin::update).
    pub fn pick<K>(&self, key: K) -> usize
    where
        K: FnMut(usize) -> f64,
    {
        match self.mode {
            ArgminMode::Indexed => self.tree.argmin(),
            ArgminMode::Scan => scan_argmin(self.n, key, |i| self.prios[i]),
        }
    }

    /// Records that `slot`'s key changed (after the caller placed a job on
    /// it). `O(log n)` in indexed mode, free in scan mode.
    pub fn update(&mut self, slot: usize, key: f64) {
        if self.mode == ArgminMode::Indexed {
            self.tree.update_key(slot, key);
        }
    }
}

/// Returns the index minimizing `score`, breaking ties uniformly at random.
///
/// Random tie-breaking matters: with many dispatchers sharing the same
/// queue-length view, deterministic tie-breaking (e.g. lowest index) would
/// systematically overload low-index servers.
///
/// # Panics
/// Panics if `n == 0`.
pub fn argmin_random_ties<F>(n: usize, score: F, rng: &mut dyn RngCore) -> usize
where
    F: Fn(usize) -> f64,
{
    assert!(n > 0, "argmin over an empty range");
    let mut best = 0usize;
    let mut best_score = score(0);
    let mut ties = 1u32;
    for i in 1..n {
        let s = score(i);
        if s < best_score {
            best = i;
            best_score = s;
            ties = 1;
        } else if s == best_score {
            // Reservoir sampling over the tied set: replace with prob 1/ties.
            ties += 1;
            if rng.gen_range(0..ties) == 0 {
                best = i;
            }
        }
    }
    best
}

/// Samples `count` *distinct* indices uniformly from `0..n` (partial
/// Fisher-Yates). When `count >= n` every index is returned.
///
/// # Panics
/// Panics if `n == 0`.
pub fn sample_distinct(n: usize, count: usize, rng: &mut dyn RngCore) -> Vec<usize> {
    let mut pool = Vec::new();
    sample_distinct_into(n, count, &mut pool, rng);
    pool
}

/// Buffer-reusing variant of [`sample_distinct`]: fills `pool` with the
/// sampled indices, reusing its allocation. Consumes the RNG identically to
/// [`sample_distinct`].
///
/// # Panics
/// Panics if `n == 0`.
pub fn sample_distinct_into(n: usize, count: usize, pool: &mut Vec<usize>, rng: &mut dyn RngCore) {
    assert!(n > 0, "cannot sample from an empty range");
    pool.clear();
    pool.extend(0..n);
    if count >= n {
        return;
    }
    for i in 0..count {
        let j = rng.gen_range(i..n);
        pool.swap(i, j);
    }
    pool.truncate(count);
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn argmin_finds_unique_minimum() {
        let scores = [5.0, 2.0, 7.0, 2.5];
        let mut rng = StdRng::seed_from_u64(0);
        let idx = argmin_random_ties(4, |i| scores[i], &mut rng);
        assert_eq!(idx, 1);
    }

    #[test]
    fn argmin_breaks_ties_roughly_uniformly() {
        let scores = [1.0, 3.0, 1.0, 1.0];
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = [0usize; 4];
        for _ in 0..30_000 {
            counts[argmin_random_ties(4, |i| scores[i], &mut rng)] += 1;
        }
        assert_eq!(counts[1], 0);
        for &i in &[0usize, 2, 3] {
            let freq = counts[i] as f64 / 30_000.0;
            assert!((freq - 1.0 / 3.0).abs() < 0.02, "index {i}: {freq}");
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn argmin_on_empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        argmin_random_ties(0, |_| 0.0, &mut rng);
    }

    #[test]
    fn sample_distinct_returns_unique_indices() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..200 {
            let picks = sample_distinct(10, 4, &mut rng);
            assert_eq!(picks.len(), 4);
            let mut sorted = picks.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 4, "duplicates in {picks:?}");
            assert!(picks.iter().all(|&p| p < 10));
        }
    }

    #[test]
    fn sample_distinct_saturates_at_population_size() {
        let mut rng = StdRng::seed_from_u64(3);
        let picks = sample_distinct(3, 10, &mut rng);
        assert_eq!(picks, vec![0, 1, 2]);
    }

    #[test]
    fn sample_distinct_covers_all_indices_over_time() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 6];
        for _ in 0..500 {
            for p in sample_distinct(6, 2, &mut rng) {
                seen[p] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn batch_argmin_modes_agree_and_consume_rng_identically() {
        let mut keys = vec![3.0f64, 1.0, 1.0, 4.0, 1.0, 2.0];
        let mut keys2 = keys.clone();
        let mut indexed = BatchArgmin::new(ArgminMode::Indexed);
        let mut scan = BatchArgmin::new(ArgminMode::Scan);
        assert_eq!(indexed.mode(), ArgminMode::Indexed);
        let mut rng_a = StdRng::seed_from_u64(42);
        let mut rng_b = StdRng::seed_from_u64(42);
        for _round in 0..50 {
            indexed.begin(keys.len(), |i| keys[i], &mut rng_a);
            scan.begin(keys2.len(), |i| keys2[i], &mut rng_b);
            for _job in 0..8 {
                let a = indexed.pick(|i| keys[i]);
                let b = scan.pick(|i| keys2[i]);
                assert_eq!(a, b, "indexed and scan picks diverged");
                keys[a] += 1.0;
                keys2[b] += 1.0;
                indexed.update(a, keys[a]);
                scan.update(b, keys2[b]);
            }
            // Both modes must have consumed the RNG identically.
            assert_eq!(rng_a.gen::<u64>(), rng_b.gen::<u64>());
        }
    }

    #[test]
    fn batch_argmin_ties_spread_over_batches() {
        // With all-equal keys the per-batch priorities act as a random
        // permutation: over many batches every server must win sometimes.
        let keys = [1.0f64; 5];
        let mut picker = BatchArgmin::new(ArgminMode::Indexed);
        let mut rng = StdRng::seed_from_u64(3);
        let mut wins = [0usize; 5];
        for _ in 0..2_000 {
            picker.begin(5, |i| keys[i], &mut rng);
            wins[picker.pick(|i| keys[i])] += 1;
        }
        for (i, &w) in wins.iter().enumerate() {
            let freq = w as f64 / 2_000.0;
            assert!((freq - 0.2).abs() < 0.04, "server {i} won {freq}");
        }
    }

    #[test]
    #[should_panic(expected = "empty cluster")]
    fn batch_argmin_rejects_empty_clusters() {
        let mut picker = BatchArgmin::new(ArgminMode::Indexed);
        let mut rng = StdRng::seed_from_u64(0);
        picker.begin(0, |_| 0.0, &mut rng);
    }

    #[test]
    fn named_factory_builds_and_reports_name() {
        let factory = NamedFactory::new("test-jsq", |_d, _s| {
            Box::new(crate::jsq::JsqPolicy::new()) as BoxedPolicy
        });
        assert_eq!(factory.name(), "test-jsq");
        let spec = ClusterSpec::homogeneous(3, 1.0).unwrap();
        let policy = factory.build(DispatcherId::new(0), &spec);
        assert_eq!(policy.policy_name(), "JSQ");
        assert!(format!("{factory:?}").contains("test-jsq"));
    }
}
