//! Power-of-d-choices dispatching: `JSQ(d)` and its heterogeneity-aware
//! variant `hJSQ(d)`.
//!
//! For every arriving job the dispatcher samples `d` servers and applies the
//! JSQ/SED rule to the sampled set only. Subsampling breaks the symmetry
//! between dispatchers and thus mitigates herding, at the price of often
//! missing the genuinely least-loaded servers. In heterogeneous clusters the
//! uniform-sampling variant can even be unstable (Section 1.1), which is why
//! the paper also evaluates `hJSQ(d)`: sampling proportional to the service
//! rates and ranking by expected delay (footnote 6).

use crate::common::{argmin_random_ties, sample_distinct_into, NamedFactory};
use rand::RngCore;
use scd_model::{
    AliasSampler, Availability, BoxedPolicy, ClusterSpec, DispatchContext, DispatchPolicy,
    DispatcherId, PolicyFactory, ServerId,
};

/// How candidate servers are sampled and ranked.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PowerOfDVariant {
    /// `JSQ(d)`: sample `d` distinct servers uniformly, rank by queue length.
    Uniform,
    /// `hJSQ(d)`: sample `d` servers proportionally to their rates, rank by
    /// expected delay `(q + 1)/µ`.
    Heterogeneous,
}

/// The power-of-d policy.
#[derive(Debug, Clone)]
pub struct PowerOfDPolicy {
    d: usize,
    variant: PowerOfDVariant,
    name: String,
    /// Rate-proportional sampler (only for the heterogeneous variant).
    rate_sampler: Option<AliasSampler>,
    /// Local copy of the queue lengths for intra-batch updates.
    local: Vec<u64>,
    /// Reusable per-job candidate buffer.
    candidates: Vec<usize>,
}

impl PowerOfDPolicy {
    /// Creates a `JSQ(d)` policy.
    ///
    /// # Panics
    /// Panics if `d == 0`.
    pub fn uniform(d: usize) -> Self {
        assert!(d > 0, "power-of-d requires d >= 1");
        PowerOfDPolicy {
            d,
            variant: PowerOfDVariant::Uniform,
            name: format!("JSQ({d})"),
            rate_sampler: None,
            local: Vec::new(),
            candidates: Vec::new(),
        }
    }

    /// Creates an `hJSQ(d)` policy for a given cluster (the rate-proportional
    /// sampler is precomputed from the cluster specification).
    ///
    /// # Panics
    /// Panics if `d == 0`.
    pub fn heterogeneous(d: usize, spec: &ClusterSpec) -> Self {
        assert!(d > 0, "power-of-d requires d >= 1");
        let sampler = AliasSampler::new(spec.rates()).expect("cluster rates are strictly positive");
        PowerOfDPolicy {
            d,
            variant: PowerOfDVariant::Heterogeneous,
            name: format!("hJSQ({d})"),
            rate_sampler: Some(sampler),
            local: Vec::new(),
            candidates: Vec::new(),
        }
    }

    /// The number of probes per job.
    pub fn d(&self) -> usize {
        self.d
    }

    /// The sampling/ranking variant.
    pub fn variant(&self) -> PowerOfDVariant {
        self.variant
    }

    /// Fills `self.candidates` with this job's probe set, reusing the buffer.
    /// Under an active availability mask only up servers are probed: the
    /// uniform variant samples distinct positions of the up list, the
    /// heterogeneous variant rejection-samples until the draw is up (rates
    /// are strictly positive, so this terminates).
    fn sample_candidates(&mut self, n: usize, mask: Option<&Availability>, rng: &mut dyn RngCore) {
        match self.variant {
            PowerOfDVariant::Uniform => match mask {
                Some(avail) => {
                    sample_distinct_into(avail.num_up(), self.d, &mut self.candidates, rng);
                    for slot in &mut self.candidates {
                        *slot = avail.up_list()[*slot] as usize;
                    }
                }
                None => sample_distinct_into(n, self.d, &mut self.candidates, rng),
            },
            PowerOfDVariant::Heterogeneous => {
                // Rate-proportional sampling with replacement (duplicates are
                // harmless: the ranking step treats them as one candidate).
                let sampler = self
                    .rate_sampler
                    .as_ref()
                    .expect("heterogeneous variant always carries a sampler");
                self.candidates.clear();
                for _ in 0..self.d {
                    let pick = match mask {
                        Some(avail) => loop {
                            let s = sampler.sample(rng);
                            if avail.is_up(s) {
                                break s;
                            }
                        },
                        None => sampler.sample(rng),
                    };
                    self.candidates.push(pick);
                }
            }
        }
    }
}

impl DispatchPolicy for PowerOfDPolicy {
    fn policy_name(&self) -> &str {
        &self.name
    }

    fn dispatch_batch(
        &mut self,
        ctx: &DispatchContext<'_>,
        batch: usize,
        rng: &mut dyn RngCore,
    ) -> Vec<ServerId> {
        let mut out = Vec::with_capacity(batch);
        self.dispatch_into(ctx, batch, &mut out, rng);
        out
    }

    fn dispatch_into(
        &mut self,
        ctx: &DispatchContext<'_>,
        batch: usize,
        out: &mut Vec<ServerId>,
        rng: &mut dyn RngCore,
    ) {
        self.local.clear();
        self.local.extend_from_slice(ctx.queue_lengths());
        let rates = ctx.rates();
        let n = self.local.len();
        let mask = ctx.active_mask();
        for _ in 0..batch {
            self.sample_candidates(n, mask, rng);
            let candidates = &self.candidates;
            let local = &self.local;
            let variant = self.variant;
            let score = |i: usize| -> f64 {
                let s = candidates[i];
                match variant {
                    PowerOfDVariant::Uniform => local[s] as f64,
                    PowerOfDVariant::Heterogeneous => (local[s] as f64 + 1.0) / rates[s],
                }
            };
            let winner_pos = argmin_random_ties(candidates.len(), score, rng);
            let target = candidates[winner_pos];
            self.local[target] += 1;
            out.push(ServerId::new(target));
        }
    }
}

/// Factory for [`PowerOfDPolicy`].
#[derive(Debug, Clone)]
pub struct PowerOfDFactory {
    d: usize,
    variant: PowerOfDVariant,
    name: String,
}

impl PowerOfDFactory {
    /// `JSQ(d)` factory.
    ///
    /// # Panics
    /// Panics if `d == 0`.
    pub fn uniform(d: usize) -> Self {
        assert!(d > 0, "power-of-d requires d >= 1");
        PowerOfDFactory {
            d,
            variant: PowerOfDVariant::Uniform,
            name: format!("JSQ({d})"),
        }
    }

    /// `hJSQ(d)` factory.
    ///
    /// # Panics
    /// Panics if `d == 0`.
    pub fn heterogeneous(d: usize) -> Self {
        assert!(d > 0, "power-of-d requires d >= 1");
        PowerOfDFactory {
            d,
            variant: PowerOfDVariant::Heterogeneous,
            name: format!("hJSQ({d})"),
        }
    }

    /// The same configuration wrapped in a [`NamedFactory`].
    pub fn named(self) -> NamedFactory {
        let name = self.name.clone();
        NamedFactory::new(name, move |d, spec| self.build(d, spec))
    }
}

impl PolicyFactory for PowerOfDFactory {
    fn name(&self) -> &str {
        &self.name
    }

    fn build(&self, _dispatcher: DispatcherId, spec: &ClusterSpec) -> BoxedPolicy {
        match self.variant {
            PowerOfDVariant::Uniform => Box::new(PowerOfDPolicy::uniform(self.d)),
            PowerOfDVariant::Heterogeneous => Box::new(PowerOfDPolicy::heterogeneous(self.d, spec)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ctx<'a>(queues: &'a [u64], rates: &'a [f64]) -> DispatchContext<'a> {
        DispatchContext::new(queues, rates, 1, 0)
    }

    #[test]
    fn d_equal_to_n_behaves_like_jsq() {
        let queues = vec![5u64, 0, 3];
        let rates = vec![1.0; 3];
        let c = ctx(&queues, &rates);
        let mut rng = StdRng::seed_from_u64(1);
        let mut policy = PowerOfDPolicy::uniform(3);
        let out = policy.dispatch_batch(&c, 1, &mut rng);
        assert_eq!(out[0].index(), 1);
        assert_eq!(policy.d(), 3);
        assert_eq!(policy.variant(), PowerOfDVariant::Uniform);
    }

    #[test]
    fn d_one_is_uniform_random() {
        let queues = vec![1000u64, 0];
        let rates = vec![1.0, 1.0];
        let c = ctx(&queues, &rates);
        let mut rng = StdRng::seed_from_u64(5);
        let mut policy = PowerOfDPolicy::uniform(1);
        let picks = policy.dispatch_batch(&c, 10_000, &mut rng);
        // Local increments do not matter for d = 1; the split must be ~50/50
        // even though server 0 has a huge queue.
        let to_zero = picks.iter().filter(|s| s.index() == 0).count();
        assert!((to_zero as f64 / 10_000.0 - 0.5).abs() < 0.03);
    }

    #[test]
    fn heterogeneous_variant_prefers_fast_servers() {
        let queues = vec![0u64, 0];
        let rates = vec![9.0, 1.0];
        let spec = ClusterSpec::from_rates(rates.clone()).unwrap();
        let c = ctx(&queues, &rates);
        let mut rng = StdRng::seed_from_u64(6);
        let mut policy = PowerOfDPolicy::heterogeneous(2, &spec);
        assert_eq!(policy.policy_name(), "hJSQ(2)");
        let picks = policy.dispatch_batch(&c, 5_000, &mut rng);
        let to_fast = picks.iter().filter(|s| s.index() == 0).count() as f64 / 5_000.0;
        // With rate-proportional sampling and expected-delay ranking the fast
        // server receives the overwhelming majority of the jobs.
        assert!(to_fast > 0.8, "fast server share {to_fast}");
    }

    #[test]
    fn uniform_variant_ignores_rates() {
        let queues = vec![0u64, 0];
        let rates = vec![9.0, 1.0];
        let c = ctx(&queues, &rates);
        let mut rng = StdRng::seed_from_u64(6);
        let mut policy = PowerOfDPolicy::uniform(2);
        let picks = policy.dispatch_batch(&c, 4_000, &mut rng);
        let to_fast = picks.iter().filter(|s| s.index() == 0).count() as f64 / 4_000.0;
        // With d = n = 2 and queue-length ranking, the local counter forces an
        // exact 50/50 split regardless of rates.
        assert!((to_fast - 0.5).abs() < 0.05, "fast server share {to_fast}");
    }

    #[test]
    fn factories_build_the_right_variants() {
        let spec = ClusterSpec::from_rates(vec![2.0, 1.0]).unwrap();
        let u = PowerOfDFactory::uniform(2);
        assert_eq!(u.name(), "JSQ(2)");
        assert_eq!(u.build(DispatcherId::new(0), &spec).policy_name(), "JSQ(2)");
        let h = PowerOfDFactory::heterogeneous(2);
        assert_eq!(h.name(), "hJSQ(2)");
        assert_eq!(
            h.build(DispatcherId::new(0), &spec).policy_name(),
            "hJSQ(2)"
        );
        let named = PowerOfDFactory::uniform(3).named();
        assert_eq!(named.name(), "JSQ(3)");
    }

    #[test]
    #[should_panic(expected = "d >= 1")]
    fn zero_probes_is_rejected() {
        PowerOfDPolicy::uniform(0);
    }
}
