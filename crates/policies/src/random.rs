//! Load-oblivious policies: weighted random (`WR`), uniform random and round
//! robin.
//!
//! `WR` sends each job to server `s` with probability `µ_s / Σ µ_s`,
//! independent of the queue state. It is trivially herd-free and stable, but
//! ignores queue-length information entirely and therefore cannot exploit
//! transient imbalances (Appendix E.1 of the paper shows it is far from
//! competitive). Uniform random and round robin are included as the weakest
//! baselines for tests and examples.

use crate::common::NamedFactory;
use rand::Rng;
use rand::RngCore;
use scd_model::{
    AliasSampler, BoxedPolicy, ClusterSpec, DispatchContext, DispatchPolicy, DispatcherId,
    PolicyFactory, ServerId, StateReader, StateWriter,
};

/// Weighted-random dispatching: `p_s ∝ µ_s`.
#[derive(Debug, Clone)]
pub struct WeightedRandomPolicy {
    sampler: AliasSampler,
}

impl WeightedRandomPolicy {
    /// Builds the policy for a given cluster.
    pub fn new(spec: &ClusterSpec) -> Self {
        WeightedRandomPolicy {
            sampler: AliasSampler::new(spec.rates()).expect("cluster rates are strictly positive"),
        }
    }
}

impl DispatchPolicy for WeightedRandomPolicy {
    fn policy_name(&self) -> &str {
        "WR"
    }

    fn dispatch_batch(
        &mut self,
        ctx: &DispatchContext<'_>,
        batch: usize,
        rng: &mut dyn RngCore,
    ) -> Vec<ServerId> {
        let mut out = Vec::with_capacity(batch);
        self.dispatch_into(ctx, batch, &mut out, rng);
        out
    }

    fn dispatch_into(
        &mut self,
        ctx: &DispatchContext<'_>,
        batch: usize,
        out: &mut Vec<ServerId>,
        rng: &mut dyn RngCore,
    ) {
        match ctx.active_mask() {
            // Rejection sampling keeps `p_s ∝ µ_s` over the up set; rates are
            // strictly positive, so this terminates.
            Some(avail) => out.extend((0..batch).map(|_| {
                ServerId::new(loop {
                    let s = self.sampler.sample(rng);
                    if avail.is_up(s) {
                        break s;
                    }
                })
            })),
            None => out.extend((0..batch).map(|_| ServerId::new(self.sampler.sample(rng)))),
        }
    }
}

/// Factory for [`WeightedRandomPolicy`].
#[derive(Debug, Clone, Default)]
pub struct WeightedRandomFactory;

impl WeightedRandomFactory {
    /// Creates the factory.
    pub fn new() -> Self {
        WeightedRandomFactory
    }

    /// The same policy wrapped in a [`NamedFactory`].
    pub fn named() -> NamedFactory {
        NamedFactory::new("WR", |_d, spec| Box::new(WeightedRandomPolicy::new(spec)))
    }
}

impl PolicyFactory for WeightedRandomFactory {
    fn name(&self) -> &str {
        "WR"
    }

    fn build(&self, _dispatcher: DispatcherId, spec: &ClusterSpec) -> BoxedPolicy {
        Box::new(WeightedRandomPolicy::new(spec))
    }
}

/// Uniform-random dispatching (ignores both queues and rates).
#[derive(Debug, Clone, Default)]
pub struct UniformRandomPolicy;

impl UniformRandomPolicy {
    /// Creates the policy.
    pub fn new() -> Self {
        UniformRandomPolicy
    }
}

impl DispatchPolicy for UniformRandomPolicy {
    fn policy_name(&self) -> &str {
        "Random"
    }

    fn dispatch_batch(
        &mut self,
        ctx: &DispatchContext<'_>,
        batch: usize,
        rng: &mut dyn RngCore,
    ) -> Vec<ServerId> {
        let mut out = Vec::with_capacity(batch);
        self.dispatch_into(ctx, batch, &mut out, rng);
        out
    }

    fn dispatch_into(
        &mut self,
        ctx: &DispatchContext<'_>,
        batch: usize,
        out: &mut Vec<ServerId>,
        rng: &mut dyn RngCore,
    ) {
        match ctx.active_mask() {
            Some(avail) => out.extend((0..batch).map(|_| {
                ServerId::new(avail.up_list()[rng.gen_range(0..avail.num_up())] as usize)
            })),
            None => {
                let n = ctx.num_servers();
                out.extend((0..batch).map(|_| ServerId::new(rng.gen_range(0..n))));
            }
        }
    }
}

/// Factory for [`UniformRandomPolicy`].
#[derive(Debug, Clone, Default)]
pub struct UniformRandomFactory;

impl UniformRandomFactory {
    /// Creates the factory.
    pub fn new() -> Self {
        UniformRandomFactory
    }
}

impl PolicyFactory for UniformRandomFactory {
    fn name(&self) -> &str {
        "Random"
    }

    fn build(&self, _dispatcher: DispatcherId, _spec: &ClusterSpec) -> BoxedPolicy {
        Box::new(UniformRandomPolicy::new())
    }
}

/// Deterministic round-robin dispatching. Each dispatcher starts its cycle at
/// a different offset so the dispatchers do not all hammer the same server in
/// the same round.
#[derive(Debug, Clone)]
pub struct RoundRobinPolicy {
    next: usize,
}

impl RoundRobinPolicy {
    /// Creates the policy starting its cycle at `offset`.
    pub fn with_offset(offset: usize) -> Self {
        RoundRobinPolicy { next: offset }
    }
}

impl DispatchPolicy for RoundRobinPolicy {
    fn policy_name(&self) -> &str {
        "RoundRobin"
    }

    fn dispatch_batch(
        &mut self,
        ctx: &DispatchContext<'_>,
        batch: usize,
        rng: &mut dyn RngCore,
    ) -> Vec<ServerId> {
        let mut out = Vec::with_capacity(batch);
        self.dispatch_into(ctx, batch, &mut out, rng);
        out
    }

    fn dispatch_into(
        &mut self,
        ctx: &DispatchContext<'_>,
        batch: usize,
        out: &mut Vec<ServerId>,
        _rng: &mut dyn RngCore,
    ) {
        let n = ctx.num_servers();
        let mask = ctx.active_mask();
        out.extend((0..batch).map(|_| {
            // Down servers are skipped without losing the dispatcher's place
            // in the cycle; the engine guarantees at least one up server.
            loop {
                let s = self.next % n;
                self.next = self.next.wrapping_add(1);
                match mask {
                    Some(avail) if !avail.is_up(s) => continue,
                    _ => break ServerId::new(s),
                }
            }
        }));
    }

    fn save_state(&self, out: &mut Vec<u8>) {
        let mut w = StateWriter::new();
        w.u64(self.next as u64);
        out.extend_from_slice(&w.into_bytes());
    }

    fn restore_state(&mut self, bytes: &[u8]) -> Result<(), String> {
        let mut r = StateReader::new(bytes);
        let next = r.u64()?;
        r.finish()?;
        self.next = usize::try_from(next)
            .map_err(|_| format!("round-robin cursor {next} exceeds this platform's usize"))?;
        Ok(())
    }
}

/// Factory for [`RoundRobinPolicy`].
#[derive(Debug, Clone, Default)]
pub struct RoundRobinFactory;

impl RoundRobinFactory {
    /// Creates the factory.
    pub fn new() -> Self {
        RoundRobinFactory
    }
}

impl PolicyFactory for RoundRobinFactory {
    fn name(&self) -> &str {
        "RoundRobin"
    }

    fn build(&self, dispatcher: DispatcherId, _spec: &ClusterSpec) -> BoxedPolicy {
        Box::new(RoundRobinPolicy::with_offset(dispatcher.index()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn weighted_random_matches_rates_empirically() {
        let rates = vec![6.0, 3.0, 1.0];
        let spec = ClusterSpec::from_rates(rates.clone()).unwrap();
        let queues = vec![0u64; 3];
        let ctx = DispatchContext::new(&queues, &rates, 1, 0);
        let mut rng = StdRng::seed_from_u64(1);
        let mut policy = WeightedRandomPolicy::new(&spec);
        let picks = policy.dispatch_batch(&ctx, 50_000, &mut rng);
        let mut counts = [0usize; 3];
        for p in picks {
            counts[p.index()] += 1;
        }
        let expected = [0.6, 0.3, 0.1];
        for i in 0..3 {
            let freq = counts[i] as f64 / 50_000.0;
            assert!((freq - expected[i]).abs() < 0.01, "server {i}: {freq}");
        }
    }

    #[test]
    fn weighted_random_ignores_queue_lengths() {
        let rates = vec![1.0, 1.0];
        let spec = ClusterSpec::from_rates(rates.clone()).unwrap();
        let queues = vec![1000u64, 0];
        let ctx = DispatchContext::new(&queues, &rates, 1, 0);
        let mut rng = StdRng::seed_from_u64(2);
        let mut policy = WeightedRandomPolicy::new(&spec);
        let picks = policy.dispatch_batch(&ctx, 10_000, &mut rng);
        let to_loaded = picks.iter().filter(|s| s.index() == 0).count() as f64 / 10_000.0;
        assert!((to_loaded - 0.5).abs() < 0.03);
    }

    #[test]
    fn uniform_random_covers_all_servers() {
        let rates = vec![5.0, 1.0, 1.0, 1.0];
        let queues = vec![0u64; 4];
        let ctx = DispatchContext::new(&queues, &rates, 1, 0);
        let mut rng = StdRng::seed_from_u64(3);
        let mut policy = UniformRandomPolicy::new();
        let picks = policy.dispatch_batch(&ctx, 20_000, &mut rng);
        let mut counts = [0usize; 4];
        for p in picks {
            counts[p.index()] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            let freq = c as f64 / 20_000.0;
            assert!((freq - 0.25).abs() < 0.02, "server {i}: {freq}");
        }
    }

    #[test]
    fn round_robin_cycles_with_offset() {
        let rates = vec![1.0; 3];
        let queues = vec![0u64; 3];
        let ctx = DispatchContext::new(&queues, &rates, 1, 0);
        let mut rng = StdRng::seed_from_u64(4);
        let mut policy = RoundRobinPolicy::with_offset(1);
        let picks = policy.dispatch_batch(&ctx, 5, &mut rng);
        let targets: Vec<usize> = picks.iter().map(|s| s.index()).collect();
        assert_eq!(targets, vec![1, 2, 0, 1, 2]);
    }

    #[test]
    fn factories_build_named_policies() {
        let spec = ClusterSpec::from_rates(vec![1.0, 2.0]).unwrap();
        for (factory, expected) in [
            (
                Box::new(WeightedRandomFactory::new()) as Box<dyn PolicyFactory>,
                "WR",
            ),
            (Box::new(UniformRandomFactory::new()), "Random"),
            (Box::new(RoundRobinFactory::new()), "RoundRobin"),
        ] {
            assert_eq!(factory.name(), expected);
            assert_eq!(
                factory.build(DispatcherId::new(0), &spec).policy_name(),
                expected
            );
        }
        assert_eq!(WeightedRandomFactory::named().name(), "WR");
    }

    #[test]
    fn round_robin_offsets_differ_per_dispatcher() {
        let spec = ClusterSpec::from_rates(vec![1.0; 4]).unwrap();
        let factory = RoundRobinFactory::new();
        let rates = vec![1.0; 4];
        let queues = vec![0u64; 4];
        let ctx = DispatchContext::new(&queues, &rates, 2, 0);
        let mut rng = StdRng::seed_from_u64(5);
        let mut d0 = factory.build(DispatcherId::new(0), &spec);
        let mut d1 = factory.build(DispatcherId::new(1), &spec);
        let first0 = d0.dispatch_batch(&ctx, 1, &mut rng)[0].index();
        let first1 = d1.dispatch_batch(&ctx, 1, &mut rng)[0].index();
        assert_ne!(first0, first1);
    }
}
