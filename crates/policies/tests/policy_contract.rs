//! Contract tests: every registered policy must behave like a well-formed
//! dispatcher for arbitrary cluster states — correct arity, in-range
//! destinations, determinism under a fixed RNG, agreement between the
//! allocating (`dispatch_batch`) and buffer-reusing (`dispatch_into`) entry
//! points, and tolerance of edge-case contexts (idle cluster, saturated
//! cluster, single server).
//!
//! Cases are generated from a seeded [`StdRng`] (the build environment is
//! offline, so no proptest); failure messages carry the case index.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use scd_model::{ClusterSpec, DispatchContext, DispatcherId, ServerId};
use scd_policies::{all_standard_factories, factory_by_name, standard_policy_names};

const CASES: usize = 48;

/// A random `(queues, rates, dispatchers, batch, seed)` case.
fn random_case(rng: &mut StdRng) -> (Vec<u64>, Vec<f64>, usize, usize, u64) {
    let n = rng.gen_range(1..30usize);
    let queues: Vec<u64> = (0..n).map(|_| rng.gen_range(0..100u64)).collect();
    let rates: Vec<f64> = (0..n).map(|_| rng.gen_range(0.5..50.0)).collect();
    let dispatchers = rng.gen_range(1..16usize);
    let batch = rng.gen_range(0..40usize);
    let seed = rng.gen::<u64>();
    (queues, rates, dispatchers, batch, seed)
}

#[test]
fn every_policy_returns_valid_assignments() {
    let mut case_rng = StdRng::seed_from_u64(0xC0477AC7);
    for case in 0..CASES {
        let (queues, rates, dispatchers, batch, seed) = random_case(&mut case_rng);
        let spec = ClusterSpec::from_rates(rates.clone()).unwrap();
        let ctx = DispatchContext::new(&queues, &rates, dispatchers, 0);
        for factory in all_standard_factories() {
            let mut policy = factory.build(DispatcherId::new(0), &spec);
            let mut rng = StdRng::seed_from_u64(seed);
            policy.observe_round(&ctx, &mut rng);
            let out = policy.dispatch_batch(&ctx, batch, &mut rng);
            assert_eq!(
                out.len(),
                batch,
                "case {case}: policy {} arity",
                factory.name()
            );
            assert!(
                out.iter().all(|s| s.index() < queues.len()),
                "case {case}: policy {} produced an out-of-range destination",
                factory.name()
            );
        }
    }
}

#[test]
fn policies_are_deterministic_given_the_rng() {
    let mut case_rng = StdRng::seed_from_u64(0xDE7E2);
    for case in 0..CASES {
        let (queues, rates, dispatchers, batch, seed) = random_case(&mut case_rng);
        let spec = ClusterSpec::from_rates(rates.clone()).unwrap();
        let ctx = DispatchContext::new(&queues, &rates, dispatchers, 0);
        for name in standard_policy_names() {
            let run = |seed: u64| {
                let factory = factory_by_name(name).unwrap();
                let mut policy = factory.build(DispatcherId::new(0), &spec);
                let mut rng = StdRng::seed_from_u64(seed);
                policy.observe_round(&ctx, &mut rng);
                policy.dispatch_batch(&ctx, batch, &mut rng)
            };
            assert_eq!(
                run(seed),
                run(seed),
                "case {case}: policy {name} is not deterministic"
            );
        }
    }
}

/// The allocation-free entry point must consume the RNG identically to the
/// allocating one and append exactly the same destinations. This is the
/// contract the engine's hot path relies on.
#[test]
fn dispatch_into_matches_dispatch_batch_for_every_policy() {
    let mut case_rng = StdRng::seed_from_u64(0x1A70);
    for case in 0..CASES {
        let (queues, rates, dispatchers, batch, seed) = random_case(&mut case_rng);
        let spec = ClusterSpec::from_rates(rates.clone()).unwrap();
        let ctx = DispatchContext::new(&queues, &rates, dispatchers, 0);
        for name in standard_policy_names() {
            let factory = factory_by_name(name).unwrap();

            let mut batch_policy = factory.build(DispatcherId::new(0), &spec);
            let mut batch_rng = StdRng::seed_from_u64(seed);
            batch_policy.observe_round(&ctx, &mut batch_rng);
            let allocated = batch_policy.dispatch_batch(&ctx, batch, &mut batch_rng);

            let mut into_policy = factory.build(DispatcherId::new(0), &spec);
            let mut into_rng = StdRng::seed_from_u64(seed);
            into_policy.observe_round(&ctx, &mut into_rng);
            let mut reused: Vec<ServerId> = Vec::new();
            // Pre-poison the buffer to verify policies append to a cleared
            // buffer the way the engine does.
            reused.push(ServerId::new(usize::MAX));
            reused.clear();
            into_policy.dispatch_into(&ctx, batch, &mut reused, &mut into_rng);

            assert_eq!(
                allocated, reused,
                "case {case}: policy {name}: dispatch_into diverges from dispatch_batch"
            );
            // The two paths must also leave the RNG in the same state, or
            // subsequent rounds would diverge between engine versions.
            assert_eq!(
                batch_rng.gen::<u64>(),
                into_rng.gen::<u64>(),
                "case {case}: policy {name}: RNG consumption differs between entry points"
            );
        }
    }
}

/// Repeated rounds through `dispatch_into` with a reused buffer must match a
/// fresh policy driven through `dispatch_batch` — i.e. buffer reuse must not
/// leak state across rounds.
#[test]
fn dispatch_into_buffer_reuse_is_stateless_across_rounds() {
    let mut case_rng = StdRng::seed_from_u64(0x2B31);
    for _ in 0..8 {
        let (queues, rates, dispatchers, _, seed) = random_case(&mut case_rng);
        let spec = ClusterSpec::from_rates(rates.clone()).unwrap();
        for name in standard_policy_names() {
            let factory = factory_by_name(name).unwrap();
            let mut a = factory.build(DispatcherId::new(0), &spec);
            let mut b = factory.build(DispatcherId::new(0), &spec);
            let mut rng_a = StdRng::seed_from_u64(seed);
            let mut rng_b = StdRng::seed_from_u64(seed);
            let mut buffer = Vec::new();
            for round in 0..5u64 {
                let ctx = DispatchContext::new(&queues, &rates, dispatchers, round);
                let batch = (round as usize * 3 + 1) % 7;
                a.observe_round(&ctx, &mut rng_a);
                b.observe_round(&ctx, &mut rng_b);
                let allocated = a.dispatch_batch(&ctx, batch, &mut rng_a);
                buffer.clear();
                b.dispatch_into(&ctx, batch, &mut buffer, &mut rng_b);
                assert_eq!(allocated, buffer, "policy {name} round {round}");
            }
        }
    }
}

#[test]
fn policies_survive_edge_case_contexts() {
    // Single-server cluster, fully idle cluster and heavily saturated cluster.
    let cases: Vec<(Vec<u64>, Vec<f64>)> = vec![
        (vec![0], vec![3.0]),
        (vec![0, 0, 0, 0], vec![1.0, 2.0, 4.0, 8.0]),
        (vec![10_000, 9_999, 10_001], vec![0.5, 100.0, 1.0]),
    ];
    for (queues, rates) in cases {
        let spec = ClusterSpec::from_rates(rates.clone()).unwrap();
        let ctx = DispatchContext::new(&queues, &rates, 7, 3);
        for factory in all_standard_factories() {
            let mut policy = factory.build(DispatcherId::new(2), &spec);
            let mut rng = StdRng::seed_from_u64(1);
            policy.observe_round(&ctx, &mut rng);
            for batch in [0usize, 1, 17] {
                let out = policy.dispatch_batch(&ctx, batch, &mut rng);
                assert_eq!(out.len(), batch, "policy {}", factory.name());
                assert!(out.iter().all(|s| s.index() < queues.len()));
            }
        }
    }
}

#[test]
fn stateful_policies_keep_independent_state_per_instance() {
    let spec = ClusterSpec::from_rates(vec![1.0, 1.0, 1.0]).unwrap();
    let queues = vec![0u64, 0, 0];
    let ctx = DispatchContext::new(&queues, spec.rates(), 2, 0);
    for name in ["LSQ", "hLSQ", "LED", "hLED"] {
        let factory = factory_by_name(name).unwrap();
        let mut a = factory.build(DispatcherId::new(0), &spec);
        let b = factory.build(DispatcherId::new(1), &spec);
        let mut rng = StdRng::seed_from_u64(2);
        // Mutating one instance must not be observable through the other
        // (they are distinct boxed objects; this is a smoke check that the
        // factory does not hand out shared state).
        let _ = a.dispatch_batch(&ctx, 5, &mut rng);
        drop(b);
    }
}
