//! Contract tests: every registered policy must behave like a well-formed
//! dispatcher for arbitrary cluster states — correct arity, in-range
//! destinations, determinism under a fixed RNG, and tolerance of edge-case
//! contexts (idle cluster, saturated cluster, single server).

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use scd_model::{ClusterSpec, DispatchContext, DispatcherId, PolicyFactory};
use scd_policies::{all_standard_factories, factory_by_name, standard_policy_names};

fn context_strategy() -> impl Strategy<Value = (Vec<u64>, Vec<f64>, usize, usize)> {
    (1usize..30).prop_flat_map(|n| {
        (
            prop::collection::vec(0u64..100, n),
            prop::collection::vec(0.5f64..50.0, n),
            1usize..16,
            0usize..40,
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn every_policy_returns_valid_assignments(
        (queues, rates, dispatchers, batch) in context_strategy(),
        seed in 0u64..u64::MAX,
    ) {
        let spec = ClusterSpec::from_rates(rates.clone()).unwrap();
        let ctx = DispatchContext::new(&queues, &rates, dispatchers, 0);
        for factory in all_standard_factories() {
            let mut policy = factory.build(DispatcherId::new(0), &spec);
            let mut rng = StdRng::seed_from_u64(seed);
            policy.observe_round(&ctx, &mut rng);
            let out = policy.dispatch_batch(&ctx, batch, &mut rng);
            prop_assert_eq!(out.len(), batch, "policy {} arity", factory.name());
            prop_assert!(
                out.iter().all(|s| s.index() < queues.len()),
                "policy {} produced an out-of-range destination",
                factory.name()
            );
        }
    }

    #[test]
    fn policies_are_deterministic_given_the_rng(
        (queues, rates, dispatchers, batch) in context_strategy(),
        seed in 0u64..u64::MAX,
    ) {
        let spec = ClusterSpec::from_rates(rates.clone()).unwrap();
        let ctx = DispatchContext::new(&queues, &rates, dispatchers, 0);
        for name in standard_policy_names() {
            let run = |seed: u64| {
                let factory = factory_by_name(name).unwrap();
                let mut policy = factory.build(DispatcherId::new(0), &spec);
                let mut rng = StdRng::seed_from_u64(seed);
                policy.observe_round(&ctx, &mut rng);
                policy.dispatch_batch(&ctx, batch, &mut rng)
            };
            prop_assert_eq!(run(seed), run(seed), "policy {} is not deterministic", name);
        }
    }
}

#[test]
fn policies_survive_edge_case_contexts() {
    // Single-server cluster, fully idle cluster and heavily saturated cluster.
    let cases: Vec<(Vec<u64>, Vec<f64>)> = vec![
        (vec![0], vec![3.0]),
        (vec![0, 0, 0, 0], vec![1.0, 2.0, 4.0, 8.0]),
        (vec![10_000, 9_999, 10_001], vec![0.5, 100.0, 1.0]),
    ];
    for (queues, rates) in cases {
        let spec = ClusterSpec::from_rates(rates.clone()).unwrap();
        let ctx = DispatchContext::new(&queues, &rates, 7, 3);
        for factory in all_standard_factories() {
            let mut policy = factory.build(DispatcherId::new(2), &spec);
            let mut rng = StdRng::seed_from_u64(1);
            policy.observe_round(&ctx, &mut rng);
            for batch in [0usize, 1, 17] {
                let out = policy.dispatch_batch(&ctx, batch, &mut rng);
                assert_eq!(out.len(), batch, "policy {}", factory.name());
                assert!(out.iter().all(|s| s.index() < queues.len()));
            }
        }
    }
}

#[test]
fn stateful_policies_keep_independent_state_per_instance() {
    let spec = ClusterSpec::from_rates(vec![1.0, 1.0, 1.0]).unwrap();
    let queues = vec![0u64, 0, 0];
    let ctx = DispatchContext::new(&queues, spec.rates(), 2, 0);
    for name in ["LSQ", "hLSQ", "LED", "hLED"] {
        let factory = factory_by_name(name).unwrap();
        let mut a = factory.build(DispatcherId::new(0), &spec);
        let b = factory.build(DispatcherId::new(1), &spec);
        let mut rng = StdRng::seed_from_u64(2);
        // Mutating one instance must not be observable through the other
        // (they are distinct boxed objects; this is a smoke check that the
        // factory does not hand out shared state).
        let _ = a.dispatch_batch(&ctx, 5, &mut rng);
        drop(b);
    }
}
