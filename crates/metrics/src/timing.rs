//! Count-bucketed timing histogram for decision-time measurement.
//!
//! The decision-time experiments (Figures 5 and 8) time every dispatching
//! decision of a live simulation. Recording those wall-clock samples into a
//! growable [`SampleSet`](crate::SampleSet) made the *measured* engine
//! configuration allocate on the hot path — exactly the overhead the
//! measurement is supposed to observe, not introduce. A
//! [`DecisionTimeHistogram`] replaces the raw-sample recorder with a
//! fixed-size log-scale bucket array: recording is a subtraction, a couple of
//! shifts and two adds — `O(1)`, allocation-free, and independent of how many
//! samples arrive.
//!
//! # Bucket layout
//!
//! Values are microseconds. Each power of two between `2⁻¹⁰ µs` (≈ 1 ns) and
//! `2²³ µs` (≈ 8.4 s) is split into 8 geometric sub-buckets (3 mantissa
//! bits), giving ≤ ~9 % relative quantization error per bucket — far below
//! the run-to-run noise of wall-clock timing. Out-of-range values land in
//! dedicated underflow/overflow buckets. The exact minimum, maximum, sum and
//! count are tracked on the side, so `mean()`, `min()` and `max()` are exact;
//! only interior percentiles are quantized to bucket representatives.

use serde::{Deserialize, Serialize};

/// Mantissa bits per bucket: 2³ = 8 sub-buckets per octave.
const SUB_BITS: u32 = 3;
/// Smallest bucketed exponent: values below `2^MIN_EXP` µs underflow.
const MIN_EXP: i32 = -10;
/// Largest bucketed exponent: values at or above `2^MAX_EXP` µs overflow.
const MAX_EXP: i32 = 23;
/// Interior buckets (octaves × sub-buckets).
const INTERIOR: usize = ((MAX_EXP - MIN_EXP) as usize) << SUB_BITS;
/// Total buckets: underflow + interior + overflow.
const BUCKETS: usize = INTERIOR + 2;

/// Fixed-size log-bucketed histogram of non-negative `f64` timings
/// (microseconds).
///
/// # Example
/// ```
/// use scd_metrics::DecisionTimeHistogram;
/// let mut h = DecisionTimeHistogram::new();
/// for t in [1.0, 2.0, 4.0, 100.0] {
///     h.record(t);
/// }
/// assert_eq!(h.len(), 4);
/// assert!((h.mean() - 26.75).abs() < 1e-12);
/// assert_eq!(h.max(), 100.0);
/// // Percentiles are quantized to <= ~9% by the bucket width.
/// assert!((h.percentile(0.5) - 2.0).abs() / 2.0 < 0.1);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DecisionTimeHistogram {
    /// Bucket occupancy: `[underflow, interior..., overflow]`.
    counts: Vec<u64>,
    /// Total number of recorded samples.
    count: u64,
    /// Exact sum of all samples (for the exact mean).
    sum: f64,
    /// Exact minimum sample (`+∞` while empty).
    min: f64,
    /// Exact maximum sample (`-∞` while empty).
    max: f64,
}

impl Default for DecisionTimeHistogram {
    fn default() -> Self {
        DecisionTimeHistogram::new()
    }
}

impl DecisionTimeHistogram {
    /// Creates an empty histogram (one fixed allocation, ~2 KiB).
    pub fn new() -> Self {
        DecisionTimeHistogram {
            counts: vec![0; BUCKETS],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// The bucket index of a non-negative sample.
    #[inline]
    fn bucket_of(sample: f64) -> usize {
        if sample < (2.0f64).powi(MIN_EXP) {
            return 0;
        }
        if sample >= (2.0f64).powi(MAX_EXP) {
            return BUCKETS - 1;
        }
        let bits = sample.to_bits();
        let exp = ((bits >> 52) & 0x7FF) as i32 - 1023;
        let sub = ((bits >> (52 - SUB_BITS)) & ((1 << SUB_BITS) - 1)) as usize;
        1 + ((((exp - MIN_EXP) as usize) << SUB_BITS) | sub)
    }

    /// The representative value (geometric bucket midpoint) of a bucket.
    fn representative(bucket: usize) -> f64 {
        if bucket == 0 {
            return 0.0;
        }
        if bucket == BUCKETS - 1 {
            return (2.0f64).powi(MAX_EXP);
        }
        let interior = bucket - 1;
        let exp = MIN_EXP + (interior >> SUB_BITS) as i32;
        let sub = (interior & ((1 << SUB_BITS) - 1)) as f64;
        (2.0f64).powi(exp) * (1.0 + (sub + 0.5) / (1 << SUB_BITS) as f64)
    }

    /// Records one timing sample, `O(1)` and allocation-free.
    ///
    /// # Panics
    /// Panics on NaN or negative samples — both indicate a harness bug.
    pub fn record(&mut self, sample: f64) {
        assert!(
            sample >= 0.0,
            "timing samples must be non-negative, got {sample}"
        );
        self.counts[Self::bucket_of(sample)] += 1;
        self.count += 1;
        self.sum += sample;
        self.min = self.min.min(sample);
        self.max = self.max.max(sample);
    }

    /// Number of recorded samples.
    pub fn len(&self) -> usize {
        self.count as usize
    }

    /// True when no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Exact mean of the samples; 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Exact minimum sample; 0.0 when empty.
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Exact maximum sample; 0.0 when empty.
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// The `p`-quantile (`p ∈ [0, 1]`, nearest-rank), quantized to the
    /// containing bucket's representative and clamped to the exact observed
    /// `[min, max]` range; the extremes `p = 0` and `p = 1` return the exact
    /// minimum/maximum. Returns 0.0 for an empty histogram.
    ///
    /// # Panics
    /// Panics if `p` is outside `[0, 1]`.
    pub fn percentile(&self, p: f64) -> f64 {
        assert!((0.0..=1.0).contains(&p), "percentile {p} must be in [0, 1]");
        if self.count == 0 {
            return 0.0;
        }
        if p == 0.0 {
            return self.min;
        }
        if p == 1.0 {
            return self.max;
        }
        let rank = ((p * self.count as f64).ceil().max(1.0)) as u64;
        let mut seen = 0u64;
        for (bucket, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::representative(bucket).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Extracts `points` evenly spaced CDF points `(value, P[X ≤ value])` —
    /// the series plotted in Figures 5 and 8. Empty when no samples were
    /// recorded.
    pub fn cdf(&self, points: usize) -> Vec<(f64, f64)> {
        if self.count == 0 || points == 0 {
            return Vec::new();
        }
        (1..=points)
            .map(|i| {
                let q = i as f64 / points as f64;
                (self.percentile(q), q)
            })
            .collect()
    }

    /// The fixed-size bucket occupancy (`[underflow, interior...,
    /// overflow]`), exposed for wire codecs.
    pub fn bucket_counts(&self) -> &[u64] {
        &self.counts
    }

    /// The exact side-band accumulators `(count, sum, min, max)`, exposed
    /// for wire codecs. `min`/`max` are the raw sentinel values (`+∞`/`-∞`
    /// while empty), not the 0.0 the public `min()`/`max()` report for an
    /// empty histogram — a codec must transport them verbatim to reassemble
    /// the histogram bit for bit.
    pub fn raw_parts(&self) -> (u64, f64, f64, f64) {
        (self.count, self.sum, self.min, self.max)
    }

    /// Reassembles a histogram from the raw parts a wire codec transports.
    /// The inverse of [`Self::bucket_counts`] + [`Self::raw_parts`]:
    /// `from_raw_parts(h.bucket_counts().to_vec(), h.raw_parts()) == h` bit
    /// for bit, empty-histogram sentinels and saturated counters included.
    ///
    /// # Errors
    /// Returns a message when the counts vector does not have exactly the
    /// fixed bucket layout length — the layout is a compile-time constant,
    /// so any other length is a corrupt or incompatible frame.
    pub fn from_raw_parts(
        counts: Vec<u64>,
        (count, sum, min, max): (u64, f64, f64, f64),
    ) -> Result<Self, String> {
        if counts.len() != BUCKETS {
            return Err(format!(
                "decision-time histogram has {} buckets, expected the fixed layout of {BUCKETS}",
                counts.len()
            ));
        }
        Ok(DecisionTimeHistogram {
            counts,
            count,
            sum,
            min,
            max,
        })
    }

    /// Merges another histogram into this one.
    ///
    /// Bucket and sample counts saturate at `u64::MAX` instead of wrapping:
    /// the `--replications` tail sweeps merge one histogram per replication,
    /// and a wrapped counter would silently corrupt every percentile of the
    /// merged tail, whereas a saturated one only pins the (astronomically
    /// unreachable) top of the range.
    pub fn merge(&mut self, other: &DecisionTimeHistogram) {
        crate::counts::merge_saturating_counts(&mut self.counts, &other.counts);
        self.count = self.count.saturating_add(other.count);
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_is_harmless() {
        let h = DecisionTimeHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.len(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), 0.0);
        assert_eq!(h.max(), 0.0);
        assert_eq!(h.percentile(0.5), 0.0);
        assert!(h.cdf(10).is_empty());
    }

    #[test]
    fn mean_min_max_are_exact() {
        let mut h = DecisionTimeHistogram::new();
        for t in [0.37, 12.25, 3.5, 1000.125] {
            h.record(t);
        }
        assert_eq!(h.len(), 4);
        assert!((h.mean() - (0.37 + 12.25 + 3.5 + 1000.125) / 4.0).abs() < 1e-12);
        assert_eq!(h.min(), 0.37);
        assert_eq!(h.max(), 1000.125);
    }

    #[test]
    fn percentiles_stay_within_bucket_resolution() {
        let mut h = DecisionTimeHistogram::new();
        // 1..=1000 µs uniformly.
        for i in 1..=1000 {
            h.record(i as f64);
        }
        for (p, exact) in [(0.1, 100.0), (0.5, 500.0), (0.9, 900.0), (0.99, 990.0)] {
            let got = h.percentile(p);
            let rel = (got - exact).abs() / exact;
            assert!(rel < 0.10, "p{p}: got {got}, exact {exact} (rel {rel})");
        }
        assert_eq!(h.percentile(0.0), 1.0);
        assert_eq!(h.percentile(1.0), 1000.0);
    }

    #[test]
    fn out_of_range_samples_land_in_sentinel_buckets() {
        let mut h = DecisionTimeHistogram::new();
        h.record(0.0); // underflow bucket
        h.record(1e12); // overflow bucket (≫ 2^23 µs)
        assert_eq!(h.len(), 2);
        assert_eq!(h.min(), 0.0);
        assert_eq!(h.max(), 1e12);
        // Percentiles clamp to the exact observed range.
        assert_eq!(h.percentile(0.0), 0.0);
        assert_eq!(h.percentile(1.0), 1e12);
    }

    #[test]
    fn cdf_points_are_monotone_and_cover_the_range() {
        let mut h = DecisionTimeHistogram::new();
        for i in 1..=200 {
            h.record(i as f64 * 0.5);
        }
        let cdf = h.cdf(20);
        assert_eq!(cdf.len(), 20);
        for w in cdf.windows(2) {
            assert!(w[1].0 >= w[0].0);
            assert!(w[1].1 > w[0].1);
        }
        assert_eq!(cdf.last().unwrap().0, 100.0);
    }

    #[test]
    fn merge_accumulates_counts_and_extremes() {
        let mut a = DecisionTimeHistogram::new();
        let mut b = DecisionTimeHistogram::new();
        a.record(1.0);
        a.record(2.0);
        b.record(50.0);
        a.merge(&b);
        assert_eq!(a.len(), 3);
        assert_eq!(a.max(), 50.0);
        assert!((a.mean() - 53.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn merge_saturates_instead_of_wrapping_on_count_overflow() {
        let mut a = DecisionTimeHistogram::new();
        let mut b = DecisionTimeHistogram::new();
        a.record(2.0);
        b.record(2.0);
        b.record(4.0);
        // Forge near-overflow counters (fields are module-visible): one more
        // merge used to wrap them back to ~0 and corrupt every percentile.
        let bucket = DecisionTimeHistogram::bucket_of(2.0);
        a.counts[bucket] = u64::MAX - 1;
        a.count = u64::MAX - 1;
        a.merge(&b);
        assert_eq!(a.counts[bucket], u64::MAX, "bucket count must saturate");
        assert_eq!(a.count, u64::MAX, "sample count must saturate");
        // The histogram stays ordered and usable after saturation: the
        // median lands in the (bucket-quantized) 2 µs bucket, not near zero
        // as it would after a wrap.
        let p50 = a.percentile(0.5);
        assert!(
            (p50 - 2.0).abs() / 2.0 < 0.1,
            "median {p50} should be ~2 µs"
        );
        assert_eq!(a.max(), 4.0);
    }

    #[test]
    fn raw_parts_round_trip_bit_for_bit() {
        let mut h = DecisionTimeHistogram::new();
        for t in [0.0, 0.37, 12.25, 1e12] {
            h.record(t);
        }
        let copy = DecisionTimeHistogram::from_raw_parts(h.bucket_counts().to_vec(), h.raw_parts())
            .unwrap();
        assert_eq!(copy, h);
        // The empty histogram round-trips, infinite min/max sentinels and
        // all — from_raw_parts must not normalize them to 0.0.
        let empty = DecisionTimeHistogram::new();
        let (count, sum, min, max) = empty.raw_parts();
        assert_eq!(count, 0);
        assert_eq!(sum, 0.0);
        assert_eq!(min, f64::INFINITY);
        assert_eq!(max, f64::NEG_INFINITY);
        assert_eq!(
            DecisionTimeHistogram::from_raw_parts(
                empty.bucket_counts().to_vec(),
                empty.raw_parts()
            )
            .unwrap(),
            empty
        );
        // Any other bucket count is an incompatible layout.
        assert!(DecisionTimeHistogram::from_raw_parts(vec![0; 7], (0, 0.0, 0.0, 0.0)).is_err());
    }

    #[test]
    fn equal_recordings_compare_equal() {
        let mut a = DecisionTimeHistogram::new();
        let mut b = DecisionTimeHistogram::new();
        for t in [3.0, 7.0, 9.5] {
            a.record(t);
            b.record(t);
        }
        assert_eq!(a, b);
        b.record(1.0);
        assert_ne!(a, b);
        assert_eq!(DecisionTimeHistogram::new(), DecisionTimeHistogram::new());
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_samples_are_rejected() {
        DecisionTimeHistogram::new().record(-1.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn nan_samples_are_rejected() {
        // NaN fails the >= 0.0 comparison, same assertion.
        DecisionTimeHistogram::new().record(f64::NAN);
    }
}
