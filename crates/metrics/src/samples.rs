//! Raw-sample collections with percentile and CDF extraction.
//!
//! Used for continuous-valued measurements — chiefly the per-decision
//! computation times of Figures 5 and 8, where the paper reports the full
//! CDF of microsecond-scale latencies.

use serde::{Deserialize, Serialize};

/// A growable set of `f64` samples supporting exact percentiles and CDF
/// extraction.
///
/// Samples are kept unsorted while recording (O(1) push) and sorted lazily on
/// first query; subsequent pushes invalidate the cached order.
///
/// # Example
/// ```
/// use scd_metrics::SampleSet;
/// let mut s = SampleSet::new();
/// for x in [5.0, 1.0, 3.0, 2.0, 4.0] {
///     s.push(x);
/// }
/// assert_eq!(s.len(), 5);
/// assert_eq!(s.percentile(0.5), 3.0);
/// assert_eq!(s.percentile(1.0), 5.0);
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SampleSet {
    samples: Vec<f64>,
    #[serde(skip)]
    sorted: bool,
}

/// Two sample sets are equal when they hold the same multiset of samples.
///
/// Order is deliberately ignored: percentile queries sort the backing vector
/// lazily in place, so two sets built from identical recordings can hold the
/// same values in different orders depending on which of them has been
/// queried. Comparing as multisets keeps equality stable across queries
/// (this is what the parallel-runner "bit-identical reports" guarantees are
/// asserted with).
impl PartialEq for SampleSet {
    fn eq(&self, other: &Self) -> bool {
        if self.samples.len() != other.samples.len() {
            return false;
        }
        if self.samples == other.samples {
            return true;
        }
        let mut a = self.samples.clone();
        let mut b = other.samples.clone();
        a.sort_unstable_by(f64::total_cmp);
        b.sort_unstable_by(f64::total_cmp);
        a == b
    }
}

impl SampleSet {
    /// Creates an empty sample set.
    pub fn new() -> Self {
        SampleSet {
            samples: Vec::new(),
            sorted: true,
        }
    }

    /// Creates an empty sample set with pre-allocated capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        SampleSet {
            samples: Vec::with_capacity(capacity),
            sorted: true,
        }
    }

    /// Records one sample.
    ///
    /// # Panics
    /// Panics if the sample is NaN — a NaN measurement indicates a harness
    /// bug and would poison every subsequent percentile query.
    pub fn push(&mut self, sample: f64) {
        assert!(!sample.is_nan(), "samples must not be NaN");
        self.samples.push(sample);
        self.sorted = false;
    }

    /// Records every sample from an iterator.
    pub fn extend<I: IntoIterator<Item = f64>>(&mut self, values: I) {
        for v in values {
            self.push(v);
        }
    }

    /// Number of recorded samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Mean of the samples; 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.samples.iter().sum::<f64>() / self.samples.len() as f64
        }
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.samples
                .sort_by(|a, b| a.partial_cmp(b).expect("no NaN samples"));
            self.sorted = true;
        }
    }

    /// The `p`-quantile (`p ∈ [0, 1]`), "nearest rank" convention.
    ///
    /// Returns 0.0 for an empty set.
    ///
    /// # Panics
    /// Panics if `p` is outside `[0, 1]`.
    pub fn percentile(&mut self, p: f64) -> f64 {
        assert!((0.0..=1.0).contains(&p), "percentile {p} must be in [0, 1]");
        if self.samples.is_empty() {
            return 0.0;
        }
        self.ensure_sorted();
        let rank = ((p * self.samples.len() as f64).ceil().max(1.0) as usize) - 1;
        self.samples[rank.min(self.samples.len() - 1)]
    }

    /// Minimum sample; 0.0 when empty.
    pub fn min(&mut self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.ensure_sorted();
        self.samples[0]
    }

    /// Maximum sample; 0.0 when empty.
    pub fn max(&mut self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.ensure_sorted();
        *self.samples.last().expect("non-empty")
    }

    /// Extracts `points` evenly spaced CDF points `(value, P[X ≤ value])`.
    ///
    /// This is the series plotted in Figures 5 and 8 (computation-time CDFs).
    /// Returns an empty vector when no samples were recorded.
    pub fn cdf(&mut self, points: usize) -> Vec<(f64, f64)> {
        if self.samples.is_empty() || points == 0 {
            return Vec::new();
        }
        self.ensure_sorted();
        let n = self.samples.len();
        (1..=points)
            .map(|i| {
                let q = i as f64 / points as f64;
                let rank = ((q * n as f64).ceil().max(1.0) as usize) - 1;
                (self.samples[rank.min(n - 1)], q)
            })
            .collect()
    }

    /// The empirical CDF evaluated at `x`: fraction of samples `≤ x`.
    pub fn cdf_at(&mut self, x: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.ensure_sorted();
        let count = self.samples.partition_point(|&s| s <= x);
        count as f64 / self.samples.len() as f64
    }

    /// Merges another sample set into this one.
    pub fn merge(&mut self, other: &SampleSet) {
        self.samples.extend_from_slice(&other.samples);
        self.sorted = false;
    }

    /// Read-only access to the raw samples (in unspecified order).
    pub fn as_slice(&self) -> &[f64] {
        &self.samples
    }
}

impl FromIterator<f64> for SampleSet {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = SampleSet::new();
        s.extend(iter);
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_set_is_harmless() {
        let mut s = SampleSet::new();
        assert!(s.is_empty());
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.percentile(0.5), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
        assert!(s.cdf(10).is_empty());
        assert_eq!(s.cdf_at(1.0), 0.0);
    }

    #[test]
    fn percentiles_follow_nearest_rank() {
        let mut s: SampleSet = [15.0, 20.0, 35.0, 40.0, 50.0].into_iter().collect();
        assert_eq!(s.percentile(0.05), 15.0);
        assert_eq!(s.percentile(0.30), 20.0);
        assert_eq!(s.percentile(0.40), 20.0);
        assert_eq!(s.percentile(0.50), 35.0);
        assert_eq!(s.percentile(1.00), 50.0);
        assert_eq!(s.min(), 15.0);
        assert_eq!(s.max(), 50.0);
    }

    #[test]
    fn pushes_after_queries_are_reflected() {
        let mut s = SampleSet::new();
        s.push(10.0);
        assert_eq!(s.percentile(1.0), 10.0);
        s.push(100.0);
        assert_eq!(s.percentile(1.0), 100.0);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn cdf_points_are_monotone() {
        let mut s: SampleSet = (1..=100).map(|i| i as f64).collect();
        let cdf = s.cdf(10);
        assert_eq!(cdf.len(), 10);
        for w in cdf.windows(2) {
            assert!(w[1].0 >= w[0].0);
            assert!(w[1].1 >= w[0].1);
        }
        assert_eq!(cdf.last().unwrap().0, 100.0);
        assert!((cdf.last().unwrap().1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cdf_at_counts_inclusive() {
        let mut s: SampleSet = [1.0, 2.0, 2.0, 3.0].into_iter().collect();
        assert_eq!(s.cdf_at(0.5), 0.0);
        assert_eq!(s.cdf_at(2.0), 0.75);
        assert_eq!(s.cdf_at(10.0), 1.0);
    }

    #[test]
    fn merge_concatenates_samples() {
        let mut a: SampleSet = [1.0, 5.0].into_iter().collect();
        let b: SampleSet = [3.0].into_iter().collect();
        a.merge(&b);
        assert_eq!(a.len(), 3);
        assert_eq!(a.percentile(0.5), 3.0);
        assert!((a.mean() - 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "must not be NaN")]
    fn nan_samples_are_rejected() {
        SampleSet::new().push(f64::NAN);
    }

    #[test]
    fn equality_survives_lazy_sorting() {
        // Percentile queries reorder the backing vector in place; equality
        // must not depend on which side has been queried.
        let mut a: SampleSet = [5.0, 1.0, 3.0].into_iter().collect();
        let b: SampleSet = [5.0, 1.0, 3.0].into_iter().collect();
        assert_eq!(a, b);
        let _ = a.percentile(0.5);
        assert_eq!(a, b, "querying one side must not break equality");
        let c: SampleSet = [5.0, 1.0].into_iter().collect();
        assert_ne!(a, c);
        let d: SampleSet = [5.0, 1.0, 4.0].into_iter().collect();
        assert_ne!(a, d);
    }
}
