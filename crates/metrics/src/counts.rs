//! Shared helpers for dense `u64` count vectors.
//!
//! Every mergeable count structure in this crate (the response-time
//! histogram's dense value buckets, the decision-time histogram's fixed
//! log-scale buckets, the queue-occupancy histogram) follows the same merge
//! convention: grow to the longer support, then add bucket-by-bucket with
//! saturation instead of wrapping — a saturated counter pins the top of the
//! range, a wrapped one silently corrupts every derived percentile. The
//! convention lives here once instead of being re-implemented per type.

/// Adds `src` into `dst` element-wise with saturating arithmetic, growing
/// `dst` (zero-filled) when `src` has the longer support.
///
/// Equal-length inputs (fixed layouts like
/// [`DecisionTimeHistogram`](crate::DecisionTimeHistogram)) never
/// reallocate; ragged inputs (growable supports like
/// [`ResponseTimeHistogram`](crate::ResponseTimeHistogram) or the
/// queue-occupancy counts) extend to cover both.
pub fn merge_saturating_counts(dst: &mut Vec<u64>, src: &[u64]) {
    if src.len() > dst.len() {
        dst.resize(src.len(), 0);
    }
    for (mine, &theirs) in dst.iter_mut().zip(src) {
        *mine = mine.saturating_add(theirs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merges_equal_length_in_place() {
        let mut dst = vec![1, 2, 3];
        merge_saturating_counts(&mut dst, &[10, 20, 30]);
        assert_eq!(dst, vec![11, 22, 33]);
    }

    #[test]
    fn grows_to_the_longer_support() {
        let mut dst = vec![5];
        merge_saturating_counts(&mut dst, &[1, 2, 3]);
        assert_eq!(dst, vec![6, 2, 3]);
        // A shorter source leaves the tail untouched.
        merge_saturating_counts(&mut dst, &[1]);
        assert_eq!(dst, vec![7, 2, 3]);
    }

    #[test]
    fn saturates_instead_of_wrapping() {
        let mut dst = vec![u64::MAX - 1, 0];
        merge_saturating_counts(&mut dst, &[5, u64::MAX]);
        assert_eq!(dst, vec![u64::MAX, u64::MAX]);
    }

    #[test]
    fn empty_inputs_are_no_ops() {
        let mut dst: Vec<u64> = Vec::new();
        merge_saturating_counts(&mut dst, &[]);
        assert!(dst.is_empty());
        merge_saturating_counts(&mut dst, &[4]);
        assert_eq!(dst, vec![4]);
    }
}
