//! Online (single-pass) statistics using Welford's algorithm.

use serde::{Deserialize, Serialize};

/// Numerically stable streaming mean / variance / extrema accumulator.
///
/// Used for quantities we do not want to store in full (per-round total queue
/// lengths over 10⁵ rounds, per-server backlog, ...).
///
/// # Example
/// ```
/// use scd_metrics::StreamingStats;
/// let mut s = StreamingStats::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     s.push(x);
/// }
/// assert_eq!(s.count(), 8);
/// assert!((s.mean() - 5.0).abs() < 1e-12);
/// assert!((s.population_variance() - 4.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct StreamingStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
    sum: f64,
}

impl StreamingStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        StreamingStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            sum: 0.0,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        self.sum += x;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        let delta2 = x - self.mean;
        self.m2 += delta * delta2;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Adds every observation from an iterator.
    pub fn extend<I: IntoIterator<Item = f64>>(&mut self, values: I) {
        for v in values {
            self.push(v);
        }
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True when no observation has been pushed.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Arithmetic mean; 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Population variance (dividing by `n`); 0.0 when empty.
    pub fn population_variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Sample variance (dividing by `n - 1`); 0.0 with fewer than two samples.
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.population_variance().sqrt()
    }

    /// Smallest observation; `+∞` when empty.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation; `-∞` when empty.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merges another accumulator into this one (parallel Welford merge).
    pub fn merge(&mut self, other: &StreamingStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        let new_mean = self.mean + delta * other.count as f64 / total as f64;
        let new_m2 = self.m2
            + other.m2
            + delta * delta * self.count as f64 * other.count as f64 / total as f64;
        self.count = total;
        self.mean = new_mean;
        self.m2 = new_m2;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl FromIterator<f64> for StreamingStats {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = StreamingStats::new();
        s.extend(iter);
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats_are_neutral() {
        let s = StreamingStats::new();
        assert!(s.is_empty());
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.population_variance(), 0.0);
        assert_eq!(s.sample_variance(), 0.0);
        assert_eq!(s.sum(), 0.0);
    }

    #[test]
    fn matches_textbook_values() {
        let s: StreamingStats = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
            .into_iter()
            .collect();
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.population_variance() - 4.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
        assert!((s.sample_variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
        assert!((s.sum() - 40.0).abs() < 1e-12);
    }

    #[test]
    fn single_observation() {
        let mut s = StreamingStats::new();
        s.push(3.5);
        assert_eq!(s.count(), 1);
        assert_eq!(s.mean(), 3.5);
        assert_eq!(s.sample_variance(), 0.0);
        assert_eq!(s.population_variance(), 0.0);
        assert_eq!(s.min(), 3.5);
        assert_eq!(s.max(), 3.5);
    }

    #[test]
    fn merge_equals_single_pass() {
        let values: Vec<f64> = (0..1000).map(|i| (i as f64).sin() * 10.0 + 3.0).collect();
        let whole: StreamingStats = values.iter().copied().collect();
        let mut left: StreamingStats = values[..300].iter().copied().collect();
        let right: StreamingStats = values[300..].iter().copied().collect();
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert!((left.mean() - whole.mean()).abs() < 1e-9);
        assert!((left.population_variance() - whole.population_variance()).abs() < 1e-9);
        assert_eq!(left.min(), whole.min());
        assert_eq!(left.max(), whole.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a: StreamingStats = [1.0, 2.0].into_iter().collect();
        let before = a.clone();
        a.merge(&StreamingStats::new());
        assert_eq!(a, before);

        let mut empty = StreamingStats::new();
        empty.merge(&before);
        assert_eq!(empty.count(), 2);
        assert!((empty.mean() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn numerical_stability_with_large_offsets() {
        // Classic catastrophic-cancellation test: large mean, small variance.
        let offset = 1e9;
        let s: StreamingStats = (0..10_000).map(|i| offset + (i % 2) as f64).collect();
        assert!((s.mean() - (offset + 0.5)).abs() < 1e-3);
        assert!((s.population_variance() - 0.25).abs() < 1e-6);
    }
}
