//! Plain-text and CSV table rendering for the experiment harness.
//!
//! The paper's figures are line plots; the reproduction harness prints the
//! underlying series as aligned text tables (for eyeballing in a terminal)
//! and CSV (for re-plotting). This module keeps that logic out of the
//! experiment code.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A simple rectangular table of strings with a header row.
///
/// # Example
/// ```
/// use scd_metrics::Table;
/// let mut t = Table::new(vec!["rho".into(), "SCD".into(), "JSQ".into()]);
/// t.add_row(vec!["0.90".into(), "2.31".into(), "4.77".into()]);
/// let text = t.to_string();
/// assert!(text.contains("rho"));
/// assert!(t.to_csv().starts_with("rho,SCD,JSQ\n"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: Vec<String>) -> Self {
        Table {
            headers,
            rows: Vec::new(),
        }
    }

    /// Convenience constructor from string slices.
    pub fn with_headers(headers: &[&str]) -> Self {
        Table::new(headers.iter().map(|s| s.to_string()).collect())
    }

    /// Appends one row.
    ///
    /// # Panics
    /// Panics if the row width differs from the header width; a ragged table
    /// indicates a harness bug.
    pub fn add_row(&mut self, row: Vec<String>) {
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row has {} cells but the table has {} columns",
            row.len(),
            self.headers.len()
        );
        self.rows.push(row);
    }

    /// Appends one row of already-formatted numbers.
    pub fn add_numeric_row(&mut self, label: &str, values: &[f64], precision: usize) {
        let mut row = Vec::with_capacity(values.len() + 1);
        row.push(label.to_string());
        for v in values {
            row.push(format!("{v:.precision$}"));
        }
        self.add_row(row);
    }

    /// Number of data rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Number of columns.
    pub fn num_columns(&self) -> usize {
        self.headers.len()
    }

    /// The column headers.
    pub fn headers(&self) -> &[String] {
        &self.headers
    }

    /// The data rows.
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Renders the table as CSV (RFC-4180-style quoting for cells containing
    /// commas, quotes or newlines).
    pub fn to_csv(&self) -> String {
        fn escape(cell: &str) -> String {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        }
        let mut out = String::new();
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| escape(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Column widths: max of header and every cell.
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let render_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect::<Vec<_>>()
                .join("  ")
        };
        writeln!(f, "{}", render_row(&self.headers, &widths))?;
        let total_width: usize =
            widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1));
        writeln!(f, "{}", "-".repeat(total_width))?;
        for row in &self.rows {
            writeln!(f, "{}", render_row(row, &widths))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_and_renders_text() {
        let mut t = Table::with_headers(&["rho", "SCD", "SED"]);
        t.add_row(vec!["0.9".into(), "2.50".into(), "3.75".into()]);
        t.add_numeric_row("0.99", &[4.125, 9.5], 2);
        assert_eq!(t.num_rows(), 2);
        assert_eq!(t.num_columns(), 3);
        let text = t.to_string();
        assert!(text.contains("rho"));
        assert!(text.contains("4.13") || text.contains("4.12"));
        assert!(text.lines().count() >= 4);
    }

    #[test]
    fn csv_escapes_special_cells() {
        let mut t = Table::with_headers(&["name", "value"]);
        t.add_row(vec!["a,b".into(), "say \"hi\"".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"a,b\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
        assert!(csv.starts_with("name,value\n"));
    }

    #[test]
    #[should_panic(expected = "columns")]
    fn ragged_rows_panic() {
        let mut t = Table::with_headers(&["a", "b"]);
        t.add_row(vec!["only-one".into()]);
    }

    #[test]
    fn headers_and_rows_accessors() {
        let mut t = Table::with_headers(&["x"]);
        t.add_row(vec!["1".into()]);
        assert_eq!(t.headers(), &["x".to_string()]);
        assert_eq!(t.rows(), &[vec!["1".to_string()]]);
    }
}
