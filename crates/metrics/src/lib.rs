//! Metrics substrate for the SCD load-balancing reproduction.
//!
//! The paper's evaluation (Section 6) reports two families of quantities:
//!
//! * **Response-time statistics** — mean response time and the tail
//!   (CCDF / high percentiles) of the number of rounds a job spends in the
//!   system. [`ResponseTimeHistogram`] stores the full integer-valued
//!   distribution so both can be extracted exactly.
//! * **Execution run-time distributions** — the CDF of per-decision
//!   computation times (Figures 5 and 8). [`DecisionTimeHistogram`] records
//!   them into fixed log-scale count buckets (`O(1)`, allocation-free — safe
//!   to run on the timed hot path); [`SampleSet`] keeps raw `f64` samples for
//!   offline analyses where exact percentiles matter.
//!
//! Supporting types: [`StreamingStats`] (Welford online mean/variance used
//! for queue-length tracking), [`QueueLengthTracker`] (per-server time-average
//! queue statistics used by the stability tests) and [`Table`] (plain-text and
//! CSV rendering used by the experiment harness).
//!
//! # Example
//!
//! ```
//! use scd_metrics::ResponseTimeHistogram;
//! let mut hist = ResponseTimeHistogram::new();
//! for rt in [1u64, 1, 2, 3, 10] {
//!     hist.record(rt);
//! }
//! assert_eq!(hist.count(), 5);
//! assert!((hist.mean() - 3.4).abs() < 1e-12);
//! assert_eq!(hist.percentile(0.99), 10);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod counts;
pub mod histogram;
pub mod queue;
pub mod samples;
pub mod streaming;
pub mod table;
pub mod timing;

pub use counts::merge_saturating_counts;
pub use histogram::{HistogramSummary, ResponseTimeHistogram};
pub use queue::QueueLengthTracker;
pub use samples::SampleSet;
pub use streaming::StreamingStats;
pub use table::Table;
pub use timing::DecisionTimeHistogram;
