//! Exact integer-valued response-time histogram.
//!
//! Response times in the paper's model are measured in whole rounds (a job
//! arrives at a dispatcher in round `t0` and departs from its server at the
//! end of round `t1 ≥ t0`; its response time is `t1 - t0 + 1`). Because the
//! support is small integers, we can afford to store the *exact* distribution
//! as a dense vector of counts, which makes means, arbitrary percentiles and
//! CCDF extraction exact rather than approximate — important when the paper
//! compares policies at the 1e-4 .. 1e-6 tail probabilities.

use serde::{Deserialize, Serialize};

/// Exact histogram of integer response times (in rounds).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ResponseTimeHistogram {
    /// `counts[r]` = number of jobs whose response time was exactly `r` rounds.
    counts: Vec<u64>,
    /// Total number of recorded jobs.
    total: u64,
    /// Sum of all recorded response times (for the exact mean).
    sum: u128,
}

impl ResponseTimeHistogram {
    /// Largest individually tracked response time, in rounds. Anything at or
    /// above this value is clamped into the capped overflow bucket at index
    /// `MAX_RESPONSE_TIME` (and contributes the clamped value to the mean);
    /// [`Self::count_at`]`(MAX_RESPONSE_TIME)` exposes the clamped mass.
    ///
    /// The dense `counts` vector used to be resized to `response_time + 1`,
    /// so a single pathological censored response time (e.g. `u64::MAX` from
    /// an upstream arithmetic bug) would try to allocate gigabytes. The cap
    /// bounds the vector at ~8 MiB in the worst case (it still grows only
    /// to the largest value actually recorded). A completed job's response
    /// time is bounded by the run length, and paper-scale runs are `10⁵`
    /// rounds — an order of magnitude below the cap — so at those scales
    /// only corrupt values are clamped. Runs longer than the cap *can*
    /// censor legitimate extreme tails into the overflow bucket;
    /// [`Self::overflow_count`] exposes the clamped mass so that case is
    /// detectable rather than silent.
    pub const MAX_RESPONSE_TIME: u64 = 1 << 20;

    /// Creates an empty histogram.
    pub fn new() -> Self {
        ResponseTimeHistogram::default()
    }

    /// Records one job with the given response time (in rounds).
    ///
    /// Response times at or above [`Self::MAX_RESPONSE_TIME`] are clamped
    /// into the overflow bucket; counts saturate instead of wrapping
    /// (matching the [`DecisionTimeHistogram`](crate::DecisionTimeHistogram)
    /// merge convention), so a pathological input can pin the top of the
    /// range but never corrupt the distribution below it.
    pub fn record(&mut self, response_time: u64) {
        self.record_many(response_time, 1);
    }

    /// Records `count` jobs with the same response time (same clamping and
    /// saturation rules as [`Self::record`]).
    pub fn record_many(&mut self, response_time: u64, count: u64) {
        if count == 0 {
            return;
        }
        let clamped = response_time.min(Self::MAX_RESPONSE_TIME);
        let idx = clamped as usize;
        if idx >= self.counts.len() {
            self.counts.resize(idx + 1, 0);
        }
        self.counts[idx] = self.counts[idx].saturating_add(count);
        self.total = self.total.saturating_add(count);
        self.sum = self
            .sum
            .saturating_add(u128::from(clamped) * u128::from(count));
    }

    /// Number of recorded jobs.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// True when no job has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Exact mean response time; 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// Largest recorded response time; 0 when empty.
    pub fn max(&self) -> u64 {
        self.counts
            .iter()
            .enumerate()
            .rev()
            .find(|(_, &c)| c > 0)
            .map(|(r, _)| r as u64)
            .unwrap_or(0)
    }

    /// Smallest recorded response time; 0 when empty.
    pub fn min(&self) -> u64 {
        self.counts
            .iter()
            .enumerate()
            .find(|(_, &c)| c > 0)
            .map(|(r, _)| r as u64)
            .unwrap_or(0)
    }

    /// Number of jobs clamped into the capped overflow bucket (response
    /// times at or above [`Self::MAX_RESPONSE_TIME`]). Nonzero means the
    /// recorded `max`/percentiles/mean under-report the true tail — either
    /// a corrupt input or a run longer than the cap.
    pub fn overflow_count(&self) -> u64 {
        self.count_at(Self::MAX_RESPONSE_TIME)
    }

    /// Number of jobs whose response time was exactly `response_time`.
    pub fn count_at(&self, response_time: u64) -> u64 {
        self.counts
            .get(response_time as usize)
            .copied()
            .unwrap_or(0)
    }

    /// The `p`-quantile (`p` in `[0, 1]`) of the recorded response times,
    /// using the "smallest value with CDF ≥ p" convention so that
    /// `percentile(1.0) == max()`.
    ///
    /// Returns 0 for an empty histogram.
    ///
    /// # Panics
    /// Panics if `p` is not within `[0, 1]`.
    pub fn percentile(&self, p: f64) -> u64 {
        assert!((0.0..=1.0).contains(&p), "percentile {p} must be in [0, 1]");
        if self.total == 0 {
            return 0;
        }
        let threshold = (p * self.total as f64).ceil().max(1.0) as u64;
        let mut acc = 0u64;
        for (r, &c) in self.counts.iter().enumerate() {
            // Saturating: a bucket pinned at u64::MAX by the record/merge
            // saturation rules must not wrap the running rank (a wrapped
            // accumulator skips past the heavy bucket and mis-reports the
            // percentile; debug builds would panic).
            acc = acc.saturating_add(c);
            if acc >= threshold {
                return r as u64;
            }
        }
        self.max()
    }

    /// The complementary cumulative distribution function evaluated at `r`:
    /// `P[response time > r]`. Returns 0.0 for an empty histogram.
    pub fn ccdf_at(&self, r: u64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let above = self
            .counts
            .iter()
            .enumerate()
            .filter(|(v, _)| *v as u64 > r)
            .fold(0u64, |acc, (_, &c)| acc.saturating_add(c));
        above as f64 / self.total as f64
    }

    /// The full CCDF as `(response time, P[RT > response time])` pairs for
    /// every response time value in the support, in increasing order. This is
    /// exactly the series plotted in Figures 3b, 4b, 6b and 7b of the paper.
    pub fn ccdf(&self) -> Vec<(u64, f64)> {
        if self.total == 0 {
            return Vec::new();
        }
        let mut out = Vec::new();
        let mut above = self.total;
        for (r, &c) in self.counts.iter().enumerate() {
            // Saturating: once counters have saturated, `total` may be
            // smaller than the sum of buckets — clamp at zero rather than
            // underflowing.
            above = above.saturating_sub(c);
            if c > 0 || r == 0 {
                out.push((r as u64, above as f64 / self.total as f64));
            }
        }
        out
    }

    /// Merges another histogram into this one.
    ///
    /// Bucket and total counts saturate at `u64::MAX` instead of wrapping —
    /// the sharded engine and the `--replications` sweeps merge one
    /// histogram per shard/replication, and a wrapped counter would silently
    /// corrupt every percentile of the merged distribution.
    pub fn merge(&mut self, other: &ResponseTimeHistogram) {
        crate::counts::merge_saturating_counts(&mut self.counts, &other.counts);
        self.total = self.total.saturating_add(other.total);
        self.sum = self.sum.saturating_add(other.sum);
    }

    /// The dense per-value bucket counts (`counts[r]` = jobs with response
    /// time exactly `r`), exposed for wire codecs. The slice only extends to
    /// the largest recorded value.
    pub fn bucket_counts(&self) -> &[u64] {
        &self.counts
    }

    /// The exact sum of all recorded (clamped) response times, exposed for
    /// wire codecs — `record_many` cannot reconstruct a saturated histogram,
    /// so a codec must transport the accumulator verbatim.
    pub fn raw_sum(&self) -> u128 {
        self.sum
    }

    /// Reassembles a histogram from the raw parts a wire codec transports:
    /// the dense bucket counts, the total job count and the response-time
    /// sum. The inverse of reading [`Self::bucket_counts`], [`Self::count`]
    /// and [`Self::raw_sum`] — `from_raw_parts(h.bucket_counts().to_vec(),
    /// h.count(), h.raw_sum()) == h` bit for bit, saturated counters
    /// included.
    ///
    /// # Errors
    /// Returns a message when the counts vector extends beyond the
    /// [`Self::MAX_RESPONSE_TIME`] overflow bucket (a well-formed histogram
    /// can never grow past it, so longer input is corrupt, not merely
    /// unusual).
    pub fn from_raw_parts(counts: Vec<u64>, total: u64, sum: u128) -> Result<Self, String> {
        if counts.len() > Self::MAX_RESPONSE_TIME as usize + 1 {
            return Err(format!(
                "response-time histogram has {} buckets, beyond the overflow cap {}",
                counts.len(),
                Self::MAX_RESPONSE_TIME + 1
            ));
        }
        Ok(ResponseTimeHistogram { counts, total, sum })
    }

    /// A compact numeric summary (mean, p50, p95, p99, p999, max, count).
    pub fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.total,
            mean: self.mean(),
            p50: self.percentile(0.50),
            p95: self.percentile(0.95),
            p99: self.percentile(0.99),
            p999: self.percentile(0.999),
            max: self.max(),
        }
    }
}

/// A compact summary of a [`ResponseTimeHistogram`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HistogramSummary {
    /// Number of jobs recorded.
    pub count: u64,
    /// Mean response time (rounds).
    pub mean: f64,
    /// Median response time.
    pub p50: u64,
    /// 95th percentile.
    pub p95: u64,
    /// 99th percentile.
    pub p99: u64,
    /// 99.9th percentile.
    pub p999: u64,
    /// Maximum recorded response time.
    pub max: u64,
}

impl std::fmt::Display for HistogramSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} mean={:.3} p50={} p95={} p99={} p99.9={} max={}",
            self.count, self.mean, self.p50, self.p95, self.p99, self.p999, self.max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hist_from(values: &[u64]) -> ResponseTimeHistogram {
        let mut h = ResponseTimeHistogram::new();
        for &v in values {
            h.record(v);
        }
        h
    }

    #[test]
    fn empty_histogram_reports_zeroes() {
        let h = ResponseTimeHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.percentile(0.5), 0);
        assert_eq!(h.ccdf_at(3), 0.0);
        assert!(h.ccdf().is_empty());
    }

    #[test]
    fn mean_and_extremes_are_exact() {
        let h = hist_from(&[1, 1, 2, 3, 10]);
        assert_eq!(h.count(), 5);
        assert!((h.mean() - 3.4).abs() < 1e-12);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 10);
        assert_eq!(h.count_at(1), 2);
        assert_eq!(h.count_at(7), 0);
    }

    #[test]
    fn percentiles_match_naive_definition() {
        let values = [3u64, 1, 4, 1, 5, 9, 2, 6, 5, 3];
        let h = hist_from(&values);
        let mut sorted = values.to_vec();
        sorted.sort_unstable();
        for &(p, _) in &[(0.0, 0usize), (0.1, 0), (0.5, 4), (0.9, 8), (1.0, 9)] {
            let expected = {
                let rank = ((p * values.len() as f64).ceil().max(1.0) as usize) - 1;
                sorted[rank.min(values.len() - 1)]
            };
            assert_eq!(h.percentile(p), expected, "p = {p}");
        }
    }

    #[test]
    fn percentile_one_equals_max() {
        let h = hist_from(&[2, 2, 100]);
        assert_eq!(h.percentile(1.0), 100);
        assert_eq!(h.percentile(0.99), 100);
        assert_eq!(h.percentile(0.5), 2);
    }

    #[test]
    #[should_panic(expected = "must be in [0, 1]")]
    fn percentile_out_of_range_panics() {
        hist_from(&[1]).percentile(1.5);
    }

    #[test]
    fn ccdf_is_a_proper_tail_function() {
        let h = hist_from(&[1, 1, 2, 4]);
        assert!((h.ccdf_at(0) - 1.0).abs() < 1e-12);
        assert!((h.ccdf_at(1) - 0.5).abs() < 1e-12);
        assert!((h.ccdf_at(2) - 0.25).abs() < 1e-12);
        assert!((h.ccdf_at(3) - 0.25).abs() < 1e-12);
        assert!((h.ccdf_at(4) - 0.0).abs() < 1e-12);

        let series = h.ccdf();
        // Monotonically non-increasing tail probabilities.
        for w in series.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
        // Last point has zero tail mass.
        assert_eq!(series.last().unwrap().1, 0.0);
    }

    #[test]
    fn record_many_matches_repeated_record() {
        let mut a = ResponseTimeHistogram::new();
        a.record_many(5, 1000);
        a.record_many(2, 0);
        let mut b = ResponseTimeHistogram::new();
        for _ in 0..1000 {
            b.record(5);
        }
        assert_eq!(a, b);
    }

    #[test]
    fn merge_combines_counts_and_sums() {
        let mut a = hist_from(&[1, 2, 3]);
        let b = hist_from(&[3, 4, 100]);
        a.merge(&b);
        assert_eq!(a.count(), 6);
        assert_eq!(a.count_at(3), 2);
        assert_eq!(a.max(), 100);
        let expected_mean = (1 + 2 + 3 + 3 + 4 + 100) as f64 / 6.0;
        assert!((a.mean() - expected_mean).abs() < 1e-12);
    }

    #[test]
    fn pathological_response_times_land_in_the_overflow_bucket() {
        // A censored/corrupted response time used to resize the dense counts
        // vector to `response_time + 1` entries — `u64::MAX` meant an
        // instant multi-gigabyte allocation. It must clamp instead.
        let mut h = ResponseTimeHistogram::new();
        h.record(u64::MAX);
        h.record(ResponseTimeHistogram::MAX_RESPONSE_TIME + 123);
        h.record_many(u64::MAX - 7, 3);
        assert_eq!(h.count(), 5);
        assert_eq!(
            h.count_at(ResponseTimeHistogram::MAX_RESPONSE_TIME),
            5,
            "all pathological values share the capped overflow bucket"
        );
        assert_eq!(h.max(), ResponseTimeHistogram::MAX_RESPONSE_TIME);
        assert_eq!(h.overflow_count(), 5, "clamped mass must be detectable");
        assert!(
            h.counts.len() <= ResponseTimeHistogram::MAX_RESPONSE_TIME as usize + 1,
            "the dense vector must stay bounded"
        );
        // The clamped values contribute the cap to the (clamped) mean.
        assert!((h.mean() - ResponseTimeHistogram::MAX_RESPONSE_TIME as f64).abs() < 1e-9);
        // Ordinary values below the cap are untouched.
        h.record(5);
        assert_eq!(h.count_at(5), 1);
        assert_eq!(h.min(), 5, "values below the cap are exact");
    }

    #[test]
    fn record_saturates_instead_of_wrapping() {
        // Debug builds used to panic (and release builds to wrap) when a
        // bucket or the total crossed `u64::MAX`. Both must saturate now,
        // matching the DecisionTimeHistogram merge convention.
        let mut h = ResponseTimeHistogram::new();
        h.record_many(2, u64::MAX - 1);
        h.record_many(2, 5);
        assert_eq!(h.count_at(2), u64::MAX);
        assert_eq!(h.count(), u64::MAX);
        // The distribution stays ordered and usable after saturation.
        assert_eq!(h.percentile(0.5), 2);
        assert_eq!(h.max(), 2);
    }

    #[test]
    fn queries_survive_a_saturated_bucket_after_a_nonzero_one() {
        // Regression: percentile()/ccdf_at()/ccdf() accumulated bucket
        // counts with unchecked adds, so a saturated bucket *after* an
        // earlier nonzero bucket overflowed the accumulator (debug panic,
        // release wrap → wrong percentile).
        let mut h = ResponseTimeHistogram::new();
        h.record(1);
        h.record_many(3, u64::MAX);
        assert_eq!(h.count_at(3), u64::MAX);
        assert_eq!(h.percentile(0.99), 3, "the heavy bucket holds the tail");
        assert_eq!(h.percentile(0.5), 3);
        assert!(h.ccdf_at(0) > 0.99);
        assert_eq!(h.ccdf_at(3), 0.0);
        let series = h.ccdf();
        assert_eq!(series.last().unwrap().1, 0.0);
        for w in series.windows(2) {
            assert!(w[0].1 >= w[1].1, "CCDF must stay monotone");
        }
    }

    #[test]
    fn merge_saturates_instead_of_wrapping() {
        let mut a = ResponseTimeHistogram::new();
        let mut b = ResponseTimeHistogram::new();
        a.record_many(3, u64::MAX - 1);
        b.record_many(3, 10);
        b.record(7);
        a.merge(&b);
        assert_eq!(a.count_at(3), u64::MAX, "bucket count must saturate");
        assert_eq!(a.count(), u64::MAX, "total must saturate");
        assert_eq!(a.max(), 7);
        assert_eq!(a.percentile(0.5), 3, "median must not wrap toward zero");
    }

    #[test]
    fn raw_parts_round_trip_bit_for_bit() {
        let mut h = hist_from(&[1, 2, 2, 50]);
        h.record_many(3, u64::MAX); // saturate a bucket and the total
        let copy = ResponseTimeHistogram::from_raw_parts(
            h.bucket_counts().to_vec(),
            h.count(),
            h.raw_sum(),
        )
        .unwrap();
        assert_eq!(copy, h);
        // The empty histogram round-trips too.
        let empty = ResponseTimeHistogram::new();
        assert_eq!(
            ResponseTimeHistogram::from_raw_parts(Vec::new(), 0, 0).unwrap(),
            empty
        );
        // Counts beyond the overflow cap are corrupt, not merely large.
        let too_long = vec![0u64; ResponseTimeHistogram::MAX_RESPONSE_TIME as usize + 2];
        assert!(ResponseTimeHistogram::from_raw_parts(too_long, 0, 0).is_err());
    }

    #[test]
    fn summary_fields_are_consistent() {
        let h = hist_from(&(1..=1000u64).collect::<Vec<_>>());
        let s = h.summary();
        assert_eq!(s.count, 1000);
        assert_eq!(s.p50, 500);
        assert_eq!(s.p99, 990);
        assert_eq!(s.p999, 999);
        assert_eq!(s.max, 1000);
        assert!((s.mean - 500.5).abs() < 1e-9);
        let text = s.to_string();
        assert!(text.contains("p99=990"));
    }
}
