//! Per-server queue-length tracking.
//!
//! The strong-stability analysis (Appendix D of the paper) is about the
//! long-run time average of the total queue length,
//! `1/T · Σ_t Σ_s E[q_s(t)]`. [`QueueLengthTracker`] records exactly that
//! quantity (plus per-server maxima and idle fractions) so the stability
//! integration tests and the herding demonstrations can make quantitative
//! assertions.

use serde::{Deserialize, Serialize};

/// Tracks queue-length statistics over the course of a simulation.
///
/// Queue lengths are integers, so the tracker accumulates exact integer sums
/// and maxima instead of running floating-point statistics: `observe` is on
/// the simulation engine's per-round hot path (one update per server per
/// round) and integer adds are both faster and exact. Means are derived on
/// demand.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QueueLengthTracker {
    /// Per-server sum of observed queue lengths (`u128`: a u64 queue length
    /// summed over arbitrarily many rounds cannot overflow).
    per_server_sum: Vec<u128>,
    /// Per-server maximum observed queue length.
    per_server_max: Vec<u64>,
    /// Per-server count of rounds in which the server was idle (empty queue).
    idle_rounds: Vec<u64>,
    /// Sum over rounds of the total backlog.
    total_sum: u128,
    /// Largest observed total backlog.
    total_max: u64,
    /// Number of observed rounds.
    rounds: u64,
}

impl QueueLengthTracker {
    /// Creates a tracker for `num_servers` servers.
    pub fn new(num_servers: usize) -> Self {
        QueueLengthTracker {
            per_server_sum: vec![0; num_servers],
            per_server_max: vec![0; num_servers],
            idle_rounds: vec![0; num_servers],
            total_sum: 0,
            total_max: 0,
            rounds: 0,
        }
    }

    /// Records the queue lengths observed at the beginning of one round.
    ///
    /// # Panics
    /// Panics if `queue_lengths.len()` differs from the number of servers the
    /// tracker was created for.
    pub fn observe(&mut self, queue_lengths: &[u64]) {
        assert_eq!(
            queue_lengths.len(),
            self.per_server_sum.len(),
            "tracker was created for a different cluster size"
        );
        let mut sum = 0u64;
        for (s, &q) in queue_lengths.iter().enumerate() {
            self.per_server_sum[s] += u128::from(q);
            if q > self.per_server_max[s] {
                self.per_server_max[s] = q;
            }
            if q == 0 {
                self.idle_rounds[s] += 1;
            }
            sum += q;
        }
        self.total_sum += u128::from(sum);
        if sum > self.total_max {
            self.total_max = sum;
        }
        self.rounds += 1;
    }

    /// Number of servers being tracked.
    pub fn num_servers(&self) -> usize {
        self.per_server_sum.len()
    }

    /// Number of observed rounds.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Time-average of the total backlog `Σ_s q_s(t)` — the quantity bounded
    /// by the strong-stability theorem.
    pub fn mean_total_backlog(&self) -> f64 {
        if self.rounds == 0 {
            0.0
        } else {
            self.total_sum as f64 / self.rounds as f64
        }
    }

    /// Largest total backlog seen in any round.
    pub fn max_total_backlog(&self) -> f64 {
        self.total_max as f64
    }

    /// Time-average queue length of one server.
    ///
    /// # Panics
    /// Panics if the server index is out of range.
    pub fn mean_queue(&self, server: usize) -> f64 {
        if self.rounds == 0 {
            0.0
        } else {
            self.per_server_sum[server] as f64 / self.rounds as f64
        }
    }

    /// Maximum queue length of one server across all observed rounds.
    ///
    /// # Panics
    /// Panics if the server index is out of range.
    pub fn max_queue(&self, server: usize) -> f64 {
        self.per_server_max[server] as f64
    }

    /// Fraction of rounds in which the server's queue was empty — a proxy for
    /// wasted capacity on fast servers (the instability mode described in the
    /// paper's footnote 1).
    ///
    /// # Panics
    /// Panics if the server index is out of range.
    pub fn idle_fraction(&self, server: usize) -> f64 {
        if self.rounds == 0 {
            0.0
        } else {
            self.idle_rounds[server] as f64 / self.rounds as f64
        }
    }

    /// The largest per-server time-average queue length — useful for spotting
    /// a single unstable queue in an otherwise healthy system.
    pub fn worst_mean_queue(&self) -> f64 {
        (0..self.per_server_sum.len())
            .map(|s| self.mean_queue(s))
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observes_and_averages() {
        let mut t = QueueLengthTracker::new(3);
        t.observe(&[0, 2, 4]);
        t.observe(&[2, 2, 0]);
        assert_eq!(t.rounds(), 2);
        assert_eq!(t.num_servers(), 3);
        assert!((t.mean_total_backlog() - 5.0).abs() < 1e-12);
        assert_eq!(t.max_total_backlog(), 6.0);
        assert!((t.mean_queue(0) - 1.0).abs() < 1e-12);
        assert!((t.mean_queue(2) - 2.0).abs() < 1e-12);
        assert_eq!(t.max_queue(2), 4.0);
        assert!((t.worst_mean_queue() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn idle_fraction_counts_empty_rounds() {
        let mut t = QueueLengthTracker::new(2);
        t.observe(&[0, 1]);
        t.observe(&[0, 0]);
        t.observe(&[3, 0]);
        assert!((t.idle_fraction(0) - 2.0 / 3.0).abs() < 1e-12);
        assert!((t.idle_fraction(1) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_tracker_is_zeroed() {
        let t = QueueLengthTracker::new(4);
        assert_eq!(t.rounds(), 0);
        assert_eq!(t.mean_total_backlog(), 0.0);
        assert_eq!(t.max_total_backlog(), 0.0);
        assert_eq!(t.idle_fraction(0), 0.0);
        assert_eq!(t.worst_mean_queue(), 0.0);
    }

    #[test]
    #[should_panic(expected = "different cluster size")]
    fn wrong_width_observation_panics() {
        let mut t = QueueLengthTracker::new(2);
        t.observe(&[1, 2, 3]);
    }
}
