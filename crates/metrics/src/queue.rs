//! Per-server queue-length tracking.
//!
//! The strong-stability analysis (Appendix D of the paper) is about the
//! long-run time average of the total queue length,
//! `1/T · Σ_t Σ_s E[q_s(t)]`. [`QueueLengthTracker`] records exactly that
//! quantity (plus per-server maxima and idle fractions) so the stability
//! integration tests and the herding demonstrations can make quantitative
//! assertions.
//!
//! At mean-field scale (`n = 10⁵ .. 10⁶` servers) the per-server vectors
//! dominate the simulator's memory and the queue-length *distribution* is
//! the quantity of interest (it is what the mean-field fixed point
//! predicts), so the tracker also maintains a dense **occupancy histogram**
//! — `occupancy[k]` = number of (server, round) observations with queue
//! length exactly `k` — and offers a histogram-only mode that keeps *only*
//! that histogram plus the scalar totals, dropping every per-server vector.

use serde::{Deserialize, Serialize};

/// Tracks queue-length statistics over the course of a simulation.
///
/// Queue lengths are integers, so the tracker accumulates exact integer sums
/// and maxima instead of running floating-point statistics: `observe` is on
/// the simulation engine's per-round hot path (one update per server per
/// round) and integer adds are both faster and exact. Means are derived on
/// demand.
///
/// Two modes:
///
/// * **Full** ([`QueueLengthTracker::new`]) — per-server sums, maxima and
///   idle counts plus the occupancy histogram. `O(n)` memory.
/// * **Histogram-only** ([`QueueLengthTracker::histogram_only`]) — only the
///   occupancy histogram and the scalar totals. `O(max queue length)`
///   memory (capped by [`Self::OCCUPANCY_CLAMP`]), independent of `n`; the
///   per-server accessors are unavailable and [`Self::worst_mean_queue`]
///   degrades to the across-server mean.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QueueLengthTracker {
    /// Number of servers being tracked (the per-server vectors below are
    /// empty in histogram-only mode, so the width is kept separately).
    num_servers: usize,
    /// Per-server sum of observed queue lengths (`u128`: a u64 queue length
    /// summed over arbitrarily many rounds cannot overflow). Empty in
    /// histogram-only mode.
    per_server_sum: Vec<u128>,
    /// Per-server maximum observed queue length. Empty in histogram-only
    /// mode.
    per_server_max: Vec<u64>,
    /// Per-server count of rounds in which the server was idle (empty
    /// queue). Empty in histogram-only mode.
    idle_rounds: Vec<u64>,
    /// `occupancy[k]` = number of (server, round) observations with queue
    /// length exactly `k` (clamped at [`Self::OCCUPANCY_CLAMP`]). Grows
    /// lazily to the largest observed length, so short queues cost a few
    /// dozen entries regardless of the clamp.
    #[serde(default)]
    occupancy: Vec<u64>,
    /// Sum over rounds of the total backlog.
    total_sum: u128,
    /// Largest observed total backlog.
    total_max: u64,
    /// Number of observed rounds.
    rounds: u64,
}

impl QueueLengthTracker {
    /// Queue lengths at or above this value share the top occupancy bucket.
    /// A stable run's queues sit far below it; the clamp only bounds the
    /// histogram against a diverging (unstable) configuration, where the
    /// pinned top bucket makes the truncation detectable rather than silent.
    pub const OCCUPANCY_CLAMP: u64 = 4096;

    /// Creates a full-mode tracker for `num_servers` servers.
    pub fn new(num_servers: usize) -> Self {
        QueueLengthTracker {
            num_servers,
            per_server_sum: vec![0; num_servers],
            per_server_max: vec![0; num_servers],
            idle_rounds: vec![0; num_servers],
            occupancy: Vec::new(),
            total_sum: 0,
            total_max: 0,
            rounds: 0,
        }
    }

    /// Creates a histogram-only tracker: no per-server state is allocated,
    /// so memory is independent of `num_servers` — the mode the engine uses
    /// for mean-field-scale runs (`n = 10⁵ .. 10⁶`).
    pub fn histogram_only(num_servers: usize) -> Self {
        QueueLengthTracker {
            num_servers,
            per_server_sum: Vec::new(),
            per_server_max: Vec::new(),
            idle_rounds: Vec::new(),
            occupancy: Vec::new(),
            total_sum: 0,
            total_max: 0,
            rounds: 0,
        }
    }

    /// True when this tracker keeps only the occupancy histogram (no
    /// per-server vectors).
    pub fn is_histogram_only(&self) -> bool {
        self.num_servers > 0 && self.per_server_sum.is_empty()
    }

    /// Records the queue lengths observed at the beginning of one round.
    ///
    /// # Panics
    /// Panics if `queue_lengths.len()` differs from the number of servers the
    /// tracker was created for.
    pub fn observe(&mut self, queue_lengths: &[u64]) {
        assert_eq!(
            queue_lengths.len(),
            self.num_servers,
            "tracker was created for a different cluster size"
        );
        let full = !self.is_histogram_only();
        let mut sum = 0u64;
        for (s, &q) in queue_lengths.iter().enumerate() {
            let bucket = q.min(Self::OCCUPANCY_CLAMP) as usize;
            if bucket >= self.occupancy.len() {
                self.occupancy.resize(bucket + 1, 0);
            }
            self.occupancy[bucket] = self.occupancy[bucket].saturating_add(1);
            if full {
                self.per_server_sum[s] += u128::from(q);
                if q > self.per_server_max[s] {
                    self.per_server_max[s] = q;
                }
                if q == 0 {
                    self.idle_rounds[s] += 1;
                }
            }
            sum += q;
        }
        self.total_sum += u128::from(sum);
        if sum > self.total_max {
            self.total_max = sum;
        }
        self.rounds += 1;
    }

    /// Number of servers being tracked.
    pub fn num_servers(&self) -> usize {
        self.num_servers
    }

    /// Number of observed rounds.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// The dense occupancy histogram: `occupancy()[k]` = number of
    /// (server, round) observations with queue length exactly `k`, with
    /// everything at or above [`Self::OCCUPANCY_CLAMP`] sharing the top
    /// bucket. The slice only extends to the largest observed length. The
    /// total mass is `rounds() · num_servers()` (modulo saturation), and
    /// normalizing by it yields the empirical steady-state queue-length
    /// distribution the mean-field oracle checks against.
    pub fn occupancy(&self) -> &[u64] {
        &self.occupancy
    }

    /// Consumes the tracker and returns the occupancy histogram without
    /// copying it (for reports that outlive the tracker).
    pub fn into_occupancy(self) -> Vec<u64> {
        self.occupancy
    }

    /// Time-average of the total backlog `Σ_s q_s(t)` — the quantity bounded
    /// by the strong-stability theorem.
    pub fn mean_total_backlog(&self) -> f64 {
        if self.rounds == 0 {
            0.0
        } else {
            self.total_sum as f64 / self.rounds as f64
        }
    }

    /// Largest total backlog seen in any round.
    pub fn max_total_backlog(&self) -> f64 {
        self.total_max as f64
    }

    /// Time-average queue length of one server.
    ///
    /// # Panics
    /// Panics if the server index is out of range or the tracker is
    /// histogram-only (no per-server state exists).
    pub fn mean_queue(&self, server: usize) -> f64 {
        if self.rounds == 0 {
            0.0
        } else {
            self.per_server_sum[server] as f64 / self.rounds as f64
        }
    }

    /// Maximum queue length of one server across all observed rounds.
    ///
    /// # Panics
    /// Panics if the server index is out of range or the tracker is
    /// histogram-only (no per-server state exists).
    pub fn max_queue(&self, server: usize) -> f64 {
        self.per_server_max[server] as f64
    }

    /// Fraction of rounds in which the server's queue was empty — a proxy for
    /// wasted capacity on fast servers (the instability mode described in the
    /// paper's footnote 1).
    ///
    /// # Panics
    /// Panics if the server index is out of range or the tracker is
    /// histogram-only (no per-server state exists).
    pub fn idle_fraction(&self, server: usize) -> f64 {
        if self.rounds == 0 {
            0.0
        } else {
            self.idle_rounds[server] as f64 / self.rounds as f64
        }
    }

    /// Mean fraction of (server, round) observations with an empty queue —
    /// equal to the across-server average of [`Self::idle_fraction`], but
    /// computed from the occupancy histogram's exact integer zero-bucket, so
    /// it is available (and identical) in both modes.
    pub fn mean_idle_fraction(&self) -> f64 {
        let observations = self.rounds as u128 * self.num_servers as u128;
        if observations == 0 {
            0.0
        } else {
            self.occupancy.first().copied().unwrap_or(0) as f64 / observations as f64
        }
    }

    /// Decomposes the tracker into its raw accumulator fields for engine
    /// checkpointing:
    /// `(num_servers, per_server_sum, per_server_max, idle_rounds, occupancy,
    /// total_sum, total_max, rounds)`. The inverse of
    /// [`Self::from_raw_parts`].
    #[allow(clippy::type_complexity)]
    pub fn raw_parts(
        &self,
    ) -> (
        usize,
        Vec<u128>,
        Vec<u64>,
        Vec<u64>,
        Vec<u64>,
        u128,
        u64,
        u64,
    ) {
        (
            self.num_servers,
            self.per_server_sum.clone(),
            self.per_server_max.clone(),
            self.idle_rounds.clone(),
            self.occupancy.clone(),
            self.total_sum,
            self.total_max,
            self.rounds,
        )
    }

    /// Rebuilds a tracker from accumulators captured by
    /// [`Self::raw_parts`]. Mid-run state round-trips exactly, including the
    /// full/histogram-only mode distinction (empty per-server vectors with a
    /// nonzero `num_servers` mean histogram-only).
    ///
    /// # Errors
    /// Returns a message when the per-server vectors are inconsistent: they
    /// must all have length `num_servers` (full mode) or all be empty
    /// (histogram-only mode).
    #[allow(clippy::too_many_arguments)]
    pub fn from_raw_parts(
        num_servers: usize,
        per_server_sum: Vec<u128>,
        per_server_max: Vec<u64>,
        idle_rounds: Vec<u64>,
        occupancy: Vec<u64>,
        total_sum: u128,
        total_max: u64,
        rounds: u64,
    ) -> Result<Self, String> {
        let widths = [
            per_server_sum.len(),
            per_server_max.len(),
            idle_rounds.len(),
        ];
        let full = widths == [num_servers; 3];
        let slim = widths == [0; 3];
        if !(full || slim) {
            return Err(format!(
                "queue tracker parts are inconsistent: num_servers={num_servers}, \
                 per-server vector lengths {widths:?}"
            ));
        }
        Ok(QueueLengthTracker {
            num_servers,
            per_server_sum,
            per_server_max,
            idle_rounds,
            occupancy,
            total_sum,
            total_max,
            rounds,
        })
    }

    /// The largest per-server time-average queue length — useful for spotting
    /// a single unstable queue in an otherwise healthy system.
    ///
    /// In histogram-only mode the per-server sums do not exist, so this
    /// **degrades to the across-server mean queue length**
    /// (`mean_total_backlog / num_servers`, a lower bound on the true
    /// worst): at mean-field scale no single server is individually
    /// interesting, and the distribution tail is read off
    /// [`Self::occupancy`] instead.
    pub fn worst_mean_queue(&self) -> f64 {
        if self.is_histogram_only() {
            return self.mean_total_backlog() / self.num_servers as f64;
        }
        (0..self.per_server_sum.len())
            .map(|s| self.mean_queue(s))
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observes_and_averages() {
        let mut t = QueueLengthTracker::new(3);
        t.observe(&[0, 2, 4]);
        t.observe(&[2, 2, 0]);
        assert_eq!(t.rounds(), 2);
        assert_eq!(t.num_servers(), 3);
        assert!(!t.is_histogram_only());
        assert!((t.mean_total_backlog() - 5.0).abs() < 1e-12);
        assert_eq!(t.max_total_backlog(), 6.0);
        assert!((t.mean_queue(0) - 1.0).abs() < 1e-12);
        assert!((t.mean_queue(2) - 2.0).abs() < 1e-12);
        assert_eq!(t.max_queue(2), 4.0);
        assert!((t.worst_mean_queue() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn idle_fraction_counts_empty_rounds() {
        let mut t = QueueLengthTracker::new(2);
        t.observe(&[0, 1]);
        t.observe(&[0, 0]);
        t.observe(&[3, 0]);
        assert!((t.idle_fraction(0) - 2.0 / 3.0).abs() < 1e-12);
        assert!((t.idle_fraction(1) - 2.0 / 3.0).abs() < 1e-12);
        assert!((t.mean_idle_fraction() - 4.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn occupancy_histogram_counts_server_rounds() {
        let mut t = QueueLengthTracker::new(3);
        t.observe(&[0, 2, 4]);
        t.observe(&[2, 2, 0]);
        // Lengths seen: 0×2, 2×3, 4×1.
        assert_eq!(t.occupancy(), &[2, 0, 3, 0, 1]);
        let mass: u64 = t.occupancy().iter().sum();
        assert_eq!(mass, t.rounds() * t.num_servers() as u64);
    }

    #[test]
    fn histogram_only_mode_matches_full_mode_statistics() {
        let rows: Vec<Vec<u64>> = vec![vec![0, 5, 2, 2], vec![1, 4, 0, 2], vec![0, 3, 1, 1]];
        let mut full = QueueLengthTracker::new(4);
        let mut slim = QueueLengthTracker::histogram_only(4);
        for row in &rows {
            full.observe(row);
            slim.observe(row);
        }
        assert!(slim.is_histogram_only());
        assert_eq!(slim.occupancy(), full.occupancy());
        assert_eq!(slim.mean_total_backlog(), full.mean_total_backlog());
        assert_eq!(slim.max_total_backlog(), full.max_total_backlog());
        assert_eq!(slim.mean_idle_fraction(), full.mean_idle_fraction());
        // The shared idle fraction equals the across-server average of the
        // full tracker's per-server fractions.
        let per_server: f64 = (0..4).map(|s| full.idle_fraction(s)).sum::<f64>() / 4.0;
        assert!((slim.mean_idle_fraction() - per_server).abs() < 1e-12);
        // worst_mean_queue degrades to the across-server mean.
        assert!((slim.worst_mean_queue() - full.mean_total_backlog() / 4.0).abs() < 1e-12);
        assert!(full.worst_mean_queue() >= slim.worst_mean_queue());
    }

    #[test]
    fn pathological_lengths_share_the_clamped_top_bucket() {
        let mut t = QueueLengthTracker::histogram_only(2);
        t.observe(&[u64::MAX, 0]);
        t.observe(&[QueueLengthTracker::OCCUPANCY_CLAMP + 7, 0]);
        assert_eq!(
            t.occupancy().len(),
            QueueLengthTracker::OCCUPANCY_CLAMP as usize + 1,
            "the histogram must stay bounded"
        );
        assert_eq!(
            t.occupancy()[QueueLengthTracker::OCCUPANCY_CLAMP as usize],
            2
        );
    }

    #[test]
    fn empty_tracker_is_zeroed() {
        let t = QueueLengthTracker::new(4);
        assert_eq!(t.rounds(), 0);
        assert_eq!(t.mean_total_backlog(), 0.0);
        assert_eq!(t.max_total_backlog(), 0.0);
        assert_eq!(t.idle_fraction(0), 0.0);
        assert_eq!(t.mean_idle_fraction(), 0.0);
        assert_eq!(t.worst_mean_queue(), 0.0);
        assert!(t.occupancy().is_empty());
    }

    #[test]
    #[should_panic(expected = "different cluster size")]
    fn wrong_width_observation_panics() {
        let mut t = QueueLengthTracker::new(2);
        t.observe(&[1, 2, 3]);
    }

    #[test]
    fn raw_parts_round_trip_preserves_mid_run_state() {
        for mut t in [
            QueueLengthTracker::new(3),
            QueueLengthTracker::histogram_only(3),
        ] {
            t.observe(&[0, 2, 4]);
            t.observe(&[1, 2, 0]);
            let (n, sums, maxes, idles, occ, total, max, rounds) = t.raw_parts();
            let mut back =
                QueueLengthTracker::from_raw_parts(n, sums, maxes, idles, occ, total, max, rounds)
                    .unwrap();
            assert_eq!(back.is_histogram_only(), t.is_histogram_only());
            // Continuing both trackers keeps them in lockstep.
            t.observe(&[5, 0, 1]);
            back.observe(&[5, 0, 1]);
            assert_eq!(back.occupancy(), t.occupancy());
            assert_eq!(back.mean_total_backlog(), t.mean_total_backlog());
            assert_eq!(back.max_total_backlog(), t.max_total_backlog());
            assert_eq!(back.rounds(), t.rounds());
            if !t.is_histogram_only() {
                for s in 0..3 {
                    assert_eq!(back.mean_queue(s), t.mean_queue(s));
                    assert_eq!(back.max_queue(s), t.max_queue(s));
                    assert_eq!(back.idle_fraction(s), t.idle_fraction(s));
                }
            }
        }
    }

    #[test]
    fn from_raw_parts_rejects_inconsistent_vectors() {
        let err = QueueLengthTracker::from_raw_parts(
            3,
            vec![0; 2],
            vec![0; 3],
            vec![0; 3],
            Vec::new(),
            0,
            0,
            0,
        );
        assert!(err.is_err());
    }
}
