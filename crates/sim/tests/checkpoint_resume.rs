//! The engine-level checkpoint/resume invariant: a run resumed from a
//! checkpoint at **any** round is bit-identical to the uninterrupted run —
//! same report, same RNG consumption — for stateless and stateful (warm
//! argmin, probe-marking, round-robin) policies alike, with and without an
//! active scenario, and surviving a full serialize/deserialize round trip
//! of the checkpoint bytes.

use scd_core::policy::ScdFactory;
use scd_model::{ClusterSpec, PolicyFactory};
use scd_policies::{
    JsqFactory, LedFactory, LsqFactory, RoundRobinFactory, SedFactory, WeightedRandomFactory,
};
use scd_sim::checkpoint::EngineCheckpoint;
use scd_sim::scenario::{ScenarioSpec, StalenessSpec};
use scd_sim::{ArrivalSpec, SimConfig, SimError, Simulation};

fn base_config(seed: u64) -> SimConfig {
    let spec = ClusterSpec::from_rates(vec![4.0, 2.0, 2.0, 1.0, 1.0, 0.5]).unwrap();
    SimConfig::builder(spec)
        .dispatchers(2)
        .rounds(200)
        .warmup_rounds(20)
        .seed(seed)
        .arrivals(ArrivalSpec::PoissonOfferedLoad { offered_load: 0.85 })
        .build()
        .unwrap()
}

fn factories() -> Vec<Box<dyn PolicyFactory>> {
    vec![
        Box::new(ScdFactory::new()),
        Box::new(JsqFactory::new()),
        Box::new(SedFactory::new()),
        Box::new(LsqFactory::new()),
        Box::new(LedFactory::new()),
        Box::new(RoundRobinFactory::new()),
        Box::new(WeightedRandomFactory::new()),
    ]
}

/// Checkpoint rounds chosen to straddle warm-up (20) and the warm pickers'
/// 64-batch epoch boundaries.
const CHECKPOINT_ROUNDS: [u64; 6] = [1, 19, 64, 100, 128, 199];

#[test]
fn resume_at_any_round_is_bit_identical_to_a_straight_run() {
    let sim = Simulation::new(base_config(42)).unwrap();
    for factory in factories() {
        let straight = sim.run(factory.as_ref()).unwrap();
        for at_round in CHECKPOINT_ROUNDS {
            let ckpt = sim.checkpoint(factory.as_ref(), at_round).unwrap();
            assert_eq!(ckpt.round(), at_round);
            let resumed = sim.resume_from(factory.as_ref(), &ckpt).unwrap();
            assert_eq!(
                resumed,
                straight,
                "{} resumed at round {at_round} diverged",
                factory.name()
            );
        }
    }
}

#[test]
fn resume_is_bit_identical_under_an_active_scenario() {
    let mut config = base_config(7);
    config.scenario = ScenarioSpec {
        server_fail_rate: 0.05,
        server_repair_rate: 0.4,
        dispatcher_fail_rate: 0.03,
        dispatcher_repair_rate: 0.5,
        staleness: StalenessSpec::UniformPerRound { max_k: 3 },
        probe_loss_rate: 0.2,
        ..ScenarioSpec::default()
    };
    let sim = Simulation::new(config).unwrap();
    // LSQ exercises the probe-loss oracle tally; SCD the solver caches;
    // JSQ the warm picker + mirror machinery.
    for factory in [
        Box::new(LsqFactory::new()) as Box<dyn PolicyFactory>,
        Box::new(ScdFactory::new()),
        Box::new(JsqFactory::new()),
    ] {
        let straight = sim.run(factory.as_ref()).unwrap();
        assert!(straight.degradation.is_some(), "scenario must be active");
        for at_round in CHECKPOINT_ROUNDS {
            let ckpt = sim.checkpoint(factory.as_ref(), at_round).unwrap();
            // Push the checkpoint through its wire form: the resumed run
            // must be identical after serialization, too.
            let bytes = ckpt.to_bytes().unwrap();
            let restored = EngineCheckpoint::from_bytes(&bytes).unwrap();
            let resumed = sim.resume_from(factory.as_ref(), &restored).unwrap();
            assert_eq!(
                resumed,
                straight,
                "{} resumed at round {at_round} diverged under the scenario",
                factory.name()
            );
        }
    }
}

#[test]
fn periodic_checkpoints_do_not_perturb_the_run_and_each_resumes() {
    let sim = Simulation::new(base_config(3)).unwrap();
    let factory = JsqFactory::new();
    let straight = sim.run(&factory).unwrap();
    let mut captured: Vec<EngineCheckpoint> = Vec::new();
    let report = sim
        .run_with_checkpoints(&factory, 45, None, &mut |ckpt| {
            captured.push(ckpt);
            Ok(())
        })
        .unwrap();
    assert_eq!(report, straight, "checkpoint capture perturbed the run");
    let rounds: Vec<u64> = captured.iter().map(EngineCheckpoint::round).collect();
    assert_eq!(rounds, vec![45, 90, 135, 180]);
    for ckpt in &captured {
        assert_eq!(sim.resume_from(&factory, ckpt).unwrap(), straight);
    }
}

#[test]
fn resuming_with_further_checkpoints_skips_the_resume_round() {
    let sim = Simulation::new(base_config(3)).unwrap();
    let factory = JsqFactory::new();
    let straight = sim.run(&factory).unwrap();
    let ckpt = sim.checkpoint(&factory, 90).unwrap();
    let mut rounds: Vec<u64> = Vec::new();
    let report = sim
        .run_with_checkpoints(&factory, 45, Some(&ckpt), &mut |c| {
            rounds.push(c.round());
            Ok(())
        })
        .unwrap();
    assert_eq!(report, straight);
    assert_eq!(rounds, vec![135, 180], "round 90 must not be re-emitted");
}

#[test]
fn checkpoints_are_refused_across_configurations_and_bad_rounds() {
    let factory = JsqFactory::new();
    let sim = Simulation::new(base_config(1)).unwrap();
    let other = Simulation::new(base_config(2)).unwrap();
    let ckpt = sim.checkpoint(&factory, 50).unwrap();
    assert!(matches!(
        other.resume_from(&factory, &ckpt).unwrap_err(),
        SimError::Checkpoint(_)
    ));
    assert!(matches!(
        sim.checkpoint(&factory, 0).unwrap_err(),
        SimError::Checkpoint(_)
    ));
    assert!(matches!(
        sim.checkpoint(&factory, 200).unwrap_err(),
        SimError::Checkpoint(_)
    ));
    // A checkpoint taken under a scenario cannot resume a fair-weather run.
    let mut scenario_config = base_config(1);
    scenario_config.scenario = ScenarioSpec {
        server_fail_rate: 0.05,
        server_repair_rate: 0.4,
        ..ScenarioSpec::default()
    };
    let scenario_sim = Simulation::new(scenario_config).unwrap();
    let scenario_ckpt = scenario_sim.checkpoint(&factory, 50).unwrap();
    assert!(matches!(
        sim.resume_from(&factory, &scenario_ckpt).unwrap_err(),
        SimError::Checkpoint(_)
    ));
}
