//! The in-process body of the `shard_worker` binary.
//!
//! A worker is intentionally dumb: it receives one *already derived* shard
//! configuration (the `key = value` wire form of
//! [`SimConfig`], produced by
//! [`ShardedSimulation::shard_config`](crate::ShardedSimulation) on the
//! orchestrator side) on stdin, cross-checks it against the orchestrator's
//! expectations, runs the shard exactly like the in-process engine would,
//! and answers on stdout. With `checkpoint_every == 0` and no resume state
//! that answer is a single legacy (v2) report frame — byte-for-byte the
//! pre-checkpoint protocol. With `checkpoint_every = R` the worker
//! *streams*: a `Progress` heartbeat plus a `Checkpoint` frame every `R`
//! rounds, then one v3 `Final` frame. A worker launched with a retained
//! checkpoint (`--resume-from stdin`) restores it and continues the run
//! bit-identically. Everything operational — supervision, heartbeat
//! deadlines, retries, merging — lives with the orchestrator; a worker
//! that dies mid-run leaves nothing behind but a classifiable failure and
//! whatever verified checkpoints it already streamed.
//!
//! The [`WorkerFaultPlan`] makes the failure modes *deterministic and
//! injectable*: a crash before the frame or right after the N-th
//! checkpoint, a hang, a corrupted or truncated final frame, an arbitrary
//! exit code. The fault-tolerance tests and the CI smoke job drive the
//! orchestrator through every classification branch with these flags, on
//! the real process boundary.
//!
//! Exit codes are part of the protocol: [`EXIT_CONFIG_REJECTED`] declares
//! the configuration itself unusable (retrying cannot help), and
//! [`EXIT_RESUME_REJECTED`] declares the shipped resume checkpoint
//! unusable (the orchestrator falls back to retry-from-seed).

use crate::checkpoint::EngineCheckpoint;
use crate::config::SimConfig;
use crate::engine::{SimError, Simulation};
use crate::fabric::codec::{
    decode_frame, encode_checkpoint_frame, encode_final_frame, encode_progress_frame,
    encode_shard_report, CheckpointFrame, Frame, ProgressFrame, HEADER_LEN_V2, HEADER_LEN_V3,
};
use crate::shard::ShardReport;
use scd_model::PolicyFactory;

/// Exit code for a configuration the worker cannot run (malformed
/// `key = value` stream, unknown fields, failed validation). The
/// orchestrator treats it as fatal for the shard: the same configuration
/// would be re-sent on retry, so retrying cannot succeed.
pub const EXIT_CONFIG_REJECTED: i32 = 3;

/// Exit code for a resume checkpoint the worker refuses (undecodable
/// frame, wrong shard coordinates, digest mismatch, rejected state). The
/// orchestrator drops the retained checkpoint and retries from seed.
pub const EXIT_RESUME_REJECTED: i32 = 4;

/// Deterministic fault injection for one worker invocation. The default
/// plan is fault-free.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WorkerFaultPlan {
    /// Crash (exit code 101, no frame) once the run would have passed this
    /// round. A value at or beyond the configured round count never fires,
    /// so the same flag is safe on re-runs with longer horizons.
    pub fail_after_round: Option<u64>,
    /// Crash (exit code 101) immediately after streaming the N-th
    /// checkpoint frame (counting from 1) — the mid-stream death the
    /// retry-from-checkpoint path recovers. Never fires when fewer
    /// checkpoints are emitted (in particular with `checkpoint_every` 0).
    pub fail_after_checkpoint: Option<u64>,
    /// Never produce output and never exit — simulate a wedged process.
    /// The orchestrator's wall-clock timeout is the only way out.
    pub hang: bool,
    /// Emit the frame with one payload byte flipped, so the checksum
    /// rejects it.
    pub corrupt_frame: bool,
    /// Emit only the first half of the frame.
    pub truncate_frame: bool,
    /// Exit with this code immediately, before reading the configuration —
    /// simulate a worker that dies on startup.
    pub exit_code: Option<i32>,
}

impl WorkerFaultPlan {
    /// Whether this plan injects anything at all.
    pub fn is_clean(&self) -> bool {
        *self == WorkerFaultPlan::default()
    }

    /// Renders the plan as `shard_worker` command-line flags — the form
    /// the orchestrator appends to an injected attempt's argument list.
    pub fn to_args(&self) -> Vec<String> {
        let mut args = Vec::new();
        if let Some(round) = self.fail_after_round {
            args.push("--fail-after-round".into());
            args.push(round.to_string());
        }
        if let Some(nth) = self.fail_after_checkpoint {
            args.push("--fail-after-checkpoint".into());
            args.push(nth.to_string());
        }
        if self.hang {
            args.push("--hang".into());
        }
        if self.corrupt_frame {
            args.push("--corrupt-frame".into());
        }
        if self.truncate_frame {
            args.push("--truncate-frame".into());
        }
        if let Some(code) = self.exit_code {
            args.push("--exit-code".into());
            args.push(code.to_string());
        }
        args
    }
}

/// Everything a worker invocation is told on its command line (the shard
/// configuration itself arrives separately, on stdin).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerSpec {
    /// Index of the shard this worker runs.
    pub shard: usize,
    /// Total shard count `k` of the run.
    pub num_shards: usize,
    /// The sub-master seed the orchestrator derived for this shard
    /// ([`shard_master_seed`](scd_model::streams::shard_master_seed)). The
    /// worker refuses a configuration whose seed disagrees — the
    /// retry-from-seed guarantee hinges on running the exact seed the
    /// orchestrator distributed.
    pub expect_seed: u64,
    /// Structural digest of the **base** configuration
    /// ([`SimConfig::digest`](crate::SimConfig::digest)), echoed verbatim
    /// into the report frame so the orchestrator can tie the report back
    /// to the experiment it belongs to.
    pub config_digest: u64,
    /// Stream a `Progress` + `Checkpoint` frame pair every this many
    /// rounds. `0` (the default) reproduces the legacy one-shot protocol:
    /// exactly one v2 report frame, byte-for-byte.
    pub checkpoint_every: u64,
    /// Whether stdin carries, after the configuration text and a
    /// `%%CHECKPOINT%%` delimiter line, a raw checkpoint frame to resume
    /// from (`--resume-from stdin`).
    pub resume_from_stdin: bool,
    /// Injected faults, if any.
    pub fault: WorkerFaultPlan,
}

/// What the worker binary should do after [`run_worker`] returns — kept as
/// data so the whole decision procedure (including every injected fault)
/// is testable without a process boundary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkerOutput {
    /// Write these bytes to stdout and exit 0.
    Frame(Vec<u8>),
    /// Exit with this code without writing anything.
    Exit(i32),
    /// Park forever; the supervisor's timeout will kill the process.
    Hang,
}

/// Decodes and cross-checks the resume checkpoint frame shipped on stdin.
/// Every rejection maps to [`SimError::Checkpoint`], which the binary
/// turns into [`EXIT_RESUME_REJECTED`] — the orchestrator's cue to retry
/// from seed instead of from this checkpoint.
fn decode_resume(
    spec: &WorkerSpec,
    config: &SimConfig,
    frame: &[u8],
) -> Result<EngineCheckpoint, SimError> {
    let refuse = |msg: String| SimError::Checkpoint(msg);
    let decoded = decode_frame(frame)
        .map_err(|e| refuse(format!("resume checkpoint frame rejected: {e}")))?;
    let Frame::Checkpoint(frame) = decoded else {
        return Err(refuse("the resume frame is not a checkpoint frame".into()));
    };
    if frame.shard as usize != spec.shard || frame.num_shards as usize != spec.num_shards {
        return Err(refuse(format!(
            "resume checkpoint is for shard {} of {}, not shard {} of {}",
            frame.shard, frame.num_shards, spec.shard, spec.num_shards
        )));
    }
    if frame.config_digest != spec.config_digest {
        return Err(refuse(format!(
            "resume checkpoint envelope carries config digest {:#018x}, expected {:#018x}",
            frame.config_digest, spec.config_digest
        )));
    }
    let checkpoint = EngineCheckpoint::from_bytes(&frame.state)
        .map_err(|e| refuse(format!("resume checkpoint state rejected: {e}")))?;
    if checkpoint.config_digest() != config.digest() {
        return Err(refuse(
            "resume checkpoint state was taken under a different shard configuration".into(),
        ));
    }
    Ok(checkpoint)
}

/// Runs one worker invocation: parse and cross-check the configuration,
/// apply the fault plan, simulate the shard — streaming progress and
/// checkpoint frames through `emit` when `checkpoint_every > 0` — and
/// encode the final frame.
///
/// # Errors
/// Returns [`SimError::InvalidConfig`] for an inconsistent spec (shard
/// index out of range, stdin seed disagreeing with `expect_seed`) or any
/// parse error of the configuration text (the binary exits
/// [`EXIT_CONFIG_REJECTED`]); [`SimError::Checkpoint`] for a refused
/// resume checkpoint (the binary exits [`EXIT_RESUME_REJECTED`]); and
/// whatever the shard's own [`Simulation`] run or the `emit` sink report.
/// The binary maps other errors to stderr plus exit 2, which the
/// orchestrator classifies like any other crash.
pub fn run_worker(
    spec: &WorkerSpec,
    config_text: &str,
    resume_frame: Option<&[u8]>,
    factory: &dyn PolicyFactory,
    emit: &mut dyn FnMut(&[u8]) -> Result<(), SimError>,
) -> Result<WorkerOutput, SimError> {
    if let Some(code) = spec.fault.exit_code {
        return Ok(WorkerOutput::Exit(code));
    }
    if spec.shard >= spec.num_shards {
        return Err(SimError::InvalidConfig(format!(
            "worker told to run shard {} of a {}-shard run",
            spec.shard, spec.num_shards
        )));
    }
    let config = SimConfig::from_key_values(config_text)?;
    if config.seed != spec.expect_seed {
        return Err(SimError::InvalidConfig(format!(
            "shard {} received a configuration seeded {:#018x}, but the \
             orchestrator distributed sub-master {:#018x} — refusing to run \
             a shard the retry contract could not reproduce",
            spec.shard, config.seed, spec.expect_seed
        )));
    }
    if spec.fault.hang {
        return Ok(WorkerOutput::Hang);
    }
    if let Some(round) = spec.fault.fail_after_round {
        if round < config.rounds {
            // The injected crash kills the process before any output; how
            // many rounds were actually computed is unobservable, so none
            // are — byte-for-byte the same failure, without the wasted CPU.
            return Ok(WorkerOutput::Exit(101));
        }
    }
    let resume = match resume_frame {
        None => None,
        Some(frame) => Some(decode_resume(spec, &config, frame)?),
    };
    let num_servers = config.num_servers();
    let rounds_total = config.rounds;
    let streaming = spec.checkpoint_every > 0 || resume.is_some();
    let sim = Simulation::new(config)?;
    let codec_err = |cause| SimError::Codec {
        shard: spec.shard,
        cause,
    };
    let report = if streaming {
        let mut emitted = 0u64;
        let mut injected_crash = false;
        let run = sim.run_with_checkpoints(
            factory,
            spec.checkpoint_every,
            resume.as_ref(),
            &mut |ckpt| {
                let progress = encode_progress_frame(&ProgressFrame {
                    shard: spec.shard as u32,
                    num_shards: spec.num_shards as u32,
                    config_digest: spec.config_digest,
                    round: ckpt.round(),
                    rounds_total,
                    jobs_dispatched: ckpt.jobs_dispatched(),
                })
                .map_err(codec_err)?;
                emit(&progress)?;
                let frame = encode_checkpoint_frame(&CheckpointFrame {
                    shard: spec.shard as u32,
                    num_shards: spec.num_shards as u32,
                    config_digest: spec.config_digest,
                    state: ckpt.to_bytes().map_err(codec_err)?,
                })
                .map_err(codec_err)?;
                emit(&frame)?;
                emitted += 1;
                if spec.fault.fail_after_checkpoint == Some(emitted) {
                    injected_crash = true;
                    return Err(SimError::Checkpoint(
                        "injected crash after the checkpoint".into(),
                    ));
                }
                Ok(())
            },
        );
        match run {
            Ok(report) => report,
            Err(_) if injected_crash => return Ok(WorkerOutput::Exit(101)),
            Err(e) => return Err(e),
        }
    } else {
        sim.run(factory)?
    };
    let shard_report = ShardReport {
        shard: spec.shard,
        num_shards: spec.num_shards,
        num_servers,
        config_digest: spec.config_digest,
        report,
    };
    // The legacy one-shot protocol stays byte-for-byte: a worker that
    // neither checkpoints nor resumes seals the v2 envelope.
    let (mut frame, header_len) = if streaming {
        (
            encode_final_frame(&shard_report).map_err(codec_err)?,
            HEADER_LEN_V3,
        )
    } else {
        (
            encode_shard_report(&shard_report).map_err(codec_err)?,
            HEADER_LEN_V2,
        )
    };
    if spec.fault.corrupt_frame {
        // Flip a bit in the first payload byte: past the header, so the
        // envelope still parses and the *checksum* is what catches it.
        frame[header_len] ^= 0x01;
    }
    if spec.fault.truncate_frame {
        frame.truncate(frame.len() / 2);
    }
    Ok(WorkerOutput::Frame(frame))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrivals::ArrivalSpec;
    use crate::fabric::codec::decode_shard_report;
    use crate::shard::ShardedSimulation;
    use scd_model::ClusterSpec;
    use scd_policies::JsqFactory;

    fn base_config() -> SimConfig {
        let rates: Vec<f64> = (0..8).map(|s| 1.0 + (s % 3) as f64).collect();
        SimConfig::builder(ClusterSpec::from_rates(rates).unwrap())
            .dispatchers(4)
            .rounds(200)
            .warmup_rounds(20)
            .seed(11)
            .arrivals(ArrivalSpec::PoissonOfferedLoad { offered_load: 0.8 })
            .build()
            .unwrap()
    }

    fn worker_spec(sharded: &ShardedSimulation, shard: usize) -> WorkerSpec {
        WorkerSpec {
            shard,
            num_shards: sharded.num_shards(),
            expect_seed: sharded.shard_config(shard).seed,
            config_digest: sharded.config().digest(),
            checkpoint_every: 0,
            resume_from_stdin: false,
            fault: WorkerFaultPlan::default(),
        }
    }

    /// `run_worker` with a sink that rejects intermediate frames — the
    /// legacy path must never emit any.
    fn run_oneshot(
        spec: &WorkerSpec,
        text: &str,
        factory: &dyn PolicyFactory,
    ) -> Result<WorkerOutput, SimError> {
        run_worker(spec, text, None, factory, &mut |_| {
            panic!("the one-shot path must not stream frames")
        })
    }

    #[test]
    fn worker_reproduces_the_in_process_shard_bit_for_bit() {
        let sharded = ShardedSimulation::new(base_config(), 2).unwrap();
        let factory = JsqFactory::new();
        let in_process = sharded.run_shards(&factory, 1).unwrap();
        for (shard, expected) in in_process.iter().enumerate() {
            let text = sharded.shard_config(shard).to_key_values().unwrap();
            let spec = worker_spec(&sharded, shard);
            match run_oneshot(&spec, &text, &factory).unwrap() {
                WorkerOutput::Frame(frame) => {
                    assert_eq!(&decode_shard_report(&frame).unwrap(), expected);
                }
                other => panic!("clean worker produced {other:?}"),
            }
        }
    }

    #[test]
    fn streaming_worker_checkpoints_resume_and_the_final_matches() {
        let sharded = ShardedSimulation::new(base_config(), 2).unwrap();
        let factory = JsqFactory::new();
        let expected = &sharded.run_shards(&factory, 1).unwrap()[0];
        let text = sharded.shard_config(0).to_key_values().unwrap();
        let mut spec = worker_spec(&sharded, 0);
        spec.checkpoint_every = 60;
        let mut streamed: Vec<Vec<u8>> = Vec::new();
        let out = run_worker(&spec, &text, None, &factory, &mut |frame| {
            streamed.push(frame.to_vec());
            Ok(())
        })
        .unwrap();
        let WorkerOutput::Frame(final_frame) = out else {
            panic!("streaming worker must end with a final frame");
        };
        assert_eq!(&decode_shard_report(&final_frame).unwrap(), expected);
        // Rounds 60, 120 and 180, each as a progress + checkpoint pair.
        assert_eq!(streamed.len(), 6);
        let mut checkpoint_frames = Vec::new();
        for (i, frame) in streamed.iter().enumerate() {
            match decode_frame(frame).unwrap() {
                Frame::Progress(p) if i % 2 == 0 => {
                    assert_eq!(p.round, (i as u64 / 2 + 1) * 60);
                    assert_eq!(p.rounds_total, 200);
                    assert_eq!((p.shard, p.num_shards), (0, 2));
                }
                Frame::Checkpoint(c) if i % 2 == 1 => {
                    assert_eq!((c.shard, c.num_shards), (0, 2));
                    checkpoint_frames.push(frame.clone());
                }
                other => panic!("frame {i} has unexpected kind {other:?}"),
            }
        }
        // Resuming from each streamed checkpoint reproduces the final
        // report bit-identically — the worker-level resume contract.
        for ckpt_frame in &checkpoint_frames {
            let mut resume_spec = worker_spec(&sharded, 0);
            resume_spec.resume_from_stdin = true;
            let out = run_worker(&resume_spec, &text, Some(ckpt_frame), &factory, &mut |_| {
                Ok(())
            })
            .unwrap();
            let WorkerOutput::Frame(frame) = out else {
                panic!("resumed worker must produce a final frame");
            };
            assert_eq!(&decode_shard_report(&frame).unwrap(), expected);
        }
    }

    #[test]
    fn fail_after_checkpoint_crashes_mid_stream() {
        let sharded = ShardedSimulation::new(base_config(), 2).unwrap();
        let factory = JsqFactory::new();
        let text = sharded.shard_config(1).to_key_values().unwrap();
        let mut spec = worker_spec(&sharded, 1);
        spec.checkpoint_every = 50;
        spec.fault.fail_after_checkpoint = Some(2);
        let mut streamed = 0usize;
        let out = run_worker(&spec, &text, None, &factory, &mut |_| {
            streamed += 1;
            Ok(())
        })
        .unwrap();
        assert_eq!(out, WorkerOutput::Exit(101));
        // Two progress + checkpoint pairs made it out before the crash.
        assert_eq!(streamed, 4);
    }

    #[test]
    fn bad_resume_frames_are_refused_as_checkpoint_errors() {
        let sharded = ShardedSimulation::new(base_config(), 2).unwrap();
        let factory = JsqFactory::new();
        let text = sharded.shard_config(0).to_key_values().unwrap();
        let mut spec = worker_spec(&sharded, 0);
        spec.checkpoint_every = 80;
        let mut ckpt_frame = None;
        let _ = run_worker(&spec, &text, None, &factory, &mut |frame| {
            if let Ok(Frame::Checkpoint(_)) = decode_frame(frame) {
                ckpt_frame.get_or_insert_with(|| frame.to_vec());
            }
            Ok(())
        })
        .unwrap();
        let good = ckpt_frame.expect("a checkpoint was streamed");
        let refuse = |frame: &[u8], spec: &WorkerSpec, text: &str| {
            let err = run_worker(spec, text, Some(frame), &factory, &mut |_| Ok(())).unwrap_err();
            assert!(matches!(err, SimError::Checkpoint(_)), "{err}");
        };
        // Garbage bytes, a truncated frame, and shard 0's checkpoint
        // shipped to shard 1 (whose own configuration parses fine).
        refuse(b"not a frame at all", &spec, &text);
        refuse(&good[..good.len() / 2], &spec, &text);
        let wrong_shard = worker_spec(&sharded, 1);
        let wrong_text = sharded.shard_config(1).to_key_values().unwrap();
        refuse(&good, &wrong_shard, &wrong_text);
        // The good frame with the right spec still resumes cleanly.
        let out = run_worker(&spec, &text, Some(&good), &factory, &mut |_| Ok(())).unwrap();
        assert!(matches!(out, WorkerOutput::Frame(_)));
    }

    #[test]
    fn seed_disagreement_is_refused() {
        let sharded = ShardedSimulation::new(base_config(), 2).unwrap();
        let text = sharded.shard_config(0).to_key_values().unwrap();
        let mut spec = worker_spec(&sharded, 0);
        spec.expect_seed ^= 1;
        let err = run_oneshot(&spec, &text, &JsqFactory::new()).unwrap_err();
        assert!(err.to_string().contains("sub-master"), "{err}");
        let mut bad_index = worker_spec(&sharded, 0);
        bad_index.shard = 5;
        assert!(run_oneshot(&bad_index, &text, &JsqFactory::new()).is_err());
    }

    #[test]
    fn fault_plan_controls_the_output() {
        let sharded = ShardedSimulation::new(base_config(), 2).unwrap();
        let factory = JsqFactory::new();
        let text = sharded.shard_config(1).to_key_values().unwrap();
        let with = |fault: WorkerFaultPlan| {
            let mut spec = worker_spec(&sharded, 1);
            spec.fault = fault;
            run_oneshot(&spec, &text, &factory).unwrap()
        };
        assert_eq!(
            with(WorkerFaultPlan {
                exit_code: Some(7),
                ..WorkerFaultPlan::default()
            }),
            WorkerOutput::Exit(7)
        );
        assert_eq!(
            with(WorkerFaultPlan {
                hang: true,
                ..WorkerFaultPlan::default()
            }),
            WorkerOutput::Hang
        );
        assert_eq!(
            with(WorkerFaultPlan {
                fail_after_round: Some(50),
                ..WorkerFaultPlan::default()
            }),
            WorkerOutput::Exit(101)
        );
        // A crash point beyond the horizon never fires.
        let clean = with(WorkerFaultPlan {
            fail_after_round: Some(10_000),
            ..WorkerFaultPlan::default()
        });
        let WorkerOutput::Frame(clean_frame) = clean else {
            panic!("late crash point must not fire");
        };
        decode_shard_report(&clean_frame).unwrap();
        // Corruption keeps the length but breaks the checksum; truncation
        // cuts the frame short. Both must be rejected by the codec.
        let WorkerOutput::Frame(corrupt) = with(WorkerFaultPlan {
            corrupt_frame: true,
            ..WorkerFaultPlan::default()
        }) else {
            panic!("corrupt-frame still emits bytes");
        };
        assert_eq!(corrupt.len(), clean_frame.len());
        assert!(decode_shard_report(&corrupt).is_err());
        let WorkerOutput::Frame(truncated) = with(WorkerFaultPlan {
            truncate_frame: true,
            ..WorkerFaultPlan::default()
        }) else {
            panic!("truncate-frame still emits bytes");
        };
        assert!(truncated.len() < clean_frame.len());
        assert!(decode_shard_report(&truncated).is_err());
    }

    #[test]
    fn fault_plan_round_trips_through_args() {
        let plan = WorkerFaultPlan {
            fail_after_round: Some(3),
            fail_after_checkpoint: Some(1),
            hang: true,
            corrupt_frame: true,
            truncate_frame: true,
            exit_code: Some(-2),
        };
        assert_eq!(
            plan.to_args(),
            vec![
                "--fail-after-round",
                "3",
                "--fail-after-checkpoint",
                "1",
                "--hang",
                "--corrupt-frame",
                "--truncate-frame",
                "--exit-code",
                "-2"
            ]
        );
        assert!(WorkerFaultPlan::default().is_clean());
        assert!(WorkerFaultPlan::default().to_args().is_empty());
        assert!(!plan.is_clean());
    }
}
