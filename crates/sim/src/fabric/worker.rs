//! The in-process body of the `shard_worker` binary.
//!
//! A worker is intentionally dumb: it receives one *already derived* shard
//! configuration (the `key = value` wire form of
//! [`SimConfig`], produced by
//! [`ShardedSimulation::shard_config`](crate::ShardedSimulation) on the
//! orchestrator side) on stdin, cross-checks it against the orchestrator's
//! expectations, runs the shard exactly like the in-process engine would,
//! and emits a single checksummed report frame on stdout. Everything
//! operational — supervision, timeouts, retries, merging — lives with the
//! orchestrator; a worker that dies mid-run leaves nothing behind but a
//! classifiable failure.
//!
//! The [`WorkerFaultPlan`] makes the failure modes *deterministic and
//! injectable*: a crash before the frame, a hang, a corrupted or truncated
//! frame, an arbitrary exit code. The fault-tolerance tests and the CI
//! smoke job drive the orchestrator through every classification branch
//! with these flags, on the real process boundary.

use crate::config::SimConfig;
use crate::engine::{SimError, Simulation};
use crate::fabric::codec::encode_shard_report;
use crate::shard::ShardReport;
use scd_model::PolicyFactory;

/// Deterministic fault injection for one worker invocation. The default
/// plan is fault-free.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WorkerFaultPlan {
    /// Crash (exit code 101, no frame) once the run would have passed this
    /// round. A value at or beyond the configured round count never fires,
    /// so the same flag is safe on re-runs with longer horizons.
    pub fail_after_round: Option<u64>,
    /// Never produce output and never exit — simulate a wedged process.
    /// The orchestrator's wall-clock timeout is the only way out.
    pub hang: bool,
    /// Emit the frame with one payload byte flipped, so the checksum
    /// rejects it.
    pub corrupt_frame: bool,
    /// Emit only the first half of the frame.
    pub truncate_frame: bool,
    /// Exit with this code immediately, before reading the configuration —
    /// simulate a worker that dies on startup.
    pub exit_code: Option<i32>,
}

impl WorkerFaultPlan {
    /// Whether this plan injects anything at all.
    pub fn is_clean(&self) -> bool {
        *self == WorkerFaultPlan::default()
    }

    /// Renders the plan as `shard_worker` command-line flags — the form
    /// the orchestrator appends to an injected attempt's argument list.
    pub fn to_args(&self) -> Vec<String> {
        let mut args = Vec::new();
        if let Some(round) = self.fail_after_round {
            args.push("--fail-after-round".into());
            args.push(round.to_string());
        }
        if self.hang {
            args.push("--hang".into());
        }
        if self.corrupt_frame {
            args.push("--corrupt-frame".into());
        }
        if self.truncate_frame {
            args.push("--truncate-frame".into());
        }
        if let Some(code) = self.exit_code {
            args.push("--exit-code".into());
            args.push(code.to_string());
        }
        args
    }
}

/// Everything a worker invocation is told on its command line (the shard
/// configuration itself arrives separately, on stdin).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerSpec {
    /// Index of the shard this worker runs.
    pub shard: usize,
    /// Total shard count `k` of the run.
    pub num_shards: usize,
    /// The sub-master seed the orchestrator derived for this shard
    /// ([`shard_master_seed`](scd_model::streams::shard_master_seed)). The
    /// worker refuses a configuration whose seed disagrees — the
    /// retry-from-seed guarantee hinges on running the exact seed the
    /// orchestrator distributed.
    pub expect_seed: u64,
    /// Structural digest of the **base** configuration
    /// ([`SimConfig::digest`](crate::SimConfig::digest)), echoed verbatim
    /// into the report frame so the orchestrator can tie the report back
    /// to the experiment it belongs to.
    pub config_digest: u64,
    /// Injected faults, if any.
    pub fault: WorkerFaultPlan,
}

/// What the worker binary should do after [`run_worker`] returns — kept as
/// data so the whole decision procedure (including every injected fault)
/// is testable without a process boundary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkerOutput {
    /// Write these bytes to stdout and exit 0.
    Frame(Vec<u8>),
    /// Exit with this code without writing anything.
    Exit(i32),
    /// Park forever; the supervisor's timeout will kill the process.
    Hang,
}

/// Runs one worker invocation: parse and cross-check the configuration,
/// apply the fault plan, simulate the shard, encode the frame.
///
/// # Errors
/// Returns [`SimError::InvalidConfig`] for an inconsistent spec (shard
/// index out of range, stdin seed disagreeing with `expect_seed`), any
/// parse error of the configuration text, and whatever the shard's own
/// [`Simulation`] run reports. The binary maps errors to stderr plus a
/// nonzero exit, which the orchestrator classifies like any other crash.
pub fn run_worker(
    spec: &WorkerSpec,
    config_text: &str,
    factory: &dyn PolicyFactory,
) -> Result<WorkerOutput, SimError> {
    if let Some(code) = spec.fault.exit_code {
        return Ok(WorkerOutput::Exit(code));
    }
    if spec.shard >= spec.num_shards {
        return Err(SimError::InvalidConfig(format!(
            "worker told to run shard {} of a {}-shard run",
            spec.shard, spec.num_shards
        )));
    }
    let config = SimConfig::from_key_values(config_text)?;
    if config.seed != spec.expect_seed {
        return Err(SimError::InvalidConfig(format!(
            "shard {} received a configuration seeded {:#018x}, but the \
             orchestrator distributed sub-master {:#018x} — refusing to run \
             a shard the retry contract could not reproduce",
            spec.shard, config.seed, spec.expect_seed
        )));
    }
    if spec.fault.hang {
        return Ok(WorkerOutput::Hang);
    }
    if let Some(round) = spec.fault.fail_after_round {
        if round < config.rounds {
            // The injected crash kills the process before any output; how
            // many rounds were actually computed is unobservable, so none
            // are — byte-for-byte the same failure, without the wasted CPU.
            return Ok(WorkerOutput::Exit(101));
        }
    }
    let num_servers = config.num_servers();
    let report = Simulation::new(config)?.run(factory)?;
    let shard_report = ShardReport {
        shard: spec.shard,
        num_shards: spec.num_shards,
        num_servers,
        config_digest: spec.config_digest,
        report,
    };
    let mut frame = encode_shard_report(&shard_report).map_err(|cause| SimError::Codec {
        shard: spec.shard,
        cause,
    })?;
    if spec.fault.corrupt_frame {
        // Flip a bit in the first payload byte: past the header, so the
        // envelope still parses and the *checksum* is what catches it.
        frame[17] ^= 0x01;
    }
    if spec.fault.truncate_frame {
        frame.truncate(frame.len() / 2);
    }
    Ok(WorkerOutput::Frame(frame))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrivals::ArrivalSpec;
    use crate::fabric::codec::decode_shard_report;
    use crate::shard::ShardedSimulation;
    use scd_model::ClusterSpec;
    use scd_policies::JsqFactory;

    fn base_config() -> SimConfig {
        let rates: Vec<f64> = (0..8).map(|s| 1.0 + (s % 3) as f64).collect();
        SimConfig::builder(ClusterSpec::from_rates(rates).unwrap())
            .dispatchers(4)
            .rounds(200)
            .warmup_rounds(20)
            .seed(11)
            .arrivals(ArrivalSpec::PoissonOfferedLoad { offered_load: 0.8 })
            .build()
            .unwrap()
    }

    fn worker_spec(sharded: &ShardedSimulation, shard: usize) -> WorkerSpec {
        WorkerSpec {
            shard,
            num_shards: sharded.num_shards(),
            expect_seed: sharded.shard_config(shard).seed,
            config_digest: sharded.config().digest(),
            fault: WorkerFaultPlan::default(),
        }
    }

    #[test]
    fn worker_reproduces_the_in_process_shard_bit_for_bit() {
        let sharded = ShardedSimulation::new(base_config(), 2).unwrap();
        let factory = JsqFactory::new();
        let in_process = sharded.run_shards(&factory, 1).unwrap();
        for (shard, expected) in in_process.iter().enumerate() {
            let text = sharded.shard_config(shard).to_key_values().unwrap();
            let spec = worker_spec(&sharded, shard);
            match run_worker(&spec, &text, &factory).unwrap() {
                WorkerOutput::Frame(frame) => {
                    assert_eq!(&decode_shard_report(&frame).unwrap(), expected);
                }
                other => panic!("clean worker produced {other:?}"),
            }
        }
    }

    #[test]
    fn seed_disagreement_is_refused() {
        let sharded = ShardedSimulation::new(base_config(), 2).unwrap();
        let text = sharded.shard_config(0).to_key_values().unwrap();
        let mut spec = worker_spec(&sharded, 0);
        spec.expect_seed ^= 1;
        let err = run_worker(&spec, &text, &JsqFactory::new()).unwrap_err();
        assert!(err.to_string().contains("sub-master"), "{err}");
        let mut bad_index = worker_spec(&sharded, 0);
        bad_index.shard = 5;
        assert!(run_worker(&bad_index, &text, &JsqFactory::new()).is_err());
    }

    #[test]
    fn fault_plan_controls_the_output() {
        let sharded = ShardedSimulation::new(base_config(), 2).unwrap();
        let factory = JsqFactory::new();
        let text = sharded.shard_config(1).to_key_values().unwrap();
        let with = |fault: WorkerFaultPlan| {
            let mut spec = worker_spec(&sharded, 1);
            spec.fault = fault;
            run_worker(&spec, &text, &factory).unwrap()
        };
        assert_eq!(
            with(WorkerFaultPlan {
                exit_code: Some(7),
                ..WorkerFaultPlan::default()
            }),
            WorkerOutput::Exit(7)
        );
        assert_eq!(
            with(WorkerFaultPlan {
                hang: true,
                ..WorkerFaultPlan::default()
            }),
            WorkerOutput::Hang
        );
        assert_eq!(
            with(WorkerFaultPlan {
                fail_after_round: Some(50),
                ..WorkerFaultPlan::default()
            }),
            WorkerOutput::Exit(101)
        );
        // A crash point beyond the horizon never fires.
        let clean = with(WorkerFaultPlan {
            fail_after_round: Some(10_000),
            ..WorkerFaultPlan::default()
        });
        let WorkerOutput::Frame(clean_frame) = clean else {
            panic!("late crash point must not fire");
        };
        decode_shard_report(&clean_frame).unwrap();
        // Corruption keeps the length but breaks the checksum; truncation
        // cuts the frame short. Both must be rejected by the codec.
        let WorkerOutput::Frame(corrupt) = with(WorkerFaultPlan {
            corrupt_frame: true,
            ..WorkerFaultPlan::default()
        }) else {
            panic!("corrupt-frame still emits bytes");
        };
        assert_eq!(corrupt.len(), clean_frame.len());
        assert!(decode_shard_report(&corrupt).is_err());
        let WorkerOutput::Frame(truncated) = with(WorkerFaultPlan {
            truncate_frame: true,
            ..WorkerFaultPlan::default()
        }) else {
            panic!("truncate-frame still emits bytes");
        };
        assert!(truncated.len() < clean_frame.len());
        assert!(decode_shard_report(&truncated).is_err());
    }

    #[test]
    fn fault_plan_round_trips_through_args() {
        let plan = WorkerFaultPlan {
            fail_after_round: Some(3),
            hang: true,
            corrupt_frame: true,
            truncate_frame: true,
            exit_code: Some(-2),
        };
        assert_eq!(
            plan.to_args(),
            vec![
                "--fail-after-round",
                "3",
                "--hang",
                "--corrupt-frame",
                "--truncate-frame",
                "--exit-code",
                "-2"
            ]
        );
        assert!(WorkerFaultPlan::default().is_clean());
        assert!(WorkerFaultPlan::default().to_args().is_empty());
        assert!(!plan.is_clean());
    }
}
