//! The fault-tolerant multi-process shard fabric.
//!
//! [`ShardedSimulation`](crate::ShardedSimulation) splits a run into `k`
//! independent sub-systems whose only cross-shard operation is the final
//! report merge. This module takes the next step: run those shards in
//! **separate OS processes** — supervised workers that can crash, hang, or
//! corrupt their output without taking the experiment down — and merge
//! whatever survives.
//!
//! Three layers, mirroring the classic supervisor tree:
//!
//! * [`codec`] — a versioned, length-prefixed, checksummed binary frame
//!   around one [`ShardReport`](crate::ShardReport). Everything a worker
//!   sends is either a provably intact frame or a classified rejection
//!   ([`CodecError`]); a torn pipe can never smuggle half a histogram into
//!   a merged report.
//! * [`worker`] — the in-process body of the `shard_worker` binary: parse
//!   one shard's configuration (the `key = value` wire form of
//!   [`SimConfig`](crate::SimConfig) on stdin), check it against the
//!   orchestrator's expectations (sub-master seed, config digest), run the
//!   shard, emit one frame on stdout. A deterministic [`WorkerFaultPlan`]
//!   injects crashes/hangs/corruption for the fault-tolerance tests — the
//!   faults are part of the observable contract, not test-only hacks.
//! * [`orchestrator`] — spawn `k` workers, supervise them under a
//!   wall-clock timeout, classify every failure ([`WorkerFailure`]), retry
//!   failed shards from their seeds with seeded exponential backoff, and
//!   degrade to a **partial merge** (lost shards accounted in
//!   [`DegradationMetrics::shards_lost`](crate::DegradationMetrics)) when
//!   retries run out.
//!
//! # Determinism
//!
//! A shard's report is a pure function of its derived configuration, and
//! retries re-run the *identical* configuration — so a retried crash is
//! indistinguishable from a run that never crashed, and a clean or
//! recovered orchestrated run is **bit-identical** to the in-process
//! [`ShardedSimulation`](crate::ShardedSimulation) at the same `k` (pinned
//! by `crates/experiments/tests/fabric_e2e.rs`). Backoff jitter draws from
//! the dedicated `FABRIC_RETRY_STREAM_TAG` stream of
//! [`scd_model::streams`], so even the retry schedule is reproducible.

pub mod codec;
pub mod orchestrator;
pub mod worker;

pub use codec::{decode_shard_report, encode_shard_report, CodecError, FRAME_VERSION};
pub use orchestrator::{
    run_fabric, FabricOutcome, FabricSpec, InjectedFault, ShardAttempt, WorkerFailure,
};
pub use worker::{run_worker, WorkerFaultPlan, WorkerOutput, WorkerSpec};
