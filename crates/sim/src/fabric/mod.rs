//! The fault-tolerant multi-process shard fabric.
//!
//! [`ShardedSimulation`](crate::ShardedSimulation) splits a run into `k`
//! independent sub-systems whose only cross-shard operation is the final
//! report merge. This module takes the next step: run those shards in
//! **separate OS processes** — supervised workers that can crash, hang, or
//! corrupt their output without taking the experiment down — and merge
//! whatever survives.
//!
//! Three layers, mirroring the classic supervisor tree:
//!
//! * [`codec`] — a versioned, length-prefixed, checksummed binary frame
//!   envelope. The legacy v2 generation wraps one
//!   [`ShardReport`](crate::ShardReport); the streaming v3 generation adds
//!   a kind byte and carries `Progress` heartbeats, restartable
//!   `Checkpoint` state and the `Final` report over the same envelope.
//!   Everything a worker sends is either a provably intact frame or a
//!   classified rejection ([`CodecError`]); a torn pipe can never smuggle
//!   half a histogram — or half a checkpoint — into a run.
//! * [`worker`] — the in-process body of the `shard_worker` binary: parse
//!   one shard's configuration (the `key = value` wire form of
//!   [`SimConfig`](crate::SimConfig) on stdin), check it against the
//!   orchestrator's expectations (sub-master seed, config digest), run the
//!   shard, and stream frames on stdout — one v2 frame in the legacy
//!   one-shot mode (`--checkpoint-every 0`), a progress/checkpoint pair
//!   every `R` rounds plus a v3 final frame otherwise. `--resume-from
//!   stdin` restores a retained checkpoint and continues bit-identically.
//!   A deterministic [`WorkerFaultPlan`] injects crashes (including
//!   mid-stream, right after the N-th checkpoint), hangs and corruption
//!   for the fault-tolerance tests — the faults are part of the observable
//!   contract, not test-only hacks.
//! * [`orchestrator`] — spawn `k` workers, supervise them under a
//!   **heartbeat deadline** (the per-frame inter-arrival bound, which
//!   degenerates to the classic per-attempt wall clock when nothing
//!   streams), classify every failure ([`WorkerFailure`]), retain each
//!   shard's last verified checkpoint, restart failed workers **from that
//!   checkpoint** — falling back to retry-from-seed when none exists or
//!   the worker refuses it — with seeded exponential backoff, and degrade
//!   to a **partial merge** (lost shards accounted in
//!   [`DegradationMetrics::shards_lost`](crate::DegradationMetrics)) when
//!   retries run out.
//!
//! # Determinism
//!
//! A shard's report is a pure function of its derived configuration, and
//! a checkpoint fully determines the remainder of a run (every RNG draw is
//! counter-mode in `(seed, stream, ids, round)`) — so a retried crash,
//! whether restarted from seed or resumed from a checkpoint, is
//! indistinguishable from a run that never crashed, and a clean or
//! recovered orchestrated run is **bit-identical** to the in-process
//! [`ShardedSimulation`](crate::ShardedSimulation) at the same `k` (pinned
//! by `crates/experiments/tests/fabric_e2e.rs`). Backoff jitter draws from
//! the dedicated `FABRIC_RETRY_STREAM_TAG` stream of
//! [`scd_model::streams`], so even the retry schedule is reproducible.

pub mod codec;
pub mod orchestrator;
pub mod worker;

pub use codec::{
    decode_frame, decode_shard_report, encode_checkpoint_frame, encode_final_frame,
    encode_progress_frame, encode_shard_report, peek_frame_len, CheckpointFrame, CodecError, Frame,
    FrameKind, ProgressFrame, FRAME_VERSION, FRAME_VERSION_V2,
};
pub use orchestrator::{
    run_fabric, FabricOutcome, FabricSpec, InjectedFault, ShardAttempt, WorkerFailure,
    RESUME_DELIMITER,
};
pub use worker::{
    run_worker, WorkerFaultPlan, WorkerOutput, WorkerSpec, EXIT_CONFIG_REJECTED,
    EXIT_RESUME_REJECTED,
};
