//! The shard-report frame codec: the only bytes that cross a fabric
//! process boundary.
//!
//! A frame wraps exactly one [`ShardReport`]:
//!
//! ```text
//! offset  size  field
//! 0       4     magic  b"SCDF"
//! 4       1     format version (FRAME_VERSION)
//! 5       8     config digest (LE u64, SimConfig::digest of the base run)
//! 13      4     payload length (LE u32)
//! 17      len   payload (the ShardReport, field by field, LE)
//! 17+len  8     FNV-1a 64 checksum (LE u64) over bytes 4 .. 17+len
//! ```
//!
//! The payload encodes every field explicitly — counters and lengths as
//! LE integers, floats by their IEEE-754 bit patterns (`to_bits`/
//! `from_bits`, so the empty-histogram `±∞` sentinels and every
//! shortest-repr-hostile value survive verbatim), strings and bucket
//! arrays length-prefixed, `Option`s as a `0`/`1` tag byte. Decoding is
//! **strict**: wrong magic, unknown version, bad checksum, truncated
//! input, trailing bytes, over-long declared lengths and histogram shapes
//! the metrics types reject all map to a distinct [`CodecError`] — the
//! orchestrator's failure classification is built directly on these.
//!
//! The checksum is FNV-1a 64: not cryptographic (the fabric trusts its own
//! workers; it defends against *torn pipes*, not adversaries), dependency-
//! free, and strong enough that the corruption-injection tests can flip
//! any single payload byte and be caught.

use crate::report::{DegradationMetrics, QueueSummary, SimReport};
use crate::shard::ShardReport;
use scd_metrics::{DecisionTimeHistogram, ResponseTimeHistogram};
use std::error::Error;
use std::fmt;

/// The 4-byte frame preamble.
pub const FRAME_MAGIC: [u8; 4] = *b"SCDF";

/// Current frame-format version; bumped on any payload layout change.
pub const FRAME_VERSION: u8 = 2;

/// Upper bound on a frame's declared payload length. The largest legal
/// payload (a saturated response-time histogram plus a decision-time
/// histogram) is under 9 MiB; anything claiming more is rejected before a
/// single payload byte is read, so a corrupt length field cannot trigger a
/// giant allocation.
pub const MAX_PAYLOAD_LEN: u32 = 32 << 20;

/// Why a byte sequence was rejected as a shard-report frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The input ended before the decoder read everything it needed.
    Truncated {
        /// Bytes the decoder needed.
        needed: usize,
        /// Bytes the input actually held.
        got: usize,
    },
    /// The first four bytes are not [`FRAME_MAGIC`] — the stream does not
    /// carry a frame at all (e.g. a worker's stray print on stdout).
    BadMagic {
        /// The four bytes found instead.
        got: [u8; 4],
    },
    /// The version byte names a format this decoder does not speak.
    UnsupportedVersion {
        /// The version byte found.
        got: u8,
    },
    /// The declared payload length exceeds [`MAX_PAYLOAD_LEN`].
    Oversized {
        /// The declared length.
        len: u32,
    },
    /// Frame bytes extend past the declared end — two concatenated frames,
    /// or garbage after a valid frame. One worker sends exactly one frame.
    TrailingBytes {
        /// Count of unexpected extra bytes.
        extra: usize,
    },
    /// The stored checksum does not match the received bytes.
    ChecksumMismatch {
        /// Checksum recomputed from the received bytes.
        computed: u64,
        /// Checksum stored in the frame.
        stored: u64,
    },
    /// The envelope was intact but the payload violates the layout (bad
    /// option tag, non-UTF-8 policy name, histogram shape rejected by the
    /// metrics types, …).
    Malformed(String),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated { needed, got } => {
                write!(f, "truncated frame: needed {needed} bytes, got {got}")
            }
            CodecError::BadMagic { got } => {
                write!(
                    f,
                    "bad frame magic {got:02x?} (expected {FRAME_MAGIC:02x?})"
                )
            }
            CodecError::UnsupportedVersion { got } => {
                write!(
                    f,
                    "unsupported frame version {got} (this decoder speaks {FRAME_VERSION})"
                )
            }
            CodecError::Oversized { len } => {
                write!(
                    f,
                    "declared payload of {len} bytes exceeds the {MAX_PAYLOAD_LEN}-byte cap"
                )
            }
            CodecError::TrailingBytes { extra } => {
                write!(f, "{extra} unexpected bytes after the frame")
            }
            CodecError::ChecksumMismatch { computed, stored } => {
                write!(
                    f,
                    "checksum mismatch: frame stores {stored:#018x}, bytes hash to {computed:#018x}"
                )
            }
            CodecError::Malformed(msg) => write!(f, "malformed payload: {msg}"),
        }
    }
}

impl Error for CodecError {}

/// FNV-1a 64 over a byte slice — the frame's integrity check.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Little-endian payload writer.
struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    fn new() -> Self {
        ByteWriter { buf: Vec::new() }
    }

    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn u128(&mut self, v: u128) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// `usize` narrowed to the wire's u32; all encoded quantities (shard
    /// indices, bucket counts, name lengths) are far below `u32::MAX`.
    fn len(&mut self, v: usize) -> Result<(), CodecError> {
        let v = u32::try_from(v)
            .map_err(|_| CodecError::Malformed(format!("length {v} exceeds the u32 wire width")))?;
        self.u32(v);
        Ok(())
    }

    fn str(&mut self, s: &str) -> Result<(), CodecError> {
        self.len(s.len())?;
        self.buf.extend_from_slice(s.as_bytes());
        Ok(())
    }

    fn counts(&mut self, counts: &[u64]) -> Result<(), CodecError> {
        self.len(counts.len())?;
        for &c in counts {
            self.u64(c);
        }
        Ok(())
    }
}

/// Little-endian payload reader over a borrowed slice.
struct ByteReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        ByteReader { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        let end = self.pos.checked_add(n).ok_or(CodecError::Truncated {
            needed: usize::MAX,
            got: self.bytes.len(),
        })?;
        if end > self.bytes.len() {
            return Err(CodecError::Truncated {
                needed: end,
                got: self.bytes.len(),
            });
        }
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    fn u128(&mut self) -> Result<u128, CodecError> {
        Ok(u128::from_le_bytes(
            self.take(16)?.try_into().expect("16 bytes"),
        ))
    }

    fn f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn len(&mut self) -> Result<usize, CodecError> {
        Ok(self.u32()? as usize)
    }

    fn str(&mut self) -> Result<String, CodecError> {
        let len = self.len()?;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| CodecError::Malformed("policy name is not UTF-8".into()))
    }

    fn counts(&mut self) -> Result<Vec<u64>, CodecError> {
        let len = self.len()?;
        // The envelope already bounds the payload, so `len` can at worst
        // overstate what is left in the slice — caught by `take`.
        let mut out = Vec::with_capacity(len.min(self.bytes.len() / 8 + 1));
        for _ in 0..len {
            out.push(self.u64()?);
        }
        Ok(out)
    }

    fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }
}

fn encode_payload(report: &ShardReport) -> Result<Vec<u8>, CodecError> {
    let mut w = ByteWriter::new();
    w.len(report.shard)?;
    w.len(report.num_shards)?;
    w.len(report.num_servers)?;
    let r = &report.report;
    w.str(&r.policy)?;
    w.u64(r.rounds);
    w.u64(r.warmup_rounds);
    w.f64(r.offered_load);
    w.u64(r.jobs_dispatched);
    w.u64(r.jobs_completed);
    w.u64(r.jobs_in_flight);
    w.u64(r.response_times.count());
    w.u128(r.response_times.raw_sum());
    w.counts(r.response_times.bucket_counts())?;
    w.f64(r.queues.mean_total_backlog);
    w.f64(r.queues.max_total_backlog);
    w.f64(r.queues.worst_mean_queue);
    w.f64(r.queues.mean_idle_fraction);
    w.counts(&r.queue_occupancy)?;
    match &r.decision_times_us {
        None => w.u8(0),
        Some(hist) => {
            w.u8(1);
            let (count, sum, min, max) = hist.raw_parts();
            w.u64(count);
            w.f64(sum);
            w.f64(min);
            w.f64(max);
            w.counts(hist.bucket_counts())?;
        }
    }
    match &r.degradation {
        None => w.u8(0),
        Some(d) => {
            w.u8(1);
            w.u64(d.server_down_rounds);
            w.u64(d.dispatcher_offline_rounds);
            w.u64(d.arrivals_lost);
            w.u64(d.probes_dropped);
            w.u64(d.stale_decision_rounds);
            w.u64(d.herding_rounds);
            w.u64(d.shards_lost);
            w.u64(d.rounds_lost);
        }
    }
    Ok(w.buf)
}

fn decode_payload(payload: &[u8], config_digest: u64) -> Result<ShardReport, CodecError> {
    let mut r = ByteReader::new(payload);
    let shard = r.len()?;
    let num_shards = r.len()?;
    let num_servers = r.len()?;
    let policy = r.str()?;
    let rounds = r.u64()?;
    let warmup_rounds = r.u64()?;
    let offered_load = r.f64()?;
    let jobs_dispatched = r.u64()?;
    let jobs_completed = r.u64()?;
    let jobs_in_flight = r.u64()?;
    let rt_total = r.u64()?;
    let rt_sum = r.u128()?;
    let rt_counts = r.counts()?;
    let response_times = ResponseTimeHistogram::from_raw_parts(rt_counts, rt_total, rt_sum)
        .map_err(CodecError::Malformed)?;
    let queues = QueueSummary {
        mean_total_backlog: r.f64()?,
        max_total_backlog: r.f64()?,
        worst_mean_queue: r.f64()?,
        mean_idle_fraction: r.f64()?,
    };
    let queue_occupancy = r.counts()?;
    let decision_times_us = match r.u8()? {
        0 => None,
        1 => {
            let count = r.u64()?;
            let sum = r.f64()?;
            let min = r.f64()?;
            let max = r.f64()?;
            let counts = r.counts()?;
            Some(
                DecisionTimeHistogram::from_raw_parts(counts, (count, sum, min, max))
                    .map_err(CodecError::Malformed)?,
            )
        }
        tag => {
            return Err(CodecError::Malformed(format!(
                "decision-time option tag must be 0 or 1, got {tag}"
            )));
        }
    };
    let degradation = match r.u8()? {
        0 => None,
        1 => Some(DegradationMetrics {
            server_down_rounds: r.u64()?,
            dispatcher_offline_rounds: r.u64()?,
            arrivals_lost: r.u64()?,
            probes_dropped: r.u64()?,
            stale_decision_rounds: r.u64()?,
            herding_rounds: r.u64()?,
            shards_lost: r.u64()?,
            rounds_lost: r.u64()?,
        }),
        tag => {
            return Err(CodecError::Malformed(format!(
                "degradation option tag must be 0 or 1, got {tag}"
            )));
        }
    };
    if r.remaining() != 0 {
        return Err(CodecError::Malformed(format!(
            "{} unread bytes after the last payload field",
            r.remaining()
        )));
    }
    Ok(ShardReport {
        shard,
        num_shards,
        num_servers,
        config_digest,
        report: SimReport {
            policy,
            rounds,
            warmup_rounds,
            offered_load,
            jobs_dispatched,
            jobs_completed,
            jobs_in_flight,
            response_times,
            queues,
            queue_occupancy,
            decision_times_us,
            degradation,
        },
    })
}

/// Encodes one [`ShardReport`] into a complete frame (header, payload,
/// checksum). The header digest is the report's own
/// [`config_digest`](ShardReport::config_digest).
///
/// # Errors
/// Returns [`CodecError::Malformed`] only if a length field exceeds the
/// u32 wire width — impossible for reports produced by the engine.
pub fn encode_shard_report(report: &ShardReport) -> Result<Vec<u8>, CodecError> {
    let payload = encode_payload(report)?;
    if payload.len() > MAX_PAYLOAD_LEN as usize {
        return Err(CodecError::Oversized {
            len: payload.len() as u32,
        });
    }
    let mut frame = Vec::with_capacity(4 + 1 + 8 + 4 + payload.len() + 8);
    frame.extend_from_slice(&FRAME_MAGIC);
    frame.push(FRAME_VERSION);
    frame.extend_from_slice(&report.config_digest.to_le_bytes());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&payload);
    let checksum = fnv1a64(&frame[4..]);
    frame.extend_from_slice(&checksum.to_le_bytes());
    Ok(frame)
}

/// Decodes one complete frame back into a [`ShardReport`], verifying
/// magic, version, declared length, checksum and payload layout. Strict:
/// the slice must contain exactly one frame and nothing else.
///
/// # Errors
/// Every rejection is a distinct [`CodecError`] variant; see the type.
pub fn decode_shard_report(bytes: &[u8]) -> Result<ShardReport, CodecError> {
    const HEADER_LEN: usize = 4 + 1 + 8 + 4;
    if bytes.len() < HEADER_LEN {
        return Err(CodecError::Truncated {
            needed: HEADER_LEN,
            got: bytes.len(),
        });
    }
    let magic: [u8; 4] = bytes[0..4].try_into().expect("4 bytes");
    if magic != FRAME_MAGIC {
        return Err(CodecError::BadMagic { got: magic });
    }
    let version = bytes[4];
    if version != FRAME_VERSION {
        return Err(CodecError::UnsupportedVersion { got: version });
    }
    let config_digest = u64::from_le_bytes(bytes[5..13].try_into().expect("8 bytes"));
    let payload_len = u32::from_le_bytes(bytes[13..17].try_into().expect("4 bytes"));
    if payload_len > MAX_PAYLOAD_LEN {
        return Err(CodecError::Oversized { len: payload_len });
    }
    let frame_len = HEADER_LEN + payload_len as usize + 8;
    if bytes.len() < frame_len {
        return Err(CodecError::Truncated {
            needed: frame_len,
            got: bytes.len(),
        });
    }
    if bytes.len() > frame_len {
        return Err(CodecError::TrailingBytes {
            extra: bytes.len() - frame_len,
        });
    }
    let stored = u64::from_le_bytes(bytes[frame_len - 8..frame_len].try_into().expect("8 bytes"));
    let computed = fnv1a64(&bytes[4..frame_len - 8]);
    if computed != stored {
        return Err(CodecError::ChecksumMismatch { computed, stored });
    }
    decode_payload(&bytes[HEADER_LEN..frame_len - 8], config_digest)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report(shard: usize) -> ShardReport {
        let mut hist = ResponseTimeHistogram::new();
        for rt in [1u64, 2, 2, 7, 900] {
            hist.record(rt);
        }
        let mut decisions = DecisionTimeHistogram::new();
        decisions.record(0.25);
        decisions.record(1500.0);
        ShardReport {
            shard,
            num_shards: 4,
            num_servers: 16,
            config_digest: 0x0123_4567_89AB_CDEF,
            report: SimReport {
                policy: "SCD".into(),
                rounds: 400,
                warmup_rounds: 50,
                offered_load: 0.85,
                jobs_dispatched: 1000,
                jobs_completed: 995,
                jobs_in_flight: 5,
                response_times: hist,
                queues: QueueSummary {
                    mean_total_backlog: 4.25,
                    max_total_backlog: 19.0,
                    worst_mean_queue: 2.5,
                    mean_idle_fraction: 0.125,
                },
                queue_occupancy: vec![200, 120, 55, 0, u64::MAX],
                decision_times_us: Some(decisions),
                degradation: Some(DegradationMetrics {
                    server_down_rounds: 3,
                    rounds_lost: u64::MAX,
                    ..DegradationMetrics::default()
                }),
            },
        }
    }

    #[test]
    fn frame_round_trips_bit_for_bit() {
        let report = sample_report(2);
        let frame = encode_shard_report(&report).unwrap();
        assert_eq!(decode_shard_report(&frame).unwrap(), report);
    }

    #[test]
    fn every_truncation_is_rejected() {
        let frame = encode_shard_report(&sample_report(0)).unwrap();
        for len in 0..frame.len() {
            let err = decode_shard_report(&frame[..len]).unwrap_err();
            assert!(
                matches!(err, CodecError::Truncated { .. } | CodecError::Malformed(_)),
                "prefix of {len} bytes gave {err}"
            );
        }
    }

    #[test]
    fn any_single_flipped_payload_byte_is_caught() {
        let frame = encode_shard_report(&sample_report(1)).unwrap();
        // Flip one bit in every payload byte (skip the magic: flipping it
        // is a BadMagic, tested separately).
        for i in 4..frame.len() {
            let mut bad = frame.clone();
            bad[i] ^= 0x40;
            assert!(
                decode_shard_report(&bad).is_err(),
                "flipped byte {i} went undetected"
            );
        }
    }

    #[test]
    fn envelope_violations_are_classified() {
        let frame = encode_shard_report(&sample_report(3)).unwrap();
        let mut wrong_magic = frame.clone();
        wrong_magic[0] = b'X';
        assert!(matches!(
            decode_shard_report(&wrong_magic).unwrap_err(),
            CodecError::BadMagic { .. }
        ));
        let mut wrong_version = frame.clone();
        wrong_version[4] = FRAME_VERSION + 1;
        assert!(matches!(
            decode_shard_report(&wrong_version).unwrap_err(),
            CodecError::UnsupportedVersion { got } if got == FRAME_VERSION + 1
        ));
        let mut oversized = frame.clone();
        oversized[13..17].copy_from_slice(&(MAX_PAYLOAD_LEN + 1).to_le_bytes());
        assert!(matches!(
            decode_shard_report(&oversized).unwrap_err(),
            CodecError::Oversized { .. }
        ));
        let mut trailing = frame.clone();
        trailing.push(0);
        assert!(matches!(
            decode_shard_report(&trailing).unwrap_err(),
            CodecError::TrailingBytes { extra: 1 }
        ));
        let mut corrupt = frame;
        let mid = corrupt.len() / 2;
        corrupt[mid] ^= 0xFF;
        assert!(matches!(
            decode_shard_report(&corrupt).unwrap_err(),
            CodecError::ChecksumMismatch { .. } | CodecError::Malformed(_)
        ));
    }
}
