//! The fabric frame codec: the only bytes that cross a fabric process
//! boundary.
//!
//! Two envelope generations share the magic and checksum scheme:
//!
//! ```text
//! v2 (legacy, one final report per worker):
//! offset  size  field
//! 0       4     magic  b"SCDF"
//! 4       1     format version (FRAME_VERSION_V2 = 2)
//! 5       8     config digest (LE u64, SimConfig::digest of the base run)
//! 13      4     payload length (LE u32)
//! 17      len   payload (the ShardReport, field by field, LE)
//! 17+len  8     FNV-1a 64 checksum (LE u64) over bytes 4 .. 17+len
//!
//! v3 (streaming: progress / checkpoint / final):
//! offset  size  field
//! 0       4     magic  b"SCDF"
//! 4       1     format version (FRAME_VERSION = 3)
//! 5       1     frame kind (1 = Progress, 2 = Checkpoint, 3 = Final)
//! 6       8     config digest (LE u64)
//! 14      4     payload length (LE u32)
//! 18      len   payload (kind-specific, LE)
//! 18+len  8     FNV-1a 64 checksum (LE u64) over bytes 4 .. 18+len
//! ```
//!
//! A v2 frame is byte-for-byte what the PR 8 fabric shipped; workers
//! running with checkpointing off still emit exactly one v2 frame, and
//! [`decode_frame`] accepts both generations. The v3 `Final` payload is
//! the v2 report payload with the degradation block widened by the two
//! recovery counters (`checkpoints_taken`, `rounds_replayed`); `Progress`
//! carries a fixed-width heartbeat and `Checkpoint` an opaque serialized
//! [`EngineCheckpoint`](crate::checkpoint::EngineCheckpoint) blob.
//!
//! The payload encodes every field explicitly — counters and lengths as
//! LE integers, floats by their IEEE-754 bit patterns (`to_bits`/
//! `from_bits`, so the empty-histogram `±∞` sentinels and every
//! shortest-repr-hostile value survive verbatim), strings and bucket
//! arrays length-prefixed, `Option`s as a `0`/`1` tag byte. Decoding is
//! **strict**: wrong magic, unknown version, bad checksum, truncated
//! input, trailing bytes, over-long declared lengths and histogram shapes
//! the metrics types reject all map to a distinct [`CodecError`] — the
//! orchestrator's failure classification is built directly on these.
//!
//! The checksum is FNV-1a 64: not cryptographic (the fabric trusts its own
//! workers; it defends against *torn pipes*, not adversaries), dependency-
//! free, and strong enough that the corruption-injection tests can flip
//! any single payload byte and be caught.

use crate::report::{DegradationMetrics, QueueSummary, SimReport};
use crate::shard::ShardReport;
use scd_metrics::{DecisionTimeHistogram, ResponseTimeHistogram};
use std::error::Error;
use std::fmt;

/// The 4-byte frame preamble.
pub const FRAME_MAGIC: [u8; 4] = *b"SCDF";

/// Current frame-format version (the streaming generation with a kind
/// byte); bumped on any payload layout change.
pub const FRAME_VERSION: u8 = 3;

/// The legacy single-report frame version, still emitted verbatim when
/// checkpointing is off and accepted by every decoder entry point.
pub const FRAME_VERSION_V2: u8 = 2;

/// Upper bound on a frame's declared payload length. The largest legal
/// payload (a saturated response-time histogram plus a decision-time
/// histogram) is under 9 MiB; anything claiming more is rejected before a
/// single payload byte is read, so a corrupt length field cannot trigger a
/// giant allocation.
pub const MAX_PAYLOAD_LEN: u32 = 32 << 20;

/// Why a byte sequence was rejected as a shard-report frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The input ended before the decoder read everything it needed.
    Truncated {
        /// Bytes the decoder needed.
        needed: usize,
        /// Bytes the input actually held.
        got: usize,
    },
    /// The first four bytes are not [`FRAME_MAGIC`] — the stream does not
    /// carry a frame at all (e.g. a worker's stray print on stdout).
    BadMagic {
        /// The four bytes found instead.
        got: [u8; 4],
    },
    /// The version byte names a format this decoder does not speak.
    UnsupportedVersion {
        /// The version byte found.
        got: u8,
    },
    /// A v3 frame's kind byte names no known frame kind.
    UnknownKind {
        /// The kind byte found.
        got: u8,
    },
    /// The declared payload length exceeds [`MAX_PAYLOAD_LEN`].
    Oversized {
        /// The declared length.
        len: u32,
    },
    /// Frame bytes extend past the declared end — two concatenated frames,
    /// or garbage after a valid frame. One worker sends exactly one frame.
    TrailingBytes {
        /// Count of unexpected extra bytes.
        extra: usize,
    },
    /// The stored checksum does not match the received bytes.
    ChecksumMismatch {
        /// Checksum recomputed from the received bytes.
        computed: u64,
        /// Checksum stored in the frame.
        stored: u64,
    },
    /// The envelope was intact but the payload violates the layout (bad
    /// option tag, non-UTF-8 policy name, histogram shape rejected by the
    /// metrics types, …).
    Malformed(String),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated { needed, got } => {
                write!(f, "truncated frame: needed {needed} bytes, got {got}")
            }
            CodecError::BadMagic { got } => {
                write!(
                    f,
                    "bad frame magic {got:02x?} (expected {FRAME_MAGIC:02x?})"
                )
            }
            CodecError::UnsupportedVersion { got } => {
                write!(
                    f,
                    "unsupported frame version {got} (this decoder speaks \
                     {FRAME_VERSION_V2} and {FRAME_VERSION})"
                )
            }
            CodecError::UnknownKind { got } => {
                write!(f, "unknown v{FRAME_VERSION} frame kind byte {got}")
            }
            CodecError::Oversized { len } => {
                write!(
                    f,
                    "declared payload of {len} bytes exceeds the {MAX_PAYLOAD_LEN}-byte cap"
                )
            }
            CodecError::TrailingBytes { extra } => {
                write!(f, "{extra} unexpected bytes after the frame")
            }
            CodecError::ChecksumMismatch { computed, stored } => {
                write!(
                    f,
                    "checksum mismatch: frame stores {stored:#018x}, bytes hash to {computed:#018x}"
                )
            }
            CodecError::Malformed(msg) => write!(f, "malformed payload: {msg}"),
        }
    }
}

impl Error for CodecError {}

/// FNV-1a 64 over a byte slice — the frame's integrity check.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Little-endian payload writer, shared with the engine-checkpoint
/// serializer in [`crate::checkpoint`].
pub(crate) struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    pub(crate) fn new() -> Self {
        ByteWriter { buf: Vec::new() }
    }

    /// Consumes the writer, yielding the accumulated bytes.
    pub(crate) fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    pub(crate) fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub(crate) fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn u128(&mut self, v: u128) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// `usize` narrowed to the wire's u32; all encoded quantities (shard
    /// indices, bucket counts, name lengths) are far below `u32::MAX`.
    pub(crate) fn len(&mut self, v: usize) -> Result<(), CodecError> {
        let v = u32::try_from(v)
            .map_err(|_| CodecError::Malformed(format!("length {v} exceeds the u32 wire width")))?;
        self.u32(v);
        Ok(())
    }

    pub(crate) fn str(&mut self, s: &str) -> Result<(), CodecError> {
        self.len(s.len())?;
        self.buf.extend_from_slice(s.as_bytes());
        Ok(())
    }

    pub(crate) fn counts(&mut self, counts: &[u64]) -> Result<(), CodecError> {
        self.len(counts.len())?;
        for &c in counts {
            self.u64(c);
        }
        Ok(())
    }

    pub(crate) fn bytes(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }
}

/// Little-endian payload reader over a borrowed slice, shared with
/// [`crate::checkpoint`].
pub(crate) struct ByteReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    pub(crate) fn new(bytes: &'a [u8]) -> Self {
        ByteReader { bytes, pos: 0 }
    }

    pub(crate) fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        let end = self.pos.checked_add(n).ok_or(CodecError::Truncated {
            needed: usize::MAX,
            got: self.bytes.len(),
        })?;
        if end > self.bytes.len() {
            return Err(CodecError::Truncated {
                needed: end,
                got: self.bytes.len(),
            });
        }
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    pub(crate) fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    pub(crate) fn u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    pub(crate) fn u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    pub(crate) fn u128(&mut self) -> Result<u128, CodecError> {
        Ok(u128::from_le_bytes(
            self.take(16)?.try_into().expect("16 bytes"),
        ))
    }

    pub(crate) fn f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.u64()?))
    }

    pub(crate) fn len(&mut self) -> Result<usize, CodecError> {
        Ok(self.u32()? as usize)
    }

    pub(crate) fn str(&mut self) -> Result<String, CodecError> {
        let len = self.len()?;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| CodecError::Malformed("policy name is not UTF-8".into()))
    }

    pub(crate) fn counts(&mut self) -> Result<Vec<u64>, CodecError> {
        let len = self.len()?;
        // The envelope already bounds the payload, so `len` can at worst
        // overstate what is left in the slice — caught by `take`.
        let mut out = Vec::with_capacity(len.min(self.bytes.len() / 8 + 1));
        for _ in 0..len {
            out.push(self.u64()?);
        }
        Ok(out)
    }

    pub(crate) fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }
}

/// The three kinds a v3 frame can carry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum FrameKind {
    /// A liveness heartbeat: the worker is alive and at a given round.
    Progress = 1,
    /// A serialized [`EngineCheckpoint`](crate::checkpoint::EngineCheckpoint)
    /// the orchestrator can restart the shard from.
    Checkpoint = 2,
    /// The shard's final [`ShardReport`].
    Final = 3,
}

impl FrameKind {
    fn from_byte(b: u8) -> Result<Self, CodecError> {
        match b {
            1 => Ok(FrameKind::Progress),
            2 => Ok(FrameKind::Checkpoint),
            3 => Ok(FrameKind::Final),
            got => Err(CodecError::UnknownKind { got }),
        }
    }
}

/// A v3 heartbeat: emitted by a worker at every checkpoint boundary so the
/// orchestrator's liveness deadline measures *progress*, not wall clock.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProgressFrame {
    /// This worker's shard index.
    pub shard: u32,
    /// Total shards in the plan.
    pub num_shards: u32,
    /// Digest of the base (unsharded) `SimConfig`.
    pub config_digest: u64,
    /// The next round the worker is about to execute.
    pub round: u64,
    /// Total rounds in the run, so consumers can render progress.
    pub rounds_total: u64,
    /// Jobs dispatched so far on this shard.
    pub jobs_dispatched: u64,
}

/// A v3 checkpoint frame: an opaque serialized engine checkpoint, retained
/// by the orchestrator and shipped back to a replacement worker on retry.
///
/// The envelope checksum is the orchestrator's verification; the blob is
/// only decoded by the worker that resumes from it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointFrame {
    /// This worker's shard index.
    pub shard: u32,
    /// Total shards in the plan.
    pub num_shards: u32,
    /// Digest of the base (unsharded) `SimConfig`.
    pub config_digest: u64,
    /// The serialized [`EngineCheckpoint`](crate::checkpoint::EngineCheckpoint).
    pub state: Vec<u8>,
}

/// One decoded fabric frame of either envelope generation.
///
/// A legacy v2 frame decodes as [`Frame::Final`]; v3 frames decode by
/// their kind byte.
// The size skew is deliberate: exactly one `Final` is decoded per worker
// attempt, so boxing it would tax the common (streaming) path's match arms
// for no allocation win.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// A worker heartbeat.
    Progress(ProgressFrame),
    /// A restartable engine checkpoint.
    Checkpoint(CheckpointFrame),
    /// The shard's final report.
    Final(ShardReport),
}

fn encode_payload(report: &ShardReport, v3: bool) -> Result<Vec<u8>, CodecError> {
    let mut w = ByteWriter::new();
    w.len(report.shard)?;
    w.len(report.num_shards)?;
    w.len(report.num_servers)?;
    let r = &report.report;
    w.str(&r.policy)?;
    w.u64(r.rounds);
    w.u64(r.warmup_rounds);
    w.f64(r.offered_load);
    w.u64(r.jobs_dispatched);
    w.u64(r.jobs_completed);
    w.u64(r.jobs_in_flight);
    w.u64(r.response_times.count());
    w.u128(r.response_times.raw_sum());
    w.counts(r.response_times.bucket_counts())?;
    w.f64(r.queues.mean_total_backlog);
    w.f64(r.queues.max_total_backlog);
    w.f64(r.queues.worst_mean_queue);
    w.f64(r.queues.mean_idle_fraction);
    w.counts(&r.queue_occupancy)?;
    match &r.decision_times_us {
        None => w.u8(0),
        Some(hist) => {
            w.u8(1);
            let (count, sum, min, max) = hist.raw_parts();
            w.u64(count);
            w.f64(sum);
            w.f64(min);
            w.f64(max);
            w.counts(hist.bucket_counts())?;
        }
    }
    match &r.degradation {
        None => w.u8(0),
        Some(d) => {
            w.u8(1);
            w.u64(d.server_down_rounds);
            w.u64(d.dispatcher_offline_rounds);
            w.u64(d.arrivals_lost);
            w.u64(d.probes_dropped);
            w.u64(d.stale_decision_rounds);
            w.u64(d.herding_rounds);
            w.u64(d.shards_lost);
            w.u64(d.rounds_lost);
            if v3 {
                w.u64(d.checkpoints_taken);
                w.u64(d.rounds_replayed);
            } else if d.checkpoints_taken != 0 || d.rounds_replayed != 0 {
                // The legacy layout has no slots for the recovery counters;
                // dropping them silently would un-count real replays.
                return Err(CodecError::Malformed(format!(
                    "v{FRAME_VERSION_V2} frames cannot carry recovery counters \
                     (checkpoints_taken={}, rounds_replayed={})",
                    d.checkpoints_taken, d.rounds_replayed
                )));
            }
        }
    }
    Ok(w.into_bytes())
}

fn decode_payload(payload: &[u8], config_digest: u64, v3: bool) -> Result<ShardReport, CodecError> {
    let mut r = ByteReader::new(payload);
    let shard = r.len()?;
    let num_shards = r.len()?;
    let num_servers = r.len()?;
    let policy = r.str()?;
    let rounds = r.u64()?;
    let warmup_rounds = r.u64()?;
    let offered_load = r.f64()?;
    let jobs_dispatched = r.u64()?;
    let jobs_completed = r.u64()?;
    let jobs_in_flight = r.u64()?;
    let rt_total = r.u64()?;
    let rt_sum = r.u128()?;
    let rt_counts = r.counts()?;
    let response_times = ResponseTimeHistogram::from_raw_parts(rt_counts, rt_total, rt_sum)
        .map_err(CodecError::Malformed)?;
    let queues = QueueSummary {
        mean_total_backlog: r.f64()?,
        max_total_backlog: r.f64()?,
        worst_mean_queue: r.f64()?,
        mean_idle_fraction: r.f64()?,
    };
    let queue_occupancy = r.counts()?;
    let decision_times_us = match r.u8()? {
        0 => None,
        1 => {
            let count = r.u64()?;
            let sum = r.f64()?;
            let min = r.f64()?;
            let max = r.f64()?;
            let counts = r.counts()?;
            Some(
                DecisionTimeHistogram::from_raw_parts(counts, (count, sum, min, max))
                    .map_err(CodecError::Malformed)?,
            )
        }
        tag => {
            return Err(CodecError::Malformed(format!(
                "decision-time option tag must be 0 or 1, got {tag}"
            )));
        }
    };
    let degradation = match r.u8()? {
        0 => None,
        1 => Some(DegradationMetrics {
            server_down_rounds: r.u64()?,
            dispatcher_offline_rounds: r.u64()?,
            arrivals_lost: r.u64()?,
            probes_dropped: r.u64()?,
            stale_decision_rounds: r.u64()?,
            herding_rounds: r.u64()?,
            shards_lost: r.u64()?,
            rounds_lost: r.u64()?,
            checkpoints_taken: if v3 { r.u64()? } else { 0 },
            rounds_replayed: if v3 { r.u64()? } else { 0 },
        }),
        tag => {
            return Err(CodecError::Malformed(format!(
                "degradation option tag must be 0 or 1, got {tag}"
            )));
        }
    };
    if r.remaining() != 0 {
        return Err(CodecError::Malformed(format!(
            "{} unread bytes after the last payload field",
            r.remaining()
        )));
    }
    Ok(ShardReport {
        shard,
        num_shards,
        num_servers,
        config_digest,
        report: SimReport {
            policy,
            rounds,
            warmup_rounds,
            offered_load,
            jobs_dispatched,
            jobs_completed,
            jobs_in_flight,
            response_times,
            queues,
            queue_occupancy,
            decision_times_us,
            degradation,
        },
    })
}

/// Fixed header length of a v2 frame (magic, version, digest, len).
pub(crate) const HEADER_LEN_V2: usize = 4 + 1 + 8 + 4;
/// Fixed header length of a v3 frame (magic, version, kind, digest, len).
pub(crate) const HEADER_LEN_V3: usize = 4 + 1 + 1 + 8 + 4;

/// Wraps a payload in a complete frame: header, payload, checksum. A
/// `kind` of `None` emits the legacy v2 header.
fn seal_frame(
    kind: Option<FrameKind>,
    digest: u64,
    payload: Vec<u8>,
) -> Result<Vec<u8>, CodecError> {
    if payload.len() > MAX_PAYLOAD_LEN as usize {
        return Err(CodecError::Oversized {
            len: u32::try_from(payload.len()).unwrap_or(u32::MAX),
        });
    }
    let header_len = if kind.is_some() {
        HEADER_LEN_V3
    } else {
        HEADER_LEN_V2
    };
    let mut frame = Vec::with_capacity(header_len + payload.len() + 8);
    frame.extend_from_slice(&FRAME_MAGIC);
    match kind {
        Some(kind) => {
            frame.push(FRAME_VERSION);
            frame.push(kind as u8);
        }
        None => frame.push(FRAME_VERSION_V2),
    }
    frame.extend_from_slice(&digest.to_le_bytes());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&payload);
    let checksum = fnv1a64(&frame[4..]);
    frame.extend_from_slice(&checksum.to_le_bytes());
    Ok(frame)
}

/// Encodes one [`ShardReport`] into a complete **legacy v2** frame — the
/// byte-for-byte PR 8 wire format, still what a worker running with
/// checkpointing off emits. The header digest is the report's own
/// [`config_digest`](ShardReport::config_digest).
///
/// # Errors
/// Returns [`CodecError::Malformed`] if a length field exceeds the u32
/// wire width, or if the report carries nonzero recovery counters (the
/// legacy layout has no slots for them — use [`encode_final_frame`]).
pub fn encode_shard_report(report: &ShardReport) -> Result<Vec<u8>, CodecError> {
    seal_frame(None, report.config_digest, encode_payload(report, false)?)
}

/// Encodes one [`ShardReport`] into a v3 `Final` frame, recovery counters
/// included.
///
/// # Errors
/// Returns [`CodecError::Malformed`] only if a length field exceeds the
/// u32 wire width — impossible for reports produced by the engine.
pub fn encode_final_frame(report: &ShardReport) -> Result<Vec<u8>, CodecError> {
    seal_frame(
        Some(FrameKind::Final),
        report.config_digest,
        encode_payload(report, true)?,
    )
}

/// Encodes a heartbeat into a v3 `Progress` frame.
///
/// # Errors
/// Infallible in practice; the signature matches its siblings.
pub fn encode_progress_frame(progress: &ProgressFrame) -> Result<Vec<u8>, CodecError> {
    let mut w = ByteWriter::new();
    w.u32(progress.shard);
    w.u32(progress.num_shards);
    w.u64(progress.round);
    w.u64(progress.rounds_total);
    w.u64(progress.jobs_dispatched);
    seal_frame(
        Some(FrameKind::Progress),
        progress.config_digest,
        w.into_bytes(),
    )
}

/// Encodes a serialized engine checkpoint into a v3 `Checkpoint` frame.
///
/// # Errors
/// Returns [`CodecError::Oversized`] if the state blob exceeds
/// [`MAX_PAYLOAD_LEN`], or [`CodecError::Malformed`] if it is empty —
/// the decoder rejects stateless checkpoints, so refusing to build one
/// keeps the failure at the producer, where it is debuggable.
pub fn encode_checkpoint_frame(checkpoint: &CheckpointFrame) -> Result<Vec<u8>, CodecError> {
    if checkpoint.state.is_empty() {
        return Err(CodecError::Malformed(
            "refusing to encode a checkpoint frame with no state".into(),
        ));
    }
    let mut w = ByteWriter::new();
    w.u32(checkpoint.shard);
    w.u32(checkpoint.num_shards);
    w.bytes(&checkpoint.state);
    seal_frame(
        Some(FrameKind::Checkpoint),
        checkpoint.config_digest,
        w.into_bytes(),
    )
}

/// Splits a validated envelope into its parts: the frame kind (`None` for
/// v2), config digest, and payload slice. Shared by [`decode_frame`] and
/// [`decode_shard_report`].
fn open_frame(bytes: &[u8]) -> Result<(Option<FrameKind>, u64, &[u8]), CodecError> {
    if bytes.len() < HEADER_LEN_V2 {
        return Err(CodecError::Truncated {
            needed: HEADER_LEN_V2,
            got: bytes.len(),
        });
    }
    let magic: [u8; 4] = bytes[0..4].try_into().expect("4 bytes");
    if magic != FRAME_MAGIC {
        return Err(CodecError::BadMagic { got: magic });
    }
    let version = bytes[4];
    let (kind, header_len) = match version {
        FRAME_VERSION_V2 => (None, HEADER_LEN_V2),
        FRAME_VERSION => (Some(FrameKind::from_byte(bytes[5])?), HEADER_LEN_V3),
        got => return Err(CodecError::UnsupportedVersion { got }),
    };
    if bytes.len() < header_len {
        return Err(CodecError::Truncated {
            needed: header_len,
            got: bytes.len(),
        });
    }
    let digest_at = header_len - 12;
    let config_digest =
        u64::from_le_bytes(bytes[digest_at..digest_at + 8].try_into().expect("8 bytes"));
    let payload_len = u32::from_le_bytes(
        bytes[header_len - 4..header_len]
            .try_into()
            .expect("4 bytes"),
    );
    if payload_len > MAX_PAYLOAD_LEN {
        return Err(CodecError::Oversized { len: payload_len });
    }
    let frame_len = header_len + payload_len as usize + 8;
    if bytes.len() < frame_len {
        return Err(CodecError::Truncated {
            needed: frame_len,
            got: bytes.len(),
        });
    }
    if bytes.len() > frame_len {
        return Err(CodecError::TrailingBytes {
            extra: bytes.len() - frame_len,
        });
    }
    let stored = u64::from_le_bytes(bytes[frame_len - 8..frame_len].try_into().expect("8 bytes"));
    let computed = fnv1a64(&bytes[4..frame_len - 8]);
    if computed != stored {
        return Err(CodecError::ChecksumMismatch { computed, stored });
    }
    Ok((kind, config_digest, &bytes[header_len..frame_len - 8]))
}

/// Inspects a (possibly incomplete) frame prefix and reports the total
/// frame length once the header is readable. Returns `Ok(None)` while the
/// prefix is too short to know; envelope violations visible in the prefix
/// (bad magic, unknown version or kind, oversized declared length) are
/// rejected immediately, so a stream reader fails fast instead of waiting
/// on garbage.
///
/// # Errors
/// [`CodecError::BadMagic`], [`CodecError::UnsupportedVersion`],
/// [`CodecError::UnknownKind`] or [`CodecError::Oversized`].
pub fn peek_frame_len(bytes: &[u8]) -> Result<Option<usize>, CodecError> {
    if bytes.len() >= 4 {
        let magic: [u8; 4] = bytes[0..4].try_into().expect("4 bytes");
        if magic != FRAME_MAGIC {
            return Err(CodecError::BadMagic { got: magic });
        }
    }
    if bytes.len() < 5 {
        return Ok(None);
    }
    let header_len = match bytes[4] {
        FRAME_VERSION_V2 => HEADER_LEN_V2,
        FRAME_VERSION => {
            if bytes.len() < 6 {
                return Ok(None);
            }
            FrameKind::from_byte(bytes[5])?;
            HEADER_LEN_V3
        }
        got => return Err(CodecError::UnsupportedVersion { got }),
    };
    if bytes.len() < header_len {
        return Ok(None);
    }
    let payload_len = u32::from_le_bytes(
        bytes[header_len - 4..header_len]
            .try_into()
            .expect("4 bytes"),
    );
    if payload_len > MAX_PAYLOAD_LEN {
        return Err(CodecError::Oversized { len: payload_len });
    }
    Ok(Some(header_len + payload_len as usize + 8))
}

/// Decodes one complete frame of either envelope generation, verifying
/// magic, version, kind, declared length, checksum and payload layout.
/// Strict: the slice must contain exactly one frame and nothing else. A
/// legacy v2 frame decodes as [`Frame::Final`].
///
/// # Errors
/// Every rejection is a distinct [`CodecError`] variant; see the type.
pub fn decode_frame(bytes: &[u8]) -> Result<Frame, CodecError> {
    let (kind, config_digest, payload) = open_frame(bytes)?;
    match kind {
        None => Ok(Frame::Final(decode_payload(payload, config_digest, false)?)),
        Some(FrameKind::Final) => Ok(Frame::Final(decode_payload(payload, config_digest, true)?)),
        Some(FrameKind::Progress) => {
            let mut r = ByteReader::new(payload);
            let frame = ProgressFrame {
                shard: r.u32()?,
                num_shards: r.u32()?,
                config_digest,
                round: r.u64()?,
                rounds_total: r.u64()?,
                jobs_dispatched: r.u64()?,
            };
            if r.remaining() != 0 {
                return Err(CodecError::Malformed(format!(
                    "{} unread bytes after the progress payload",
                    r.remaining()
                )));
            }
            Ok(Frame::Progress(frame))
        }
        Some(FrameKind::Checkpoint) => {
            let mut r = ByteReader::new(payload);
            let shard = r.u32()?;
            let num_shards = r.u32()?;
            let state = r.take(r.remaining())?.to_vec();
            if state.is_empty() {
                return Err(CodecError::Malformed(
                    "checkpoint frame carries no state".into(),
                ));
            }
            Ok(Frame::Checkpoint(CheckpointFrame {
                shard,
                num_shards,
                config_digest,
                state,
            }))
        }
    }
}

/// Decodes one complete frame back into a [`ShardReport`]. Accepts a
/// legacy v2 frame or a v3 `Final` frame; a v3 `Progress` or `Checkpoint`
/// frame is rejected as [`CodecError::Malformed`].
///
/// # Errors
/// Every rejection is a distinct [`CodecError`] variant; see the type.
pub fn decode_shard_report(bytes: &[u8]) -> Result<ShardReport, CodecError> {
    match decode_frame(bytes)? {
        Frame::Final(report) => Ok(report),
        Frame::Progress(_) => Err(CodecError::Malformed(
            "expected a final-report frame, got a progress heartbeat".into(),
        )),
        Frame::Checkpoint(_) => Err(CodecError::Malformed(
            "expected a final-report frame, got a checkpoint".into(),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report(shard: usize) -> ShardReport {
        let mut hist = ResponseTimeHistogram::new();
        for rt in [1u64, 2, 2, 7, 900] {
            hist.record(rt);
        }
        let mut decisions = DecisionTimeHistogram::new();
        decisions.record(0.25);
        decisions.record(1500.0);
        ShardReport {
            shard,
            num_shards: 4,
            num_servers: 16,
            config_digest: 0x0123_4567_89AB_CDEF,
            report: SimReport {
                policy: "SCD".into(),
                rounds: 400,
                warmup_rounds: 50,
                offered_load: 0.85,
                jobs_dispatched: 1000,
                jobs_completed: 995,
                jobs_in_flight: 5,
                response_times: hist,
                queues: QueueSummary {
                    mean_total_backlog: 4.25,
                    max_total_backlog: 19.0,
                    worst_mean_queue: 2.5,
                    mean_idle_fraction: 0.125,
                },
                queue_occupancy: vec![200, 120, 55, 0, u64::MAX],
                decision_times_us: Some(decisions),
                degradation: Some(DegradationMetrics {
                    server_down_rounds: 3,
                    rounds_lost: u64::MAX,
                    ..DegradationMetrics::default()
                }),
            },
        }
    }

    #[test]
    fn frame_round_trips_bit_for_bit() {
        let report = sample_report(2);
        let frame = encode_shard_report(&report).unwrap();
        assert_eq!(decode_shard_report(&frame).unwrap(), report);
    }

    #[test]
    fn every_truncation_is_rejected() {
        let frame = encode_shard_report(&sample_report(0)).unwrap();
        for len in 0..frame.len() {
            let err = decode_shard_report(&frame[..len]).unwrap_err();
            assert!(
                matches!(err, CodecError::Truncated { .. } | CodecError::Malformed(_)),
                "prefix of {len} bytes gave {err}"
            );
        }
    }

    #[test]
    fn any_single_flipped_payload_byte_is_caught() {
        let frame = encode_shard_report(&sample_report(1)).unwrap();
        // Flip one bit in every payload byte (skip the magic: flipping it
        // is a BadMagic, tested separately).
        for i in 4..frame.len() {
            let mut bad = frame.clone();
            bad[i] ^= 0x40;
            assert!(
                decode_shard_report(&bad).is_err(),
                "flipped byte {i} went undetected"
            );
        }
    }

    #[test]
    fn envelope_violations_are_classified() {
        let frame = encode_shard_report(&sample_report(3)).unwrap();
        let mut wrong_magic = frame.clone();
        wrong_magic[0] = b'X';
        assert!(matches!(
            decode_shard_report(&wrong_magic).unwrap_err(),
            CodecError::BadMagic { .. }
        ));
        let mut wrong_version = frame.clone();
        wrong_version[4] = FRAME_VERSION + 1;
        assert!(matches!(
            decode_shard_report(&wrong_version).unwrap_err(),
            CodecError::UnsupportedVersion { got } if got == FRAME_VERSION + 1
        ));
        let mut oversized = frame.clone();
        oversized[13..17].copy_from_slice(&(MAX_PAYLOAD_LEN + 1).to_le_bytes());
        assert!(matches!(
            decode_shard_report(&oversized).unwrap_err(),
            CodecError::Oversized { .. }
        ));
        let mut trailing = frame.clone();
        trailing.push(0);
        assert!(matches!(
            decode_shard_report(&trailing).unwrap_err(),
            CodecError::TrailingBytes { extra: 1 }
        ));
        let mut corrupt = frame;
        let mid = corrupt.len() / 2;
        corrupt[mid] ^= 0xFF;
        assert!(matches!(
            decode_shard_report(&corrupt).unwrap_err(),
            CodecError::ChecksumMismatch { .. } | CodecError::Malformed(_)
        ));
    }

    fn sample_report_with_recovery(shard: usize) -> ShardReport {
        let mut report = sample_report(shard);
        let d = report.report.degradation.as_mut().unwrap();
        d.checkpoints_taken = 7;
        d.rounds_replayed = 123;
        report
    }

    #[test]
    fn v3_final_frame_round_trips_recovery_counters() {
        let report = sample_report_with_recovery(2);
        let frame = encode_final_frame(&report).unwrap();
        assert_eq!(frame[4], FRAME_VERSION);
        assert_eq!(frame[5], FrameKind::Final as u8);
        assert_eq!(decode_frame(&frame).unwrap(), Frame::Final(report.clone()));
        assert_eq!(decode_shard_report(&frame).unwrap(), report);
    }

    #[test]
    fn v2_frames_refuse_recovery_counters_instead_of_dropping_them() {
        let err = encode_shard_report(&sample_report_with_recovery(0)).unwrap_err();
        assert!(matches!(err, CodecError::Malformed(_)), "got {err}");
    }

    #[test]
    fn v2_frame_decodes_as_a_final_frame() {
        let report = sample_report(1);
        let frame = encode_shard_report(&report).unwrap();
        assert_eq!(frame[4], FRAME_VERSION_V2);
        assert_eq!(decode_frame(&frame).unwrap(), Frame::Final(report));
    }

    #[test]
    fn progress_and_checkpoint_frames_round_trip() {
        let progress = ProgressFrame {
            shard: 3,
            num_shards: 4,
            config_digest: 0xDEAD_BEEF,
            round: 250,
            rounds_total: 1000,
            jobs_dispatched: 4321,
        };
        let frame = encode_progress_frame(&progress).unwrap();
        assert_eq!(decode_frame(&frame).unwrap(), Frame::Progress(progress));

        let checkpoint = CheckpointFrame {
            shard: 1,
            num_shards: 4,
            config_digest: 0xDEAD_BEEF,
            state: (0..=255u8).collect(),
        };
        let frame = encode_checkpoint_frame(&checkpoint).unwrap();
        assert_eq!(decode_frame(&frame).unwrap(), Frame::Checkpoint(checkpoint));
    }

    #[test]
    fn decode_shard_report_rejects_non_final_kinds() {
        let progress = ProgressFrame {
            shard: 0,
            num_shards: 1,
            config_digest: 9,
            round: 1,
            rounds_total: 2,
            jobs_dispatched: 3,
        };
        let frame = encode_progress_frame(&progress).unwrap();
        assert!(matches!(
            decode_shard_report(&frame).unwrap_err(),
            CodecError::Malformed(_)
        ));
    }

    #[test]
    fn unknown_kind_bytes_are_classified() {
        let checkpoint = CheckpointFrame {
            shard: 0,
            num_shards: 1,
            config_digest: 9,
            state: vec![1, 2, 3],
        };
        let mut frame = encode_checkpoint_frame(&checkpoint).unwrap();
        frame[5] = 77;
        assert!(matches!(
            decode_frame(&frame).unwrap_err(),
            CodecError::UnknownKind { got: 77 }
        ));
        assert!(matches!(
            peek_frame_len(&frame).unwrap_err(),
            CodecError::UnknownKind { got: 77 }
        ));
    }

    #[test]
    fn every_v3_truncation_and_payload_flip_is_rejected() {
        let frame = encode_final_frame(&sample_report_with_recovery(3)).unwrap();
        for len in 0..frame.len() {
            let err = decode_frame(&frame[..len]).unwrap_err();
            assert!(
                matches!(err, CodecError::Truncated { .. } | CodecError::Malformed(_)),
                "prefix of {len} bytes gave {err}"
            );
        }
        for i in 4..frame.len() {
            let mut bad = frame.clone();
            bad[i] ^= 0x40;
            assert!(decode_frame(&bad).is_err(), "flipped byte {i} undetected");
        }
    }

    #[test]
    fn peek_frame_len_is_incremental_and_fails_fast() {
        let progress = ProgressFrame {
            shard: 0,
            num_shards: 2,
            config_digest: 1,
            round: 10,
            rounds_total: 20,
            jobs_dispatched: 30,
        };
        for frame in [
            encode_progress_frame(&progress).unwrap(),
            encode_shard_report(&sample_report(0)).unwrap(),
        ] {
            for len in 0..frame.len() {
                match peek_frame_len(&frame[..len]).unwrap() {
                    Some(total) => assert_eq!(total, frame.len()),
                    None => assert!(len < 18, "header readable at {len} but peek deferred"),
                }
            }
            assert_eq!(peek_frame_len(&frame).unwrap(), Some(frame.len()));
        }
        assert!(matches!(
            peek_frame_len(b"XCDF....").unwrap_err(),
            CodecError::BadMagic { .. }
        ));
        assert!(matches!(
            peek_frame_len(&[b'S', b'C', b'D', b'F', 99]).unwrap_err(),
            CodecError::UnsupportedVersion { got: 99 }
        ));
    }
}
