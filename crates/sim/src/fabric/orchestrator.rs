//! The fabric supervisor: spawn, watch, classify, retry, merge.
//!
//! [`run_fabric`] drives one sharded experiment across `k` worker
//! *processes*. Each shard's configuration is derived exactly as the
//! in-process [`ShardedSimulation`] derives it —
//! same striping, same sub-master seeds — and shipped to a worker over
//! stdin in the `key = value` wire form. The worker answers with one
//! checksummed report frame on stdout.
//!
//! Supervision is per attempt: a wall-clock timeout bounds every worker,
//! and every way an attempt can go wrong maps to one [`WorkerFailure`]
//! variant — spawn failure, nonzero exit (crash), frame rejection
//! (truncation/corruption, via [`CodecError`]), a report for the wrong
//! experiment (digest mismatch) or the wrong shard, or a timeout kill.
//! Failed shards are retried up to [`FabricSpec::max_retries`] times with
//! seeded exponential backoff; because a shard's report is a pure function
//! of its (re-sent) configuration, a successful retry is **bit-identical**
//! to a first-try success, and a clean or fully recovered fabric run
//! equals the in-process sharded run exactly.
//!
//! When a shard exhausts its retries the run *degrades instead of dying*:
//! the surviving shards merge (the hardened
//! [`merge_shard_reports`] re-checks digests
//! and shard counts), and the loss is recorded in
//! [`DegradationMetrics::shards_lost`](crate::DegradationMetrics) /
//! [`rounds_lost`](crate::DegradationMetrics::rounds_lost) so a partial
//! result can never masquerade as a complete one. Only the loss of *every*
//! shard is an error.

use crate::config::SimConfig;
use crate::engine::SimError;
use crate::fabric::codec::{decode_shard_report, CodecError, MAX_PAYLOAD_LEN};
use crate::fabric::worker::WorkerFaultPlan;
use crate::report::DegradationMetrics;
use crate::shard::{merge_shard_reports, ShardReport, ShardedSimulation};
use crate::SimReport;
use scd_model::streams::{counter_draw, derive_stream_seed, unit_f64, FABRIC_RETRY_STREAM_TAG};
use std::fmt;
use std::io::Read;
use std::io::Write;
use std::path::PathBuf;
use std::process::{Command, Stdio};
use std::sync::mpsc;
use std::time::Duration;

/// A fault the orchestrator injects into a worker's command line — the
/// test/CI handle for exercising the supervision paths on real processes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InjectedFault {
    /// The shard whose worker gets the fault.
    pub shard: usize,
    /// The fault flags appended to that worker's arguments.
    pub fault: WorkerFaultPlan,
    /// When false (the default for recovery tests) the fault fires on the
    /// first attempt only, so the retry runs clean and recovers the shard
    /// bit-identically. When true every attempt gets the fault, which
    /// exhausts the retries and forces the partial-merge path.
    pub persistent: bool,
}

/// Everything [`run_fabric`] needs besides the simulation configuration.
#[derive(Debug, Clone)]
pub struct FabricSpec {
    /// Path of the `shard_worker` binary.
    pub worker: PathBuf,
    /// Policy name passed to every worker (resolved there by the policy
    /// registry; the orchestrator itself never instantiates a policy).
    pub policy: String,
    /// Shard count `k`.
    pub num_shards: usize,
    /// Retries per shard after the first attempt.
    pub max_retries: u32,
    /// Wall-clock budget per worker attempt; an attempt still running at
    /// the deadline is killed and classified [`WorkerFailure::Timeout`].
    pub timeout: Duration,
    /// Backoff before retry `r` (counting from 1) starts from
    /// `backoff_base · 2^(r−1)`…
    pub backoff_base: Duration,
    /// …capped here, then scaled by a deterministic jitter factor in
    /// `[0.5, 1.5)` drawn from the `FABRIC_RETRY_STREAM_TAG` stream.
    pub backoff_cap: Duration,
    /// Faults to inject, if any.
    pub injected: Vec<InjectedFault>,
}

impl FabricSpec {
    /// A spec with production defaults: 2 retries, 60 s timeout, 50 ms
    /// base backoff capped at 2 s, no injected faults.
    pub fn new(worker: PathBuf, policy: impl Into<String>, num_shards: usize) -> Self {
        FabricSpec {
            worker,
            policy: policy.into(),
            num_shards,
            max_retries: 2,
            timeout: Duration::from_secs(60),
            backoff_base: Duration::from_millis(50),
            backoff_cap: Duration::from_secs(2),
            injected: Vec::new(),
        }
    }

    /// The first injected fault matching this shard and attempt, if any.
    fn fault_for(&self, shard: usize, attempt: u32) -> WorkerFaultPlan {
        self.injected
            .iter()
            .find(|f| f.shard == shard && (attempt == 0 || f.persistent))
            .map(|f| f.fault.clone())
            .unwrap_or_default()
    }
}

/// Why one worker attempt failed. Ordered like the classification itself:
/// process-level verdicts (spawn, exit, timeout) are decided before the
/// output stream is even looked at; frame and identity checks follow.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkerFailure {
    /// The worker process could not be started at all.
    Spawn(String),
    /// The worker exited with a nonzero status (`None`: killed by a
    /// signal). Whatever it wrote is discarded — an exit code is a
    /// self-declared failure, even if a frame made it out first.
    NonZeroExit(Option<i32>),
    /// The worker exited cleanly but its output is not an intact frame
    /// (truncated, corrupt, wrong version, trailing bytes, …).
    Frame(CodecError),
    /// An intact frame for a *different experiment*: the report's config
    /// digest is not the one the orchestrator distributed.
    DigestMismatch {
        /// Digest of the configuration this orchestrator distributed.
        expected: u64,
        /// Digest the frame carried.
        got: u64,
    },
    /// An intact frame of the right experiment but for the wrong shard
    /// coordinates.
    ShardMismatch {
        /// The shard index the frame claims.
        got_shard: usize,
        /// The shard count the frame claims.
        got_shards: usize,
    },
    /// The attempt outlived [`FabricSpec::timeout`] and was killed.
    Timeout,
}

impl fmt::Display for WorkerFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkerFailure::Spawn(msg) => write!(f, "failed to spawn the worker: {msg}"),
            WorkerFailure::NonZeroExit(Some(code)) => {
                write!(f, "worker exited with status {code}")
            }
            WorkerFailure::NonZeroExit(None) => write!(f, "worker was killed by a signal"),
            WorkerFailure::Frame(e) => write!(f, "report frame rejected: {e}"),
            WorkerFailure::DigestMismatch { expected, got } => write!(
                f,
                "report is for config digest {got:#018x}, expected {expected:#018x}"
            ),
            WorkerFailure::ShardMismatch {
                got_shard,
                got_shards,
            } => write!(
                f,
                "report claims shard {got_shard} of {got_shards}, which is not what was asked"
            ),
            WorkerFailure::Timeout => write!(f, "worker timed out and was killed"),
        }
    }
}

impl WorkerFailure {
    /// The [`SimError`] a terminal (all-shards-lost) outcome surfaces.
    fn into_sim_error(self, shard: usize) -> SimError {
        let worker = shard as u32;
        match self {
            WorkerFailure::Frame(cause) => SimError::Codec { shard, cause },
            WorkerFailure::DigestMismatch { .. } | WorkerFailure::ShardMismatch { .. } => {
                SimError::MergeMismatch(format!("shard {shard}: {self}"))
            }
            other => SimError::Io {
                worker,
                shard,
                cause: other.to_string(),
            },
        }
    }
}

/// One row of the orchestrator's attempt log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardAttempt {
    /// The shard being attempted.
    pub shard: usize,
    /// Attempt number, 0 for the first try.
    pub attempt: u32,
    /// `None` on success, the classified failure otherwise.
    pub failure: Option<WorkerFailure>,
}

/// The result of a fabric run that produced *something*.
#[derive(Debug, Clone, PartialEq)]
pub struct FabricOutcome {
    /// The merged report. Complete when [`lost_shards`](Self::lost_shards)
    /// is empty (and then bit-identical to the in-process sharded run);
    /// otherwise a partial merge whose losses are accounted in
    /// `report.degradation`.
    pub report: SimReport,
    /// Shards whose workers exhausted every retry.
    pub lost_shards: Vec<usize>,
    /// Every attempt made, in shard order then attempt order.
    pub attempts: Vec<ShardAttempt>,
}

/// The deterministic pre-retry pause: exponential in the retry number,
/// jittered by the shard's `FABRIC_RETRY_STREAM_TAG` stream so simultaneous
/// retries of different shards (or of different masters) spread out — yet
/// any re-run of the same experiment waits the exact same schedule.
fn retry_backoff(spec: &FabricSpec, master: u64, shard: usize, attempt: u32) -> Duration {
    let doubled = spec
        .backoff_base
        .checked_mul(1u32 << attempt.min(20))
        .unwrap_or(spec.backoff_cap);
    let capped = doubled.min(spec.backoff_cap);
    let stream = derive_stream_seed(master, FABRIC_RETRY_STREAM_TAG, shard as u64);
    let jitter = 0.5 + unit_f64(counter_draw(stream, u64::from(attempt)));
    capped.mul_f64(jitter)
}

/// Spawns and supervises one worker attempt.
fn run_attempt(
    spec: &FabricSpec,
    shard: usize,
    sub_seed: u64,
    digest: u64,
    config_text: &str,
    fault: &WorkerFaultPlan,
) -> Result<ShardReport, WorkerFailure> {
    let mut command = Command::new(&spec.worker);
    command
        .arg("--shard")
        .arg(shard.to_string())
        .arg("--shards")
        .arg(spec.num_shards.to_string())
        .arg("--policy")
        .arg(&spec.policy)
        .arg("--expect-seed")
        .arg(sub_seed.to_string())
        .arg("--digest")
        .arg(digest.to_string())
        .args(fault.to_args())
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null());
    let mut child = command
        .spawn()
        .map_err(|e| WorkerFailure::Spawn(e.to_string()))?;
    // Hand the shard its configuration and close the pipe. A worker that
    // died before reading makes this write fail with EPIPE — ignored here,
    // because the exit status classifies that death more precisely.
    if let Some(mut stdin) = child.stdin.take() {
        let _ = stdin.write_all(config_text.as_bytes());
    }
    let stdout = child.stdout.take().expect("stdout was piped");
    let (tx, rx) = mpsc::channel();
    let reader = std::thread::spawn(move || {
        let mut buf = Vec::new();
        // Cap what a misbehaving worker can make us buffer; an over-long
        // stream fails frame decoding as TrailingBytes.
        let _ = stdout
            .take(u64::from(MAX_PAYLOAD_LEN) + 64)
            .read_to_end(&mut buf);
        let _ = tx.send(buf);
    });
    let buf = match rx.recv_timeout(spec.timeout) {
        Ok(buf) => buf,
        Err(_) => {
            let _ = child.kill();
            let _ = child.wait();
            let _ = reader.join();
            return Err(WorkerFailure::Timeout);
        }
    };
    let _ = reader.join();
    let status = match child.wait() {
        Ok(status) => status,
        Err(e) => return Err(WorkerFailure::Spawn(format!("wait failed: {e}"))),
    };
    if !status.success() {
        return Err(WorkerFailure::NonZeroExit(status.code()));
    }
    let report = decode_shard_report(&buf).map_err(WorkerFailure::Frame)?;
    if report.config_digest != digest {
        return Err(WorkerFailure::DigestMismatch {
            expected: digest,
            got: report.config_digest,
        });
    }
    if report.shard != shard || report.num_shards != spec.num_shards {
        return Err(WorkerFailure::ShardMismatch {
            got_shard: report.shard,
            got_shards: report.num_shards,
        });
    }
    Ok(report)
}

/// Runs one shard to success or retry exhaustion, logging every attempt.
fn run_shard_supervised(
    spec: &FabricSpec,
    master: u64,
    shard: usize,
    sub_seed: u64,
    digest: u64,
    config_text: &str,
) -> (Result<ShardReport, WorkerFailure>, Vec<ShardAttempt>) {
    let mut attempts = Vec::new();
    let mut last_failure = None;
    for attempt in 0..=spec.max_retries {
        if attempt > 0 {
            std::thread::sleep(retry_backoff(spec, master, shard, attempt - 1));
        }
        let fault = spec.fault_for(shard, attempt);
        match run_attempt(spec, shard, sub_seed, digest, config_text, &fault) {
            Ok(report) => {
                attempts.push(ShardAttempt {
                    shard,
                    attempt,
                    failure: None,
                });
                return (Ok(report), attempts);
            }
            Err(failure) => {
                attempts.push(ShardAttempt {
                    shard,
                    attempt,
                    failure: Some(failure.clone()),
                });
                last_failure = Some(failure);
            }
        }
    }
    (
        Err(last_failure.expect("at least one attempt ran")),
        attempts,
    )
}

/// Runs the configuration as `spec.num_shards` supervised worker
/// processes and merges what survives.
///
/// Shard derivation is delegated to
/// [`ShardedSimulation`], so everything that
/// holds for in-process sharded runs (validation, striping, sub-master
/// seeds, global scenario/workload pinning) holds verbatim here — and a
/// run in which every shard eventually succeeded returns a report
/// bit-identical to [`ShardedSimulation::run`] at the same `k`.
///
/// # Errors
/// Returns the base configuration's validation errors, the wire form's
/// [`SimError::InvalidConfig`] for configurations that cannot be shipped
/// (replay traces), and — only when **every** shard exhausted its retries —
/// the first lost shard's classified failure as a [`SimError::Io`] /
/// [`SimError::Codec`] / [`SimError::MergeMismatch`]. Losing some but not
/// all shards is *not* an error; it is a partial [`FabricOutcome`].
pub fn run_fabric(config: &SimConfig, spec: &FabricSpec) -> Result<FabricOutcome, SimError> {
    let sharded = ShardedSimulation::new(config.clone(), spec.num_shards)?;
    let digest = config.digest();
    let k = spec.num_shards;
    let texts: Vec<String> = (0..k)
        .map(|j| sharded.shard_config(j).to_key_values())
        .collect::<Result<_, _>>()?;
    type ShardOutcome = (Result<ShardReport, WorkerFailure>, Vec<ShardAttempt>);
    let mut outcomes: Vec<Option<ShardOutcome>> = (0..k).map(|_| None).collect();
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(k);
        for (j, text) in texts.iter().enumerate() {
            let sub_seed = sharded.shard_config(j).seed;
            let spec = &spec;
            handles.push(
                scope.spawn(move || {
                    run_shard_supervised(spec, config.seed, j, sub_seed, digest, text)
                }),
            );
        }
        for (j, handle) in handles.into_iter().enumerate() {
            outcomes[j] = Some(handle.join().expect("shard supervisor panicked"));
        }
    });
    let mut survivors = Vec::with_capacity(k);
    let mut lost_shards = Vec::new();
    let mut attempts = Vec::new();
    let mut first_loss: Option<WorkerFailure> = None;
    for (j, outcome) in outcomes.into_iter().enumerate() {
        let (result, shard_attempts) = outcome.expect("every shard ran");
        attempts.extend(shard_attempts);
        match result {
            Ok(report) => survivors.push(report),
            Err(failure) => {
                if first_loss.is_none() {
                    first_loss = Some(failure);
                }
                lost_shards.push(j);
            }
        }
    }
    if survivors.is_empty() {
        let shard = lost_shards[0];
        return Err(first_loss
            .expect("a lost shard has a failure")
            .into_sim_error(shard));
    }
    let mut report = merge_shard_reports(&survivors)?;
    report.offered_load = config.offered_load();
    if !lost_shards.is_empty() {
        let d = report
            .degradation
            .get_or_insert(DegradationMetrics::default());
        d.shards_lost = d.shards_lost.saturating_add(lost_shards.len() as u64);
        d.rounds_lost = d
            .rounds_lost
            .saturating_add((lost_shards.len() as u64).saturating_mul(config.rounds));
    }
    Ok(FabricOutcome {
        report,
        lost_shards,
        attempts,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrivals::ArrivalSpec;
    use scd_model::ClusterSpec;

    fn base_config() -> SimConfig {
        SimConfig::builder(ClusterSpec::from_rates(vec![2.0, 1.0, 1.0, 2.0]).unwrap())
            .dispatchers(2)
            .rounds(50)
            .seed(5)
            .arrivals(ArrivalSpec::PoissonOfferedLoad { offered_load: 0.7 })
            .build()
            .unwrap()
    }

    #[test]
    fn backoff_is_deterministic_exponential_and_jitter_bounded() {
        let spec = FabricSpec::new(PathBuf::from("worker"), "SCD", 4);
        for shard in 0..4usize {
            for attempt in 0..6u32 {
                let a = retry_backoff(&spec, 9, shard, attempt);
                let b = retry_backoff(&spec, 9, shard, attempt);
                assert_eq!(a, b, "backoff must be reproducible");
                let nominal = spec
                    .backoff_base
                    .checked_mul(1 << attempt)
                    .unwrap_or(spec.backoff_cap)
                    .min(spec.backoff_cap);
                assert!(a >= nominal.mul_f64(0.5), "shard {shard} attempt {attempt}");
                assert!(a < nominal.mul_f64(1.5), "shard {shard} attempt {attempt}");
            }
        }
        // Different shards (and different masters) jitter differently.
        let j0 = retry_backoff(&spec, 9, 0, 0);
        let j1 = retry_backoff(&spec, 9, 1, 0);
        let j2 = retry_backoff(&spec, 10, 0, 0);
        assert!(j0 != j1 || j0 != j2, "jitter should depend on shard/master");
    }

    #[test]
    fn injected_faults_select_by_shard_attempt_and_persistence() {
        let mut spec = FabricSpec::new(PathBuf::from("worker"), "SCD", 4);
        spec.injected = vec![
            InjectedFault {
                shard: 1,
                fault: WorkerFaultPlan {
                    exit_code: Some(9),
                    ..WorkerFaultPlan::default()
                },
                persistent: false,
            },
            InjectedFault {
                shard: 2,
                fault: WorkerFaultPlan {
                    hang: true,
                    ..WorkerFaultPlan::default()
                },
                persistent: true,
            },
        ];
        assert!(spec.fault_for(0, 0).is_clean());
        assert_eq!(spec.fault_for(1, 0).exit_code, Some(9));
        assert!(
            spec.fault_for(1, 1).is_clean(),
            "one-shot fault retries clean"
        );
        assert!(spec.fault_for(2, 0).hang);
        assert!(spec.fault_for(2, 3).hang, "persistent fault never clears");
    }

    #[test]
    fn unspawnable_worker_loses_every_shard_and_errors() {
        let mut spec = FabricSpec::new(PathBuf::from("/nonexistent/scd-shard-worker"), "SCD", 2);
        spec.max_retries = 1;
        spec.backoff_base = Duration::from_millis(1);
        spec.backoff_cap = Duration::from_millis(2);
        let err = run_fabric(&base_config(), &spec).unwrap_err();
        match err {
            SimError::Io {
                shard, ref cause, ..
            } => {
                assert_eq!(shard, 0);
                assert!(cause.contains("spawn"), "{cause}");
            }
            other => panic!("expected Io spawn error, got {other}"),
        }
    }

    #[test]
    fn failure_display_and_error_mapping_cover_every_variant() {
        let cases: Vec<(WorkerFailure, &str)> = vec![
            (WorkerFailure::Spawn("no such file".into()), "spawn"),
            (WorkerFailure::NonZeroExit(Some(101)), "101"),
            (WorkerFailure::NonZeroExit(None), "signal"),
            (
                WorkerFailure::Frame(CodecError::Truncated { needed: 9, got: 2 }),
                "truncated",
            ),
            (
                WorkerFailure::DigestMismatch {
                    expected: 1,
                    got: 2,
                },
                "digest",
            ),
            (
                WorkerFailure::ShardMismatch {
                    got_shard: 3,
                    got_shards: 4,
                },
                "shard 3",
            ),
            (WorkerFailure::Timeout, "timed out"),
        ];
        for (failure, needle) in cases {
            let shown = failure.to_string();
            assert!(shown.contains(needle), "{shown} should contain {needle}");
            // Every failure maps into some SimError whose Display carries
            // the shard index.
            let err = failure.into_sim_error(7);
            assert!(err.to_string().contains('7'), "{err}");
        }
    }
}
