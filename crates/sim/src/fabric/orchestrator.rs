//! The fabric supervisor: spawn, watch, classify, retry, merge.
//!
//! [`run_fabric`] drives one sharded experiment across `k` worker
//! *processes*. Each shard's configuration is derived exactly as the
//! in-process [`ShardedSimulation`] derives it —
//! same striping, same sub-master seeds — and shipped to a worker over
//! stdin in the `key = value` wire form. The worker answers with one
//! checksummed report frame on stdout.
//!
//! Supervision is per frame, not per attempt: the deadline
//! ([`FabricSpec::timeout`]) bounds the gap between consecutive stdout
//! events of a worker — a **heartbeat deadline** that detects a stalled
//! worker independently of total run length. A worker in the legacy
//! one-shot mode emits exactly one event (its report frame), so the
//! deadline degenerates to the classic per-attempt wall clock there.
//! Every way an attempt can go wrong maps to one [`WorkerFailure`]
//! variant — spawn failure, nonzero exit (crash), frame rejection
//! (truncation/corruption, via [`CodecError`]), a report for the wrong
//! experiment (digest mismatch) or the wrong shard, or a deadline kill.
//!
//! With [`FabricSpec::checkpoint_every`]` = R > 0`, workers stream a
//! progress heartbeat and a checkpoint frame every `R` rounds. The
//! orchestrator verifies each checkpoint frame (envelope checksum, shard
//! coordinates, decodable state) and **retains the newest verified one per
//! shard**; a failed worker restarts *from that checkpoint* instead of
//! from round 0, falling back to retry-from-seed when no checkpoint exists
//! or the replacement worker refuses the shipped state
//! ([`EXIT_RESUME_REJECTED`]). A worker that declares its configuration
//! unusable ([`EXIT_CONFIG_REJECTED`]) is not retried at all — the same
//! configuration would be re-sent. Recovery work is accounted in
//! [`FabricOutcome::checkpoints_taken`] and
//! [`FabricOutcome::rounds_replayed`]; because resume is bit-identical, a
//! recovered run still equals the in-process sharded run exactly.
//!
//! Failed shards are retried up to [`FabricSpec::max_retries`] times with
//! seeded exponential backoff; because a shard's report is a pure function
//! of its (re-sent) configuration — and of any checkpoint, itself a pure
//! function of that configuration — a successful retry is
//! **bit-identical** to a first-try success.
//!
//! When a shard exhausts its retries the run *degrades instead of dying*:
//! the surviving shards merge (the hardened
//! [`merge_shard_reports`] re-checks digests
//! and shard counts), and the loss is recorded in
//! [`DegradationMetrics::shards_lost`](crate::DegradationMetrics) /
//! [`rounds_lost`](crate::DegradationMetrics::rounds_lost) so a partial
//! result can never masquerade as a complete one. Only the loss of *every*
//! shard is an error.

use crate::checkpoint::EngineCheckpoint;
use crate::config::SimConfig;
use crate::engine::SimError;
use crate::fabric::codec::{decode_frame, peek_frame_len, CodecError, Frame};
use crate::fabric::worker::{WorkerFaultPlan, EXIT_CONFIG_REJECTED, EXIT_RESUME_REJECTED};
use crate::report::DegradationMetrics;
use crate::shard::{merge_shard_reports, ShardReport, ShardedSimulation};
use crate::SimReport;
use scd_model::streams::{counter_draw, derive_stream_seed, unit_f64, FABRIC_RETRY_STREAM_TAG};
use std::fmt;
use std::io::Read;
use std::io::Write;
use std::path::PathBuf;
use std::process::{Command, Stdio};
use std::sync::mpsc;
use std::time::Duration;

/// The line separating the configuration text from the raw resume
/// checkpoint frame on a resumed worker's stdin.
pub const RESUME_DELIMITER: &str = "%%CHECKPOINT%%";

/// A fault the orchestrator injects into a worker's command line — the
/// test/CI handle for exercising the supervision paths on real processes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InjectedFault {
    /// The shard whose worker gets the fault.
    pub shard: usize,
    /// The fault flags appended to that worker's arguments.
    pub fault: WorkerFaultPlan,
    /// When false (the default for recovery tests) the fault fires on the
    /// first attempt only, so the retry runs clean and recovers the shard
    /// bit-identically. When true every attempt gets the fault, which
    /// exhausts the retries and forces the partial-merge path.
    pub persistent: bool,
}

/// Everything [`run_fabric`] needs besides the simulation configuration.
#[derive(Debug, Clone)]
pub struct FabricSpec {
    /// Path of the `shard_worker` binary.
    pub worker: PathBuf,
    /// Policy name passed to every worker (resolved there by the policy
    /// registry; the orchestrator itself never instantiates a policy).
    pub policy: String,
    /// Shard count `k`.
    pub num_shards: usize,
    /// Retries per shard after the first attempt.
    pub max_retries: u32,
    /// The heartbeat deadline: the wall-clock bound on the gap between
    /// consecutive stdout events (frame or EOF) of a worker. A worker
    /// silent past the deadline is killed and classified
    /// [`WorkerFailure::Timeout`]. With `checkpoint_every == 0` a worker
    /// emits exactly one event, so this is the classic per-attempt budget.
    pub timeout: Duration,
    /// Ask every worker to stream a progress heartbeat plus a checkpoint
    /// frame each `checkpoint_every` rounds; failed workers restart from
    /// the newest verified checkpoint. `0` (the default) reproduces the
    /// legacy one-shot protocol byte-for-byte.
    pub checkpoint_every: u64,
    /// Backoff before retry `r` (counting from 1) starts from
    /// `backoff_base · 2^(r−1)`…
    pub backoff_base: Duration,
    /// …capped here, then scaled by a deterministic jitter factor in
    /// `[0.5, 1.5)` drawn from the `FABRIC_RETRY_STREAM_TAG` stream.
    pub backoff_cap: Duration,
    /// Faults to inject, if any.
    pub injected: Vec<InjectedFault>,
}

impl FabricSpec {
    /// A spec with production defaults: 2 retries, 60 s timeout, 50 ms
    /// base backoff capped at 2 s, no injected faults.
    pub fn new(worker: PathBuf, policy: impl Into<String>, num_shards: usize) -> Self {
        FabricSpec {
            worker,
            policy: policy.into(),
            num_shards,
            max_retries: 2,
            timeout: Duration::from_secs(60),
            checkpoint_every: 0,
            backoff_base: Duration::from_millis(50),
            backoff_cap: Duration::from_secs(2),
            injected: Vec::new(),
        }
    }

    /// The first injected fault matching this shard and attempt, if any.
    fn fault_for(&self, shard: usize, attempt: u32) -> WorkerFaultPlan {
        self.injected
            .iter()
            .find(|f| f.shard == shard && (attempt == 0 || f.persistent))
            .map(|f| f.fault.clone())
            .unwrap_or_default()
    }
}

/// Why one worker attempt failed. Ordered like the classification itself:
/// process-level verdicts (spawn, exit, timeout) are decided before the
/// output stream is even looked at; frame and identity checks follow.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkerFailure {
    /// The worker process could not be started at all.
    Spawn(String),
    /// The worker exited with a nonzero status (`None`: killed by a
    /// signal). Whatever it wrote is discarded — an exit code is a
    /// self-declared failure, even if a frame made it out first.
    NonZeroExit(Option<i32>),
    /// The worker exited cleanly but its output is not an intact frame
    /// (truncated, corrupt, wrong version, trailing bytes, …).
    Frame(CodecError),
    /// An intact frame for a *different experiment*: the report's config
    /// digest is not the one the orchestrator distributed.
    DigestMismatch {
        /// Digest of the configuration this orchestrator distributed.
        expected: u64,
        /// Digest the frame carried.
        got: u64,
    },
    /// An intact frame of the right experiment but for the wrong shard
    /// coordinates.
    ShardMismatch {
        /// The shard index the frame claims.
        got_shard: usize,
        /// The shard count the frame claims.
        got_shards: usize,
    },
    /// The attempt outlived [`FabricSpec::timeout`] and was killed.
    Timeout,
}

impl fmt::Display for WorkerFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkerFailure::Spawn(msg) => write!(f, "failed to spawn the worker: {msg}"),
            WorkerFailure::NonZeroExit(Some(code)) => {
                write!(f, "worker exited with status {code}")
            }
            WorkerFailure::NonZeroExit(None) => write!(f, "worker was killed by a signal"),
            WorkerFailure::Frame(e) => write!(f, "report frame rejected: {e}"),
            WorkerFailure::DigestMismatch { expected, got } => write!(
                f,
                "report is for config digest {got:#018x}, expected {expected:#018x}"
            ),
            WorkerFailure::ShardMismatch {
                got_shard,
                got_shards,
            } => write!(
                f,
                "report claims shard {got_shard} of {got_shards}, which is not what was asked"
            ),
            WorkerFailure::Timeout => write!(f, "worker timed out and was killed"),
        }
    }
}

impl WorkerFailure {
    /// The [`SimError`] a terminal (all-shards-lost) outcome surfaces.
    fn into_sim_error(self, shard: usize) -> SimError {
        let worker = shard as u32;
        match self {
            WorkerFailure::Frame(cause) => SimError::Codec { shard, cause },
            WorkerFailure::DigestMismatch { .. } | WorkerFailure::ShardMismatch { .. } => {
                SimError::MergeMismatch(format!("shard {shard}: {self}"))
            }
            other => SimError::Io {
                worker,
                shard,
                cause: other.to_string(),
            },
        }
    }
}

/// One row of the orchestrator's attempt log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardAttempt {
    /// The shard being attempted.
    pub shard: usize,
    /// Attempt number, 0 for the first try.
    pub attempt: u32,
    /// `None` on success, the classified failure otherwise.
    pub failure: Option<WorkerFailure>,
}

/// The result of a fabric run that produced *something*.
#[derive(Debug, Clone, PartialEq)]
pub struct FabricOutcome {
    /// The merged report. Complete when [`lost_shards`](Self::lost_shards)
    /// is empty (and then bit-identical to the in-process sharded run);
    /// otherwise a partial merge whose losses are accounted in
    /// `report.degradation`.
    pub report: SimReport,
    /// Shards whose workers exhausted every retry.
    pub lost_shards: Vec<usize>,
    /// Every attempt made, in shard order then attempt order.
    pub attempts: Vec<ShardAttempt>,
    /// Verified checkpoint frames retained across all shards and attempts.
    pub checkpoints_taken: u64,
    /// Rounds a retry re-executed that a failed attempt had already
    /// computed past its own starting point — the work checkpointing
    /// failed to save. Retry-from-seed after progress to round `p` replays
    /// `p` rounds; resume from a checkpoint at the crash round replays 0.
    pub rounds_replayed: u64,
}

/// The newest verified checkpoint of one shard: the round it resumes at
/// and the intact frame re-shipped verbatim to the replacement worker.
struct RetainedCheckpoint {
    round: u64,
    frame: Vec<u8>,
}

/// What one attempt's frame stream revealed, surviving the attempt's
/// failure: the furthest round the worker provably reached, the newest
/// verified checkpoint, and how many checkpoints verified.
struct AttemptWatch {
    progress_round: u64,
    checkpoint: Option<RetainedCheckpoint>,
    checkpoints_taken: u64,
}

/// Recovery accounting for one shard, summed into the fabric outcome.
#[derive(Default)]
struct ShardRecovery {
    checkpoints_taken: u64,
    rounds_replayed: u64,
}

/// The deterministic pre-retry pause before launching `attempt` (counting
/// from 1; attempt 0 is the first try and never waits): exponential in the
/// retry number, jittered by the shard's `FABRIC_RETRY_STREAM_TAG` stream
/// so simultaneous retries of different shards (or of different masters)
/// spread out — yet any re-run of the same experiment waits the exact same
/// schedule. Total over `u32`: attempt 0 saturates to the first retry's
/// pause instead of underflowing.
fn retry_backoff(spec: &FabricSpec, master: u64, shard: usize, attempt: u32) -> Duration {
    debug_assert!(
        attempt > 0,
        "attempt 0 is the first try and never backs off"
    );
    let retry = attempt.saturating_sub(1);
    let doubled = spec
        .backoff_base
        .checked_mul(1u32 << retry.min(20))
        .unwrap_or(spec.backoff_cap);
    let capped = doubled.min(spec.backoff_cap);
    let stream = derive_stream_seed(master, FABRIC_RETRY_STREAM_TAG, shard as u64);
    let jitter = 0.5 + unit_f64(counter_draw(stream, u64::from(retry)));
    capped.mul_f64(jitter)
}

/// One stdout event of a supervised worker, as produced by the incremental
/// frame reader: a complete frame, an envelope violation that desyncs the
/// stream, or end-of-stream with whatever bytes never formed a frame.
enum Wire {
    Frame(Vec<u8>),
    Malformed(CodecError),
    Eof(Vec<u8>),
}

/// Spawns and supervises one worker attempt under the heartbeat deadline,
/// recording progress and verified checkpoints into `watch` as the stream
/// arrives (they survive the attempt's failure).
// Every argument is genuinely per-attempt state; bundling them into a
// one-shot struct would only move the list.
#[allow(clippy::too_many_arguments)]
fn run_attempt(
    spec: &FabricSpec,
    shard: usize,
    sub_seed: u64,
    digest: u64,
    config_text: &str,
    fault: &WorkerFaultPlan,
    resume: Option<&RetainedCheckpoint>,
    watch: &mut AttemptWatch,
) -> Result<ShardReport, WorkerFailure> {
    let mut command = Command::new(&spec.worker);
    command
        .arg("--shard")
        .arg(shard.to_string())
        .arg("--shards")
        .arg(spec.num_shards.to_string())
        .arg("--policy")
        .arg(&spec.policy)
        .arg("--expect-seed")
        .arg(sub_seed.to_string())
        .arg("--digest")
        .arg(digest.to_string());
    if spec.checkpoint_every > 0 {
        command
            .arg("--checkpoint-every")
            .arg(spec.checkpoint_every.to_string());
    }
    if resume.is_some() {
        command.arg("--resume-from").arg("stdin");
    }
    command
        .args(fault.to_args())
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null());
    let mut child = command
        .spawn()
        .map_err(|e| WorkerFailure::Spawn(e.to_string()))?;
    // Hand the shard its configuration — plus, on a resumed attempt, the
    // delimiter line and the retained checkpoint frame — and close the
    // pipe. A worker that died before reading makes this write fail with
    // EPIPE — ignored here, because the exit status classifies that death
    // more precisely.
    if let Some(mut stdin) = child.stdin.take() {
        let _ = stdin.write_all(config_text.as_bytes());
        if let Some(checkpoint) = resume {
            if !config_text.ends_with('\n') {
                let _ = stdin.write_all(b"\n");
            }
            let _ = stdin.write_all(format!("{RESUME_DELIMITER}\n").as_bytes());
            let _ = stdin.write_all(&checkpoint.frame);
        }
    }
    let mut stdout = child.stdout.take().expect("stdout was piped");
    let (tx, rx) = mpsc::channel();
    let reader = std::thread::spawn(move || {
        let mut pending: Vec<u8> = Vec::new();
        let mut chunk = [0u8; 16 * 1024];
        loop {
            // Drain every complete frame already buffered. Each frame is
            // length-bounded by the envelope (`peek_frame_len` rejects
            // oversized declared lengths), so a misbehaving worker cannot
            // make this buffer grow without bound.
            loop {
                match peek_frame_len(&pending) {
                    Ok(Some(len)) if pending.len() >= len => {
                        let frame: Vec<u8> = pending.drain(..len).collect();
                        if tx.send(Wire::Frame(frame)).is_err() {
                            return;
                        }
                    }
                    Ok(_) => break,
                    Err(e) => {
                        let _ = tx.send(Wire::Malformed(e));
                        return;
                    }
                }
            }
            match stdout.read(&mut chunk) {
                Ok(0) | Err(_) => {
                    let _ = tx.send(Wire::Eof(pending));
                    return;
                }
                Ok(n) => pending.extend_from_slice(&chunk[..n]),
            }
        }
    });
    let kill = |child: &mut std::process::Child| {
        let _ = child.kill();
        let _ = child.wait();
    };
    let mut final_report: Option<ShardReport> = None;
    // Each received event re-arms the deadline: a streaming worker buys
    // time by making progress, a silent one is killed after one period.
    let leftover = loop {
        match rx.recv_timeout(spec.timeout) {
            Ok(Wire::Frame(bytes)) => match decode_frame(&bytes) {
                Ok(Frame::Progress(p)) => {
                    if p.config_digest == digest
                        && p.shard as usize == shard
                        && p.num_shards as usize == spec.num_shards
                    {
                        watch.progress_round = watch.progress_round.max(p.round);
                    }
                }
                Ok(Frame::Checkpoint(frame)) => {
                    // Retain only what provably restarts this shard of this
                    // experiment; anything else is dropped, never fatal —
                    // the worker may still finish, and retry-from-seed
                    // remains the fallback.
                    if frame.config_digest == digest
                        && frame.shard as usize == shard
                        && frame.num_shards as usize == spec.num_shards
                    {
                        if let Ok(state) = EngineCheckpoint::from_bytes(&frame.state) {
                            watch.progress_round = watch.progress_round.max(state.round());
                            watch.checkpoint = Some(RetainedCheckpoint {
                                round: state.round(),
                                frame: bytes,
                            });
                            watch.checkpoints_taken += 1;
                        }
                    }
                }
                Ok(Frame::Final(report)) => final_report = Some(report),
                Err(e) => {
                    kill(&mut child);
                    let _ = reader.join();
                    return Err(WorkerFailure::Frame(e));
                }
            },
            Ok(Wire::Malformed(e)) => {
                kill(&mut child);
                let _ = reader.join();
                return Err(WorkerFailure::Frame(e));
            }
            Ok(Wire::Eof(leftover)) => break leftover,
            Err(_) => {
                kill(&mut child);
                let _ = reader.join();
                return Err(WorkerFailure::Timeout);
            }
        }
    };
    let _ = reader.join();
    let status = match child.wait() {
        Ok(status) => status,
        Err(e) => return Err(WorkerFailure::Spawn(format!("wait failed: {e}"))),
    };
    if !status.success() {
        return Err(WorkerFailure::NonZeroExit(status.code()));
    }
    if !leftover.is_empty() {
        // A clean exit with a torn tail: classify by decoding the tail.
        return Err(WorkerFailure::Frame(
            decode_frame(&leftover).expect_err("an incomplete frame cannot decode"),
        ));
    }
    let report = match final_report {
        Some(report) => report,
        None => {
            return Err(WorkerFailure::Frame(CodecError::Truncated {
                needed: crate::fabric::codec::HEADER_LEN_V2,
                got: 0,
            }))
        }
    };
    if report.config_digest != digest {
        return Err(WorkerFailure::DigestMismatch {
            expected: digest,
            got: report.config_digest,
        });
    }
    if report.shard != shard || report.num_shards != spec.num_shards {
        return Err(WorkerFailure::ShardMismatch {
            got_shard: report.shard,
            got_shards: report.num_shards,
        });
    }
    Ok(report)
}

/// Runs one shard to success or retry exhaustion, logging every attempt,
/// retaining the newest verified checkpoint across attempts and restarting
/// failed workers from it.
fn run_shard_supervised(
    spec: &FabricSpec,
    master: u64,
    shard: usize,
    sub_seed: u64,
    digest: u64,
    config_text: &str,
) -> (
    Result<ShardReport, WorkerFailure>,
    Vec<ShardAttempt>,
    ShardRecovery,
) {
    let mut attempts = Vec::new();
    let mut last_failure = None;
    let mut recovery = ShardRecovery::default();
    let mut retained: Option<RetainedCheckpoint> = None;
    // The furthest round any failed attempt provably reached — the work a
    // retry starting earlier than it has to redo.
    let mut observed_round: u64 = 0;
    for attempt in 0..=spec.max_retries {
        let resume_round = retained.as_ref().map_or(0, |c| c.round);
        if attempt > 0 {
            std::thread::sleep(retry_backoff(spec, master, shard, attempt));
            recovery.rounds_replayed = recovery
                .rounds_replayed
                .saturating_add(observed_round.saturating_sub(resume_round));
        }
        let fault = spec.fault_for(shard, attempt);
        let mut watch = AttemptWatch {
            progress_round: resume_round,
            checkpoint: None,
            checkpoints_taken: 0,
        };
        let result = run_attempt(
            spec,
            shard,
            sub_seed,
            digest,
            config_text,
            &fault,
            retained.as_ref(),
            &mut watch,
        );
        recovery.checkpoints_taken = recovery
            .checkpoints_taken
            .saturating_add(watch.checkpoints_taken);
        if let Some(checkpoint) = watch.checkpoint.take() {
            retained = Some(checkpoint);
        }
        match result {
            Ok(report) => {
                attempts.push(ShardAttempt {
                    shard,
                    attempt,
                    failure: None,
                });
                return (Ok(report), attempts, recovery);
            }
            Err(failure) => {
                observed_round = observed_round.max(watch.progress_round);
                attempts.push(ShardAttempt {
                    shard,
                    attempt,
                    failure: Some(failure.clone()),
                });
                let fatal = matches!(
                    failure,
                    WorkerFailure::NonZeroExit(Some(EXIT_CONFIG_REJECTED))
                );
                if matches!(
                    failure,
                    WorkerFailure::NonZeroExit(Some(EXIT_RESUME_REJECTED))
                ) {
                    // The worker refused the shipped checkpoint (stricter
                    // validation than ours); drop it and retry from seed.
                    retained = None;
                }
                last_failure = Some(failure);
                if fatal {
                    // The worker declared the configuration itself
                    // unusable; re-sending it cannot succeed.
                    break;
                }
            }
        }
    }
    (
        Err(last_failure.expect("at least one attempt ran")),
        attempts,
        recovery,
    )
}

/// Runs the configuration as `spec.num_shards` supervised worker
/// processes and merges what survives.
///
/// Shard derivation is delegated to
/// [`ShardedSimulation`], so everything that
/// holds for in-process sharded runs (validation, striping, sub-master
/// seeds, global scenario/workload pinning) holds verbatim here — and a
/// run in which every shard eventually succeeded returns a report
/// bit-identical to [`ShardedSimulation::run`] at the same `k`.
///
/// # Errors
/// Returns the base configuration's validation errors, the wire form's
/// [`SimError::InvalidConfig`] for configurations that cannot be shipped
/// (replay traces), and — only when **every** shard exhausted its retries —
/// the first lost shard's classified failure as a [`SimError::Io`] /
/// [`SimError::Codec`] / [`SimError::MergeMismatch`]. Losing some but not
/// all shards is *not* an error; it is a partial [`FabricOutcome`].
pub fn run_fabric(config: &SimConfig, spec: &FabricSpec) -> Result<FabricOutcome, SimError> {
    let sharded = ShardedSimulation::new(config.clone(), spec.num_shards)?;
    let digest = config.digest();
    let k = spec.num_shards;
    let texts: Vec<String> = (0..k)
        .map(|j| sharded.shard_config(j).to_key_values())
        .collect::<Result<_, _>>()?;
    type ShardOutcome = (
        Result<ShardReport, WorkerFailure>,
        Vec<ShardAttempt>,
        ShardRecovery,
    );
    let mut outcomes: Vec<Option<ShardOutcome>> = (0..k).map(|_| None).collect();
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(k);
        for (j, text) in texts.iter().enumerate() {
            let sub_seed = sharded.shard_config(j).seed;
            let spec = &spec;
            handles.push(
                scope.spawn(move || {
                    run_shard_supervised(spec, config.seed, j, sub_seed, digest, text)
                }),
            );
        }
        for (j, handle) in handles.into_iter().enumerate() {
            outcomes[j] = Some(handle.join().expect("shard supervisor panicked"));
        }
    });
    let mut survivors = Vec::with_capacity(k);
    let mut lost_shards = Vec::new();
    let mut attempts = Vec::new();
    let mut first_loss: Option<WorkerFailure> = None;
    let mut checkpoints_taken: u64 = 0;
    let mut rounds_replayed: u64 = 0;
    for (j, outcome) in outcomes.into_iter().enumerate() {
        let (result, shard_attempts, recovery) = outcome.expect("every shard ran");
        attempts.extend(shard_attempts);
        checkpoints_taken = checkpoints_taken.saturating_add(recovery.checkpoints_taken);
        rounds_replayed = rounds_replayed.saturating_add(recovery.rounds_replayed);
        match result {
            Ok(report) => survivors.push(report),
            Err(failure) => {
                if first_loss.is_none() {
                    first_loss = Some(failure);
                }
                lost_shards.push(j);
            }
        }
    }
    if survivors.is_empty() {
        let shard = lost_shards[0];
        return Err(first_loss
            .expect("a lost shard has a failure")
            .into_sim_error(shard));
    }
    let mut report = merge_shard_reports(&survivors)?;
    report.offered_load = config.offered_load();
    if !lost_shards.is_empty() {
        // A partial merge already diverges from the in-process run, so the
        // recovery counters ride along in its degradation block. A *fully
        // recovered* run stays bit-identical — its counters live only on
        // the outcome.
        let d = report
            .degradation
            .get_or_insert(DegradationMetrics::default());
        d.shards_lost = d.shards_lost.saturating_add(lost_shards.len() as u64);
        d.rounds_lost = d
            .rounds_lost
            .saturating_add((lost_shards.len() as u64).saturating_mul(config.rounds));
        d.checkpoints_taken = d.checkpoints_taken.saturating_add(checkpoints_taken);
        d.rounds_replayed = d.rounds_replayed.saturating_add(rounds_replayed);
    }
    Ok(FabricOutcome {
        report,
        lost_shards,
        attempts,
        checkpoints_taken,
        rounds_replayed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrivals::ArrivalSpec;
    use scd_model::ClusterSpec;

    fn base_config() -> SimConfig {
        SimConfig::builder(ClusterSpec::from_rates(vec![2.0, 1.0, 1.0, 2.0]).unwrap())
            .dispatchers(2)
            .rounds(50)
            .seed(5)
            .arrivals(ArrivalSpec::PoissonOfferedLoad { offered_load: 0.7 })
            .build()
            .unwrap()
    }

    #[test]
    fn backoff_is_deterministic_exponential_and_jitter_bounded() {
        let spec = FabricSpec::new(PathBuf::from("worker"), "SCD", 4);
        for shard in 0..4usize {
            for attempt in 1..=6u32 {
                let a = retry_backoff(&spec, 9, shard, attempt);
                let b = retry_backoff(&spec, 9, shard, attempt);
                assert_eq!(a, b, "backoff must be reproducible");
                let nominal = spec
                    .backoff_base
                    .checked_mul(1 << (attempt - 1))
                    .unwrap_or(spec.backoff_cap)
                    .min(spec.backoff_cap);
                assert!(a >= nominal.mul_f64(0.5), "shard {shard} attempt {attempt}");
                assert!(a < nominal.mul_f64(1.5), "shard {shard} attempt {attempt}");
            }
        }
        // Different shards (and different masters) jitter differently.
        let j0 = retry_backoff(&spec, 9, 0, 1);
        let j1 = retry_backoff(&spec, 9, 1, 1);
        let j2 = retry_backoff(&spec, 10, 0, 1);
        assert!(j0 != j1 || j0 != j2, "jitter should depend on shard/master");
    }

    #[test]
    fn backoff_is_total_over_u32() {
        let spec = FabricSpec::new(PathBuf::from("worker"), "SCD", 4);
        // Huge attempt numbers neither panic nor overflow: the exponent
        // saturates and the cap (times the jitter bound) still holds.
        for attempt in [7u32, 20, 21, 1 << 16, u32::MAX] {
            let pause = retry_backoff(&spec, 9, 0, attempt);
            assert!(pause < spec.backoff_cap.mul_f64(1.5), "attempt {attempt}");
            assert!(pause >= spec.backoff_cap.mul_f64(0.5), "attempt {attempt}");
        }
    }

    #[test]
    fn injected_faults_select_by_shard_attempt_and_persistence() {
        let mut spec = FabricSpec::new(PathBuf::from("worker"), "SCD", 4);
        spec.injected = vec![
            InjectedFault {
                shard: 1,
                fault: WorkerFaultPlan {
                    exit_code: Some(9),
                    ..WorkerFaultPlan::default()
                },
                persistent: false,
            },
            InjectedFault {
                shard: 2,
                fault: WorkerFaultPlan {
                    hang: true,
                    ..WorkerFaultPlan::default()
                },
                persistent: true,
            },
        ];
        assert!(spec.fault_for(0, 0).is_clean());
        assert_eq!(spec.fault_for(1, 0).exit_code, Some(9));
        assert!(
            spec.fault_for(1, 1).is_clean(),
            "one-shot fault retries clean"
        );
        assert!(spec.fault_for(2, 0).hang);
        assert!(spec.fault_for(2, 3).hang, "persistent fault never clears");
    }

    #[test]
    fn unspawnable_worker_loses_every_shard_and_errors() {
        let mut spec = FabricSpec::new(PathBuf::from("/nonexistent/scd-shard-worker"), "SCD", 2);
        spec.max_retries = 1;
        spec.backoff_base = Duration::from_millis(1);
        spec.backoff_cap = Duration::from_millis(2);
        let err = run_fabric(&base_config(), &spec).unwrap_err();
        match err {
            SimError::Io {
                shard, ref cause, ..
            } => {
                assert_eq!(shard, 0);
                assert!(cause.contains("spawn"), "{cause}");
            }
            other => panic!("expected Io spawn error, got {other}"),
        }
    }

    #[test]
    fn failure_display_and_error_mapping_cover_every_variant() {
        let cases: Vec<(WorkerFailure, &str)> = vec![
            (WorkerFailure::Spawn("no such file".into()), "spawn"),
            (WorkerFailure::NonZeroExit(Some(101)), "101"),
            (WorkerFailure::NonZeroExit(None), "signal"),
            (
                WorkerFailure::Frame(CodecError::Truncated { needed: 9, got: 2 }),
                "truncated",
            ),
            (
                WorkerFailure::DigestMismatch {
                    expected: 1,
                    got: 2,
                },
                "digest",
            ),
            (
                WorkerFailure::ShardMismatch {
                    got_shard: 3,
                    got_shards: 4,
                },
                "shard 3",
            ),
            (WorkerFailure::Timeout, "timed out"),
        ];
        for (failure, needle) in cases {
            let shown = failure.to_string();
            assert!(shown.contains(needle), "{shown} should contain {needle}");
            // Every failure maps into some SimError whose Display carries
            // the shard index.
            let err = failure.into_sim_error(7);
            assert!(err.to_string().contains('7'), "{err}");
        }
    }
}
