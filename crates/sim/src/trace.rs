//! Per-job event traces and the Chrome/Perfetto `trace_event` emitter.
//!
//! When the engine runs through [`Simulation::run_traced`]
//! (or [`ShardedSimulation::run_traced`]) it fills a [`RunTrace`]: the raw
//! per-round arrival counts (an [`ArrivalTrace`] a workload can
//! [replay](crate::WorkloadSpec::replay) bit-exactly) plus a stream of
//! [`TraceEvent`]s following every job batch from arrival through dispatch
//! to service. [`chrome_trace_json`] renders the stream in the Chrome
//! `trace_event` JSON format (hand-written — the vendored serde is a
//! stub), loadable in `chrome://tracing` or [Perfetto](https://ui.perfetto.dev):
//! dispatchers and servers appear as two process lanes, arrivals as
//! instants, dispatch decisions as complete slices, and service as
//! begin/end pairs.
//!
//! Arrival counts are recorded at *sample* time, before any scenario
//! zeroing — replaying the trace under the same scenario re-applies the
//! identical losses, which is what makes record→replay bit-exact even in
//! degraded runs.
//!
//! [`Simulation::run_traced`]: crate::Simulation::run_traced
//! [`ShardedSimulation::run_traced`]: crate::ShardedSimulation::run_traced

use crate::workload::ArrivalTrace;
use serde::{Deserialize, Serialize};
use std::io::Write;
use std::path::Path;

/// Hard cap on recorded [`TraceEvent`]s per run; past it events are
/// counted in [`RunTrace::dropped`] instead of stored (a 2 M-event trace
/// is already ~100 MB of JSON — beyond what a timeline viewer loads).
pub const MAX_TRACE_EVENTS: usize = 2_000_000;

/// One recorded engine event. Counts are batch sizes: the engine moves
/// jobs in runs, and the trace preserves that granularity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceEvent {
    /// `count` jobs arrived at a dispatcher (post-scenario: what the
    /// dispatcher actually received).
    Arrival {
        /// Round of arrival.
        round: u64,
        /// Receiving dispatcher (global id).
        dispatcher: u32,
        /// Jobs in the batch.
        count: u64,
    },
    /// A dispatcher routed `count` jobs to a server.
    Dispatch {
        /// Round of the decision.
        round: u64,
        /// Deciding dispatcher (global id).
        dispatcher: u32,
        /// Chosen server (global id).
        server: u32,
        /// Jobs routed together.
        count: u64,
    },
    /// A server completed `count` jobs that arrived in `arrival_round`
    /// (service start/finish: the batch occupied the server from its
    /// dispatch round up to `round`, where it finishes).
    Service {
        /// Round of completion.
        round: u64,
        /// Serving server (global id).
        server: u32,
        /// Round the completed jobs arrived in.
        arrival_round: u64,
        /// Jobs completed together.
        count: u64,
    },
}

/// A full per-job event trace of one run: the sampled arrival matrix
/// (replayable via [`WorkloadSpec::replay`](crate::WorkloadSpec::replay))
/// and the event stream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunTrace {
    /// Dispatchers in the (global) system.
    pub num_dispatchers: usize,
    /// Servers in the (global) system.
    pub num_servers: usize,
    /// Rounds recorded.
    pub rounds: u64,
    /// Raw sampled per-round, per-dispatcher arrival counts (recorded
    /// *before* scenario losses).
    pub arrivals: ArrivalTrace,
    /// The event stream, in engine order.
    pub events: Vec<TraceEvent>,
    /// Events discarded after [`MAX_TRACE_EVENTS`] was reached.
    pub dropped: u64,
}

impl RunTrace {
    /// An empty trace for a system of the given (global) shape.
    pub fn new(num_dispatchers: usize, num_servers: usize, rounds: u64) -> Self {
        RunTrace {
            num_dispatchers,
            num_servers,
            rounds,
            arrivals: ArrivalTrace::new(num_dispatchers, rounds),
            events: Vec::new(),
            dropped: 0,
        }
    }

    fn push(&mut self, event: TraceEvent) {
        if self.events.len() < MAX_TRACE_EVENTS {
            self.events.push(event);
        } else {
            self.dropped += 1;
        }
    }

    /// Records the raw sampled arrival count of one `(round, dispatcher)`
    /// cell (pre-scenario).
    pub fn record_sampled_arrival(&mut self, round: u64, dispatcher: usize, count: u64) {
        self.arrivals.set(round, dispatcher, count);
    }

    /// Records the post-scenario arrival batch a dispatcher received.
    pub fn record_arrival(&mut self, round: u64, dispatcher: u32, count: u64) {
        if count > 0 {
            self.push(TraceEvent::Arrival {
                round,
                dispatcher,
                count,
            });
        }
    }

    /// Records a dispatch decision.
    pub fn record_dispatch(&mut self, round: u64, dispatcher: u32, server: u32, count: u64) {
        if count > 0 {
            self.push(TraceEvent::Dispatch {
                round,
                dispatcher,
                server,
                count,
            });
        }
    }

    /// Records a service completion batch.
    pub fn record_service(&mut self, round: u64, server: u32, arrival_round: u64, count: u64) {
        if count > 0 {
            self.push(TraceEvent::Service {
                round,
                server,
                arrival_round,
                count,
            });
        }
    }

    /// Merges a shard-local trace into this global one, remapping local
    /// dispatcher/server indices through `dispatcher_ids`/`server_ids`
    /// (`ids[local] = global`). Event order within the shard is preserved;
    /// callers merge shards in shard order for a deterministic stream.
    ///
    /// # Panics
    /// Panics if an id map is shorter than the shard's entity count or a
    /// global id is outside this trace's shape.
    pub fn absorb_remapped(
        &mut self,
        local: &RunTrace,
        dispatcher_ids: &[u32],
        server_ids: &[u32],
    ) {
        assert!(
            local.rounds <= self.rounds,
            "shard trace exceeds run length"
        );
        let m = local.arrivals.num_dispatchers();
        assert!(dispatcher_ids.len() >= m, "dispatcher id map too short");
        for round in 0..local.rounds {
            for (d, &global) in dispatcher_ids[..m].iter().enumerate() {
                self.arrivals
                    .set(round, global as usize, local.arrivals.count(round, d));
            }
        }
        for &event in &local.events {
            let remapped = match event {
                TraceEvent::Arrival {
                    round,
                    dispatcher,
                    count,
                } => TraceEvent::Arrival {
                    round,
                    dispatcher: dispatcher_ids[dispatcher as usize],
                    count,
                },
                TraceEvent::Dispatch {
                    round,
                    dispatcher,
                    server,
                    count,
                } => TraceEvent::Dispatch {
                    round,
                    dispatcher: dispatcher_ids[dispatcher as usize],
                    server: server_ids[server as usize],
                    count,
                },
                TraceEvent::Service {
                    round,
                    server,
                    arrival_round,
                    count,
                } => TraceEvent::Service {
                    round,
                    server: server_ids[server as usize],
                    arrival_round,
                    count,
                },
            };
            self.push(remapped);
        }
        self.dropped += local.dropped;
    }
}

/// Microseconds per simulated round on the Chrome trace timeline.
const ROUND_US: u64 = 1_000;

fn push_event_json(out: &mut String, trace_event: &TraceEvent) {
    use std::fmt::Write as _;
    match *trace_event {
        TraceEvent::Arrival {
            round,
            dispatcher,
            count,
        } => {
            let _ = write!(
                out,
                "{{\"name\":\"arrive x{count}\",\"cat\":\"arrival\",\"ph\":\"i\",\
                 \"ts\":{},\"pid\":1,\"tid\":{},\"s\":\"t\",\
                 \"args\":{{\"round\":{round},\"count\":{count}}}}}",
                round * ROUND_US,
                dispatcher
            );
        }
        TraceEvent::Dispatch {
            round,
            dispatcher,
            server,
            count,
        } => {
            let _ = write!(
                out,
                "{{\"name\":\"dispatch x{count} -> s{server}\",\"cat\":\"dispatch\",\
                 \"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":1,\"tid\":{},\
                 \"args\":{{\"round\":{round},\"server\":{server},\"count\":{count}}}}}",
                round * ROUND_US,
                ROUND_US / 2,
                dispatcher
            );
        }
        TraceEvent::Service {
            round,
            server,
            arrival_round,
            count,
        } => {
            // Render the batch as occupying the server from its arrival
            // round until completion: a begin/end slice pair.
            let _ = write!(
                out,
                "{{\"name\":\"serve x{count}\",\"cat\":\"service\",\"ph\":\"B\",\
                 \"ts\":{},\"pid\":2,\"tid\":{server},\
                 \"args\":{{\"arrival_round\":{arrival_round},\"count\":{count}}}}}",
                arrival_round * ROUND_US
            );
            out.push(',');
            let _ = write!(
                out,
                "{{\"name\":\"serve x{count}\",\"cat\":\"service\",\"ph\":\"E\",\
                 \"ts\":{},\"pid\":2,\"tid\":{server}}}",
                round * ROUND_US + ROUND_US * 4 / 5
            );
        }
    }
}

/// Renders a [`RunTrace`] as Chrome `trace_event` JSON (the
/// `{"traceEvents": [...]}` object form), loadable in `chrome://tracing`
/// and Perfetto. Dispatchers are threads of pid 1, servers threads of
/// pid 2; arrivals are `"i"` instants, dispatch decisions `"X"` complete
/// slices, service batches `"B"`/`"E"` pairs, plus `"M"` metadata naming
/// the lanes.
pub fn chrome_trace_json(trace: &RunTrace) -> String {
    use std::fmt::Write as _;
    let mut out = String::with_capacity(256 + trace.events.len() * 160);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    let mut first = true;
    let mut sep = |out: &mut String| {
        if !first {
            out.push(',');
        }
        first = false;
    };
    // Metadata: name the two process lanes and every entity thread.
    for (pid, name) in [(1u32, "dispatchers"), (2u32, "servers")] {
        sep(&mut out);
        let _ = write!(
            out,
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\
             \"args\":{{\"name\":\"{name}\"}}}}"
        );
    }
    for d in 0..trace.num_dispatchers {
        sep(&mut out);
        let _ = write!(
            out,
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{d},\
             \"args\":{{\"name\":\"dispatcher {d}\"}}}}"
        );
    }
    for s in 0..trace.num_servers {
        sep(&mut out);
        let _ = write!(
            out,
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":2,\"tid\":{s},\
             \"args\":{{\"name\":\"server {s}\"}}}}"
        );
    }
    for event in &trace.events {
        sep(&mut out);
        push_event_json(&mut out, event);
    }
    out.push_str("]}");
    out
}

/// Writes [`chrome_trace_json`] to `path`.
///
/// # Errors
/// Propagates I/O errors from creating or writing the file.
pub fn write_chrome_trace(path: &Path, trace: &RunTrace) -> std::io::Result<()> {
    let mut file = std::io::BufWriter::new(std::fs::File::create(path)?);
    file.write_all(chrome_trace_json(trace).as_bytes())?;
    file.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> RunTrace {
        let mut trace = RunTrace::new(2, 3, 4);
        trace.record_sampled_arrival(0, 0, 5);
        trace.record_sampled_arrival(0, 1, 2);
        trace.record_arrival(0, 0, 5);
        trace.record_arrival(0, 1, 2);
        trace.record_dispatch(0, 0, 2, 5);
        trace.record_dispatch(0, 1, 0, 2);
        trace.record_service(1, 2, 0, 5);
        trace.record_service(2, 0, 0, 2);
        trace
    }

    #[test]
    fn zero_count_events_are_not_recorded() {
        let mut trace = RunTrace::new(1, 1, 1);
        trace.record_arrival(0, 0, 0);
        trace.record_dispatch(0, 0, 0, 0);
        trace.record_service(0, 0, 0, 0);
        assert!(trace.events.is_empty());
    }

    #[test]
    fn the_event_cap_counts_drops_instead_of_growing() {
        let mut trace = RunTrace::new(1, 1, 1);
        for _ in 0..MAX_TRACE_EVENTS + 10 {
            trace.record_arrival(0, 0, 1);
        }
        assert_eq!(trace.events.len(), MAX_TRACE_EVENTS);
        assert_eq!(trace.dropped, 10);
    }

    #[test]
    fn absorb_remapped_translates_local_ids_to_global() {
        let mut local = RunTrace::new(1, 2, 3);
        local.record_sampled_arrival(1, 0, 9);
        local.record_arrival(1, 0, 9);
        local.record_dispatch(1, 0, 1, 9);
        local.record_service(2, 1, 1, 9);
        let mut global = RunTrace::new(3, 5, 3);
        global.absorb_remapped(&local, &[2], &[1, 4]);
        assert_eq!(global.arrivals.count(1, 2), 9);
        assert_eq!(
            global.events,
            vec![
                TraceEvent::Arrival {
                    round: 1,
                    dispatcher: 2,
                    count: 9
                },
                TraceEvent::Dispatch {
                    round: 1,
                    dispatcher: 2,
                    server: 4,
                    count: 9
                },
                TraceEvent::Service {
                    round: 2,
                    server: 4,
                    arrival_round: 1,
                    count: 9
                },
            ]
        );
    }

    #[test]
    fn chrome_json_contains_all_four_phase_types_and_balances() {
        let json = chrome_trace_json(&sample_trace());
        assert!(json.starts_with('{') && json.ends_with('}'));
        for phase in [
            "\"ph\":\"M\"",
            "\"ph\":\"i\"",
            "\"ph\":\"X\"",
            "\"ph\":\"B\"",
            "\"ph\":\"E\"",
        ] {
            assert!(json.contains(phase), "missing {phase} in {json}");
        }
        // Begin/end pairs must balance for the timeline to nest.
        let begins = json.matches("\"ph\":\"B\"").count();
        let ends = json.matches("\"ph\":\"E\"").count();
        assert_eq!(begins, ends);
        // Structural sanity without a JSON parser: balanced braces and
        // brackets, no trailing comma before the closing bracket.
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
        assert!(!json.contains(",]"));
    }
}
