//! Deterministic fault, churn, and stale-information scenarios.
//!
//! A [`ScenarioSpec`] describes everything that can go wrong in a run:
//! seeded server crash/repair processes, dispatcher churn (an offline
//! dispatcher contributes no arrivals), per-dispatcher stale snapshots
//! (decisions taken on a `k`-round-old queue view), and probe loss for the
//! probe-marking policies (LSQ, LED). The default spec is "no faults", and
//! the engine promises that a default spec reconstructs the fair-weather
//! round loop **bit for bit** — the goldens in `tests/engine_golden.rs` are
//! the proof.
//!
//! Every stochastic element of a scenario derives from one scenario master
//! seed (the run's master seed unless [`ScenarioSpec::seed`] pins one) via
//! the counter-mode streams of `scd_model::streams`
//! (`FAULT_STREAM_TAG`, `STALENESS_STREAM_TAG`, `PROBE_LOSS_STREAM_TAG`),
//! keyed by each entity's **global** id. A sharded run therefore replays the
//! exact schedule of the unsharded run: `ShardedSimulation` pins the
//! scenario master and hands every shard the global ids of its servers and
//! dispatchers through [`ScenarioSpec::server_ids`] /
//! [`ScenarioSpec::dispatcher_ids`].
//!
//! Scenario files for the `sweep` binary's `--scenario` flag use a plain
//! `key = value` format ([`ScenarioSpec::from_key_values`]); the types also
//! carry the workspace-standard serde derives.

use crate::engine::SimError;
use serde::{Deserialize, Serialize};

/// How stale each dispatcher's queue-length view is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum StalenessSpec {
    /// Every dispatcher sees the fresh round-`t` snapshot (the paper's
    /// baseline information model, and the default).
    #[default]
    Fresh,
    /// Every dispatcher decides on the snapshot of round `t − k` (clamped
    /// to round 0 while the run is younger than `k`). `k = 0` exercises the
    /// scenario code path with fresh information — bit-identical to
    /// [`Fresh`](StalenessSpec::Fresh) by contract.
    Fixed {
        /// The snapshot age in rounds.
        k: u64,
    },
    /// Each dispatcher independently draws its view's age uniformly from
    /// `0..=max_k` every round, from the `STALENESS_STREAM_TAG` stream of
    /// its global id.
    UniformPerRound {
        /// The largest possible snapshot age.
        max_k: u64,
    },
}

impl StalenessSpec {
    /// The deepest snapshot age this spec can request — the engine sizes
    /// its snapshot ring as `max_k() + 1`.
    pub fn max_k(&self) -> u64 {
        match self {
            StalenessSpec::Fresh => 0,
            StalenessSpec::Fixed { k } => *k,
            StalenessSpec::UniformPerRound { max_k } => *max_k,
        }
    }
}

/// Upper bound on the staleness depth — bounds the engine's snapshot ring.
pub const MAX_STALENESS: u64 = 4_096;

/// Deterministic description of the failures a run is subjected to.
///
/// All probabilities are per entity per round: an up server crashes with
/// probability `server_fail_rate` and a down one repairs with
/// `server_repair_rate` (geometric up/down spans), and likewise for
/// dispatchers. Every process starts in the up state at round 0.
///
/// The default value is the inert scenario — see
/// [`is_inert`](ScenarioSpec::is_inert).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioSpec {
    /// Per-round crash probability of an up server.
    pub server_fail_rate: f64,
    /// Per-round repair probability of a down server.
    pub server_repair_rate: f64,
    /// Per-round churn-out probability of an online dispatcher.
    pub dispatcher_fail_rate: f64,
    /// Per-round return probability of an offline dispatcher.
    pub dispatcher_repair_rate: f64,
    /// The staleness model of the dispatchers' queue views.
    pub staleness: StalenessSpec,
    /// Per-probe loss probability for probe-marking policies (LSQ, LED).
    pub probe_loss_rate: f64,
    /// The scenario master seed; `None` uses the run's master seed. The
    /// sharded engine pins this to the base run's master so every shard
    /// derives the identical schedule.
    pub seed: Option<u64>,
    /// Global id of each local server (`server_ids[local] = global`), for
    /// shard slices of a larger run. `None` means local ids are global.
    pub server_ids: Option<Vec<u32>>,
    /// Global id of each local dispatcher; `None` means local ids are
    /// global.
    pub dispatcher_ids: Option<Vec<u32>>,
}

impl Default for ScenarioSpec {
    fn default() -> Self {
        ScenarioSpec {
            server_fail_rate: 0.0,
            server_repair_rate: 0.0,
            dispatcher_fail_rate: 0.0,
            dispatcher_repair_rate: 0.0,
            staleness: StalenessSpec::Fresh,
            probe_loss_rate: 0.0,
            seed: None,
            server_ids: None,
            dispatcher_ids: None,
        }
    }
}

impl ScenarioSpec {
    /// Whether this scenario asks for nothing at all, in which case the
    /// engine runs the fair-weather fast path (no fault phase, no snapshot
    /// ring, shared per-round context and cache) and is bit-identical to
    /// the pre-scenario engine.
    ///
    /// Note the asymmetry with [`StalenessSpec::Fresh`]: `Fixed { k: 0 }`
    /// is *not* inert — it routes through the scenario code path (per-
    /// dispatcher contexts reading the depth-0 ring slot), whose
    /// bit-identity to the fast path is a tested contract rather than a
    /// definition.
    pub fn is_inert(&self) -> bool {
        self.server_fail_rate == 0.0
            && self.server_repair_rate == 0.0
            && self.dispatcher_fail_rate == 0.0
            && self.dispatcher_repair_rate == 0.0
            && self.staleness == StalenessSpec::Fresh
            && self.probe_loss_rate == 0.0
    }

    /// Whether any server/dispatcher fault process can ever fire.
    pub fn has_faults(&self) -> bool {
        self.server_fail_rate > 0.0 || self.dispatcher_fail_rate > 0.0
    }

    /// The scenario master seed for a run whose master seed is `master`.
    pub fn resolved_seed(&self, master: u64) -> u64 {
        self.seed.unwrap_or(master)
    }

    /// The global id of local server `local`.
    ///
    /// # Panics
    /// Panics if an id map is present but shorter than `local` (prevented
    /// by [`validate`](ScenarioSpec::validate)).
    pub fn server_global_id(&self, local: usize) -> u64 {
        match &self.server_ids {
            Some(map) => map[local] as u64,
            None => local as u64,
        }
    }

    /// The global id of local dispatcher `local`.
    ///
    /// # Panics
    /// Panics if an id map is present but shorter than `local` (prevented
    /// by [`validate`](ScenarioSpec::validate)).
    pub fn dispatcher_global_id(&self, local: usize) -> u64 {
        match &self.dispatcher_ids {
            Some(map) => map[local] as u64,
            None => local as u64,
        }
    }

    /// Validates the scenario against a cluster of `num_servers` servers
    /// and `num_dispatchers` dispatchers.
    ///
    /// # Errors
    /// Returns [`SimError::InvalidConfig`] when a rate is not a probability,
    /// the staleness depth exceeds [`MAX_STALENESS`], or an id map's length
    /// does not match the cluster.
    pub fn validate(&self, num_servers: usize, num_dispatchers: usize) -> Result<(), SimError> {
        let rates = [
            ("server fail rate", self.server_fail_rate),
            ("server repair rate", self.server_repair_rate),
            ("dispatcher fail rate", self.dispatcher_fail_rate),
            ("dispatcher repair rate", self.dispatcher_repair_rate),
            ("probe loss rate", self.probe_loss_rate),
        ];
        for (name, rate) in rates {
            if !rate.is_finite() || !(0.0..=1.0).contains(&rate) {
                return Err(SimError::InvalidConfig(format!(
                    "scenario {name} must be a probability in [0, 1], got {rate}"
                )));
            }
        }
        let max_k = self.staleness.max_k();
        if max_k > MAX_STALENESS {
            return Err(SimError::InvalidConfig(format!(
                "scenario staleness depth {max_k} exceeds the supported maximum {MAX_STALENESS}"
            )));
        }
        if let Some(map) = &self.server_ids {
            if map.len() != num_servers {
                return Err(SimError::InvalidConfig(format!(
                    "scenario server id map has {} entries for a cluster of {num_servers} servers",
                    map.len()
                )));
            }
        }
        if let Some(map) = &self.dispatcher_ids {
            if map.len() != num_dispatchers {
                return Err(SimError::InvalidConfig(format!(
                    "scenario dispatcher id map has {} entries for {num_dispatchers} dispatchers",
                    map.len()
                )));
            }
        }
        Ok(())
    }

    /// Parses the `key = value` scenario-file format of the `sweep` binary:
    /// one assignment per line, `#` comments, blank lines ignored.
    ///
    /// Recognized keys: `server_fail_rate`, `server_repair_rate`,
    /// `dispatcher_fail_rate`, `dispatcher_repair_rate`, `probe_loss_rate`
    /// (floats); `stale_k` (fixed staleness) or `stale_max_k` (per-round
    /// uniform draw) — mutually exclusive; `seed` (pins the scenario
    /// master). Id maps are engine-internal and have no file syntax.
    ///
    /// # Errors
    /// Returns [`SimError::InvalidConfig`] for malformed lines, unknown
    /// keys, unparsable values, or both staleness keys at once.
    pub fn from_key_values(text: &str) -> Result<ScenarioSpec, SimError> {
        let mut spec = ScenarioSpec::default();
        let mut stale_fixed: Option<u64> = None;
        let mut stale_uniform: Option<u64> = None;
        for (lineno, raw) in text.lines().enumerate() {
            let line = match raw.split_once('#') {
                Some((before, _comment)) => before.trim(),
                None => raw.trim(),
            };
            if line.is_empty() {
                continue;
            }
            let (key, value) = line.split_once('=').ok_or_else(|| {
                SimError::InvalidConfig(format!(
                    "scenario line {}: expected `key = value`, got {raw:?}",
                    lineno + 1
                ))
            })?;
            let (key, value) = (key.trim(), value.trim());
            let bad_value = |what: &str| {
                SimError::InvalidConfig(format!(
                    "scenario line {}: `{key}` needs {what}, got {value:?}",
                    lineno + 1
                ))
            };
            match key {
                "server_fail_rate" => {
                    spec.server_fail_rate = value.parse().map_err(|_| bad_value("a float"))?;
                }
                "server_repair_rate" => {
                    spec.server_repair_rate = value.parse().map_err(|_| bad_value("a float"))?;
                }
                "dispatcher_fail_rate" => {
                    spec.dispatcher_fail_rate = value.parse().map_err(|_| bad_value("a float"))?;
                }
                "dispatcher_repair_rate" => {
                    spec.dispatcher_repair_rate =
                        value.parse().map_err(|_| bad_value("a float"))?;
                }
                "probe_loss_rate" => {
                    spec.probe_loss_rate = value.parse().map_err(|_| bad_value("a float"))?;
                }
                "stale_k" => {
                    stale_fixed = Some(value.parse().map_err(|_| bad_value("an integer"))?);
                }
                "stale_max_k" => {
                    stale_uniform = Some(value.parse().map_err(|_| bad_value("an integer"))?);
                }
                "seed" => {
                    spec.seed = Some(value.parse().map_err(|_| bad_value("an integer"))?);
                }
                _ => {
                    return Err(SimError::InvalidConfig(format!(
                        "scenario line {}: unknown key {key:?}",
                        lineno + 1
                    )));
                }
            }
        }
        spec.staleness = match (stale_fixed, stale_uniform) {
            (Some(_), Some(_)) => {
                return Err(SimError::InvalidConfig(
                    "scenario sets both `stale_k` and `stale_max_k`; pick one".into(),
                ));
            }
            (Some(k), None) => StalenessSpec::Fixed { k },
            (None, Some(max_k)) => StalenessSpec::UniformPerRound { max_k },
            (None, None) => StalenessSpec::Fresh,
        };
        Ok(spec)
    }

    /// Renders the scenario back into the `key = value` file format —
    /// [`from_key_values`](ScenarioSpec::from_key_values) of the result
    /// reconstructs `self` exactly (id maps excepted; they have no file
    /// syntax).
    pub fn to_key_values(&self) -> String {
        let mut out = String::new();
        let mut push = |key: &str, value: String| {
            out.push_str(key);
            out.push_str(" = ");
            out.push_str(&value);
            out.push('\n');
        };
        push("server_fail_rate", self.server_fail_rate.to_string());
        push("server_repair_rate", self.server_repair_rate.to_string());
        push(
            "dispatcher_fail_rate",
            self.dispatcher_fail_rate.to_string(),
        );
        push(
            "dispatcher_repair_rate",
            self.dispatcher_repair_rate.to_string(),
        );
        push("probe_loss_rate", self.probe_loss_rate.to_string());
        match self.staleness {
            StalenessSpec::Fresh => {}
            StalenessSpec::Fixed { k } => push("stale_k", k.to_string()),
            StalenessSpec::UniformPerRound { max_k } => push("stale_max_k", max_k.to_string()),
        }
        if let Some(seed) = self.seed {
            push("seed", seed.to_string());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_scenario_is_inert() {
        let spec = ScenarioSpec::default();
        assert!(spec.is_inert());
        assert!(!spec.has_faults());
        assert_eq!(spec.staleness.max_k(), 0);
        assert_eq!(spec.resolved_seed(42), 42);
        assert_eq!(spec.server_global_id(3), 3);
        assert_eq!(spec.dispatcher_global_id(1), 1);
        spec.validate(8, 3).unwrap();
    }

    #[test]
    fn stale_zero_is_active_but_fresh_is_not() {
        let fixed0 = ScenarioSpec {
            staleness: StalenessSpec::Fixed { k: 0 },
            ..ScenarioSpec::default()
        };
        assert!(
            !fixed0.is_inert(),
            "Fixed {{ k: 0 }} must take the scenario path"
        );
        assert_eq!(fixed0.staleness.max_k(), 0);
    }

    #[test]
    fn id_maps_override_global_ids() {
        let spec = ScenarioSpec {
            server_ids: Some(vec![4, 9]),
            dispatcher_ids: Some(vec![7]),
            ..ScenarioSpec::default()
        };
        assert_eq!(spec.server_global_id(1), 9);
        assert_eq!(spec.dispatcher_global_id(0), 7);
        spec.validate(2, 1).unwrap();
        assert!(spec.validate(3, 1).is_err());
        assert!(spec.validate(2, 2).is_err());
    }

    #[test]
    fn validation_rejects_non_probabilities_and_deep_staleness() {
        for bad in [-0.1, 1.5, f64::NAN, f64::INFINITY] {
            let spec = ScenarioSpec {
                server_fail_rate: bad,
                ..ScenarioSpec::default()
            };
            assert!(spec.validate(4, 2).is_err(), "accepted fail rate {bad}");
            let spec = ScenarioSpec {
                probe_loss_rate: bad,
                ..ScenarioSpec::default()
            };
            assert!(spec.validate(4, 2).is_err(), "accepted loss rate {bad}");
        }
        let spec = ScenarioSpec {
            staleness: StalenessSpec::Fixed {
                k: MAX_STALENESS + 1,
            },
            ..ScenarioSpec::default()
        };
        assert!(spec.validate(4, 2).is_err());
    }

    #[test]
    fn key_value_format_round_trips() {
        let cases = [
            ScenarioSpec::default(),
            ScenarioSpec {
                server_fail_rate: 0.05,
                server_repair_rate: 0.25,
                dispatcher_fail_rate: 0.01,
                dispatcher_repair_rate: 0.5,
                staleness: StalenessSpec::Fixed { k: 3 },
                probe_loss_rate: 0.1,
                seed: Some(77),
                ..ScenarioSpec::default()
            },
            ScenarioSpec {
                staleness: StalenessSpec::UniformPerRound { max_k: 8 },
                ..ScenarioSpec::default()
            },
        ];
        for spec in cases {
            let text = spec.to_key_values();
            let parsed = ScenarioSpec::from_key_values(&text).unwrap();
            assert_eq!(parsed, spec, "round trip through {text:?}");
        }
    }

    #[test]
    fn parser_handles_comments_and_rejects_malformed_input() {
        let spec = ScenarioSpec::from_key_values(
            "# a herding scenario\n\nserver_fail_rate = 0.02 # trailing comment\nstale_k = 2\n",
        )
        .unwrap();
        assert_eq!(spec.server_fail_rate, 0.02);
        assert_eq!(spec.staleness, StalenessSpec::Fixed { k: 2 });

        for bad in [
            "no equals sign",
            "unknown_key = 1",
            "server_fail_rate = banana",
            "stale_k = 1\nstale_max_k = 2",
            "stale_k = -3",
        ] {
            assert!(
                ScenarioSpec::from_key_values(bad).is_err(),
                "accepted {bad:?}"
            );
        }
    }
}
