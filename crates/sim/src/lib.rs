//! Round-based multi-dispatcher / multi-server queueing simulator.
//!
//! This crate is the substrate on which the paper's evaluation (Section 6)
//! runs. It implements the system model of Section 2 exactly:
//!
//! * the system operates in discrete, synchronous rounds;
//! * each round has three phases — **arrivals** (each dispatcher receives a
//!   stochastic batch of jobs), **dispatching** (each dispatcher immediately
//!   and independently forwards every job to a server, all dispatchers seeing
//!   the same queue-length snapshot), and **departures** (each server
//!   completes a stochastic number of jobs from the front of its FIFO queue);
//! * arrivals are Poisson per dispatcher, service capacities are Geometric
//!   with mean `µ_s` (Section 6.1), but deterministic processes are also
//!   provided for tests.
//!
//! Reproducibility is central: for a fixed seed the arrival and departure
//! processes are *identical across policies*, because they are drawn from
//! dedicated RNG streams whose consumption does not depend on dispatching
//! decisions. This mirrors the paper's "same random seed across all
//! algorithms" methodology.
//!
//! Performance notes (see `ARCHITECTURE.md` for the full picture): the round
//! loop is allocation-free in steady state; derived per-round tables that
//! are identical across dispatchers (reciprocal rates, loads, solver keys)
//! are computed **once** per round into a shared
//! [`scd_model::RoundCache`] and handed to every policy through the context;
//! and the [`runner::fan_out`] primitive — a persistent pool of parked
//! workers ([`pool`]), work-stealing over an atomic index — is the single
//! parallelism primitive every higher layer (comparisons, replications,
//! experiment sweep grids) builds on, all of them bit-identical to
//! sequential runs.
//!
//! For the next order of magnitude, the [`shard`] module partitions the
//! servers into `k` independent shards — each with its own queues, RNG
//! sub-streams and policy instances — steps them concurrently on the same
//! pool, and merges their serializable [`ShardReport`]s into one
//! [`SimReport`] (bit-identical to [`Simulation::run`] for `k = 1`).
//!
//! # Example
//!
//! ```
//! use scd_sim::{ArrivalSpec, ServiceModel, SimConfig, Simulation};
//! use scd_model::{ClusterSpec, PolicyFactory};
//! use scd_core::policy::ScdFactory;
//!
//! let spec = ClusterSpec::from_rates(vec![4.0, 2.0, 1.0, 1.0]).unwrap();
//! let config = SimConfig::builder(spec)
//!     .dispatchers(2)
//!     .rounds(200)
//!     .warmup_rounds(50)
//!     .seed(7)
//!     .arrivals(ArrivalSpec::PoissonOfferedLoad { offered_load: 0.9 })
//!     .build()
//!     .unwrap();
//! let report = Simulation::new(config).unwrap().run(&ScdFactory::new()).unwrap();
//! assert!(report.response_times.count() > 0);
//! ```

// `deny`, not `forbid`: the `pool` module opts in locally for the two
// lifetime-erasure sites of the persistent fan-out pool (see its module
// docs for the safety argument); everything else stays unsafe-free.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod arrivals;
pub mod checkpoint;
pub mod config;
pub mod engine;
pub mod fabric;
pub mod pool;
pub mod queues;
pub mod report;
pub mod runner;
pub mod scenario;
pub mod services;
pub mod shard;
pub mod trace;
pub mod workload;

pub use arrivals::ArrivalSpec;
pub use checkpoint::EngineCheckpoint;
pub use config::{SimConfig, SimConfigBuilder};
pub use engine::{SimError, Simulation};
pub use fabric::{
    decode_frame, decode_shard_report, encode_checkpoint_frame, encode_final_frame,
    encode_progress_frame, encode_shard_report, peek_frame_len, CheckpointFrame, CodecError,
    FabricOutcome, FabricSpec, Frame, FrameKind, InjectedFault, ProgressFrame, WorkerFailure,
    WorkerFaultPlan, EXIT_CONFIG_REJECTED, EXIT_RESUME_REJECTED,
};
pub use queues::SegmentQueue;
pub use report::{DegradationMetrics, QueueSummary, SimReport};
pub use runner::{
    fan_out, fan_out_scoped, run_comparison, run_comparison_parallel, run_replications,
    ComparisonResult,
};
pub use scenario::{ScenarioSpec, StalenessSpec, MAX_STALENESS};
pub use services::ServiceModel;
pub use shard::{merge_shard_reports, ShardPlan, ShardReport, ShardedSimulation};
pub use trace::{chrome_trace_json, write_chrome_trace, RunTrace, TraceEvent};
pub use workload::{ArrivalTrace, JobClass, MmppPhase, ModulationSpec, WorkloadSpec};
