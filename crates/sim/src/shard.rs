//! The sharded round engine: server-partitioned simulation with mergeable
//! per-shard reports.
//!
//! The paper's setting — `m` independent dispatchers coordinating
//! *stochastically* (not via messages) over `n` heterogeneous servers —
//! partitions naturally: split the servers into `k` shards, give each shard
//! its own queues, RNG streams and policy instances, step the shards'
//! round loops independently, and merge the per-shard statistics at the
//! end. Nothing crosses a shard boundary during the run, so shards execute
//! concurrently on the persistent [`fan_out`] worker pool
//! (and, in a later PR, on separate processes or hosts: a [`ShardReport`]
//! is a plain serializable value, deliberately shaped so that merging is
//! the *only* cross-shard operation).
//!
//! # Semantics
//!
//! A sharded run of an `(n, m)` configuration is the union of `k`
//! statistically independent sub-systems, each simulating the paper's model
//! on the sub-cluster it owns with **its share of the dispatchers**: both
//! the `n` servers and the `m` dispatchers are striped across shards
//! (shard `j` runs `⌈(m − j) / k⌉` dispatchers, so the counts sum to `m`),
//! and each shard's Poisson arrival rates are calibrated to the **same
//! offered load** against the shard's capacity
//! (`λ = ρ · Σ_{s ∈ shard} µ_s / m_j`). Splitting both dimensions keeps
//! every shard approximately a scaled copy of the whole system — the
//! dispatcher-to-server ratio the paper's herding dynamics depend on is
//! preserved exactly when `k` divides both `n` and `m`, and to within the
//! ±1-per-shard rounding of the striped split otherwise — which is what
//! makes the merged statistics match the unsharded oracle (asserted, with
//! tolerances, in `tests/sharded_engine.rs`). The
//! [striped](ShardPlan::striped) partition interleaves the heterogeneous
//! rate vector, so every shard sees approximately the same rate mix.
//!
//! For `k = 1` the semantics are not approximate but **bit-identical** to
//! [`Simulation::run`]: the single shard owns every server in original
//! order, keeps the master seed unchanged
//! ([`shard_master_seed`]), and the
//! merge of one report is the identity. The golden test in
//! `tests/sharded_engine.rs` pins this.
//!
//! # Seed derivation
//!
//! Each shard derives a sub-master seed via the splitmix64 scheme in
//! [`scd_model::streams`], keyed on `(master, shard count, shard index)`;
//! the shard's arrival/service/per-dispatcher policy streams then derive
//! from the sub-master exactly as the unsharded engine derives them from
//! the master. Sub-streams of different shards (or of the same master at
//! different shard counts) can therefore never collide with each other or
//! with the unsharded per-dispatcher streams — audited over the full
//! `(master × k × shard × dispatcher)` grid in `tests/sharded_engine.rs`.

use crate::config::SimConfig;
use crate::engine::{SimError, Simulation};
use crate::report::SimReport;
use crate::runner::fan_out;
use crate::trace::RunTrace;
use scd_model::streams::shard_master_seed;
use scd_model::PolicyFactory;
use serde::{Deserialize, Serialize};

/// How many of `total` striped items (servers or dispatchers) land in shard
/// `j` of `k`: the size of `{i < total : i mod k == j}`.
fn striped_count(total: usize, k: usize, j: usize) -> usize {
    (total + k - 1 - j) / k
}

/// A partition of the cluster's servers into disjoint, covering shards.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardPlan {
    /// Global server indices owned by each shard.
    shards: Vec<Vec<usize>>,
    /// Total number of servers across all shards.
    num_servers: usize,
}

impl ShardPlan {
    /// The striped partition: server `s` belongs to shard `s mod k`.
    ///
    /// Striping interleaves the rate vector, so for the paper's i.i.d. rate
    /// profiles every shard receives approximately the same rate mix — the
    /// property the statistical shard-merge equivalence rests on. (A
    /// contiguous split of a sorted rate vector would instead concentrate
    /// all fast servers in one shard.)
    ///
    /// # Errors
    /// Returns [`SimError::InvalidConfig`] if `num_shards` is zero or
    /// exceeds `num_servers` (an empty shard would simulate an empty
    /// cluster).
    pub fn striped(num_servers: usize, num_shards: usize) -> Result<Self, SimError> {
        if num_shards == 0 {
            return Err(SimError::InvalidConfig(
                "a sharded run needs at least one shard".into(),
            ));
        }
        if num_shards > num_servers {
            return Err(SimError::InvalidConfig(format!(
                "cannot split {num_servers} servers into {num_shards} non-empty shards"
            )));
        }
        let shards = (0..num_shards)
            .map(|j| (j..num_servers).step_by(num_shards).collect())
            .collect();
        Ok(ShardPlan {
            shards,
            num_servers,
        })
    }

    /// Number of shards `k`.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Total number of servers across all shards.
    pub fn num_servers(&self) -> usize {
        self.num_servers
    }

    /// The global server indices owned by one shard, in the order the shard
    /// simulates them (shard-local server `i` is global server
    /// `servers(shard)[i]`).
    ///
    /// # Panics
    /// Panics if the shard index is out of range.
    pub fn servers(&self, shard: usize) -> &[usize] {
        &self.shards[shard]
    }
}

/// The mergeable result of one shard's run: the shard coordinates plus the
/// full statistics of the sub-system it simulated.
///
/// This is the unit a future cross-process/cross-host transport would
/// serialize — everything in it merges ([`merge_shard_reports`]) without
/// reference to any other shard's live state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardReport {
    /// Index of the shard that produced this report.
    pub shard: usize,
    /// Shard count `k` of the run this report belongs to. Reports of runs
    /// split differently are not mergeable (different sub-master seeds,
    /// different striping), so the merge rejects disagreement here.
    pub num_shards: usize,
    /// Number of servers the shard owns (the weight of its per-server
    /// averages in the merge).
    pub num_servers: usize,
    /// Structural digest ([`SimConfig::digest`]) of the **base** (unsharded)
    /// configuration the shard was derived from — the merge's proof that
    /// all reports describe slices of one experiment, and the value the
    /// process fabric checks a worker's report frame against.
    pub config_digest: u64,
    /// The shard's run statistics. Queue statistics are over the shard's
    /// own servers (shard-local indices); response times are in rounds,
    /// directly mergeable across shards because all shards step the same
    /// synchronous round clock.
    pub report: SimReport,
}

/// Merges per-shard reports into one system-wide [`SimReport`].
///
/// Response-time and decision-time histograms histogram-merge; job counters
/// sum; queue summaries fold with [`QueueSummary::fold_disjoint`]
/// (backlog-sum, idle-fraction weighted mean — see its documentation for
/// the `max_total_backlog` upper-bound caveat). Merging a single report is
/// the identity, which is what keeps the `k = 1` sharded path bit-identical
/// to the unsharded engine.
///
/// [`QueueSummary::fold_disjoint`]: crate::report::QueueSummary::fold_disjoint
///
/// # Errors
/// Returns [`SimError::MergeMismatch`] if `reports` is empty or the shards
/// disagree on shard count, configuration digest, policy, round count or
/// warm-up length — all shards of a run share one configuration, so any
/// disagreement means the inputs are slices of *different* experiments
/// (the misdirected-report case the process fabric must never merge).
pub fn merge_shard_reports(reports: &[ShardReport]) -> Result<SimReport, SimError> {
    let (first, rest) = reports
        .split_first()
        .ok_or_else(|| SimError::MergeMismatch("cannot merge zero shard reports".into()))?;
    let mut merged = first.report.clone();
    let mut servers_so_far = first.num_servers;
    for shard in rest {
        let report = &shard.report;
        if shard.num_shards != first.num_shards {
            return Err(SimError::MergeMismatch(format!(
                "shard {} reports a run of {} shards, shard {} one of {}",
                first.shard, first.num_shards, shard.shard, shard.num_shards
            )));
        }
        if shard.config_digest != first.config_digest {
            return Err(SimError::MergeMismatch(format!(
                "shard {} was configured with digest {:#018x}, shard {} with {:#018x}",
                first.shard, first.config_digest, shard.shard, shard.config_digest
            )));
        }
        if merged.policy != report.policy {
            return Err(SimError::MergeMismatch(format!(
                "shards of one run share a policy, got {:?} and {:?}",
                merged.policy, report.policy
            )));
        }
        if (merged.rounds, merged.warmup_rounds) != (report.rounds, report.warmup_rounds) {
            return Err(SimError::MergeMismatch(format!(
                "shards of one run share the round clock, got {:?} and {:?}",
                (merged.rounds, merged.warmup_rounds),
                (report.rounds, report.warmup_rounds)
            )));
        }
        merged.jobs_dispatched = merged
            .jobs_dispatched
            .saturating_add(report.jobs_dispatched);
        merged.jobs_completed = merged.jobs_completed.saturating_add(report.jobs_completed);
        merged.jobs_in_flight = merged.jobs_in_flight.saturating_add(report.jobs_in_flight);
        merged.response_times.merge(&report.response_times);
        merged
            .queues
            .fold_disjoint(&report.queues, servers_so_far, shard.num_servers);
        // Shards observe disjoint servers on a shared round clock, so the
        // occupancy histograms sum elementwise.
        scd_metrics::merge_saturating_counts(&mut merged.queue_occupancy, &report.queue_occupancy);
        match (&mut merged.decision_times_us, &report.decision_times_us) {
            (Some(mine), Some(theirs)) => mine.merge(theirs),
            (None, None) => {}
            (mine @ None, Some(theirs)) => *mine = Some(theirs.clone()),
            (Some(_), None) => {}
        }
        match (&mut merged.degradation, &report.degradation) {
            (Some(mine), Some(theirs)) => mine.merge(theirs),
            (None, None) => {}
            (mine @ None, Some(theirs)) => *mine = Some(*theirs),
            (Some(_), None) => {}
        }
        servers_so_far += shard.num_servers;
    }
    Ok(merged)
}

/// A simulation whose servers are partitioned into `k` independent shards.
///
/// Construction derives one complete [`SimConfig`] per shard (sub-cluster,
/// sub-master seed, same round clock and offered load); running steps every
/// shard's round loop — sequentially or on the persistent worker pool — and
/// merges the [`ShardReport`]s into one [`SimReport`].
///
/// # Example
/// ```
/// use scd_sim::{ArrivalSpec, ShardedSimulation, SimConfig};
/// use scd_core::policy::ScdFactory;
/// use scd_model::ClusterSpec;
///
/// let spec = ClusterSpec::from_rates(vec![4.0, 2.0, 1.0, 1.0]).unwrap();
/// let config = SimConfig::builder(spec)
///     .dispatchers(2)
///     .rounds(200)
///     .seed(7)
///     .arrivals(ArrivalSpec::PoissonOfferedLoad { offered_load: 0.9 })
///     .build()
///     .unwrap();
/// let sharded = ShardedSimulation::new(config, 2).unwrap();
/// let report = sharded.run(&ScdFactory::new()).unwrap();
/// assert!(report.response_times.count() > 0);
/// ```
#[derive(Debug, Clone)]
pub struct ShardedSimulation {
    config: SimConfig,
    plan: ShardPlan,
    shard_configs: Vec<SimConfig>,
}

impl ShardedSimulation {
    /// Validates the configuration and splits it into `num_shards` striped
    /// shards.
    ///
    /// # Errors
    /// Returns [`SimError::InvalidConfig`] when the base configuration is
    /// invalid, the shard count does not fit the cluster or the dispatcher
    /// count (every shard needs at least one server and one dispatcher), or
    /// — for more than one shard — the arrival process is not
    /// load-calibrated
    /// ([`ArrivalSpec::PoissonOfferedLoad`](crate::ArrivalSpec)): only a
    /// load-calibrated process splits across sub-clusters without changing
    /// the system's offered load.
    pub fn new(config: SimConfig, num_shards: usize) -> Result<Self, SimError> {
        // Surface base-configuration errors with the unsharded wording.
        Simulation::new(config.clone())?;
        let plan = ShardPlan::striped(config.num_servers(), num_shards)?;
        if num_shards > config.num_dispatchers {
            return Err(SimError::InvalidConfig(format!(
                "cannot split {} dispatchers across {num_shards} shards \
                 (every shard needs at least one)",
                config.num_dispatchers
            )));
        }
        if num_shards > 1
            && !matches!(
                config.arrivals,
                crate::arrivals::ArrivalSpec::PoissonOfferedLoad { .. }
            )
        {
            return Err(SimError::InvalidConfig(
                "sharded runs (k > 1) require load-calibrated arrivals \
                 (ArrivalSpec::PoissonOfferedLoad), so that splitting the \
                 cluster preserves the offered load"
                    .into(),
            ));
        }
        let shard_configs = (0..num_shards)
            .map(|j| {
                let spec = config
                    .spec
                    .subset(plan.servers(j))
                    .expect("striped shards are non-empty subsets of a valid cluster");
                let num_dispatchers = striped_count(config.num_dispatchers, num_shards, j);
                // An active scenario must replay the *same* global failure
                // schedule regardless of layout, so the shard config pins
                // the scenario seed to the base run's resolved seed and
                // maps every shard-local entity to its global id (composed
                // through any id maps the base scenario already carries).
                // For k = 1 the config is left untouched — the single-shard
                // path stays byte-identical to the base configuration.
                let scenario = if num_shards > 1 && !config.scenario.is_inert() {
                    let mut scenario = config.scenario.clone();
                    scenario.seed = Some(config.scenario.resolved_seed(config.seed));
                    scenario.server_ids = Some(
                        plan.servers(j)
                            .iter()
                            .map(|&s| {
                                u32::try_from(config.scenario.server_global_id(s))
                                    .expect("global server ids fit in u32")
                            })
                            .collect(),
                    );
                    scenario.dispatcher_ids = Some(
                        (j..config.num_dispatchers)
                            .step_by(num_shards)
                            .map(|d| {
                                u32::try_from(config.scenario.dispatcher_global_id(d))
                                    .expect("global dispatcher ids fit in u32")
                            })
                            .collect(),
                    );
                    scenario
                } else {
                    config.scenario.clone()
                };
                // The workload layer makes the same promise as the scenario
                // layer: one *global* schedule regardless of shard layout.
                // An active workload is pinned to the base run's resolved
                // seed and told each local dispatcher's global id, so its
                // counter-mode draws reproduce the unsharded schedule
                // column-for-column.
                let workload = if num_shards > 1 && !config.workload.is_inert() {
                    let mut workload = config.workload.clone();
                    workload.seed = Some(config.workload.resolved_seed(config.seed));
                    workload.dispatcher_ids = Some(
                        (j..config.num_dispatchers)
                            .step_by(num_shards)
                            .map(|d| {
                                u32::try_from(config.workload.dispatcher_global_id(d))
                                    .expect("global dispatcher ids fit in u32")
                            })
                            .collect(),
                    );
                    workload
                } else {
                    config.workload.clone()
                };
                SimConfig {
                    spec,
                    // The dispatchers are striped like the servers (shard j
                    // gets dispatchers {d : d mod k == j}), so the counts
                    // sum to m and each shard keeps the system's
                    // dispatcher-to-server ratio (scaled copy, not a
                    // dispatcher-multiplied one).
                    num_dispatchers,
                    seed: shard_master_seed(config.seed, num_shards, j),
                    scenario,
                    workload,
                    ..config.clone()
                }
            })
            .collect();
        Ok(ShardedSimulation {
            config,
            plan,
            shard_configs,
        })
    }

    /// The base (unsharded) configuration.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// The server partition.
    pub fn plan(&self) -> &ShardPlan {
        &self.plan
    }

    /// Number of shards `k`.
    pub fn num_shards(&self) -> usize {
        self.plan.num_shards()
    }

    /// The derived configuration of one shard (exposed for the equivalence
    /// tests and for future cross-process launchers).
    ///
    /// # Panics
    /// Panics if the shard index is out of range.
    pub fn shard_config(&self, shard: usize) -> &SimConfig {
        &self.shard_configs[shard]
    }

    /// Runs every shard — on the calling thread plus up to `threads - 1`
    /// pool workers — and returns the per-shard reports in shard order.
    ///
    /// Every shard derives all randomness from its own sub-master seed, so
    /// the reports are independent of `threads` (bit-identical to a
    /// sequential run; the shard merge inherits this).
    ///
    /// # Errors
    /// Propagates the first shard's [`SimError::PolicyViolation`], if any.
    pub fn run_shards(
        &self,
        factory: &dyn PolicyFactory,
        threads: usize,
    ) -> Result<Vec<ShardReport>, SimError> {
        let config_digest = self.config.digest();
        let results = fan_out(self.shard_configs.len(), threads, |shard| {
            let config = self.shard_configs[shard].clone();
            let report = Simulation::new(config)?.run(factory)?;
            Ok(ShardReport {
                shard,
                num_shards: self.num_shards(),
                num_servers: self.plan.servers(shard).len(),
                config_digest,
                report,
            })
        });
        results.into_iter().collect()
    }

    /// Runs all shards sequentially and merges their reports.
    ///
    /// For `k = 1` the result is bit-identical to
    /// [`Simulation::run`] on the same configuration.
    ///
    /// # Errors
    /// Propagates configuration and policy-violation errors from the
    /// per-shard engines.
    pub fn run(&self, factory: &dyn PolicyFactory) -> Result<SimReport, SimError> {
        self.run_parallel(factory, 1)
    }

    /// Like [`Self::run`] but fans the shards out over up to `threads` OS
    /// threads on the persistent worker pool. Bit-identical to [`Self::run`]
    /// for every thread count.
    ///
    /// # Errors
    /// Propagates configuration and policy-violation errors from the
    /// per-shard engines.
    pub fn run_parallel(
        &self,
        factory: &dyn PolicyFactory,
        threads: usize,
    ) -> Result<SimReport, SimError> {
        let reports = self.run_shards(factory, threads)?;
        let mut merged = merge_shard_reports(&reports)?;
        // The merged report describes the *global* system: restore the
        // system-wide offered load (identical across shards anyway for the
        // load-calibrated arrivals required at k > 1).
        merged.offered_load = self.config.offered_load();
        Ok(merged)
    }

    /// Like [`Self::run`], additionally recording one **global** per-job
    /// event trace: each shard records its own local trace and the shard
    /// traces are remapped through the striping maps into global entity
    /// ids, in shard order. The merged report is bit-identical to
    /// [`Self::run`], and — because an active workload's schedule is pinned
    /// globally — the recorded arrival matrix of a sharded run equals the
    /// unsharded recording of the same configuration.
    ///
    /// # Errors
    /// Propagates configuration and policy-violation errors from the
    /// per-shard engines.
    pub fn run_traced(
        &self,
        factory: &dyn PolicyFactory,
    ) -> Result<(SimReport, RunTrace), SimError> {
        let k = self.num_shards();
        let mut trace = RunTrace::new(
            self.config.num_dispatchers,
            self.config.num_servers(),
            self.config.rounds,
        );
        let config_digest = self.config.digest();
        let mut reports = Vec::with_capacity(k);
        for j in 0..k {
            let config = self.shard_configs[j].clone();
            let (report, local) = Simulation::new(config)?.run_traced(factory)?;
            let dispatcher_ids: Vec<u32> = (j..self.config.num_dispatchers)
                .step_by(k)
                .map(|d| d as u32)
                .collect();
            let server_ids: Vec<u32> = self.plan.servers(j).iter().map(|&s| s as u32).collect();
            trace.absorb_remapped(&local, &dispatcher_ids, &server_ids);
            reports.push(ShardReport {
                shard: j,
                num_shards: k,
                num_servers: self.plan.servers(j).len(),
                config_digest,
                report,
            });
        }
        let mut merged = merge_shard_reports(&reports)?;
        merged.offered_load = self.config.offered_load();
        Ok((merged, trace))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrivals::ArrivalSpec;
    use scd_model::ClusterSpec;
    use scd_policies::JsqFactory;

    fn config(n: usize, seed: u64) -> SimConfig {
        let rates: Vec<f64> = (0..n).map(|s| 1.0 + (s % 5) as f64).collect();
        SimConfig::builder(ClusterSpec::from_rates(rates).unwrap())
            .dispatchers(6)
            .rounds(400)
            .warmup_rounds(50)
            .seed(seed)
            .arrivals(ArrivalSpec::PoissonOfferedLoad { offered_load: 0.85 })
            .build()
            .unwrap()
    }

    #[test]
    fn striped_count_partitions_exactly() {
        for (total, k) in [(10usize, 1usize), (10, 3), (6, 4), (7, 7), (100, 8)] {
            let counts: Vec<usize> = (0..k).map(|j| striped_count(total, k, j)).collect();
            assert_eq!(counts.iter().sum::<usize>(), total, "total={total}, k={k}");
            for (j, &c) in counts.iter().enumerate() {
                assert_eq!(
                    c,
                    (0..total).filter(|d| d % k == j).count(),
                    "shard {j} of {k} over {total}"
                );
            }
        }
    }

    #[test]
    fn striped_plan_partitions_every_server_exactly_once() {
        for (n, k) in [(10usize, 1usize), (10, 3), (7, 7), (100, 8)] {
            let plan = ShardPlan::striped(n, k).unwrap();
            assert_eq!(plan.num_shards(), k);
            assert_eq!(plan.num_servers(), n);
            let mut seen = vec![false; n];
            for j in 0..k {
                for &s in plan.servers(j) {
                    assert!(!seen[s], "server {s} assigned twice (n={n}, k={k})");
                    seen[s] = true;
                    assert_eq!(s % k, j, "striping must place s in shard s mod k");
                }
            }
            assert!(seen.iter().all(|&v| v), "partition must cover all servers");
        }
    }

    #[test]
    fn degenerate_plans_are_rejected() {
        assert!(ShardPlan::striped(4, 0).is_err());
        assert!(ShardPlan::striped(4, 5).is_err());
        assert!(ShardPlan::striped(0, 1).is_err());
    }

    #[test]
    fn shard_configs_preserve_the_offered_load_and_split_the_dispatchers() {
        let sharded = ShardedSimulation::new(config(20, 7), 4).unwrap();
        for j in 0..4 {
            let sub = sharded.shard_config(j);
            assert_eq!(sub.rounds, 400);
            assert!((sub.offered_load() - 0.85).abs() < 1e-12);
            assert_eq!(sub.num_servers(), 5);
        }
        // Both resources repartition exactly: the shard dispatcher counts
        // sum to m (6 → 2+2+1+1) and the sub-clusters to the full capacity.
        let dispatchers: Vec<usize> = (0..4)
            .map(|j| sharded.shard_config(j).num_dispatchers)
            .collect();
        assert_eq!(dispatchers, vec![2, 2, 1, 1]);
        let total: f64 = (0..4)
            .map(|j| sharded.shard_config(j).spec.total_rate())
            .sum();
        assert!((total - sharded.config().spec.total_rate()).abs() < 1e-9);
    }

    #[test]
    fn more_shards_than_dispatchers_is_rejected() {
        // config() has 6 dispatchers; 8 shards would leave two shards with
        // no arrival source.
        let err = ShardedSimulation::new(config(20, 7), 8).unwrap_err();
        assert!(matches!(err, SimError::InvalidConfig(_)));
        assert!(err.to_string().contains("dispatchers"), "{err}");
    }

    #[test]
    fn single_shard_config_is_the_base_config() {
        let base = config(12, 99);
        let sharded = ShardedSimulation::new(base.clone(), 1).unwrap();
        assert_eq!(sharded.shard_config(0), &base);
    }

    #[test]
    fn non_calibrated_arrivals_are_rejected_beyond_one_shard() {
        let mut c = config(8, 1);
        c.arrivals = ArrivalSpec::Deterministic { jobs_per_round: 2 };
        assert!(ShardedSimulation::new(c.clone(), 1).is_ok());
        let err = ShardedSimulation::new(c, 2).unwrap_err();
        assert!(matches!(err, SimError::InvalidConfig(_)));
        assert!(err.to_string().contains("load-calibrated"));
    }

    #[test]
    fn parallel_shard_execution_is_bit_identical_to_sequential() {
        let sharded = ShardedSimulation::new(config(16, 5), 4).unwrap();
        let factory = JsqFactory::new();
        let sequential = sharded.run(&factory).unwrap();
        for threads in [2usize, 4, 8] {
            let parallel = sharded.run_parallel(&factory, threads).unwrap();
            assert_eq!(sequential, parallel, "threads={threads}");
        }
    }

    #[test]
    fn merged_counters_sum_across_shards() {
        let sharded = ShardedSimulation::new(config(16, 5), 4).unwrap();
        let factory = JsqFactory::new();
        let shards = sharded.run_shards(&factory, 1).unwrap();
        assert_eq!(shards.len(), 4);
        let merged = merge_shard_reports(&shards).unwrap();
        assert_eq!(
            merged.jobs_dispatched,
            shards.iter().map(|s| s.report.jobs_dispatched).sum::<u64>()
        );
        assert_eq!(
            merged.response_times.count(),
            shards
                .iter()
                .map(|s| s.report.response_times.count())
                .sum::<u64>()
        );
        let backlog: f64 = shards
            .iter()
            .map(|s| s.report.queues.mean_total_backlog)
            .sum();
        assert!((merged.queues.mean_total_backlog - backlog).abs() < 1e-9);
    }

    #[test]
    fn merging_nothing_is_an_error() {
        let err = merge_shard_reports(&[]).unwrap_err();
        assert!(matches!(err, SimError::MergeMismatch(_)));
        assert!(err.to_string().contains("zero shard reports"), "{err}");
    }

    #[test]
    fn merge_rejects_reports_of_different_experiments() {
        let shards = ShardedSimulation::new(config(8, 3), 2)
            .unwrap()
            .run_shards(&JsqFactory::new(), 1)
            .unwrap();
        // A shard-count disagreement (a k=2 report next to a "k=3" one).
        let mut wrong_k = shards.clone();
        wrong_k[1].num_shards = 3;
        let err = merge_shard_reports(&wrong_k).unwrap_err();
        assert!(matches!(err, SimError::MergeMismatch(_)));
        assert!(err.to_string().contains("shards"), "{err}");
        // A config-digest disagreement (a report from another experiment).
        let mut wrong_digest = shards.clone();
        wrong_digest[1].config_digest ^= 1;
        let err = merge_shard_reports(&wrong_digest).unwrap_err();
        assert!(matches!(err, SimError::MergeMismatch(_)));
        assert!(err.to_string().contains("digest"), "{err}");
        // A policy disagreement.
        let mut wrong_policy = shards.clone();
        wrong_policy[1].report.policy = "OTHER".into();
        assert!(merge_shard_reports(&wrong_policy).is_err());
        // A round-clock disagreement.
        let mut wrong_clock = shards;
        wrong_clock[1].report.rounds += 1;
        assert!(merge_shard_reports(&wrong_clock).is_err());
    }

    #[test]
    fn merge_is_a_pure_function_of_the_shard_reports() {
        // The contract a future cross-host transport builds on: the merge
        // consumes only the (serializable) ShardReport values, so merging a
        // copy — e.g. one that went over the wire — gives the same result.
        let sharded = ShardedSimulation::new(config(8, 3), 2).unwrap();
        let shards = sharded.run_shards(&JsqFactory::new(), 1).unwrap();
        let copy = shards.clone();
        assert_eq!(
            merge_shard_reports(&copy).unwrap(),
            merge_shard_reports(&shards).unwrap()
        );
    }
}
