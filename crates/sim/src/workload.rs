//! Time-varying, trace-driven workloads layered over the arrival processes.
//!
//! A [`WorkloadSpec`] generalizes the stationary [`ArrivalSpec`]: the
//! per-dispatcher Poisson rates it resolves become the *base* rates of a
//! modulated process. The spec can modulate them with an MMPP phase chain
//! (Markov-modulated Poisson), a deterministic diurnal sinusoid, or
//! seeded flash-crowd spikes; split jobs into heavy-tailed *size classes*
//! (a job of size `s` enqueues `s` unit jobs at once — a compound Poisson
//! process calibrated to preserve the offered load); or bypass synthesis
//! entirely and [replay](WorkloadSpec::replay) a recorded
//! [`ArrivalTrace`] bit-exactly.
//!
//! The default spec is inert ([`WorkloadSpec::is_inert`]) and the engine
//! promises that an inert spec reconstructs the stationary arrival path
//! **bit for bit** — same RNG stream, same draws; the goldens in
//! `tests/engine_golden.rs` are the proof (the same contract pattern as the
//! scenario layer's inert [`ScenarioSpec`](crate::ScenarioSpec)).
//!
//! An *active* workload abandons the stateful arrival RNG entirely: every
//! draw is a counter-mode pure function of the workload seed via
//! `scd_model::streams` (`WORKLOAD_STREAM_TAG`), keyed by each dispatcher's
//! **global** id and the round number. Sharded and unsharded runs therefore
//! see one global workload schedule — `ShardedSimulation` pins the workload
//! master and hands every shard its dispatchers' global ids through
//! [`WorkloadSpec::dispatcher_ids`], exactly as the scenario layer does for
//! fault schedules.
//!
//! Workload files for the `sweep` binary's `--workload` flag use the same
//! plain `key = value` format as scenario files
//! ([`WorkloadSpec::from_key_values`]).

use crate::arrivals::ArrivalSpec;
use crate::engine::SimError;
use scd_model::streams::{counter_draw, derive_stream_seed, unit_f64, WORKLOAD_STREAM_TAG};
use serde::{Deserialize, Serialize};

/// Largest supported number of job-size classes (bounds the counter-mode
/// step space of one `(dispatcher, round)` cell).
pub const MAX_JOB_CLASSES: usize = 8;
/// Largest supported number of MMPP phases.
pub const MAX_MMPP_PHASES: usize = 64;
/// Counter-mode Poisson draws split the mean into chunks of at most this
/// size; each chunk consumes one 64-bit draw (inverse-CDF walk).
const CHUNK_MEAN: f64 = 16.0;
/// Chunks reserved per `(round, class)` step cell. Together with
/// [`CHUNK_MEAN`] this caps the per-class event rate (after modulation) at
/// `MAX_CHUNKS × CHUNK_MEAN = 8192` events per dispatcher per round.
const MAX_CHUNKS: u64 = 512;
/// Derivation index of the system-wide MMPP phase chain (the upper index
/// family of `WORKLOAD_STREAM_TAG`; per-dispatcher streams use the plain
/// global id).
const MMPP_CHAIN_INDEX: u64 = 1 << 63;
/// Derivation index of the system-wide flash-crowd offset stream.
const FLASH_CHAIN_INDEX: u64 = (1 << 63) | 1;

/// One phase of an MMPP modulation: the rate multiplier while the chain
/// sits in this phase, and the per-round probability of advancing to the
/// next phase (cyclically).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MmppPhase {
    /// Arrival-rate multiplier applied while this phase is active.
    pub rate_multiplier: f64,
    /// Per-round probability of advancing to the next phase.
    pub switch_prob: f64,
}

/// How the base arrival rates vary over time. Exactly one family at a time;
/// the multiplier `g(t)` it defines scales every dispatcher's rate in round
/// `t` (one *global* schedule — dispatchers share the phase chain).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub enum ModulationSpec {
    /// Stationary: `g(t) = 1`.
    #[default]
    None,
    /// Markov-modulated Poisson process: a cyclic phase chain starting in
    /// phase 0; each round the chain advances to the next phase with the
    /// current phase's `switch_prob` (drawn from the system-wide
    /// counter-mode chain stream), and `g(t)` is the current phase's
    /// `rate_multiplier`.
    Mmpp {
        /// The phases, visited cyclically.
        phases: Vec<MmppPhase>,
    },
    /// Deterministic diurnal sinusoid:
    /// `g(t) = 1 + amplitude · sin(2π t / period)`.
    Diurnal {
        /// Cycle length in rounds.
        period: u64,
        /// Peak deviation from the base rate, in `[0, 1]`.
        amplitude: f64,
    },
    /// Seeded flash crowds: every `every` rounds one spike of `duration`
    /// rounds starts at a uniformly drawn offset within the window, during
    /// which `g(t) = 1 + magnitude`. The expected excess arrival mass per
    /// window per dispatcher is exactly `magnitude · duration · λ_d`.
    FlashCrowd {
        /// Window length in rounds (one spike per window).
        every: u64,
        /// Spike length in rounds (at most `every`).
        duration: u64,
        /// Rate surplus during a spike (`g = 1 + magnitude`).
        magnitude: f64,
    },
}

impl ModulationSpec {
    /// The largest multiplier `g(t)` this modulation can produce — used to
    /// bound the counter-mode draw budget at validation time.
    pub fn max_multiplier(&self) -> f64 {
        match self {
            ModulationSpec::None => 1.0,
            ModulationSpec::Mmpp { phases } => {
                phases.iter().map(|p| p.rate_multiplier).fold(0.0, f64::max)
            }
            ModulationSpec::Diurnal { amplitude, .. } => 1.0 + amplitude,
            ModulationSpec::FlashCrowd { magnitude, .. } => 1.0 + magnitude,
        }
    }
}

/// One job-size class of a compound (heavy-tailed) arrival process: a class
/// event enqueues `size` unit jobs at once. Class event rates are
/// calibrated so the expected number of unit jobs per round is unchanged:
/// with class probabilities `p_c ∝ weight_c` and mean size
/// `s̄ = Σ p_c · size_c`, class `c` fires at `λ_d · p_c / s̄` events per
/// round at dispatcher `d`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JobClass {
    /// Unit jobs enqueued per class event (≥ 1).
    pub size: u64,
    /// Relative frequency weight (> 0).
    pub weight: f64,
}

/// A recorded per-dispatcher, per-round arrival-count matrix — the raw
/// sampled counts *before* any scenario losses, so replaying a trace under
/// the same scenario re-applies the identical losses.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArrivalTrace {
    num_dispatchers: usize,
    rounds: u64,
    /// Round-major counts: `counts[round * num_dispatchers + dispatcher]`.
    counts: Vec<u64>,
}

impl ArrivalTrace {
    /// An all-zero trace for `num_dispatchers` dispatchers over `rounds`
    /// rounds.
    pub fn new(num_dispatchers: usize, rounds: u64) -> Self {
        ArrivalTrace {
            num_dispatchers,
            rounds,
            counts: vec![0; num_dispatchers * rounds as usize],
        }
    }

    /// Number of dispatcher columns.
    pub fn num_dispatchers(&self) -> usize {
        self.num_dispatchers
    }

    /// Number of recorded rounds.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// The recorded count of one `(round, dispatcher)` cell.
    ///
    /// # Panics
    /// Panics if the round or dispatcher is out of range.
    pub fn count(&self, round: u64, dispatcher: usize) -> u64 {
        assert!(round < self.rounds && dispatcher < self.num_dispatchers);
        self.counts[round as usize * self.num_dispatchers + dispatcher]
    }

    /// Sets the count of one `(round, dispatcher)` cell.
    ///
    /// # Panics
    /// Panics if the round or dispatcher is out of range.
    pub fn set(&mut self, round: u64, dispatcher: usize, count: u64) {
        assert!(round < self.rounds && dispatcher < self.num_dispatchers);
        self.counts[round as usize * self.num_dispatchers + dispatcher] = count;
    }

    /// Renders the trace in the plain-text trace-file format: a header line
    /// followed by one comma-separated row of counts per round.
    pub fn to_text(&self) -> String {
        let mut out = format!(
            "scd-arrival-trace v1 rounds={} dispatchers={}\n",
            self.rounds, self.num_dispatchers
        );
        for round in 0..self.rounds as usize {
            let row = &self.counts[round * self.num_dispatchers..][..self.num_dispatchers];
            let mut first = true;
            for &c in row {
                if !first {
                    out.push(',');
                }
                out.push_str(&c.to_string());
                first = false;
            }
            out.push('\n');
        }
        out
    }

    /// Parses the [`to_text`](ArrivalTrace::to_text) format.
    ///
    /// # Errors
    /// Returns [`SimError::InvalidConfig`] for a malformed header, row count
    /// mismatch, or unparsable counts.
    pub fn from_text(text: &str) -> Result<ArrivalTrace, SimError> {
        let mut lines = text.lines();
        let header = lines
            .next()
            .ok_or_else(|| SimError::InvalidConfig("empty arrival trace".into()))?;
        let bad_header =
            || SimError::InvalidConfig(format!("malformed arrival-trace header: {header:?}"));
        let mut rounds: Option<u64> = None;
        let mut dispatchers: Option<usize> = None;
        let mut words = header.split_whitespace();
        if words.next() != Some("scd-arrival-trace") || words.next() != Some("v1") {
            return Err(bad_header());
        }
        for word in words {
            let (key, value) = word.split_once('=').ok_or_else(bad_header)?;
            match key {
                "rounds" => rounds = Some(value.parse().map_err(|_| bad_header())?),
                "dispatchers" => dispatchers = Some(value.parse().map_err(|_| bad_header())?),
                _ => return Err(bad_header()),
            }
        }
        let (rounds, dispatchers) = match (rounds, dispatchers) {
            (Some(r), Some(d)) => (r, d),
            _ => return Err(bad_header()),
        };
        let mut trace = ArrivalTrace::new(dispatchers, rounds);
        let mut row = 0u64;
        for line in lines {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            if row >= rounds {
                return Err(SimError::InvalidConfig(format!(
                    "arrival trace has more than {rounds} rows"
                )));
            }
            for (d, cell) in line.split(',').enumerate() {
                if d >= dispatchers {
                    return Err(SimError::InvalidConfig(format!(
                        "arrival trace row {row} has more than {dispatchers} columns"
                    )));
                }
                let count: u64 = cell.trim().parse().map_err(|_| {
                    SimError::InvalidConfig(format!("arrival trace row {row}: bad count {cell:?}"))
                })?;
                trace.set(row, d, count);
            }
            row += 1;
        }
        if row != rounds {
            return Err(SimError::InvalidConfig(format!(
                "arrival trace has {row} rows, header promises {rounds}"
            )));
        }
        Ok(trace)
    }
}

/// Declarative description of a time-varying / trace-driven workload.
///
/// The default value is the inert workload — see
/// [`is_inert`](WorkloadSpec::is_inert).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// How the base arrival rates vary over time.
    pub modulation: ModulationSpec,
    /// Job-size classes of the compound arrival process; empty means a
    /// single unit-size class (plain Poisson).
    pub classes: Vec<JobClass>,
    /// Replay a recorded arrival trace instead of synthesizing arrivals.
    /// Mutually exclusive with modulation and classes (the trace already
    /// embodies them).
    pub replay: Option<ArrivalTrace>,
    /// The workload master seed; `None` uses the run's master seed. The
    /// sharded engine pins this to the base run's master so every shard
    /// derives the identical global schedule.
    pub seed: Option<u64>,
    /// Global id of each local dispatcher (`dispatcher_ids[local] =
    /// global`), for shard slices of a larger run. `None` means local ids
    /// are global.
    pub dispatcher_ids: Option<Vec<u32>>,
}

impl WorkloadSpec {
    /// Whether this workload asks for nothing at all, in which case the
    /// engine samples arrivals from the stationary arrival RNG stream and
    /// is bit-identical to the pre-workload engine (the goldens in
    /// `tests/engine_golden.rs` pin this).
    pub fn is_inert(&self) -> bool {
        self.modulation == ModulationSpec::None && self.classes.is_empty() && self.replay.is_none()
    }

    /// The workload master seed for a run whose master seed is `master`.
    pub fn resolved_seed(&self, master: u64) -> u64 {
        self.seed.unwrap_or(master)
    }

    /// The global id of local dispatcher `local`.
    ///
    /// # Panics
    /// Panics if an id map is present but shorter than `local` (prevented
    /// by [`validate`](WorkloadSpec::validate)).
    pub fn dispatcher_global_id(&self, local: usize) -> u64 {
        match &self.dispatcher_ids {
            Some(map) => map[local] as u64,
            None => local as u64,
        }
    }

    /// Validates the workload against the run's arrival spec, dispatcher
    /// count, round count and total capacity.
    ///
    /// # Errors
    /// Returns [`SimError::InvalidConfig`] when a parameter is out of range
    /// (non-finite multipliers, switch probabilities outside `[0, 1]`,
    /// diurnal amplitude outside `[0, 1]`, zero-length windows or spikes
    /// longer than their window, zero-size or zero-weight classes), when an
    /// active modulation or class mix rides non-Poisson arrivals, when a
    /// modulated per-class event rate exceeds the counter-mode draw budget,
    /// when a replay trace is too short for the run or combined with
    /// synthesis, or when the dispatcher id map does not match `m`.
    pub fn validate(
        &self,
        arrivals: &ArrivalSpec,
        num_dispatchers: usize,
        rounds: u64,
        total_capacity: f64,
    ) -> Result<(), SimError> {
        match &self.modulation {
            ModulationSpec::None => {}
            ModulationSpec::Mmpp { phases } => {
                if phases.is_empty() || phases.len() > MAX_MMPP_PHASES {
                    return Err(SimError::InvalidConfig(format!(
                        "MMPP needs between 1 and {MAX_MMPP_PHASES} phases, got {}",
                        phases.len()
                    )));
                }
                for (i, phase) in phases.iter().enumerate() {
                    if !phase.rate_multiplier.is_finite() || phase.rate_multiplier < 0.0 {
                        return Err(SimError::InvalidConfig(format!(
                            "MMPP phase {i}: rate multiplier must be finite and non-negative, \
                             got {}",
                            phase.rate_multiplier
                        )));
                    }
                    if !phase.switch_prob.is_finite() || !(0.0..=1.0).contains(&phase.switch_prob) {
                        return Err(SimError::InvalidConfig(format!(
                            "MMPP phase {i}: switch probability must be in [0, 1], got {}",
                            phase.switch_prob
                        )));
                    }
                }
            }
            ModulationSpec::Diurnal { period, amplitude } => {
                if *period == 0 {
                    return Err(SimError::InvalidConfig(
                        "diurnal period must be at least one round".into(),
                    ));
                }
                if !amplitude.is_finite() || !(0.0..=1.0).contains(amplitude) {
                    return Err(SimError::InvalidConfig(format!(
                        "diurnal amplitude must be in [0, 1], got {amplitude}"
                    )));
                }
            }
            ModulationSpec::FlashCrowd {
                every,
                duration,
                magnitude,
            } => {
                if *every == 0 || *duration == 0 || duration > every {
                    return Err(SimError::InvalidConfig(format!(
                        "flash crowd needs 1 <= duration <= every, got every={every} \
                         duration={duration}"
                    )));
                }
                if !magnitude.is_finite() || *magnitude < 0.0 {
                    return Err(SimError::InvalidConfig(format!(
                        "flash-crowd magnitude must be finite and non-negative, got {magnitude}"
                    )));
                }
            }
        }
        if self.classes.len() > MAX_JOB_CLASSES {
            return Err(SimError::InvalidConfig(format!(
                "at most {MAX_JOB_CLASSES} job classes are supported, got {}",
                self.classes.len()
            )));
        }
        for (c, class) in self.classes.iter().enumerate() {
            if class.size == 0 {
                return Err(SimError::InvalidConfig(format!(
                    "job class {c}: size must be at least one job"
                )));
            }
            if !class.weight.is_finite() || class.weight <= 0.0 {
                return Err(SimError::InvalidConfig(format!(
                    "job class {c}: weight must be finite and positive, got {}",
                    class.weight
                )));
            }
        }
        let synthesizes = self.modulation != ModulationSpec::None || !self.classes.is_empty();
        if let Some(trace) = &self.replay {
            if synthesizes {
                return Err(SimError::InvalidConfig(
                    "a replay workload cannot also modulate or mix classes \
                     (the trace already embodies them)"
                        .into(),
                ));
            }
            if trace.rounds() < rounds {
                return Err(SimError::InvalidConfig(format!(
                    "replay trace covers {} rounds, the run needs {rounds}",
                    trace.rounds()
                )));
            }
            for d in 0..num_dispatchers {
                let global = self.dispatcher_global_id(d);
                if global >= trace.num_dispatchers() as u64 {
                    return Err(SimError::InvalidConfig(format!(
                        "replay trace has {} dispatcher columns, dispatcher {d} maps to \
                         global id {global}",
                        trace.num_dispatchers()
                    )));
                }
            }
        }
        if synthesizes
            && !matches!(
                arrivals,
                ArrivalSpec::PoissonOfferedLoad { .. } | ArrivalSpec::PoissonRates { .. }
            )
        {
            return Err(SimError::InvalidConfig(
                "an active workload (modulation or job classes) requires Poisson \
                 arrivals — deterministic arrivals have no rate to modulate"
                    .into(),
            ));
        }
        if let Some(map) = &self.dispatcher_ids {
            if map.len() != num_dispatchers {
                return Err(SimError::InvalidConfig(format!(
                    "workload dispatcher id map has {} entries for {num_dispatchers} \
                     dispatchers",
                    map.len()
                )));
            }
        }
        if synthesizes {
            // The counter-mode sampler reserves MAX_CHUNKS draws of mean
            // CHUNK_MEAN per (round, class) cell; a modulated event rate
            // beyond that budget would silently truncate.
            let rates = arrivals.per_dispatcher_rates(num_dispatchers, total_capacity)?;
            let g_max = self.modulation.max_multiplier();
            let budget = MAX_CHUNKS as f64 * CHUNK_MEAN;
            for (d, &rate) in rates.iter().enumerate() {
                // Per-class event rates never exceed the whole dispatcher
                // rate (weights are a partition), so checking λ_d suffices.
                if rate * g_max > budget {
                    return Err(SimError::InvalidConfig(format!(
                        "dispatcher {d}: modulated arrival rate {} exceeds the \
                         counter-mode draw budget of {budget} events per round",
                        rate * g_max
                    )));
                }
            }
        }
        Ok(())
    }

    /// Builds the counter-mode sampler of this workload for a run with
    /// master seed `master` and resolved per-dispatcher base rates
    /// `base_rates` (one per local dispatcher).
    ///
    /// Call only on an active (non-inert), validated spec.
    pub fn sampler<'a>(&'a self, master: u64, base_rates: &[f64]) -> WorkloadSampler<'a> {
        let seed = self.resolved_seed(master);
        let m = base_rates.len();
        let dispatcher_seeds: Vec<u64> = (0..m)
            .map(|d| derive_stream_seed(seed, WORKLOAD_STREAM_TAG, self.dispatcher_global_id(d)))
            .collect();
        // Normalize the class mix into per-dispatcher event rates that
        // preserve the expected unit-job rate.
        let (class_sizes, class_probs): (Vec<u64>, Vec<f64>) = if self.classes.is_empty() {
            (vec![1], vec![1.0])
        } else {
            let total: f64 = self.classes.iter().map(|c| c.weight).sum();
            (
                self.classes.iter().map(|c| c.size).collect(),
                self.classes.iter().map(|c| c.weight / total).collect(),
            )
        };
        let mean_size: f64 = class_sizes
            .iter()
            .zip(&class_probs)
            .map(|(&s, &p)| s as f64 * p)
            .sum();
        let event_rates: Vec<f64> = base_rates
            .iter()
            .flat_map(|&rate| {
                class_probs
                    .iter()
                    .map(move |&p| rate * p / mean_size)
                    .collect::<Vec<f64>>()
            })
            .collect();
        let mmpp = match &self.modulation {
            ModulationSpec::Mmpp { phases } => Some(MmppWalk {
                seed: derive_stream_seed(seed, WORKLOAD_STREAM_TAG, MMPP_CHAIN_INDEX),
                phases: phases.clone(),
                phase: 0,
                next_round: 0,
            }),
            _ => None,
        };
        let flash_seed = derive_stream_seed(seed, WORKLOAD_STREAM_TAG, FLASH_CHAIN_INDEX);
        WorkloadSampler {
            spec: self,
            m,
            dispatcher_seeds,
            class_sizes,
            event_rates,
            mmpp,
            flash_seed,
        }
    }

    /// Parses the `key = value` workload-file format of the `sweep`
    /// binary's `--workload` flag: one assignment per line, `#` comments,
    /// blank lines ignored.
    ///
    /// Recognized keys: `mmpp_phases` (comma-separated
    /// `multiplier:switch_prob` pairs), `diurnal_period` +
    /// `diurnal_amplitude`, `flash_every` + `flash_duration` +
    /// `flash_magnitude` — the three modulation families are mutually
    /// exclusive; `class` (a `size:weight` pair, repeatable); `seed` (pins
    /// the workload master). Replay traces and id maps are engine-internal
    /// and have no file syntax.
    ///
    /// # Errors
    /// Returns [`SimError::InvalidConfig`] for malformed lines, unknown
    /// keys, unparsable values, incomplete families, or more than one
    /// modulation family.
    pub fn from_key_values(text: &str) -> Result<WorkloadSpec, SimError> {
        let mut spec = WorkloadSpec::default();
        let mut mmpp: Option<Vec<MmppPhase>> = None;
        let mut diurnal_period: Option<u64> = None;
        let mut diurnal_amplitude: Option<f64> = None;
        let mut flash_every: Option<u64> = None;
        let mut flash_duration: Option<u64> = None;
        let mut flash_magnitude: Option<f64> = None;
        for (lineno, raw) in text.lines().enumerate() {
            let line = match raw.split_once('#') {
                Some((before, _comment)) => before.trim(),
                None => raw.trim(),
            };
            if line.is_empty() {
                continue;
            }
            let (key, value) = line.split_once('=').ok_or_else(|| {
                SimError::InvalidConfig(format!(
                    "workload line {}: expected `key = value`, got {raw:?}",
                    lineno + 1
                ))
            })?;
            let (key, value) = (key.trim(), value.trim());
            let bad_value = |what: &str| {
                SimError::InvalidConfig(format!(
                    "workload line {}: `{key}` needs {what}, got {value:?}",
                    lineno + 1
                ))
            };
            match key {
                "mmpp_phases" => {
                    let phases: Result<Vec<MmppPhase>, SimError> = value
                        .split(',')
                        .map(|pair| {
                            let (mult, prob) = pair
                                .trim()
                                .split_once(':')
                                .ok_or_else(|| bad_value("multiplier:switch_prob pairs"))?;
                            Ok(MmppPhase {
                                rate_multiplier: mult
                                    .trim()
                                    .parse()
                                    .map_err(|_| bad_value("multiplier:switch_prob pairs"))?,
                                switch_prob: prob
                                    .trim()
                                    .parse()
                                    .map_err(|_| bad_value("multiplier:switch_prob pairs"))?,
                            })
                        })
                        .collect();
                    mmpp = Some(phases?);
                }
                "diurnal_period" => {
                    diurnal_period = Some(value.parse().map_err(|_| bad_value("an integer"))?);
                }
                "diurnal_amplitude" => {
                    diurnal_amplitude = Some(value.parse().map_err(|_| bad_value("a float"))?);
                }
                "flash_every" => {
                    flash_every = Some(value.parse().map_err(|_| bad_value("an integer"))?);
                }
                "flash_duration" => {
                    flash_duration = Some(value.parse().map_err(|_| bad_value("an integer"))?);
                }
                "flash_magnitude" => {
                    flash_magnitude = Some(value.parse().map_err(|_| bad_value("a float"))?);
                }
                "class" => {
                    let (size, weight) = value
                        .split_once(':')
                        .ok_or_else(|| bad_value("a size:weight pair"))?;
                    spec.classes.push(JobClass {
                        size: size
                            .trim()
                            .parse()
                            .map_err(|_| bad_value("a size:weight pair"))?,
                        weight: weight
                            .trim()
                            .parse()
                            .map_err(|_| bad_value("a size:weight pair"))?,
                    });
                }
                "seed" => {
                    spec.seed = Some(value.parse().map_err(|_| bad_value("an integer"))?);
                }
                _ => {
                    return Err(SimError::InvalidConfig(format!(
                        "workload line {}: unknown key {key:?}",
                        lineno + 1
                    )));
                }
            }
        }
        let incomplete = |family: &str| {
            SimError::InvalidConfig(format!(
                "workload sets an incomplete {family} family (all of its keys are required)"
            ))
        };
        let diurnal = match (diurnal_period, diurnal_amplitude) {
            (Some(period), Some(amplitude)) => Some(ModulationSpec::Diurnal { period, amplitude }),
            (None, None) => None,
            _ => return Err(incomplete("diurnal")),
        };
        let flash = match (flash_every, flash_duration, flash_magnitude) {
            (Some(every), Some(duration), Some(magnitude)) => Some(ModulationSpec::FlashCrowd {
                every,
                duration,
                magnitude,
            }),
            (None, None, None) => None,
            _ => return Err(incomplete("flash-crowd")),
        };
        let families: Vec<ModulationSpec> = mmpp
            .map(|phases| ModulationSpec::Mmpp { phases })
            .into_iter()
            .chain(diurnal)
            .chain(flash)
            .collect();
        spec.modulation = match families.len() {
            0 => ModulationSpec::None,
            1 => families.into_iter().next().expect("one family"),
            _ => {
                return Err(SimError::InvalidConfig(
                    "workload sets more than one modulation family \
                     (mmpp / diurnal / flash); pick one"
                        .into(),
                ));
            }
        };
        Ok(spec)
    }

    /// Renders the workload back into the `key = value` file format —
    /// [`from_key_values`](WorkloadSpec::from_key_values) of the result
    /// reconstructs `self` exactly (replay traces and id maps excepted;
    /// they have no file syntax).
    pub fn to_key_values(&self) -> String {
        let mut out = String::new();
        let mut push = |key: &str, value: String| {
            out.push_str(key);
            out.push_str(" = ");
            out.push_str(&value);
            out.push('\n');
        };
        match &self.modulation {
            ModulationSpec::None => {}
            ModulationSpec::Mmpp { phases } => {
                let rendered: Vec<String> = phases
                    .iter()
                    .map(|p| format!("{}:{}", p.rate_multiplier, p.switch_prob))
                    .collect();
                push("mmpp_phases", rendered.join(","));
            }
            ModulationSpec::Diurnal { period, amplitude } => {
                push("diurnal_period", period.to_string());
                push("diurnal_amplitude", amplitude.to_string());
            }
            ModulationSpec::FlashCrowd {
                every,
                duration,
                magnitude,
            } => {
                push("flash_every", every.to_string());
                push("flash_duration", duration.to_string());
                push("flash_magnitude", magnitude.to_string());
            }
        }
        for class in &self.classes {
            push("class", format!("{}:{}", class.size, class.weight));
        }
        if let Some(seed) = self.seed {
            push("seed", seed.to_string());
        }
        out
    }
}

/// The MMPP phase walk: phase 0 at round 0; before serving round `t ≥ 1`
/// the chain draws `u_t` from the system-wide chain stream and advances
/// cyclically when `u_t < switch_prob(phase_{t-1})`.
#[derive(Debug, Clone)]
struct MmppWalk {
    seed: u64,
    phases: Vec<MmppPhase>,
    phase: usize,
    next_round: u64,
}

/// A built workload sampler: every draw is a counter-mode pure function of
/// `(workload seed, global dispatcher id | chain index, round, class,
/// chunk)`, so any shard layout replays the identical global schedule.
///
/// [`begin_round`](WorkloadSampler::begin_round) must be called for rounds
/// `0, 1, 2, …` in order (the MMPP walk is incremental); sampling itself is
/// stateless.
#[derive(Debug, Clone)]
pub struct WorkloadSampler<'a> {
    spec: &'a WorkloadSpec,
    m: usize,
    dispatcher_seeds: Vec<u64>,
    class_sizes: Vec<u64>,
    /// `event_rates[d * classes + c]`: base event rate of class `c` at
    /// local dispatcher `d`.
    event_rates: Vec<f64>,
    mmpp: Option<MmppWalk>,
    flash_seed: u64,
}

impl WorkloadSampler<'_> {
    /// Advances the modulation chains to `round` and returns the rate
    /// multiplier `g(round)`.
    ///
    /// # Panics
    /// Panics if rounds are visited out of order (the MMPP walk cannot
    /// rewind).
    pub fn begin_round(&mut self, round: u64) -> f64 {
        let mut g = 1.0;
        if let Some(walk) = self.mmpp.as_mut() {
            assert!(
                walk.next_round <= round + 1,
                "workload rounds must be visited in order"
            );
            while walk.next_round <= round {
                if walk.next_round > 0 {
                    let u = unit_f64(counter_draw(walk.seed, walk.next_round));
                    if u < walk.phases[walk.phase].switch_prob {
                        walk.phase = (walk.phase + 1) % walk.phases.len();
                    }
                }
                walk.next_round += 1;
            }
            g *= walk.phases[walk.phase].rate_multiplier;
        }
        match &self.spec.modulation {
            ModulationSpec::Diurnal { period, amplitude } => {
                g *=
                    1.0 + amplitude * (std::f64::consts::TAU * round as f64 / *period as f64).sin();
            }
            ModulationSpec::FlashCrowd {
                every,
                duration,
                magnitude,
            } => {
                let window = round / every;
                let offset = counter_draw(self.flash_seed, window) % (every - duration + 1);
                let position = round % every;
                if position >= offset && position < offset + duration {
                    g *= 1.0 + magnitude;
                }
            }
            _ => {}
        }
        g.max(0.0)
    }

    /// The MMPP phase active after the last
    /// [`begin_round`](WorkloadSampler::begin_round) (for tests and
    /// diagnostics); `None` without MMPP modulation.
    pub fn current_phase(&self) -> Option<usize> {
        self.mmpp.as_ref().map(|walk| walk.phase)
    }

    /// Samples (or replays) every local dispatcher's arrival count for
    /// `round` under multiplier `g` and appends them to `out`.
    pub fn sample_into(&self, round: u64, g: f64, out: &mut Vec<u64>) {
        if let Some(trace) = &self.spec.replay {
            for d in 0..self.m {
                out.push(trace.count(round, self.spec.dispatcher_global_id(d) as usize));
            }
            return;
        }
        let classes = self.class_sizes.len();
        for d in 0..self.m {
            let seed = self.dispatcher_seeds[d];
            let mut total = 0u64;
            for (c, &size) in self.class_sizes.iter().enumerate() {
                let rate = self.event_rates[d * classes + c] * g;
                let step_base = (round * MAX_JOB_CLASSES as u64 + c as u64) * MAX_CHUNKS;
                total += size * poisson_counter(seed, step_base, rate);
            }
            out.push(total);
        }
    }
}

/// One counter-mode Poisson draw of mean `lambda`, split into chunks of
/// mean at most [`CHUNK_MEAN`] (one 64-bit draw and one inverse-CDF walk
/// per chunk — Poisson sums, so the chunk total is exact).
fn poisson_counter(seed: u64, step_base: u64, lambda: f64) -> u64 {
    if lambda <= 0.0 {
        return 0;
    }
    let chunks = ((lambda / CHUNK_MEAN).ceil() as u64).clamp(1, MAX_CHUNKS);
    let chunk_lambda = lambda / chunks as f64;
    let mut total = 0u64;
    for chunk in 0..chunks {
        let u = unit_f64(counter_draw(seed, step_base + chunk));
        total += poisson_inverse(chunk_lambda, u);
    }
    total
}

/// Inverse-CDF Poisson draw: the smallest `k` with `F(k) > u`. The walk is
/// bounded far beyond any quantile reachable by a 53-bit uniform, so
/// floating-point underflow of the pmf cannot loop.
fn poisson_inverse(lambda: f64, u: f64) -> u64 {
    let mut k = 0u64;
    let mut pmf = (-lambda).exp();
    let mut cdf = pmf;
    let bound = (lambda * 12.0).ceil() as u64 + 64;
    while u >= cdf && k < bound {
        k += 1;
        pmf *= lambda / k as f64;
        cdf += pmf;
    }
    k
}

#[cfg(test)]
mod tests {
    use super::*;

    fn poisson_arrivals() -> ArrivalSpec {
        ArrivalSpec::PoissonOfferedLoad { offered_load: 0.9 }
    }

    #[test]
    fn default_workload_is_inert() {
        let spec = WorkloadSpec::default();
        assert!(spec.is_inert());
        assert_eq!(spec.resolved_seed(42), 42);
        assert_eq!(spec.dispatcher_global_id(3), 3);
        spec.validate(&poisson_arrivals(), 4, 100, 10.0).unwrap();
    }

    #[test]
    fn any_active_ingredient_defeats_inertness() {
        let mmpp = WorkloadSpec {
            modulation: ModulationSpec::Mmpp {
                phases: vec![MmppPhase {
                    rate_multiplier: 1.0,
                    switch_prob: 0.0,
                }],
            },
            ..WorkloadSpec::default()
        };
        assert!(!mmpp.is_inert());
        let classes = WorkloadSpec {
            classes: vec![JobClass {
                size: 2,
                weight: 1.0,
            }],
            ..WorkloadSpec::default()
        };
        assert!(!classes.is_inert());
        let replay = WorkloadSpec {
            replay: Some(ArrivalTrace::new(2, 10)),
            ..WorkloadSpec::default()
        };
        assert!(!replay.is_inert());
        // Seed and id maps alone do not activate the layer (they only
        // matter once something else does).
        let pinned = WorkloadSpec {
            seed: Some(7),
            dispatcher_ids: Some(vec![0, 1]),
            ..WorkloadSpec::default()
        };
        assert!(pinned.is_inert());
    }

    #[test]
    fn validation_rejects_out_of_range_parameters() {
        let arrivals = poisson_arrivals();
        let cases: Vec<WorkloadSpec> = vec![
            WorkloadSpec {
                modulation: ModulationSpec::Mmpp { phases: vec![] },
                ..WorkloadSpec::default()
            },
            WorkloadSpec {
                modulation: ModulationSpec::Mmpp {
                    phases: vec![MmppPhase {
                        rate_multiplier: f64::NAN,
                        switch_prob: 0.1,
                    }],
                },
                ..WorkloadSpec::default()
            },
            WorkloadSpec {
                modulation: ModulationSpec::Mmpp {
                    phases: vec![MmppPhase {
                        rate_multiplier: 1.0,
                        switch_prob: 1.5,
                    }],
                },
                ..WorkloadSpec::default()
            },
            WorkloadSpec {
                modulation: ModulationSpec::Diurnal {
                    period: 0,
                    amplitude: 0.5,
                },
                ..WorkloadSpec::default()
            },
            WorkloadSpec {
                modulation: ModulationSpec::Diurnal {
                    period: 100,
                    amplitude: 1.5,
                },
                ..WorkloadSpec::default()
            },
            WorkloadSpec {
                modulation: ModulationSpec::FlashCrowd {
                    every: 10,
                    duration: 11,
                    magnitude: 1.0,
                },
                ..WorkloadSpec::default()
            },
            WorkloadSpec {
                modulation: ModulationSpec::FlashCrowd {
                    every: 0,
                    duration: 0,
                    magnitude: 1.0,
                },
                ..WorkloadSpec::default()
            },
            WorkloadSpec {
                classes: vec![JobClass {
                    size: 0,
                    weight: 1.0,
                }],
                ..WorkloadSpec::default()
            },
            WorkloadSpec {
                classes: vec![JobClass {
                    size: 1,
                    weight: 0.0,
                }],
                ..WorkloadSpec::default()
            },
            WorkloadSpec {
                dispatcher_ids: Some(vec![0]),
                classes: vec![JobClass {
                    size: 1,
                    weight: 1.0,
                }],
                ..WorkloadSpec::default()
            },
        ];
        for (i, spec) in cases.iter().enumerate() {
            assert!(
                spec.validate(&arrivals, 4, 100, 10.0).is_err(),
                "case {i} accepted: {spec:?}"
            );
        }
    }

    #[test]
    fn validation_rejects_replay_shape_mismatches_and_synthesis() {
        let arrivals = poisson_arrivals();
        // Trace shorter than the run.
        let spec = WorkloadSpec {
            replay: Some(ArrivalTrace::new(4, 50)),
            ..WorkloadSpec::default()
        };
        assert!(spec.validate(&arrivals, 4, 100, 10.0).is_err());
        // Trace with too few dispatcher columns for the mapped ids.
        let spec = WorkloadSpec {
            replay: Some(ArrivalTrace::new(2, 100)),
            dispatcher_ids: Some(vec![0, 3]),
            ..WorkloadSpec::default()
        };
        assert!(spec.validate(&arrivals, 2, 100, 10.0).is_err());
        // Replay combined with synthesis.
        let spec = WorkloadSpec {
            replay: Some(ArrivalTrace::new(4, 100)),
            classes: vec![JobClass {
                size: 2,
                weight: 1.0,
            }],
            ..WorkloadSpec::default()
        };
        assert!(spec.validate(&arrivals, 4, 100, 10.0).is_err());
        // A well-shaped replay passes.
        let spec = WorkloadSpec {
            replay: Some(ArrivalTrace::new(4, 100)),
            ..WorkloadSpec::default()
        };
        spec.validate(&arrivals, 4, 100, 10.0).unwrap();
    }

    #[test]
    fn validation_rejects_modulated_deterministic_arrivals_and_budget_blowups() {
        let spec = WorkloadSpec {
            modulation: ModulationSpec::Diurnal {
                period: 100,
                amplitude: 0.5,
            },
            ..WorkloadSpec::default()
        };
        assert!(spec
            .validate(
                &ArrivalSpec::Deterministic { jobs_per_round: 2 },
                4,
                100,
                10.0
            )
            .is_err());
        // 0.9 load over capacity 1e5 with one dispatcher and a 1.5× diurnal
        // peak → modulated λ = 135 000, beyond the 8 192 events/round counter
        // budget; capacity 6 000 peaks at 8 100 and fits.
        assert!(spec
            .validate(&poisson_arrivals(), 1, 100, 100_000.0)
            .is_err());
        spec.validate(&poisson_arrivals(), 1, 100, 6_000.0).unwrap();
    }

    #[test]
    fn stationary_sampler_matches_the_poisson_mean() {
        let spec = WorkloadSpec {
            // A single always-on phase: active layer, identity modulation.
            modulation: ModulationSpec::Mmpp {
                phases: vec![MmppPhase {
                    rate_multiplier: 1.0,
                    switch_prob: 0.0,
                }],
            },
            ..WorkloadSpec::default()
        };
        let rates = [7.5, 2.0];
        let mut sampler = spec.sampler(42, &rates);
        let rounds = 20_000u64;
        let mut totals = [0u64; 2];
        let mut out = Vec::new();
        for t in 0..rounds {
            let g = sampler.begin_round(t);
            assert_eq!(g, 1.0);
            out.clear();
            sampler.sample_into(t, g, &mut out);
            totals[0] += out[0];
            totals[1] += out[1];
        }
        for (d, &rate) in rates.iter().enumerate() {
            let mean = totals[d] as f64 / rounds as f64;
            assert!(
                (mean - rate).abs() < 0.08 * rate.max(1.0),
                "dispatcher {d}: empirical mean {mean} vs rate {rate}"
            );
        }
    }

    #[test]
    fn class_mix_preserves_the_offered_load_and_quantizes_batches() {
        let spec = WorkloadSpec {
            classes: vec![
                JobClass {
                    size: 1,
                    weight: 0.9,
                },
                JobClass {
                    size: 10,
                    weight: 0.1,
                },
            ],
            ..WorkloadSpec::default()
        };
        let rates = [12.0];
        let mut sampler = spec.sampler(7, &rates);
        let rounds = 30_000u64;
        let mut total = 0u64;
        let mut out = Vec::new();
        for t in 0..rounds {
            let g = sampler.begin_round(t);
            out.clear();
            sampler.sample_into(t, g, &mut out);
            total += out[0];
        }
        let mean = total as f64 / rounds as f64;
        // The compound process is calibrated to the same unit-job rate.
        assert!(
            (mean - 12.0).abs() < 0.4,
            "compound mean {mean} drifted from 12"
        );
    }

    #[test]
    fn sampling_is_a_pure_function_of_seed_and_round() {
        let spec = WorkloadSpec {
            modulation: ModulationSpec::FlashCrowd {
                every: 50,
                duration: 5,
                magnitude: 3.0,
            },
            ..WorkloadSpec::default()
        };
        let rates = [4.0, 4.0, 4.0];
        let run = |spec: &WorkloadSpec| {
            let mut sampler = spec.sampler(99, &rates);
            let mut all = Vec::new();
            for t in 0..500 {
                let g = sampler.begin_round(t);
                sampler.sample_into(t, g, &mut all);
            }
            all
        };
        assert_eq!(run(&spec), run(&spec));
        // Pinning the seed to the same master changes nothing; a different
        // seed changes the schedule.
        let pinned = WorkloadSpec {
            seed: Some(99),
            ..spec.clone()
        };
        assert_eq!(run(&spec), run(&pinned));
        let other = WorkloadSpec {
            seed: Some(100),
            ..spec.clone()
        };
        assert_ne!(run(&spec), run(&other));
    }

    #[test]
    fn global_id_maps_select_trace_columns_and_streams() {
        // A sampler for dispatchers {1, 3} of a 4-dispatcher system must
        // reproduce columns 1 and 3 of the full sampler.
        let full = WorkloadSpec {
            modulation: ModulationSpec::Mmpp {
                phases: vec![
                    MmppPhase {
                        rate_multiplier: 1.0,
                        switch_prob: 0.1,
                    },
                    MmppPhase {
                        rate_multiplier: 3.0,
                        switch_prob: 0.3,
                    },
                ],
            },
            ..WorkloadSpec::default()
        };
        let slice = WorkloadSpec {
            seed: Some(5),
            dispatcher_ids: Some(vec![1, 3]),
            ..full.clone()
        };
        let rates = [6.0, 6.0, 6.0, 6.0];
        let mut full_sampler = full.sampler(5, &rates);
        let mut slice_sampler = slice.sampler(1234, &rates[..2]); // master ignored: seed pinned
        let mut full_out = Vec::new();
        let mut slice_out = Vec::new();
        for t in 0..300 {
            let g_full = full_sampler.begin_round(t);
            let g_slice = slice_sampler.begin_round(t);
            assert_eq!(g_full, g_slice, "round {t}: chains must agree");
            full_out.clear();
            slice_out.clear();
            full_sampler.sample_into(t, g_full, &mut full_out);
            slice_sampler.sample_into(t, g_slice, &mut slice_out);
            assert_eq!(slice_out[0], full_out[1], "round {t}");
            assert_eq!(slice_out[1], full_out[3], "round {t}");
        }
    }

    #[test]
    fn replay_reproduces_the_trace_verbatim() {
        let mut trace = ArrivalTrace::new(3, 20);
        for t in 0..20 {
            for d in 0..3 {
                trace.set(t, d, t * 10 + d as u64);
            }
        }
        let spec = WorkloadSpec {
            replay: Some(trace.clone()),
            ..WorkloadSpec::default()
        };
        let rates = [0.0, 0.0, 0.0];
        let mut sampler = spec.sampler(0, &rates);
        let mut out = Vec::new();
        for t in 0..20 {
            let g = sampler.begin_round(t);
            out.clear();
            sampler.sample_into(t, g, &mut out);
            assert_eq!(out, vec![t * 10, t * 10 + 1, t * 10 + 2]);
        }
    }

    #[test]
    fn arrival_trace_text_round_trips() {
        let mut trace = ArrivalTrace::new(2, 5);
        for t in 0..5 {
            trace.set(t, 0, t);
            trace.set(t, 1, 100 - t);
        }
        let text = trace.to_text();
        assert_eq!(ArrivalTrace::from_text(&text).unwrap(), trace);
        for bad in [
            "",
            "not-a-trace v1 rounds=2 dispatchers=1\n0\n0\n",
            "scd-arrival-trace v1 rounds=2\n0\n0\n",
            "scd-arrival-trace v1 rounds=2 dispatchers=1\n0\n",
            "scd-arrival-trace v1 rounds=1 dispatchers=1\n0\n0\n",
            "scd-arrival-trace v1 rounds=1 dispatchers=1\nbanana\n",
            "scd-arrival-trace v1 rounds=1 dispatchers=1\n0,1\n",
        ] {
            assert!(ArrivalTrace::from_text(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn key_value_format_round_trips() {
        let cases = [
            WorkloadSpec::default(),
            WorkloadSpec {
                modulation: ModulationSpec::Mmpp {
                    phases: vec![
                        MmppPhase {
                            rate_multiplier: 1.0,
                            switch_prob: 0.05,
                        },
                        MmppPhase {
                            rate_multiplier: 4.0,
                            switch_prob: 0.25,
                        },
                    ],
                },
                classes: vec![
                    JobClass {
                        size: 1,
                        weight: 0.9,
                    },
                    JobClass {
                        size: 8,
                        weight: 0.1,
                    },
                ],
                seed: Some(77),
                ..WorkloadSpec::default()
            },
            WorkloadSpec {
                modulation: ModulationSpec::Diurnal {
                    period: 500,
                    amplitude: 0.4,
                },
                ..WorkloadSpec::default()
            },
            WorkloadSpec {
                modulation: ModulationSpec::FlashCrowd {
                    every: 200,
                    duration: 20,
                    magnitude: 2.5,
                },
                ..WorkloadSpec::default()
            },
        ];
        for spec in cases {
            let text = spec.to_key_values();
            let parsed = WorkloadSpec::from_key_values(&text).unwrap();
            assert_eq!(parsed, spec, "round trip through {text:?}");
        }
    }

    #[test]
    fn parser_handles_comments_and_rejects_malformed_input() {
        let spec = WorkloadSpec::from_key_values(
            "# bursty preset\n\nmmpp_phases = 1:0.05, 4:0.2 # calm/storm\nclass = 4:0.5\n",
        )
        .unwrap();
        assert_eq!(
            spec.modulation,
            ModulationSpec::Mmpp {
                phases: vec![
                    MmppPhase {
                        rate_multiplier: 1.0,
                        switch_prob: 0.05
                    },
                    MmppPhase {
                        rate_multiplier: 4.0,
                        switch_prob: 0.2
                    },
                ]
            }
        );
        assert_eq!(spec.classes.len(), 1);

        for bad in [
            "no equals sign",
            "unknown_key = 1",
            "mmpp_phases = 1.0",
            "mmpp_phases = a:b",
            "class = 4",
            "diurnal_period = 100", // incomplete family
            "flash_every = 10\nflash_duration = 2",
            "mmpp_phases = 1:0.1\ndiurnal_period = 10\ndiurnal_amplitude = 0.2",
        ] {
            assert!(
                WorkloadSpec::from_key_values(bad).is_err(),
                "accepted {bad:?}"
            );
        }
    }

    #[test]
    fn poisson_inverse_is_monotone_and_bounded() {
        for &lambda in &[0.25, 1.0, 8.0, 16.0] {
            let mut last = 0;
            for i in 0..100 {
                let u = i as f64 / 100.0;
                let k = poisson_inverse(lambda, u);
                assert!(k >= last, "quantile must be monotone in u");
                last = k;
            }
            // Even a u of 1-ulp terminates within the bound.
            let k = poisson_inverse(lambda, 1.0 - f64::EPSILON);
            assert!(k <= (lambda * 12.0).ceil() as u64 + 64);
        }
    }
}
