//! Convenience runner: evaluate several policies on *identical* stochastic
//! inputs and collect the results side by side.

use crate::config::SimConfig;
use crate::engine::{SimError, Simulation};
use crate::report::SimReport;
use scd_metrics::Table;
use scd_model::PolicyFactory;

/// The reports of several policies run on the same configuration and seed.
#[derive(Debug, Clone)]
pub struct ComparisonResult {
    /// One report per policy, in the order the factories were given.
    pub reports: Vec<SimReport>,
}

impl ComparisonResult {
    /// The report for a policy by name, if present.
    pub fn report(&self, policy: &str) -> Option<&SimReport> {
        self.reports.iter().find(|r| r.policy == policy)
    }

    /// Name of the policy with the lowest mean response time.
    pub fn best_by_mean(&self) -> Option<&str> {
        self.best_by(SimReport::mean_response_time)
    }

    /// Name of the policy minimizing an arbitrary report statistic.
    ///
    /// Keys are ordered with [`f64::total_cmp`]; NaN keys are first
    /// normalized to positive NaN, which `total_cmp` orders after every
    /// real number — so a NaN statistic (e.g. a mean derived from a corrupt
    /// deserialized report) can neither panic the comparison (the previous
    /// `partial_cmp(..).expect(..)` comparator did) nor beat a well-formed
    /// report (a raw sign-negative NaN, the default quiet NaN x86 produces
    /// for `0.0 / 0.0`, would order *before* all reals under `total_cmp`).
    pub fn best_by<F: Fn(&SimReport) -> f64>(&self, key: F) -> Option<&str> {
        // Collapse every NaN bit pattern onto positive NaN so "undefined"
        // always loses to "defined", regardless of sign/payload bits.
        let sanitized = |r: &SimReport| {
            let k = key(r);
            if k.is_nan() {
                f64::NAN
            } else {
                k
            }
        };
        self.reports
            .iter()
            .min_by(|a, b| sanitized(a).total_cmp(&sanitized(b)))
            .map(|r| r.policy.as_str())
    }

    /// Name of the policy with the lowest response-time percentile `p`.
    pub fn best_by_percentile(&self, p: f64) -> Option<&str> {
        self.reports
            .iter()
            .min_by_key(|r| r.response_time_percentile(p))
            .map(|r| r.policy.as_str())
    }

    /// Renders the comparison as a text table (policy, mean, p50/p95/p99,
    /// backlog, censored fraction).
    pub fn to_table(&self) -> Table {
        let mut table = Table::with_headers(&[
            "policy",
            "mean",
            "p50",
            "p95",
            "p99",
            "p99.9",
            "max",
            "avg backlog",
            "censored %",
        ]);
        for r in &self.reports {
            let s = r.summary();
            table.add_row(vec![
                r.policy.clone(),
                format!("{:.3}", s.mean),
                s.p50.to_string(),
                s.p95.to_string(),
                s.p99.to_string(),
                s.p999.to_string(),
                s.max.to_string(),
                format!("{:.1}", r.queues.mean_total_backlog),
                format!("{:.3}", 100.0 * r.censored_fraction()),
            ]);
        }
        table
    }
}

/// Runs every factory on the same configuration (hence identical arrival and
/// departure processes) and returns the collected reports.
///
/// # Errors
/// Propagates configuration and policy-violation errors from the engine.
pub fn run_comparison(
    config: &SimConfig,
    factories: &[&dyn PolicyFactory],
) -> Result<ComparisonResult, SimError> {
    let simulation = Simulation::new(config.clone())?;
    let mut reports = Vec::with_capacity(factories.len());
    for factory in factories {
        reports.push(simulation.run(*factory)?);
    }
    Ok(ComparisonResult { reports })
}

/// Like [`run_comparison`] but fans the policies out over up to `threads` OS
/// threads.
///
/// Each run derives every stochastic stream from the configuration seed
/// alone, so a parallel run is **bit-identical** to the sequential one — the
/// reports come back in factory order and match [`run_comparison`] exactly.
/// `threads` of 0 or 1 degrades to the sequential path.
///
/// The one exception is `measure_decision_times`: wall-clock timing samples
/// are nondeterministic by nature (two *sequential* runs differ too), so
/// reports from timed configurations are never comparable with `==`.
///
/// # Errors
/// Propagates configuration and policy-violation errors from the engine.
pub fn run_comparison_parallel(
    config: &SimConfig,
    factories: &[&dyn PolicyFactory],
    threads: usize,
) -> Result<ComparisonResult, SimError> {
    let simulation = Simulation::new(config.clone())?;
    let results = fan_out(factories.len(), threads, |index| {
        simulation.run(factories[index])
    });
    let mut reports = Vec::with_capacity(factories.len());
    for result in results {
        reports.push(result?);
    }
    Ok(ComparisonResult { reports })
}

/// Runs one policy on `seeds.len()` statistically independent replications
/// (the configuration re-seeded with each entry of `seeds`), fanning out over
/// up to `threads` OS threads. Reports come back in seed order, each
/// bit-identical to a sequential run of the same seed.
///
/// This is the building block for confidence intervals over response-time
/// statistics: every replication redraws the arrival/service processes while
/// the cluster and load stay fixed.
///
/// # Errors
/// Propagates configuration and policy-violation errors from the engine.
pub fn run_replications(
    config: &SimConfig,
    factory: &dyn PolicyFactory,
    seeds: &[u64],
    threads: usize,
) -> Result<Vec<SimReport>, SimError> {
    // Validate the base configuration once up front.
    Simulation::new(config.clone())?;
    let results = fan_out(seeds.len(), threads, |index| {
        let mut replication = config.clone();
        replication.seed = seeds[index];
        Simulation::new(replication)?.run(factory)
    });
    results.into_iter().collect()
}

/// Work-stealing index fan-out over the persistent worker pool: runs
/// `worker` for every index in `0..count` on the calling thread plus up to
/// `threads - 1` pool workers and returns the outputs in index order.
///
/// A `threads` value of 0 or 1 (or a single index) runs everything on the
/// calling thread. This is the one thread-pool primitive of the workspace —
/// the policy/seed runners above and `scd-experiments`' sweep executor are
/// both built on it.
///
/// The pool ([`crate::pool`]) is built lazily on first use and its workers
/// park between calls, so short fan-outs (sweeps over many small cells) no
/// longer pay per-call thread-startup costs. Scheduling is invisible in the
/// results: outputs come back in index order and every unit of work derives
/// its behavior from its index alone, so pooled execution is bit-identical
/// to [`fan_out_scoped`] and to a sequential loop (asserted below and by the
/// engine/sweep determinism tests).
pub fn fan_out<R, F>(count: usize, threads: usize, worker: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Send + Sync,
{
    use std::sync::Mutex;

    if count == 0 {
        return Vec::new();
    }
    let threads = threads.max(1).min(count);
    if threads == 1 {
        return (0..count).map(worker).collect();
    }

    let slots: Vec<Mutex<Option<R>>> = (0..count).map(|_| Mutex::new(None)).collect();
    let task = |index: usize| {
        let output = worker(index);
        *slots[index].lock().expect("no poisoned locks") = Some(output);
    };
    crate::pool::run_on_pool(count, threads, &task);

    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("no poisoned locks")
                .expect("every slot was filled")
        })
        .collect()
}

/// The previous `fan_out` implementation — fresh scoped threads per call —
/// retained as the reference the pooled path is benchmarked and
/// equivalence-tested against (`BENCH_engine.json`'s "sweep" row records
/// pooled vs scoped on a many-small-cells grid).
///
/// Semantics are identical to [`fan_out`]: same work-stealing index
/// contract, same in-order results, bit-identical outputs.
pub fn fan_out_scoped<R, F>(count: usize, threads: usize, worker: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Send + Sync,
{
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    if count == 0 {
        return Vec::new();
    }
    let threads = threads.max(1).min(count);
    if threads == 1 {
        return (0..count).map(worker).collect();
    }

    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = (0..count).map(|_| Mutex::new(None)).collect();
    let worker_ref = &worker;
    let next_ref = &next;
    let slots_ref = &slots;

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(move || loop {
                let index = next_ref.fetch_add(1, Ordering::Relaxed);
                if index >= count {
                    break;
                }
                let output = worker_ref(index);
                *slots_ref[index].lock().expect("no poisoned locks") = Some(output);
            });
        }
    });

    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("no poisoned locks")
                .expect("every slot was filled")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrivals::ArrivalSpec;
    use scd_core::policy::ScdFactory;
    use scd_model::ClusterSpec;
    use scd_policies::{JsqFactory, SedFactory};

    fn config() -> SimConfig {
        let spec = ClusterSpec::from_rates(vec![8.0, 4.0, 1.0, 1.0, 1.0, 1.0]).unwrap();
        SimConfig::builder(spec)
            .dispatchers(4)
            .rounds(2_000)
            .warmup_rounds(200)
            .seed(2021)
            .arrivals(ArrivalSpec::PoissonOfferedLoad { offered_load: 0.9 })
            .build()
            .unwrap()
    }

    #[test]
    fn comparison_runs_all_policies_on_identical_inputs() {
        let scd = ScdFactory::new();
        let jsq = JsqFactory::new();
        let sed = SedFactory::new();
        let result = run_comparison(&config(), &[&scd, &jsq, &sed]).unwrap();
        assert_eq!(result.reports.len(), 3);
        // Identical arrival streams → identical dispatched-job counts.
        let dispatched: Vec<u64> = result.reports.iter().map(|r| r.jobs_dispatched).collect();
        assert!(
            dispatched.windows(2).all(|w| w[0] == w[1]),
            "{dispatched:?}"
        );
        assert!(result.report("SCD").is_some());
        assert!(result.report("nope").is_none());
        let table = result.to_table();
        assert_eq!(table.num_rows(), 3);
        assert!(table.to_string().contains("SCD"));
    }

    #[test]
    fn parallel_comparison_is_bit_identical_to_sequential() {
        let scd = ScdFactory::new();
        let jsq = JsqFactory::new();
        let sed = SedFactory::new();
        let factories: [&dyn scd_model::PolicyFactory; 3] = [&scd, &jsq, &sed];
        let sequential = run_comparison(&config(), &factories).unwrap();
        for threads in [1usize, 2, 8] {
            let parallel = run_comparison_parallel(&config(), &factories, threads).unwrap();
            assert_eq!(
                sequential.reports, parallel.reports,
                "threads={threads}: parallel runner diverged from the sequential path"
            );
        }
    }

    #[test]
    fn replications_match_individually_seeded_runs() {
        let scd = ScdFactory::new();
        let seeds = [11u64, 22, 33, 44];
        let reports = run_replications(&config(), &scd, &seeds, 4).unwrap();
        assert_eq!(reports.len(), seeds.len());
        for (i, &seed) in seeds.iter().enumerate() {
            let mut solo_config = config();
            solo_config.seed = seed;
            let solo = Simulation::new(solo_config).unwrap().run(&scd).unwrap();
            assert_eq!(reports[i], solo, "replication {i} (seed {seed}) diverged");
        }
        // Different seeds genuinely redraw the stochastic processes.
        assert_ne!(reports[0].response_times, reports[1].response_times);
    }

    #[test]
    fn best_by_tolerates_nan_statistics() {
        // Regression: `best_by_mean` used to panic via
        // `partial_cmp(..).expect(..)` the moment any report statistic was
        // NaN. With `total_cmp`, positive NaN orders after every real
        // number, so a corrupt report can neither panic the comparison nor
        // beat a well-formed one.
        let scd = ScdFactory::new();
        let jsq = JsqFactory::new();
        let mut quick = config();
        quick.rounds = 200;
        quick.warmup_rounds = 0;
        let result = run_comparison(&quick, &[&scd, &jsq]).unwrap();
        let nan_for_scd = |r: &crate::report::SimReport| {
            if r.policy == "SCD" {
                f64::NAN
            } else {
                r.mean_response_time()
            }
        };
        assert_eq!(
            result.best_by(nan_for_scd),
            Some("JSQ"),
            "a NaN key must lose to every finite key"
        );
        // Sign-negative NaN (what x86 produces for 0.0/0.0) orders *before*
        // all reals under a raw total_cmp — it must also lose.
        let negative_nan = f64::NAN.copysign(-1.0);
        assert_eq!(
            result.best_by(|r| {
                if r.policy == "SCD" {
                    negative_nan
                } else {
                    r.mean_response_time()
                }
            }),
            Some("JSQ"),
            "a negative NaN key must lose to every finite key"
        );
        // All-NaN keys still produce a deterministic (first) winner.
        assert_eq!(result.best_by(|_| f64::NAN), Some("SCD"));
        // And the named helper stays consistent with the generic one.
        assert_eq!(
            result.best_by_mean(),
            result.best_by(crate::report::SimReport::mean_response_time)
        );
        let empty = ComparisonResult {
            reports: Vec::new(),
        };
        assert_eq!(empty.best_by_mean(), None);
    }

    #[test]
    fn empty_fan_outs_are_fine() {
        let result = run_comparison_parallel(&config(), &[], 4).unwrap();
        assert!(result.reports.is_empty());
        let scd = ScdFactory::new();
        let reports = run_replications(&config(), &scd, &[], 4).unwrap();
        assert!(reports.is_empty());
    }

    #[test]
    fn pooled_fan_out_matches_scoped_and_sequential() {
        // Index-derived work: pooled, scoped and sequential execution must
        // produce identical in-order outputs for every thread count.
        let work = |index: usize| {
            let mut acc = index as u64;
            for _ in 0..50 {
                acc = acc
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
            }
            (index, acc)
        };
        let sequential: Vec<(usize, u64)> = (0..97).map(work).collect();
        for threads in [2usize, 3, 8, 64] {
            assert_eq!(
                fan_out(97, threads, work),
                sequential,
                "pooled, {threads} threads"
            );
            assert_eq!(
                fan_out_scoped(97, threads, work),
                sequential,
                "scoped, {threads} threads"
            );
        }
        assert_eq!(fan_out(97, 1, work), sequential);
        assert!(fan_out(0, 8, work).is_empty());
        assert!(fan_out_scoped(0, 8, work).is_empty());
    }

    #[test]
    fn pool_survives_many_small_fan_outs() {
        // The motivating workload: lots of tiny jobs in quick succession.
        // Each reuses the parked workers instead of spawning threads.
        for round in 0..200usize {
            let out = fan_out(3, 4, |i| i + round);
            assert_eq!(out, vec![round, round + 1, round + 2]);
        }
    }

    #[test]
    fn fan_out_honors_the_thread_cap_despite_a_larger_pool() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        // Grow the pool well past 2 workers with a wide call first.
        let _ = fan_out(16, 8, |i| i);
        // A threads=2 call may use the caller plus at most ONE pool helper,
        // no matter how many workers are parked. The observed-concurrency
        // bound is structural (helper cap), not timing-dependent.
        let current = AtomicUsize::new(0);
        let peak = AtomicUsize::new(0);
        let _ = fan_out(64, 2, |i| {
            let now = current.fetch_add(1, Ordering::SeqCst) + 1;
            peak.fetch_max(now, Ordering::SeqCst);
            std::hint::black_box((0..500).map(|x| x ^ i).sum::<usize>());
            current.fetch_sub(1, Ordering::SeqCst);
            i
        });
        assert!(
            peak.load(Ordering::SeqCst) <= 2,
            "threads=2 ran {} ways parallel",
            peak.load(Ordering::SeqCst)
        );
    }

    #[test]
    fn nested_fan_outs_complete() {
        // A pool worker posting its own job must not deadlock: every caller
        // participates in draining its own indices.
        let out = fan_out(4, 4, |outer| {
            let inner = fan_out(3, 2, move |i| (outer * 10 + i) as u64);
            inner.iter().sum::<u64>()
        });
        let expect: Vec<u64> = (0..4)
            .map(|o| (0..3).map(|i| (o * 10 + i) as u64).sum())
            .collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn worker_panics_propagate_to_the_caller() {
        let result = std::panic::catch_unwind(|| {
            fan_out(8, 4, |index| {
                if index == 5 {
                    panic!("boom at {index}");
                }
                index
            })
        });
        assert!(
            result.is_err(),
            "a worker panic must re-raise in the caller"
        );
        // The pool must remain usable afterwards.
        assert_eq!(fan_out(4, 4, |i| i * 2), vec![0, 2, 4, 6]);
    }

    #[test]
    fn scd_beats_heterogeneity_oblivious_jsq_under_load() {
        // A heavily heterogeneous cluster with several dispatchers at high
        // load: SCD must achieve a lower mean response time than JSQ (the
        // paper's headline qualitative claim, at reduced scale).
        let scd = ScdFactory::new();
        let jsq = JsqFactory::new();
        let result = run_comparison(&config(), &[&scd, &jsq]).unwrap();
        let scd_mean = result.report("SCD").unwrap().mean_response_time();
        let jsq_mean = result.report("JSQ").unwrap().mean_response_time();
        assert!(
            scd_mean < jsq_mean,
            "SCD mean {scd_mean} should beat JSQ mean {jsq_mean}"
        );
        assert_eq!(result.best_by_mean(), Some("SCD"));
        let best_tail = result.best_by_percentile(0.99).unwrap();
        assert!(best_tail == "SCD" || best_tail == "JSQ");
    }
}
