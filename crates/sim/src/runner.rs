//! Convenience runner: evaluate several policies on *identical* stochastic
//! inputs and collect the results side by side.

use crate::config::SimConfig;
use crate::engine::{SimError, Simulation};
use crate::report::SimReport;
use scd_metrics::Table;
use scd_model::PolicyFactory;

/// The reports of several policies run on the same configuration and seed.
#[derive(Debug, Clone)]
pub struct ComparisonResult {
    /// One report per policy, in the order the factories were given.
    pub reports: Vec<SimReport>,
}

impl ComparisonResult {
    /// The report for a policy by name, if present.
    pub fn report(&self, policy: &str) -> Option<&SimReport> {
        self.reports.iter().find(|r| r.policy == policy)
    }

    /// Name of the policy with the lowest mean response time.
    pub fn best_by_mean(&self) -> Option<&str> {
        self.reports
            .iter()
            .min_by(|a, b| {
                a.mean_response_time()
                    .partial_cmp(&b.mean_response_time())
                    .expect("response times are finite")
            })
            .map(|r| r.policy.as_str())
    }

    /// Name of the policy with the lowest response-time percentile `p`.
    pub fn best_by_percentile(&self, p: f64) -> Option<&str> {
        self.reports
            .iter()
            .min_by_key(|r| r.response_time_percentile(p))
            .map(|r| r.policy.as_str())
    }

    /// Renders the comparison as a text table (policy, mean, p50/p95/p99,
    /// backlog, censored fraction).
    pub fn to_table(&self) -> Table {
        let mut table = Table::with_headers(&[
            "policy", "mean", "p50", "p95", "p99", "p99.9", "max", "avg backlog", "censored %",
        ]);
        for r in &self.reports {
            let s = r.summary();
            table.add_row(vec![
                r.policy.clone(),
                format!("{:.3}", s.mean),
                s.p50.to_string(),
                s.p95.to_string(),
                s.p99.to_string(),
                s.p999.to_string(),
                s.max.to_string(),
                format!("{:.1}", r.queues.mean_total_backlog),
                format!("{:.3}", 100.0 * r.censored_fraction()),
            ]);
        }
        table
    }
}

/// Runs every factory on the same configuration (hence identical arrival and
/// departure processes) and returns the collected reports.
///
/// # Errors
/// Propagates configuration and policy-violation errors from the engine.
pub fn run_comparison(
    config: &SimConfig,
    factories: &[&dyn PolicyFactory],
) -> Result<ComparisonResult, SimError> {
    let simulation = Simulation::new(config.clone())?;
    let mut reports = Vec::with_capacity(factories.len());
    for factory in factories {
        reports.push(simulation.run(*factory)?);
    }
    Ok(ComparisonResult { reports })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrivals::ArrivalSpec;
    use scd_core::policy::ScdFactory;
    use scd_model::ClusterSpec;
    use scd_policies::{JsqFactory, SedFactory};

    fn config() -> SimConfig {
        let spec = ClusterSpec::from_rates(vec![8.0, 4.0, 1.0, 1.0, 1.0, 1.0]).unwrap();
        SimConfig::builder(spec)
            .dispatchers(4)
            .rounds(2_000)
            .warmup_rounds(200)
            .seed(2021)
            .arrivals(ArrivalSpec::PoissonOfferedLoad { offered_load: 0.9 })
            .build()
            .unwrap()
    }

    #[test]
    fn comparison_runs_all_policies_on_identical_inputs() {
        let scd = ScdFactory::new();
        let jsq = JsqFactory::new();
        let sed = SedFactory::new();
        let result = run_comparison(&config(), &[&scd, &jsq, &sed]).unwrap();
        assert_eq!(result.reports.len(), 3);
        // Identical arrival streams → identical dispatched-job counts.
        let dispatched: Vec<u64> = result.reports.iter().map(|r| r.jobs_dispatched).collect();
        assert!(dispatched.windows(2).all(|w| w[0] == w[1]), "{dispatched:?}");
        assert!(result.report("SCD").is_some());
        assert!(result.report("nope").is_none());
        let table = result.to_table();
        assert_eq!(table.num_rows(), 3);
        assert!(table.to_string().contains("SCD"));
    }

    #[test]
    fn scd_beats_heterogeneity_oblivious_jsq_under_load() {
        // A heavily heterogeneous cluster with several dispatchers at high
        // load: SCD must achieve a lower mean response time than JSQ (the
        // paper's headline qualitative claim, at reduced scale).
        let scd = ScdFactory::new();
        let jsq = JsqFactory::new();
        let result = run_comparison(&config(), &[&scd, &jsq]).unwrap();
        let scd_mean = result.report("SCD").unwrap().mean_response_time();
        let jsq_mean = result.report("JSQ").unwrap().mean_response_time();
        assert!(
            scd_mean < jsq_mean,
            "SCD mean {scd_mean} should beat JSQ mean {jsq_mean}"
        );
        assert_eq!(result.best_by_mean(), Some("SCD"));
        let best_tail = result.best_by_percentile(0.99).unwrap();
        assert!(best_tail == "SCD" || best_tail == "JSQ");
    }
}
