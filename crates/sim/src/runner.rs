//! Convenience runner: evaluate several policies on *identical* stochastic
//! inputs and collect the results side by side.

use crate::config::SimConfig;
use crate::engine::{SimError, Simulation};
use crate::report::SimReport;
use scd_metrics::Table;
use scd_model::PolicyFactory;

/// The reports of several policies run on the same configuration and seed.
#[derive(Debug, Clone)]
pub struct ComparisonResult {
    /// One report per policy, in the order the factories were given.
    pub reports: Vec<SimReport>,
}

impl ComparisonResult {
    /// The report for a policy by name, if present.
    pub fn report(&self, policy: &str) -> Option<&SimReport> {
        self.reports.iter().find(|r| r.policy == policy)
    }

    /// Name of the policy with the lowest mean response time.
    pub fn best_by_mean(&self) -> Option<&str> {
        self.reports
            .iter()
            .min_by(|a, b| {
                a.mean_response_time()
                    .partial_cmp(&b.mean_response_time())
                    .expect("response times are finite")
            })
            .map(|r| r.policy.as_str())
    }

    /// Name of the policy with the lowest response-time percentile `p`.
    pub fn best_by_percentile(&self, p: f64) -> Option<&str> {
        self.reports
            .iter()
            .min_by_key(|r| r.response_time_percentile(p))
            .map(|r| r.policy.as_str())
    }

    /// Renders the comparison as a text table (policy, mean, p50/p95/p99,
    /// backlog, censored fraction).
    pub fn to_table(&self) -> Table {
        let mut table = Table::with_headers(&[
            "policy",
            "mean",
            "p50",
            "p95",
            "p99",
            "p99.9",
            "max",
            "avg backlog",
            "censored %",
        ]);
        for r in &self.reports {
            let s = r.summary();
            table.add_row(vec![
                r.policy.clone(),
                format!("{:.3}", s.mean),
                s.p50.to_string(),
                s.p95.to_string(),
                s.p99.to_string(),
                s.p999.to_string(),
                s.max.to_string(),
                format!("{:.1}", r.queues.mean_total_backlog),
                format!("{:.3}", 100.0 * r.censored_fraction()),
            ]);
        }
        table
    }
}

/// Runs every factory on the same configuration (hence identical arrival and
/// departure processes) and returns the collected reports.
///
/// # Errors
/// Propagates configuration and policy-violation errors from the engine.
pub fn run_comparison(
    config: &SimConfig,
    factories: &[&dyn PolicyFactory],
) -> Result<ComparisonResult, SimError> {
    let simulation = Simulation::new(config.clone())?;
    let mut reports = Vec::with_capacity(factories.len());
    for factory in factories {
        reports.push(simulation.run(*factory)?);
    }
    Ok(ComparisonResult { reports })
}

/// Like [`run_comparison`] but fans the policies out over up to `threads` OS
/// threads.
///
/// Each run derives every stochastic stream from the configuration seed
/// alone, so a parallel run is **bit-identical** to the sequential one — the
/// reports come back in factory order and match [`run_comparison`] exactly.
/// `threads` of 0 or 1 degrades to the sequential path.
///
/// The one exception is `measure_decision_times`: wall-clock timing samples
/// are nondeterministic by nature (two *sequential* runs differ too), so
/// reports from timed configurations are never comparable with `==`.
///
/// # Errors
/// Propagates configuration and policy-violation errors from the engine.
pub fn run_comparison_parallel(
    config: &SimConfig,
    factories: &[&dyn PolicyFactory],
    threads: usize,
) -> Result<ComparisonResult, SimError> {
    let simulation = Simulation::new(config.clone())?;
    let results = fan_out(factories.len(), threads, |index| {
        simulation.run(factories[index])
    });
    let mut reports = Vec::with_capacity(factories.len());
    for result in results {
        reports.push(result?);
    }
    Ok(ComparisonResult { reports })
}

/// Runs one policy on `seeds.len()` statistically independent replications
/// (the configuration re-seeded with each entry of `seeds`), fanning out over
/// up to `threads` OS threads. Reports come back in seed order, each
/// bit-identical to a sequential run of the same seed.
///
/// This is the building block for confidence intervals over response-time
/// statistics: every replication redraws the arrival/service processes while
/// the cluster and load stay fixed.
///
/// # Errors
/// Propagates configuration and policy-violation errors from the engine.
pub fn run_replications(
    config: &SimConfig,
    factory: &dyn PolicyFactory,
    seeds: &[u64],
    threads: usize,
) -> Result<Vec<SimReport>, SimError> {
    // Validate the base configuration once up front.
    Simulation::new(config.clone())?;
    let results = fan_out(seeds.len(), threads, |index| {
        let mut replication = config.clone();
        replication.seed = seeds[index];
        Simulation::new(replication)?.run(factory)
    });
    results.into_iter().collect()
}

/// Work-stealing index fan-out over scoped threads: runs `worker` for every
/// index in `0..count` on up to `threads` OS threads and returns the outputs
/// in index order.
///
/// A `threads` value of 0 or 1 (or a single index) runs everything on the
/// calling thread. This is the one thread-pool primitive of the workspace —
/// the policy/seed runners above and `scd-experiments`' sweep executor are
/// both built on it.
pub fn fan_out<R, F>(count: usize, threads: usize, worker: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Send + Sync,
{
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    if count == 0 {
        return Vec::new();
    }
    let threads = threads.max(1).min(count);
    if threads == 1 {
        return (0..count).map(worker).collect();
    }

    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = (0..count).map(|_| Mutex::new(None)).collect();
    let worker_ref = &worker;
    let next_ref = &next;
    let slots_ref = &slots;

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(move || loop {
                let index = next_ref.fetch_add(1, Ordering::Relaxed);
                if index >= count {
                    break;
                }
                let output = worker_ref(index);
                *slots_ref[index].lock().expect("no poisoned locks") = Some(output);
            });
        }
    });

    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("no poisoned locks")
                .expect("every slot was filled")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrivals::ArrivalSpec;
    use scd_core::policy::ScdFactory;
    use scd_model::ClusterSpec;
    use scd_policies::{JsqFactory, SedFactory};

    fn config() -> SimConfig {
        let spec = ClusterSpec::from_rates(vec![8.0, 4.0, 1.0, 1.0, 1.0, 1.0]).unwrap();
        SimConfig::builder(spec)
            .dispatchers(4)
            .rounds(2_000)
            .warmup_rounds(200)
            .seed(2021)
            .arrivals(ArrivalSpec::PoissonOfferedLoad { offered_load: 0.9 })
            .build()
            .unwrap()
    }

    #[test]
    fn comparison_runs_all_policies_on_identical_inputs() {
        let scd = ScdFactory::new();
        let jsq = JsqFactory::new();
        let sed = SedFactory::new();
        let result = run_comparison(&config(), &[&scd, &jsq, &sed]).unwrap();
        assert_eq!(result.reports.len(), 3);
        // Identical arrival streams → identical dispatched-job counts.
        let dispatched: Vec<u64> = result.reports.iter().map(|r| r.jobs_dispatched).collect();
        assert!(
            dispatched.windows(2).all(|w| w[0] == w[1]),
            "{dispatched:?}"
        );
        assert!(result.report("SCD").is_some());
        assert!(result.report("nope").is_none());
        let table = result.to_table();
        assert_eq!(table.num_rows(), 3);
        assert!(table.to_string().contains("SCD"));
    }

    #[test]
    fn parallel_comparison_is_bit_identical_to_sequential() {
        let scd = ScdFactory::new();
        let jsq = JsqFactory::new();
        let sed = SedFactory::new();
        let factories: [&dyn scd_model::PolicyFactory; 3] = [&scd, &jsq, &sed];
        let sequential = run_comparison(&config(), &factories).unwrap();
        for threads in [1usize, 2, 8] {
            let parallel = run_comparison_parallel(&config(), &factories, threads).unwrap();
            assert_eq!(
                sequential.reports, parallel.reports,
                "threads={threads}: parallel runner diverged from the sequential path"
            );
        }
    }

    #[test]
    fn replications_match_individually_seeded_runs() {
        let scd = ScdFactory::new();
        let seeds = [11u64, 22, 33, 44];
        let reports = run_replications(&config(), &scd, &seeds, 4).unwrap();
        assert_eq!(reports.len(), seeds.len());
        for (i, &seed) in seeds.iter().enumerate() {
            let mut solo_config = config();
            solo_config.seed = seed;
            let solo = Simulation::new(solo_config).unwrap().run(&scd).unwrap();
            assert_eq!(reports[i], solo, "replication {i} (seed {seed}) diverged");
        }
        // Different seeds genuinely redraw the stochastic processes.
        assert_ne!(reports[0].response_times, reports[1].response_times);
    }

    #[test]
    fn empty_fan_outs_are_fine() {
        let result = run_comparison_parallel(&config(), &[], 4).unwrap();
        assert!(result.reports.is_empty());
        let scd = ScdFactory::new();
        let reports = run_replications(&config(), &scd, &[], 4).unwrap();
        assert!(reports.is_empty());
    }

    #[test]
    fn scd_beats_heterogeneity_oblivious_jsq_under_load() {
        // A heavily heterogeneous cluster with several dispatchers at high
        // load: SCD must achieve a lower mean response time than JSQ (the
        // paper's headline qualitative claim, at reduced scale).
        let scd = ScdFactory::new();
        let jsq = JsqFactory::new();
        let result = run_comparison(&config(), &[&scd, &jsq]).unwrap();
        let scd_mean = result.report("SCD").unwrap().mean_response_time();
        let jsq_mean = result.report("JSQ").unwrap().mean_response_time();
        assert!(
            scd_mean < jsq_mean,
            "SCD mean {scd_mean} should beat JSQ mean {jsq_mean}"
        );
        assert_eq!(result.best_by_mean(), Some("SCD"));
        let best_tail = result.best_by_percentile(0.99).unwrap();
        assert!(best_tail == "SCD" || best_tail == "JSQ");
    }
}
