//! Results produced by a simulation run.

use scd_metrics::{DecisionTimeHistogram, HistogramSummary, ResponseTimeHistogram};
use serde::{Deserialize, Serialize};

/// Aggregate queue-length statistics of one run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QueueSummary {
    /// Time-average of the total backlog `Σ_s q_s(t)` (post-warm-up rounds).
    pub mean_total_backlog: f64,
    /// Largest total backlog observed in any round.
    pub max_total_backlog: f64,
    /// Largest per-server time-average queue length.
    pub worst_mean_queue: f64,
    /// Mean fraction of rounds in which a server was idle, averaged over
    /// servers (wasted capacity indicator).
    pub mean_idle_fraction: f64,
}

impl QueueSummary {
    /// Folds the summary of a **disjoint** set of servers (observed over the
    /// same rounds) into this one — the merge rule of the sharded engine's
    /// report merge.
    ///
    /// * `mean_total_backlog` adds exactly: the time-average of a sum over
    ///   disjoint server sets is the sum of the per-set time-averages.
    /// * `max_total_backlog` adds per-shard maxima. The per-round global
    ///   total is unavailable after shards run independently, so the merged
    ///   value is an **upper bound** on the true instantaneous maximum
    ///   (exact for a single shard, and exact whenever the shard maxima
    ///   coincide in time).
    /// * `worst_mean_queue` is a per-server maximum, so disjoint sets merge
    ///   by `max`.
    /// * `mean_idle_fraction` is a per-server average, so disjoint sets
    ///   merge by a server-count-weighted mean (`self_servers` is the number
    ///   of servers already folded into `self`).
    pub fn fold_disjoint(
        &mut self,
        other: &QueueSummary,
        self_servers: usize,
        other_servers: usize,
    ) {
        self.mean_total_backlog += other.mean_total_backlog;
        self.max_total_backlog += other.max_total_backlog;
        self.worst_mean_queue = self.worst_mean_queue.max(other.worst_mean_queue);
        let total = self_servers + other_servers;
        if total > 0 {
            self.mean_idle_fraction = (self.mean_idle_fraction * self_servers as f64
                + other.mean_idle_fraction * other_servers as f64)
                / total as f64;
        }
    }
}

/// Degradation statistics of a run under an active fault/churn/staleness
/// scenario (see `crates/sim/src/scenario.rs`). Counted over **all** rounds
/// (warm-up included — the scenario does not pause while statistics do),
/// with the same saturating, mergeable discipline as the run counters: the
/// sharded engine merges per-shard metrics by saturating addition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct DegradationMetrics {
    /// Total server-rounds spent down (summed over servers).
    pub server_down_rounds: u64,
    /// Total dispatcher-rounds spent offline (summed over dispatchers).
    pub dispatcher_offline_rounds: u64,
    /// Jobs that arrived at an offline dispatcher (or while no server was
    /// up) and were lost.
    pub arrivals_lost: u64,
    /// Probes of the probe-marking policies (LSQ, LED) lost to the
    /// scenario's probe-loss process.
    pub probes_dropped: u64,
    /// Dispatcher-rounds in which an online dispatcher decided on a stale
    /// (at least one round old) queue view.
    pub stale_decision_rounds: u64,
    /// Rounds in which one server received a strict majority of the round's
    /// dispatched jobs (of at least two) — the herding indicator the stale-
    /// information experiments track.
    pub herding_rounds: u64,
    /// Shards of a process-fabric run whose workers exhausted their retries
    /// and contributed nothing to the merged report. Zero for in-process
    /// runs and clean fabric runs; nonzero marks a **partial** merge whose
    /// statistics cover only the surviving sub-systems.
    pub shards_lost: u64,
    /// Simulated rounds forfeited with the lost shards (`shards_lost ×
    /// rounds per shard`) — the work a rerun from the same seeds would have
    /// to redo to complete the experiment.
    pub rounds_lost: u64,
    /// Checkpoint frames taken and verified across the run's workers (zero
    /// for in-process runs and for fabric runs with checkpointing off).
    #[serde(default)]
    pub checkpoints_taken: u64,
    /// Simulated rounds re-executed after crash recoveries: for each retry,
    /// the rounds between the resume point (the last verified checkpoint,
    /// or round 0 for a retry-from-seed) and the furthest progress the dead
    /// worker had reported. Measures the work checkpointing saved — or, for
    /// seed retries, the work it would have saved.
    #[serde(default)]
    pub rounds_replayed: u64,
}

impl DegradationMetrics {
    /// Accumulates another disjoint slice of the run (saturating, like the
    /// shard merge of the run counters).
    pub fn merge(&mut self, other: &DegradationMetrics) {
        self.server_down_rounds = self
            .server_down_rounds
            .saturating_add(other.server_down_rounds);
        self.dispatcher_offline_rounds = self
            .dispatcher_offline_rounds
            .saturating_add(other.dispatcher_offline_rounds);
        self.arrivals_lost = self.arrivals_lost.saturating_add(other.arrivals_lost);
        self.probes_dropped = self.probes_dropped.saturating_add(other.probes_dropped);
        self.stale_decision_rounds = self
            .stale_decision_rounds
            .saturating_add(other.stale_decision_rounds);
        self.herding_rounds = self.herding_rounds.saturating_add(other.herding_rounds);
        self.shards_lost = self.shards_lost.saturating_add(other.shards_lost);
        self.rounds_lost = self.rounds_lost.saturating_add(other.rounds_lost);
        self.checkpoints_taken = self
            .checkpoints_taken
            .saturating_add(other.checkpoints_taken);
        self.rounds_replayed = self.rounds_replayed.saturating_add(other.rounds_replayed);
    }
}

/// The result of simulating one policy on one configuration.
///
/// `PartialEq` compares every collected statistic, which is what the
/// parallel-runner equivalence guarantees ("bit-identical reports") are
/// asserted with.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimReport {
    /// Display name of the policy that produced this report.
    pub policy: String,
    /// Number of simulated rounds.
    pub rounds: u64,
    /// Warm-up rounds excluded from statistics.
    pub warmup_rounds: u64,
    /// The offered load of the configuration.
    pub offered_load: f64,
    /// Number of jobs dispatched during measured (post-warm-up) rounds.
    pub jobs_dispatched: u64,
    /// Number of measured jobs that completed before the run ended.
    pub jobs_completed: u64,
    /// Jobs still queued at the end of the run (censored response times).
    pub jobs_in_flight: u64,
    /// Exact distribution of job response times, in rounds.
    pub response_times: ResponseTimeHistogram,
    /// Queue-length statistics.
    pub queues: QueueSummary,
    /// Dense queue-length occupancy histogram: `queue_occupancy[k]` =
    /// number of (server, round) observations with queue length exactly
    /// `k` over the measured rounds, lengths at or above
    /// [`QueueLengthTracker::OCCUPANCY_CLAMP`](scd_metrics::QueueLengthTracker::OCCUPANCY_CLAMP)
    /// sharing the top bucket. Populated in both metric modes; normalizing
    /// ([`Self::queue_length_distribution`]) yields the empirical
    /// steady-state distribution the mean-field oracle checks against.
    #[serde(default)]
    pub queue_occupancy: Vec<u64>,
    /// Wall-clock times (in microseconds) of individual dispatching
    /// decisions, present when the run was configured with
    /// `measure_decision_times`. Recorded into a fixed log-bucketed
    /// histogram so the measured hot path stays allocation-free.
    pub decision_times_us: Option<DecisionTimeHistogram>,
    /// Degradation statistics, present exactly when the run's scenario was
    /// active (`None` on the fair-weather fast path).
    pub degradation: Option<DegradationMetrics>,
}

impl SimReport {
    /// Mean response time in rounds.
    pub fn mean_response_time(&self) -> f64 {
        self.response_times.mean()
    }

    /// A quantile of the response-time distribution.
    ///
    /// # Panics
    /// Panics if `p` is outside `[0, 1]`.
    pub fn response_time_percentile(&self, p: f64) -> u64 {
        self.response_times.percentile(p)
    }

    /// Compact summary of the response-time distribution.
    pub fn summary(&self) -> HistogramSummary {
        self.response_times.summary()
    }

    /// The empirical queue-length distribution: [`Self::queue_occupancy`]
    /// normalized by its total mass, so `queue_length_distribution()[k]` is
    /// the fraction of (server, round) observations at queue length `k`.
    /// Empty when no rounds were measured.
    pub fn queue_length_distribution(&self) -> Vec<f64> {
        let mass = self
            .queue_occupancy
            .iter()
            .fold(0u128, |acc, &c| acc + u128::from(c));
        if mass == 0 {
            return Vec::new();
        }
        self.queue_occupancy
            .iter()
            .map(|&c| c as f64 / mass as f64)
            .collect()
    }

    /// Fraction of measured jobs that were still queued when the simulation
    /// ended (their response times are censored and not part of the
    /// histogram). Large values indicate an unstable or overloaded system.
    pub fn censored_fraction(&self) -> f64 {
        if self.jobs_dispatched == 0 {
            0.0
        } else {
            self.jobs_in_flight as f64 / self.jobs_dispatched as f64
        }
    }

    /// One-line human-readable description used by examples and binaries.
    pub fn one_liner(&self) -> String {
        format!(
            "{:<10} load={:.2} mean={:.3} p99={:<4} backlog(avg)={:.1} censored={:.3}%",
            self.policy,
            self.offered_load,
            self.mean_response_time(),
            self.response_time_percentile(0.99),
            self.queues.mean_total_backlog,
            100.0 * self.censored_fraction(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy_report() -> SimReport {
        let mut hist = ResponseTimeHistogram::new();
        for rt in [1u64, 2, 2, 3, 50] {
            hist.record(rt);
        }
        SimReport {
            policy: "TEST".into(),
            rounds: 100,
            warmup_rounds: 10,
            offered_load: 0.9,
            jobs_dispatched: 10,
            jobs_completed: 5,
            jobs_in_flight: 5,
            response_times: hist,
            queues: QueueSummary {
                mean_total_backlog: 4.0,
                max_total_backlog: 9.0,
                worst_mean_queue: 2.5,
                mean_idle_fraction: 0.25,
            },
            queue_occupancy: vec![6, 3, 1],
            decision_times_us: None,
            degradation: None,
        }
    }

    #[test]
    fn degradation_metrics_merge_saturating() {
        let mut a = DegradationMetrics {
            server_down_rounds: 5,
            dispatcher_offline_rounds: 2,
            arrivals_lost: 7,
            probes_dropped: 1,
            stale_decision_rounds: 3,
            herding_rounds: u64::MAX,
            shards_lost: 1,
            rounds_lost: u64::MAX - 3,
            checkpoints_taken: 2,
            rounds_replayed: u64::MAX - 1,
        };
        let b = DegradationMetrics {
            server_down_rounds: 1,
            dispatcher_offline_rounds: 0,
            arrivals_lost: 3,
            probes_dropped: 9,
            stale_decision_rounds: 0,
            herding_rounds: 1,
            shards_lost: 2,
            rounds_lost: 800,
            checkpoints_taken: 3,
            rounds_replayed: 400,
        };
        a.merge(&b);
        assert_eq!(a.server_down_rounds, 6);
        assert_eq!(a.arrivals_lost, 10);
        assert_eq!(a.probes_dropped, 10);
        assert_eq!(a.herding_rounds, u64::MAX, "merge must saturate");
        assert_eq!(a.shards_lost, 3);
        assert_eq!(a.rounds_lost, u64::MAX, "lost-round accounting saturates");
        assert_eq!(a.checkpoints_taken, 5);
        assert_eq!(a.rounds_replayed, u64::MAX, "replay accounting saturates");
        assert_eq!(DegradationMetrics::default(), DegradationMetrics::default());
    }

    #[test]
    fn derived_statistics_are_consistent() {
        let report = dummy_report();
        assert!((report.mean_response_time() - 11.6).abs() < 1e-9);
        assert_eq!(report.response_time_percentile(1.0), 50);
        assert_eq!(report.summary().count, 5);
        assert!((report.censored_fraction() - 0.5).abs() < 1e-12);
        let line = report.one_liner();
        assert!(line.contains("TEST"));
        assert!(line.contains("p99"));
    }

    #[test]
    fn fold_disjoint_applies_the_documented_merge_rules() {
        let mut a = QueueSummary {
            mean_total_backlog: 4.0,
            max_total_backlog: 9.0,
            worst_mean_queue: 2.5,
            mean_idle_fraction: 0.25,
        };
        let b = QueueSummary {
            mean_total_backlog: 6.0,
            max_total_backlog: 1.0,
            worst_mean_queue: 1.0,
            mean_idle_fraction: 0.75,
        };
        a.fold_disjoint(&b, 3, 1);
        assert!((a.mean_total_backlog - 10.0).abs() < 1e-12);
        assert!((a.max_total_backlog - 10.0).abs() < 1e-12);
        assert!((a.worst_mean_queue - 2.5).abs() < 1e-12);
        // (0.25 · 3 + 0.75 · 1) / 4 = 0.375.
        assert!((a.mean_idle_fraction - 0.375).abs() < 1e-12);
    }

    #[test]
    fn censored_fraction_handles_empty_runs() {
        let mut report = dummy_report();
        report.jobs_dispatched = 0;
        report.jobs_in_flight = 0;
        assert_eq!(report.censored_fraction(), 0.0);
    }
}
