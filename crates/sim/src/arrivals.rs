//! Arrival processes: how many jobs reach each dispatcher per round.
//!
//! The paper's evaluation draws each dispatcher's per-round arrivals from a
//! Poisson distribution whose mean is chosen so that the system-wide offered
//! load `ρ = Σ_d λ_d / Σ_s µ_s` hits a target value, with the load split
//! equally across dispatchers. Deterministic arrivals are provided for unit
//! tests and worked examples.

use crate::engine::SimError;
use rand::Rng;
use rand_distr::{Distribution, Poisson};
use serde::{Deserialize, Serialize};

/// Declarative description of the arrival process (stored in experiment
/// configurations).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ArrivalSpec {
    /// Poisson arrivals at every dispatcher, calibrated to a system-wide
    /// offered load: `λ_d = ρ · Σ_s µ_s / m`.
    PoissonOfferedLoad {
        /// The target offered load `ρ` (must be positive; admissible systems
        /// have `ρ < 1`).
        offered_load: f64,
    },
    /// Poisson arrivals with an explicit per-dispatcher rate vector.
    PoissonRates {
        /// One `λ_d` per dispatcher.
        rates: Vec<f64>,
    },
    /// Every dispatcher receives exactly this many jobs every round.
    Deterministic {
        /// The fixed per-round batch size.
        jobs_per_round: u64,
    },
}

impl ArrivalSpec {
    /// Validates the specification against the dispatcher count without
    /// resolving rates (sugar over
    /// [`per_dispatcher_rates`](ArrivalSpec::per_dispatcher_rates) with a
    /// unit capacity — every rejection is capacity-independent).
    ///
    /// # Errors
    /// Returns [`SimError::InvalidConfig`] under the same conditions as
    /// [`per_dispatcher_rates`](ArrivalSpec::per_dispatcher_rates).
    pub fn validate(&self, num_dispatchers: usize) -> Result<(), SimError> {
        self.per_dispatcher_rates(num_dispatchers, 1.0).map(|_| ())
    }

    /// Resolves the specification into per-dispatcher mean arrival rates.
    ///
    /// # Errors
    /// Returns [`SimError::InvalidConfig`] if the offered load is not
    /// positive and finite, the explicit rate vector length does not match
    /// the number of dispatchers, or any rate is negative/non-finite.
    pub fn per_dispatcher_rates(
        &self,
        num_dispatchers: usize,
        total_capacity: f64,
    ) -> Result<Vec<f64>, SimError> {
        let rates = match self {
            ArrivalSpec::PoissonOfferedLoad { offered_load } => {
                if !offered_load.is_finite() || *offered_load <= 0.0 {
                    return Err(SimError::InvalidConfig(format!(
                        "offered load must be positive and finite, got {offered_load}"
                    )));
                }
                vec![offered_load * total_capacity / num_dispatchers as f64; num_dispatchers]
            }
            ArrivalSpec::PoissonRates { rates } => {
                if rates.len() != num_dispatchers {
                    return Err(SimError::InvalidConfig(format!(
                        "arrival rate vector must have one entry per dispatcher \
                         ({num_dispatchers}), got {}",
                        rates.len()
                    )));
                }
                rates.clone()
            }
            ArrivalSpec::Deterministic { jobs_per_round } => {
                vec![*jobs_per_round as f64; num_dispatchers]
            }
        };
        for (d, &r) in rates.iter().enumerate() {
            if !r.is_finite() || r < 0.0 {
                return Err(SimError::InvalidConfig(format!(
                    "arrival rates must be finite and non-negative, dispatcher {d} has {r}"
                )));
            }
        }
        Ok(rates)
    }

    /// Instantiates the per-dispatcher samplers.
    ///
    /// # Errors
    /// Returns [`SimError::InvalidConfig`] under the same conditions as
    /// [`per_dispatcher_rates`](ArrivalSpec::per_dispatcher_rates).
    pub fn build(
        &self,
        num_dispatchers: usize,
        total_capacity: f64,
    ) -> Result<Vec<ArrivalProcess>, SimError> {
        match self {
            ArrivalSpec::Deterministic { jobs_per_round } => Ok(vec![
                ArrivalProcess::Deterministic {
                    jobs_per_round: *jobs_per_round
                };
                num_dispatchers
            ]),
            _ => Ok(self
                .per_dispatcher_rates(num_dispatchers, total_capacity)?
                .into_iter()
                .map(ArrivalProcess::poisson)
                .collect()),
        }
    }

    /// The offered load this specification induces on a cluster with the
    /// given total capacity.
    ///
    /// # Errors
    /// Returns [`SimError::InvalidConfig`] under the same conditions as
    /// [`per_dispatcher_rates`](ArrivalSpec::per_dispatcher_rates).
    pub fn offered_load(
        &self,
        num_dispatchers: usize,
        total_capacity: f64,
    ) -> Result<f64, SimError> {
        Ok(self
            .per_dispatcher_rates(num_dispatchers, total_capacity)?
            .iter()
            .sum::<f64>()
            / total_capacity)
    }
}

/// A per-dispatcher sampler of round arrivals.
#[derive(Debug, Clone)]
pub enum ArrivalProcess {
    /// `a(d)(t) ~ Poisson(λ)`.
    ///
    /// The distribution (and therefore its inverted-CDF sampling table) is
    /// prepared once at construction — the engine samples it every round, so
    /// per-draw setup would dominate the arrival phase. `None` encodes a
    /// zero rate.
    Poisson {
        /// The prepared distribution; `None` for `λ = 0` (no arrivals).
        dist: Option<Poisson>,
    },
    /// Exactly `jobs_per_round` arrivals every round.
    Deterministic {
        /// The fixed batch size.
        jobs_per_round: u64,
    },
}

impl ArrivalProcess {
    /// A Poisson process with the given mean (a mean of zero yields no
    /// arrivals).
    ///
    /// # Panics
    /// Panics if `lambda` is negative or not finite.
    pub fn poisson(lambda: f64) -> Self {
        assert!(
            lambda.is_finite() && lambda >= 0.0,
            "arrival rate must be finite and non-negative, got {lambda}"
        );
        let dist = if lambda > 0.0 {
            Some(Poisson::new(lambda).expect("lambda is positive and finite"))
        } else {
            None
        };
        ArrivalProcess::Poisson { dist }
    }

    /// The mean number of arrivals per round.
    pub fn mean(&self) -> f64 {
        match self {
            ArrivalProcess::Poisson { dist } => dist.as_ref().map_or(0.0, Poisson::lambda),
            ArrivalProcess::Deterministic { jobs_per_round } => *jobs_per_round as f64,
        }
    }

    /// Draws the number of arrivals for one round.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        match self {
            ArrivalProcess::Poisson { dist } => {
                dist.as_ref().map_or(0, |dist| dist.sample(rng) as u64)
            }
            ArrivalProcess::Deterministic { jobs_per_round } => *jobs_per_round,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn offered_load_spec_splits_rate_equally() {
        let spec = ArrivalSpec::PoissonOfferedLoad { offered_load: 0.9 };
        let rates = spec.per_dispatcher_rates(5, 100.0).unwrap();
        assert_eq!(rates.len(), 5);
        for r in &rates {
            assert!((r - 18.0).abs() < 1e-12);
        }
        assert!((spec.offered_load(5, 100.0).unwrap() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn explicit_rates_are_used_verbatim() {
        let spec = ArrivalSpec::PoissonRates {
            rates: vec![1.0, 2.0],
        };
        assert_eq!(spec.per_dispatcher_rates(2, 10.0).unwrap(), vec![1.0, 2.0]);
        assert!((spec.offered_load(2, 10.0).unwrap() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn explicit_rates_must_match_dispatcher_count() {
        let err = ArrivalSpec::PoissonRates { rates: vec![1.0] }
            .per_dispatcher_rates(2, 10.0)
            .unwrap_err();
        assert!(
            err.to_string().contains("one entry per dispatcher"),
            "unexpected error: {err}"
        );
    }

    #[test]
    fn non_finite_and_negative_rates_are_rejected() {
        for bad in [f64::NAN, f64::INFINITY, -1.0] {
            let err = ArrivalSpec::PoissonRates {
                rates: vec![1.0, bad],
            }
            .per_dispatcher_rates(2, 10.0)
            .unwrap_err();
            assert!(
                err.to_string().contains("finite and non-negative"),
                "rate {bad}: unexpected error {err}"
            );
            assert!(ArrivalSpec::PoissonRates {
                rates: vec![1.0, bad]
            }
            .validate(2)
            .is_err());
            assert!(ArrivalSpec::PoissonRates {
                rates: vec![1.0, bad]
            }
            .build(2, 10.0)
            .is_err());
        }
    }

    #[test]
    fn deterministic_spec_is_exact() {
        let spec = ArrivalSpec::Deterministic { jobs_per_round: 4 };
        let procs = spec.build(3, 10.0).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        for p in &procs {
            assert_eq!(p.sample(&mut rng), 4);
            assert_eq!(p.mean(), 4.0);
        }
        assert!((spec.offered_load(3, 10.0).unwrap() - 1.2).abs() < 1e-12);
    }

    #[test]
    fn poisson_sample_mean_is_close_to_lambda() {
        let process = ArrivalProcess::poisson(7.5);
        let mut rng = StdRng::seed_from_u64(42);
        let draws = 40_000;
        let total: u64 = (0..draws).map(|_| process.sample(&mut rng)).sum();
        let mean = total as f64 / draws as f64;
        assert!((mean - 7.5).abs() < 0.1, "empirical mean {mean}");
    }

    #[test]
    fn zero_lambda_never_produces_arrivals() {
        let process = ArrivalProcess::poisson(0.0);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert_eq!(process.sample(&mut rng), 0);
        }
    }

    #[test]
    fn non_positive_offered_load_is_rejected() {
        for bad in [0.0, -0.5, f64::NAN, f64::INFINITY] {
            let err = ArrivalSpec::PoissonOfferedLoad { offered_load: bad }
                .per_dispatcher_rates(2, 10.0)
                .unwrap_err();
            assert!(
                err.to_string().contains("positive and finite"),
                "load {bad}: unexpected error {err}"
            );
        }
    }
}
